"""Fig. 13: the largest model trainable on 1, 4, and 16 superchips.

Regenerates the per-system feasibility frontier by probing every Appendix-A
configuration against each system's memory model (micro-batch 1, with or
without activation checkpointing).
"""

import pytest

from repro.training import max_model_table
from benchmarks.conftest import print_table

SYSTEMS = ["ddp", "megatron", "zero2", "zero3", "zero_offload",
           "zero_infinity", "fsdp_offload", "superoffload"]

# Paper values (Fig. 13), in billions; None where the figure omits a bar.
PAPER = {
    ("ddp", 1): 3.5, ("ddp", 4): 3.5, ("ddp", 16): 3.5,
    ("zero_offload", 1): 15, ("zero_offload", 4): 20, ("zero_offload", 16): 20,
    ("zero_infinity", 1): 25,
    ("superoffload", 1): 25, ("superoffload", 4): 50,
    ("superoffload", 16): 200,
}


def sweep():
    return max_model_table(SYSTEMS, [1, 4, 16])


def test_fig13_model_scale(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = {(r["system"], r["n_superchips"]): r["max_model_billions"]
             for r in rows}
    print_table(
        "Fig. 13 — largest trainable model (billions of parameters)",
        ["system", "1 superchip", "4 superchips", "16 superchips", "paper(1/4/16)"],
        [
            [s, table[(s, 1)], table[(s, 4)], table[(s, 16)],
             "/".join(str(PAPER.get((s, n), "-")) for n in (1, 4, 16))]
            for s in SYSTEMS
        ],
    )
    # exact matches on the paper's headline bars
    for key, expected in PAPER.items():
        assert table[key] == expected, key
    # orderings the figure shows
    for n in (1, 4, 16):
        assert table[("superoffload", n)] >= table[("zero_offload", n)]
        assert table[("zero_offload", n)] > table[("ddp", n)]
    # the §5.4 multipliers on 16 superchips
    assert table[("superoffload", 16)] / table[("ddp", 16)] == pytest.approx(57, rel=0.05)
    assert table[("superoffload", 16)] / table[("zero_offload", 16)] == 10
