"""Fig. 11: multi-superchip throughput — 4 GPUs (batch 16) and 16 GPUs
(batch 128), per-GPU TFLOPS.

The multi-chip cluster is Slingshot-connected NVL2 pairs (§5.1), so every
system pays inter-node collectives; the asserted shape is SuperOffload's
lead over the ZeRO family and its ability to reach 50B/200B while the
others OOM.
"""

import pytest

from repro.training import throughput_sweep
from benchmarks.conftest import print_table

SYSTEMS = ["megatron", "zero2", "zero3", "zero_offload", "superoffload"]
CASES = (
    (4, 16, [5, 10, 15, 20, 30, 50]),
    (16, 128, [10, 20, 50, 80, 150, 200]),
)


def sweep():
    out = {}
    for n, batch, sizes in CASES:
        out[n] = throughput_sweep(SYSTEMS, sizes, n_superchips=n,
                                  global_batch=batch)
    return out


def pivot(rows):
    out = {}
    for r in rows:
        out.setdefault(r["model_billions"], {})[r["system"]] = r["tflops"]
    return out


def test_fig11_multi_superchip_throughput(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, batch, sizes in CASES:
        table = pivot(results[n])
        print_table(
            f"Fig. 11 — {n} superchips, batch {batch} (per-GPU TFLOPS)",
            ["model"] + SYSTEMS,
            [[f"{s}B"] + [table[s][sys] for sys in SYSTEMS] for s in sizes],
        )
    four = pivot(results[4])
    sixteen = pivot(results[16])
    # SuperOffload leads the ZeRO family wherever both run.
    for table, sizes in ((four, CASES[0][2]), (sixteen, CASES[1][2])):
        for size in sizes:
            so = table[size]["superoffload"]
            if so is None:
                continue
            for other in ("zero2", "zero3", "zero_offload"):
                t = table[size][other]
                if t is not None:
                    assert so >= 0.95 * t, (size, other)
    # scale frontier: SuperOffload alone reaches 50B on 4 and 200B on 16.
    assert four[50]["superoffload"] is not None
    assert all(four[50][s] is None for s in ("zero2", "zero3", "zero_offload"))
    assert sixteen[200]["superoffload"] is not None
    assert sixteen[200]["zero_offload"] is None
    # ZeRO-Offload gap: paper reports ~2.5x average; network-bound multi-
    # node collectives compress it in our model — require a clear win.
    gaps = [
        four[s]["superoffload"] / four[s]["zero_offload"]
        for s in CASES[0][2] if four[s]["zero_offload"] is not None
    ]
    assert max(gaps) > 1.1
