"""Fig. 12: supported sequence lengths and MFU — Ulysses vs
SuperOffload-Ulysses (13B and 30B on 4 and 8 superchips).

Paper claims reproduced: SuperOffload-Ulysses trains ~8x longer sequences,
reaches 1M tokens for the 13B model on 8 superchips, and sustains ~55% MFU
there.
"""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import RunSetting, build_all_systems, max_sequence_tokens
from repro.training.cluster import gh200_cluster
from benchmarks.conftest import print_table


def sweep():
    systems = build_all_systems()
    rows = []
    for n in (4, 8):
        cluster = gh200_cluster(n)
        for billions in (13, 30):
            cfg = MODEL_CONFIG_TABLE[billions]
            proto = RunSetting(cfg, cluster, global_batch=1, seq=n * 1024)
            for name in ("ulysses", "superoffload_ulysses"):
                system = systems[name]
                max_seq = max_sequence_tokens(system, proto)
                mfu = None
                if max_seq:
                    setting = RunSetting(cfg, cluster, global_batch=1,
                                         seq=max_seq)
                    mfu = system.best_estimate(setting).mfu
                rows.append(
                    {
                        "n": n,
                        "model": f"{billions}B",
                        "system": name,
                        "max_seq_k": max_seq // 1024 if max_seq else 0,
                        "mfu": mfu,
                    }
                )
    return rows


def test_fig12_sequence_length_and_mfu(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig. 12 — max sequence length and MFU",
        ["chips", "model", "system", "max seq (K tokens)", "MFU"],
        [[r["n"], r["model"], r["system"], r["max_seq_k"], r["mfu"]]
         for r in rows],
    )
    def find(n, model, system):
        return next(r for r in rows
                    if r["n"] == n and r["model"] == model
                    and r["system"] == system)

    # 13B on 8 superchips: 1M tokens at ~55% MFU (§5.3).
    headline = find(8, "13B", "superoffload_ulysses")
    assert headline["max_seq_k"] >= 1024
    assert headline["mfu"] == pytest.approx(0.55, abs=0.06)
    # 8x longer than vanilla Ulysses.
    vanilla = find(8, "13B", "ulysses")
    assert headline["max_seq_k"] >= 8 * max(1, vanilla["max_seq_k"])
    # SuperOffload-Ulysses dominates everywhere, including where vanilla
    # cannot train at all (30B).
    for n in (4, 8):
        for model in ("13B", "30B"):
            so = find(n, model, "superoffload_ulysses")
            va = find(n, model, "ulysses")
            assert so["max_seq_k"] > va["max_seq_k"]
    assert find(8, "30B", "ulysses")["max_seq_k"] == 0  # model states OOM
    # where both run, SuperOffload-Ulysses has the higher MFU.
    v8 = find(8, "13B", "ulysses")
    assert headline["mfu"] > v8["mfu"]
