"""Extension experiment: NUMA binding (§4.7).

The paper describes — but does not plot — the penalty of a launcher that
places a training process on the *wrong* Grace CPU: every GPU<->CPU
transfer then crosses the inter-superchip fabric instead of NVLink-C2C.
SuperOffload binds each process to its superchip's cores explicitly.  This
harness quantifies the penalty the binding avoids.
"""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import RunSetting, SuperOffloadSystem
from repro.training.cluster import gh200_cluster
from benchmarks.conftest import print_table


def measure():
    from repro.systems import ExecutionChoice

    rows = []
    # Fixed execution choice (micro-batch 4, no checkpointing) so the
    # comparison isolates the link change; best-choice search can mask the
    # penalty by switching to recompute-heavy configurations.
    choice = ExecutionChoice(4, 1, checkpointing=False)
    for billions in (5, 13, 25):
        results = {}
        for binding in ("affine", "random"):
            cluster = gh200_cluster(4)
            if binding == "affine":
                cluster.node.numa.bind_affine()
            else:
                cluster.node.numa.bind_random(seed=1)
            setting = RunSetting(
                MODEL_CONFIG_TABLE[billions], cluster, global_batch=16
            )
            est = SuperOffloadSystem().estimate(setting, choice)
            results[binding] = est.tflops_per_gpu
        rows.append(
            {
                "model": f"{billions}B",
                "affine_tflops": results["affine"],
                "random_tflops": results["random"],
                "penalty_pct": 100 * (1 - results["random"] / results["affine"]),
            }
        )
    return rows


def test_ext_numa_binding_penalty(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Extension — NUMA binding penalty (SuperOffload, 4 superchips)",
        ["model", "affine (TFLOPS)", "mis-bound (TFLOPS)", "penalty %"],
        [[r["model"], r["affine_tflops"], r["random_tflops"],
          r["penalty_pct"]] for r in rows],
    )
    for row in rows:
        # affine binding never loses
        assert row["random_tflops"] <= row["affine_tflops"] + 1e-9
    # At 5B the schedule hides even the slow link entirely (the STV +
    # repartitioning overlap at work); once host traffic grows with the
    # model, mis-binding costs real throughput.
    assert rows[1]["penalty_pct"] > 3.0
    assert rows[2]["penalty_pct"] > 3.0
