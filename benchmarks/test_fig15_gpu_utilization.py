"""Fig. 15: SuperOffload's GPU utilization (same setting as Fig. 4).

Where ZeRO-Offload leaves the GPU idle 40-50% of each iteration,
SuperOffload's schedule keeps it near-fully busy.
"""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import RunSetting, SuperOffloadSystem, ZeROOffload
from repro.training.cluster import gh200_cluster
from benchmarks.conftest import print_table


def measure():
    rows = []
    for label, n_chips, billions, batch in (
        ("single superchip", 1, 15, 8),
        ("one node", 2, 15, 16),
    ):
        setting = RunSetting(
            MODEL_CONFIG_TABLE[billions], gh200_cluster(n_chips),
            global_batch=batch,
        )
        for system in (ZeROOffload(), SuperOffloadSystem()):
            est = system.best_estimate(setting)
            rows.append(
                {
                    "setting": label,
                    "system": system.display_name,
                    "gpu_util_pct": 100 * (1 - est.gpu_idle_fraction()),
                    "tflops": est.tflops_per_gpu,
                }
            )
    return rows


def test_fig15_superoffload_gpu_utilization(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Fig. 15 — GPU utilization (paper: SuperOffload near 100%)",
        ["setting", "system", "GPU util %", "TFLOPS"],
        [[r["setting"], r["system"], r["gpu_util_pct"], r["tflops"]]
         for r in rows],
    )
    for row in rows:
        if row["system"] == "SuperOffload":
            assert row["gpu_util_pct"] > 90
        else:
            assert row["gpu_util_pct"] < 82
    # per setting, SuperOffload's utilization strictly dominates
    by_setting = {}
    for r in rows:
        by_setting.setdefault(r["setting"], {})[r["system"]] = r
    for setting, pair in by_setting.items():
        assert (pair["SuperOffload"]["gpu_util_pct"]
                > pair["ZeRO-Offload"]["gpu_util_pct"])
        assert (pair["SuperOffload"]["tflops"]
                > pair["ZeRO-Offload"]["tflops"])
