"""Shared helpers for the per-table/per-figure benchmark harnesses.

Every harness regenerates one artifact from the paper's evaluation section,
prints the rows/series the paper reports alongside the paper's own numbers,
and asserts the *shape* (ordering, rough factors, ceilings).  Absolute
numbers come from the calibrated simulator, not the authors' testbed — see
EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import pytest


from repro.reporting import print_table  # noqa: F401  (fixture export)


@pytest.fixture
def table_printer():
    """Fixture alias for :func:`print_table`."""
    return print_table
