"""Fig. 7: GH200 C2C bandwidth vs tensor size.

Regenerates the saturating bandwidth curve: ~50 GB/s at 1 MB, saturation
around 64 MB — the measurement behind SuperOffload's 64 MB bucket size.
"""

import pytest

from repro.hardware.registry import c2c_bandwidth_model
from benchmarks.conftest import print_table

MiB = 1024**2
SIZES = [2**k * MiB for k in range(-4, 11)]  # 64 KB .. 1 GB


def sweep():
    model = c2c_bandwidth_model()
    return model.sweep([max(1, int(s)) for s in SIZES])


def test_fig7_bandwidth_curve(benchmark):
    series = benchmark(sweep)
    print_table(
        "Fig. 7 — C2C effective bandwidth vs message size",
        ["size (MiB)", "GB/s (pinned)"],
        [[f"{s / MiB:.3f}", bw] for s, bw in series],
    )
    by_size = dict(series)
    assert 30 <= by_size[1 * MiB] <= 80        # "as low as 50 GB/s"
    assert by_size[64 * MiB] >= 0.85 * 450      # saturation knee at 64 MB
    gains = [b / a for (_, a), (_, b) in zip(series, series[1:])]
    # diminishing returns beyond the knee
    assert gains[-1] < 1.05
    model = c2c_bandwidth_model()
    assert 32 * MiB <= model.saturation_size(0.9) <= 128 * MiB
