"""Extension experiment: bucket-size ablation (the §4.3 design choice).

SuperOffload fixes its bucket size at 64 MB — the Fig. 7 saturation knee.
This harness sweeps the bucket size through the ZeRO-Offload schedule
(whose exposed transfer tail makes the effect visible end-to-end) and
checks that the achieved link bandwidth saturates right where the paper's
choice sits: small buckets are latency-bound, and past the knee the
returns vanish while per-bucket latency (and lost overlap granularity)
grows.
"""

import pytest

from repro.hardware.registry import c2c_bandwidth_model
from benchmarks.conftest import print_table

MiB = 1024**2
BUCKET_SIZES_MB = [1, 4, 16, 64, 256]


def measure():
    link = c2c_bandwidth_model()
    rows = []
    payload = 2 * 5_000_000_000  # a 5B model's fp16 gradients
    for mb in BUCKET_SIZES_MB:
        bucket = mb * MiB
        n_buckets = max(1, payload // bucket)
        per_bucket = link.transfer_time(bucket, pinned=True)
        total = n_buckets * per_bucket
        rows.append(
            {
                "bucket_mb": mb,
                "n_buckets": int(n_buckets),
                "per_bucket_ms": per_bucket * 1e3,
                "total_s": total,
                "achieved_gbps": payload / total / 1e9,
            }
        )
    return rows


def test_ext_bucket_size_ablation(benchmark):
    rows = benchmark(measure)
    print_table(
        "Extension — bucket size vs achieved C2C bandwidth (5B gradients)",
        ["bucket (MB)", "buckets", "per-bucket (ms)", "total (s)",
         "achieved GB/s"],
        [[r["bucket_mb"], r["n_buckets"], r["per_bucket_ms"], r["total_s"],
          r["achieved_gbps"]] for r in rows],
    )
    by_size = {r["bucket_mb"]: r for r in rows}
    # 64 MB captures ~90% of peak...
    assert by_size[64]["achieved_gbps"] >= 0.85 * 450
    # ...tiny buckets are latency-crippled...
    assert by_size[1]["achieved_gbps"] < 0.5 * by_size[64]["achieved_gbps"]
    # ...and quadrupling past the knee buys under 10% more bandwidth while
    # quartering the overlap granularity.
    gain = by_size[256]["achieved_gbps"] / by_size[64]["achieved_gbps"]
    assert gain < 1.10
