"""Fig. 9: casting-path cost comparison on the superchip.

Regenerates the cast_gpu<->move_fp32 vs cast_cpu<->move_fp16 timing series
(§4.5): the CPU path costs ~2x across the 256 MB - 2 GB range despite
moving half the bytes.
"""

import pytest

from repro.hardware.casting import CastingModel
from repro.hardware.registry import GRACE_CPU, HOPPER_H100, c2c_bandwidth_model
from benchmarks.conftest import print_table

MiB = 1024**2
SIZES = [2**k * MiB for k in range(4, 12)]  # 16 MB .. 2 GB (fp32 payloads)


def sweep():
    model = CastingModel(HOPPER_H100, GRACE_CPU, c2c_bandwidth_model())
    return model.sweep(SIZES)


def test_fig9_casting_costs(benchmark):
    rows = benchmark(sweep)
    print_table(
        "Fig. 9 — casting strategy cost (paper: CPU path ~2x slower)",
        ["fp32 size (MiB)", "cast-GPU/move-fp32 (ms)",
         "cast-CPU/move-fp16 (ms)", "ratio"],
        [[r["fp32_bytes"] // MiB, r["cast_gpu_move_fp32_ms"],
          r["cast_cpu_move_fp16_ms"], r["cpu_over_gpu_ratio"]] for r in rows],
    )
    paper_range = [r for r in rows if 256 * MiB <= r["fp32_bytes"] <= 2048 * MiB]
    for r in paper_range:
        assert 1.6 <= r["cpu_over_gpu_ratio"] <= 3.0
    # the GPU path wins across the whole sweep on GH200
    assert all(r["cpu_over_gpu_ratio"] > 1 for r in rows)
