"""Table 2: breakdown of SuperOffload's optimizations (5B model, single
superchip, batch 8).

Each row enables one more feature; the paper's cumulative ordering must
hold, with STV delivering the largest single jump.
"""

import pytest

from repro.training import ablation_table
from benchmarks.conftest import print_table

PAPER_TFLOPS = [116.20, 128.23, 144.49, 209.36, 238.92]


def test_table2_ablation(benchmark):
    rows = benchmark.pedantic(ablation_table, rounds=1, iterations=1)
    print_table(
        "Table 2 — optimization breakdown (5B, batch 8)",
        ["configuration", "GraceAdam", "SAC", "STV", "Buck.Repart.",
         "TFLOPS (ours)", "TFLOPS (paper)"],
        [
            [r["row"], r["grace_adam"], r["sac"], r["stv"],
             r["bucket_repartitioning"], r["tflops"], paper]
            for r, paper in zip(rows, PAPER_TFLOPS)
        ],
    )
    tflops = [r["tflops"] for r in rows]
    assert tflops == sorted(tflops), "each feature must help"
    gains = [b / a for a, b in zip(tflops, tflops[1:])]
    assert gains[2] == max(gains), "STV is the dominant optimization (§5.5)"
    assert gains[2] >= 1.25
    assert tflops[-1] / tflops[0] >= 1.5  # paper: 2.06x total
    # the full stack lands near the paper's 238.9 TFLOPS
    assert tflops[-1] == pytest.approx(238.9, rel=0.15)
