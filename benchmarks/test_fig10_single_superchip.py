"""Fig. 10: single-superchip training throughput, batch size 8.

Regenerates the per-system TFLOPS series over model sizes, with the
paper-reported behaviours asserted: SuperOffload beats every baseline
(including GPU-only DDP), lands ~2x ZeRO-Offload, ZeRO-Infinity stays
below ~50 TFLOPS, FSDP-Offload below ~15 TFLOPS.
"""

import pytest

from repro.training import throughput_sweep
from benchmarks.conftest import print_table

SYSTEMS = ["ddp", "zero_offload", "zero_infinity", "fsdp_offload",
           "superoffload"]
SIZES = [1, 2, 3, 4, 5, 6, 8, 10, 13, 15, 20, 25]


def sweep():
    return throughput_sweep(SYSTEMS, SIZES, n_superchips=1, global_batch=8)


def pivot(rows):
    out = {}
    for r in rows:
        out.setdefault(r["model_billions"], {})[r["system"]] = r["tflops"]
    return out


def test_fig10_single_superchip_throughput(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = pivot(rows)
    print_table(
        "Fig. 10 — single superchip TFLOPS (batch 8)",
        ["model"] + SYSTEMS,
        [[f"{size}B"] + [table[size][s] for s in SYSTEMS] for size in SIZES],
    )
    for size in SIZES:
        so = table[size]["superoffload"]
        assert so is not None, f"SuperOffload OOM at {size}B"
        for other in SYSTEMS[:-1]:
            t = table[size][other]
            if t is not None:
                assert so > t, (size, other)
    # headline factors
    ratios = [
        table[s]["superoffload"] / table[s]["zero_offload"]
        for s in SIZES if table[s]["zero_offload"] is not None
    ]
    assert max(ratios) >= 1.8            # "up to 2.5x"
    assert sum(ratios) / len(ratios) >= 1.5  # "2x on average"
    assert all(
        table[s]["zero_infinity"] is None or table[s]["zero_infinity"] < 55
        for s in SIZES
    )
    assert all(
        table[s]["fsdp_offload"] is None or table[s]["fsdp_offload"] < 16
        for s in SIZES
    )
    # feasibility frontier: DDP dies above 3.5B; ZeRO-Offload above 15B.
    assert table[4]["ddp"] is None
    assert table[20]["zero_offload"] is None
    assert table[25]["superoffload"] is not None
    # DDP advantage claim: SuperOffload up to ~67% over DDP where DDP runs
    ddp_ratios = [
        table[s]["superoffload"] / table[s]["ddp"]
        for s in SIZES if table[s]["ddp"] is not None
    ]
    assert max(ddp_ratios) > 1.2
