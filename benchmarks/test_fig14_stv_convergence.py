"""Fig. 14: training loss and rollback occurrences under STV.

The paper pre-trains GPT-175B for 80k iterations: rollbacks cluster in the
first ~1k warm-up iterations, then drop to 0.12% of steps, and the loss
curve is exactly that of synchronous training.  We reproduce the dynamics
with a real (small) model on the synthetic Pile, instability injection in
the warm-up window, and an exactness check against the synchronous run.
"""

import numpy as np
import pytest

from repro.core.engine import SuperOffloadConfig
from repro.training import InstabilityInjector, STVTrainer
from benchmarks.conftest import print_table

WARMUP = 60
TOTAL = 300


def run_training():
    injector = InstabilityInjector(
        warmup_iters=WARMUP, spike_probability=0.35, spike_scale=80.0,
        overflow_probability=0.1, seed=0,
    )
    trainer = STVTrainer(batch=8, injector=injector, seed=1)
    record = trainer.run(TOTAL)
    return trainer, record


def test_fig14_loss_curve_and_rollbacks(benchmark):
    trainer, record = benchmark.pedantic(run_training, rounds=1, iterations=1)
    buckets = 10
    step = TOTAL // buckets
    print_table(
        "Fig. 14 — loss and rollbacks over training",
        ["iterations", "mean loss", "rollbacks", "overflow skips", "clips"],
        [
            [f"{i*step}-{(i+1)*step}",
             float(np.mean(record.losses[i*step:(i+1)*step])),
             sum(i*step <= r < (i+1)*step for r in record.rollback_iterations),
             sum(i*step <= r < (i+1)*step for r in record.overflow_iterations),
             sum(i*step <= r < (i+1)*step for r in record.clip_iterations)]
            for i in range(buckets)
        ],
    )
    # expected convergence trend
    assert np.mean(record.losses[-30:]) < np.mean(record.losses[:30]) - 0.3
    # rollbacks concentrate in the warm-up window...
    early = record.rollback_rate(0, WARMUP)
    late = record.rollback_rate(WARMUP)
    print(f"rollback rate: warm-up {early:.1%}, after {late:.2%} "
          f"(paper: frequent first ~1k iters, then 0.12%)")
    assert early > 0.10
    # ...and become rare afterwards (the paper's 0.12%; injector leaves a
    # small residual tail so the machinery keeps being exercised).
    assert late < 0.05
    # both rollback scenarios occurred
    assert record.overflow_iterations and record.clip_iterations
    # final model is finite and trained
    assert all(np.isfinite(v).all() for v in trainer.model.params.values())


def test_fig14_stv_trajectory_equals_synchronous(benchmark):
    """The exactness half of §5.7: identical losses with and without STV."""

    def both():
        runs = {}
        for stv in (True, False):
            trainer = STVTrainer(
                batch=4, seed=5,
                config=SuperOffloadConfig(stv=stv, clip_norm=8.0),
                injector=InstabilityInjector(warmup_iters=20, seed=6),
            )
            runs[stv] = (trainer.run(60), trainer)
        return runs

    runs = benchmark.pedantic(both, rounds=1, iterations=1)
    rec_stv, t_stv = runs[True]
    rec_ste, t_ste = runs[False]
    assert rec_stv.losses == rec_ste.losses
    for k in t_stv.model.params:
        np.testing.assert_array_equal(
            t_stv.model.params[k], t_ste.model.params[k]
        )
