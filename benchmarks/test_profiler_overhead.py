"""Profiler cost: observation must be near-free and change nothing.

The profiler's contract is that a profiled training run is the *same
run* — same arithmetic, same results — plus a bounded slice of wall
clock for span bookkeeping.  This harness measures both halves with
:func:`repro.telemetry.profiler.profiler_overhead` (best-of-N interleaved
timing, identical seeds) and asserts:

* the profiled loss sequence is bitwise identical to the unprofiled one;
* the wall-clock overhead stays under 5% (the CI ``profile-smoke`` bar).

Timing noise note: best-of-repeats absorbs scheduler jitter, and the 5%
bar is generous against the measured ~1-2% on an idle host.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.profiler import profiler_overhead
from benchmarks.conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent

OVERHEAD_BUDGET_PCT = 5.0


def test_profiler_overhead_and_bitwise_identity():
    result = profiler_overhead(iters=6, repeats=5)
    print_table(
        "BENCH_profiler — profiled vs unprofiled STV training",
        ["baseline (ms)", "profiled (ms)", "overhead %", "bitwise"],
        [[result.baseline_seconds * 1e3, result.profiled_seconds * 1e3,
          result.overhead_pct,
          "ok" if result.bitwise_identical else "MISMATCH"]],
    )
    out = REPO_ROOT / "BENCH_profiler.json"
    out.write_text(json.dumps({
        "benchmark": "profiler_overhead",
        "baseline_seconds": result.baseline_seconds,
        "profiled_seconds": result.profiled_seconds,
        "overhead_pct": result.overhead_pct,
        "bitwise_identical": result.bitwise_identical,
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }, indent=2) + "\n")

    assert result.bitwise_identical, (
        "profiling changed the training results — the profiler must be "
        "observation-only"
    )
    assert result.overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"profiler overhead {result.overhead_pct:.1f}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT}% budget"
    )
