"""Substrate perf: arena, executor, and pipeline vs their serial ancestors.

Runs :func:`repro.training.substrate_bench` end to end, prints the same
tables ``repro bench`` prints, writes ``BENCH_substrate.json`` next to the
repo root, and asserts the acceptance bars:

* the arena ZeRO step beats the dict-copy step by >= 2x at the largest
  benchmarked size;
* steady-state ``arena_bytes_copied`` is exactly zero once gradients are
  produced into the arena (the zero-copy contract);
* the chunked-executor Adam step beats the serial flat-arena baseline by
  >= 1.5x at the largest size, bitwise identically at every size;
* the overlapped bucket ZeRO pipeline beats the serial zero-copy step by
  >= 1.5x at the largest size, bitwise identically at every size;
* snapshot rollback never regresses: >= 1.0x wherever the range-memcpy
  path engages, and the identical per-tensor path (within timing noise)
  below the cutoff;
* streaming blocked attention beats the dense ``S x S`` path by >= 1.5x
  (fwd+bwd) at the guard sequence length, within fp32 tolerance of dense
  and bitwise identical across worker counts at every size;
* the workspace-backed model step allocates zero workspace buffers in
  steady state and stays tolerance-equal to the dense baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.training import substrate_bench
from benchmarks.conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_arena_substrate_perf():
    result = substrate_bench(workers=2)
    print_table(
        "BENCH_substrate — arena vs dict-copy ZeRO step "
        f"(world {result['world_size']})",
        ["elements", "dict-copy (ms)", "arena (ms)", "speedup"],
        [[f"{r['elements']:,}", r["dict_copy_ms"], r["arena_ms"],
          f"{r['speedup']:.2f}x"] for r in result["zero_step"]],
    )
    print_table(
        "BENCH_substrate — snapshot capture+restore",
        ["elements", "per-tensor (ms)", "arena memcpy (ms)", "speedup",
         "range path"],
        [[f"{r['elements']:,}", r["per_tensor_ms"], r["arena_ms"],
          f"{r['speedup']:.2f}x", r["arena_path_used"]]
         for r in result["rollback"]],
    )
    steady = result["steady_state"]
    print_table(
        "BENCH_substrate — steady-state arena traffic per step",
        ["elements", "steps", "bytes copied", "bytes aliased"],
        [[f"{steady['elements']:,}", steady["steps"],
          steady["arena_bytes_copied_per_step"],
          steady["arena_bytes_aliased_per_step"]]],
    )
    print_table(
        "BENCH_substrate — chunked-executor Adam step "
        f"({result['workers']} workers)",
        ["elements", "serial flat (ms)", "tiled (ms)", "executor (ms)",
         "speedup", "vs tiled", "bitwise"],
        [[f"{r['elements']:,}", r["serial_ms"], r["tiled_ms"],
          r["parallel_ms"], f"{r['speedup']:.2f}x",
          f"{r['speedup_vs_tiled']:.2f}x", r["bitwise_identical"]]
         for r in result["parallel_step"]],
    )
    print_table(
        "BENCH_substrate — overlapped bucket ZeRO pipeline "
        f"({result['workers']} workers)",
        ["elements", "bucket", "serial (ms)", "pipeline (ms)", "speedup",
         "bitwise"],
        [[f"{r['elements']:,}", f"{r['bucket_elements']:,}", r["serial_ms"],
          r["pipeline_ms"], f"{r['speedup']:.2f}x", r["bitwise_identical"]]
         for r in result["zero_pipeline"]],
    )

    print_table(
        "BENCH_substrate — streaming blocked attention vs dense "
        f"({result['workers']} workers)",
        ["seq", "dense f+b (ms)", "stream f+b (ms)", "speedup",
         "mem ratio", "tolerance", "deterministic"],
        [[r["seq"], r["dense_step_ms"], r["streaming_step_ms"],
          f"{r['step_speedup']:.2f}x",
          f"{r['peak_transient_ratio']:.1f}x", r["tolerance_ok"],
          r["bitwise_across_workers"]]
         for r in result["attention"]],
    )
    print_table(
        "BENCH_substrate — workspace-backed streaming model step "
        f"({result['workers']} workers)",
        ["seq", "baseline (ms)", "workspace (ms)", "speedup",
         "steady allocs", "peak bytes"],
        [[r["seq"], r["baseline_ms"], r["workspace_ms"],
          f"{r['speedup']:.2f}x", r["steady_allocs_per_step"],
          f"{r['workspace_peak_bytes']:,}"]
         for r in result["model_step"]],
    )

    out = REPO_ROOT / "BENCH_substrate.json"
    out.write_text(json.dumps(result, indent=2) + "\n")

    # the arena acceptance bar: >= 2x at the largest size, zero steady copies
    largest = result["zero_step"][-1]
    assert largest["speedup"] >= 2.0, largest
    assert steady["arena_bytes_copied_per_step"] == 0.0
    assert steady["arena_bytes_aliased_per_step"] > 0
    # every size must at least not regress
    for row in result["zero_step"]:
        assert row["speedup"] > 1.0, row

    # rollback: no regression at any size.  Where the range-memcpy path
    # engages it must win outright; below the cutoff both contestants run
    # the identical per-tensor code, so the honest speedup is 1.0 by
    # construction — the asserted floor only absorbs the timing noise of
    # measuring one code path against itself on a shared host.
    for row in result["rollback"]:
        if row["arena_path_used"]:
            assert row["speedup"] >= 1.0, row
        else:
            assert row["elements"] < row["cutoff_elements"], row
            assert row["speedup"] >= 0.85, row

    # executor: bitwise identity everywhere, >= 1.5x at the largest size
    for row in result["parallel_step"]:
        assert row["bitwise_identical"], row
    assert result["parallel_step"][-1]["speedup"] >= 1.5, \
        result["parallel_step"][-1]

    # pipeline: bitwise identity everywhere, >= 1.5x at the largest size
    for row in result["zero_pipeline"]:
        assert row["bitwise_identical"], row
    assert result["zero_pipeline"][-1]["speedup"] >= 1.5, \
        result["zero_pipeline"][-1]

    # attention: tolerance + worker determinism everywhere; the blocked
    # kernel must clear the acceptance bar at the guard sequence length
    for row in result["attention"]:
        assert row["tolerance_ok"], row
        assert row["bitwise_across_workers"], row
        assert row["peak_transient_ratio"] > 1.0, row
    guard = [r for r in result["attention"] if r["seq"] >= 1024][-1]
    assert guard["step_speedup"] >= 1.5, guard

    # model step: allocation-free in steady state, tolerance-equal
    for row in result["model_step"]:
        assert row["tolerance_ok"], row
        assert row["steady_allocs_per_step"] == 0, row

    document = json.loads(out.read_text())
    assert document["benchmark"] == "substrate_arena"
    assert document["workers"] >= 2
