"""Substrate perf: the flat parameter arena vs the dict-copy ancestors.

Runs :func:`repro.training.substrate_bench` end to end, prints the same
tables ``repro bench`` prints, writes ``BENCH_substrate.json`` next to the
repo root, and asserts the acceptance bar of the arena refactor:

* the arena ZeRO step beats the dict-copy step by >= 2x at the largest
  benchmarked size, and
* steady-state ``arena_bytes_copied`` is exactly zero once gradients are
  produced into the arena (the zero-copy contract).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.training import substrate_bench
from benchmarks.conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_arena_substrate_perf():
    result = substrate_bench()
    print_table(
        "BENCH_substrate — arena vs dict-copy ZeRO step "
        f"(world {result['world_size']})",
        ["elements", "dict-copy (ms)", "arena (ms)", "speedup"],
        [[f"{r['elements']:,}", r["dict_copy_ms"], r["arena_ms"],
          f"{r['speedup']:.2f}x"] for r in result["zero_step"]],
    )
    print_table(
        "BENCH_substrate — snapshot capture+restore",
        ["elements", "per-tensor (ms)", "arena memcpy (ms)", "speedup"],
        [[f"{r['elements']:,}", r["per_tensor_ms"], r["arena_ms"],
          f"{r['speedup']:.2f}x"] for r in result["rollback"]],
    )
    steady = result["steady_state"]
    print_table(
        "BENCH_substrate — steady-state arena traffic per step",
        ["elements", "steps", "bytes copied", "bytes aliased"],
        [[f"{steady['elements']:,}", steady["steps"],
          steady["arena_bytes_copied_per_step"],
          steady["arena_bytes_aliased_per_step"]]],
    )

    out = REPO_ROOT / "BENCH_substrate.json"
    out.write_text(json.dumps(result, indent=2) + "\n")

    # the acceptance bar: >= 2x at the largest size, zero steady copies
    largest = result["zero_step"][-1]
    assert largest["speedup"] >= 2.0, largest
    assert steady["arena_bytes_copied_per_step"] == 0.0
    assert steady["arena_bytes_aliased_per_step"] > 0
    # every size must at least not regress
    for row in result["zero_step"]:
        assert row["speedup"] > 1.0, row

    document = json.loads(out.read_text())
    assert document["benchmark"] == "substrate_arena"
