"""Table 3: Adam latency — PT-CPU vs CPU-Adam vs GraceAdam.

Two parts:

1. the *calibrated latency model* regenerating the paper's Grace numbers
   at 1/2/4/8 B parameters, and
2. a *real* pytest-benchmark micro-benchmark of the three numpy
   implementations at reduced scale, demonstrating the structural effect
   the paper exploits: the unfused per-tensor reference (PT-CPU's memory
   pattern) loses to the fused flat-buffer designs on this machine too.
"""

import numpy as np
import pytest

from repro.optim import (
    AdamConfig,
    CPUAdam,
    GraceAdam,
    ReferenceAdam,
    adam_latency_table,
)
from repro.optim.kernels import paper_table3_reference
from benchmarks.conftest import print_table

N_PARAMS = 2_000_000


def make_setup(cls, **kwargs):
    rng = np.random.default_rng(0)
    params = {
        f"p{i}": rng.standard_normal(N_PARAMS // 8).astype(np.float32)
        for i in range(8)
    }
    opt = cls(params, AdamConfig(lr=1e-3), **kwargs)
    grads = {k: rng.standard_normal(v.shape).astype(np.float32)
             for k, v in params.items()}
    return opt, grads


def test_table3_latency_model(benchmark):
    """The calibrated model vs the paper's measured seconds."""
    ours = benchmark(adam_latency_table)
    paper = paper_table3_reference()
    print_table(
        "Table 3 — Adam latency (s), model vs paper",
        ["params", "PT-CPU (ours/paper)", "CPU-Adam (ours/paper)",
         "GraceAdam (ours/paper)", "speedup vs PT", "vs CPU-Adam"],
        [
            [f"{o['params_billion']:g}B",
             f"{o['pt_cpu']:.3f}/{p['pt_cpu']:.3f}",
             f"{o['cpu_adam']:.3f}/{p['cpu_adam']:.3f}",
             f"{o['grace_adam']:.3f}/{p['grace_adam']:.3f}",
             o["speedup_vs_pt"], o["speedup_vs_cpu_adam"]]
            for o, p in zip(ours, paper)
        ],
    )
    for o, p in zip(ours, paper):
        for kernel in ("pt_cpu", "cpu_adam", "grace_adam"):
            assert o[kernel] == pytest.approx(p[kernel], rel=0.20)
        assert o["speedup_vs_pt"] > 3.0


@pytest.mark.parametrize("impl", ["reference", "cpu_adam", "grace_adam"])
def test_table3_real_step_benchmark(benchmark, impl):
    """Wall-clock numpy benchmark of one optimizer step (2M params)."""
    if impl == "reference":
        opt, grads = make_setup(ReferenceAdam)
    elif impl == "cpu_adam":
        opt, grads = make_setup(CPUAdam)
    else:
        opt, grads = make_setup(GraceAdam, tile_size=16384)
    benchmark(opt.step, grads)


def test_real_fused_beats_unfused(benchmark):
    """Structural sanity on this machine: GraceAdam's tiled fused in-place
    walk beats the out-of-place per-tensor pattern (PT-CPU's memory
    behaviour) in real wall time too.  (CPUAdam's wall time here is not
    representative: its per-step flat<->tensor mirroring, kept for API
    parity, is pure Python-side overhead a C kernel would not pay.)"""
    import time

    ref, ref_grads = make_setup(ReferenceAdam)
    grace, grace_grads = make_setup(GraceAdam, tile_size=16384)

    def time_steps(opt, grads, n=5):
        opt.step(grads)  # warm
        t0 = time.perf_counter()
        for _ in range(n):
            opt.step(grads)
        return (time.perf_counter() - t0) / n

    t_ref = benchmark.pedantic(
        lambda: time_steps(ref, ref_grads), rounds=1, iterations=1
    )
    t_grace = time_steps(grace, grace_grads)
    print(f"\nreal step times: unfused reference={t_ref*1e3:.1f} ms, "
          f"tiled GraceAdam={t_grace*1e3:.1f} ms")
    assert t_grace < t_ref * 1.1  # the fused tiled walk never loses
