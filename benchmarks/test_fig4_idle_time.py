"""Fig. 4: GPU idle time of prior offloading systems on a superchip.

The paper measures ZeRO-Offload leaving the Hopper GPU idle 40-50% of each
iteration at the largest model it can train (with the largest batch that
fits).  We regenerate the idle fractions from the simulated schedules.
"""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import ZeROOffload, RunSetting
from repro.training.cluster import gh200_cluster
from benchmarks.conftest import print_table


def measure():
    rows = []
    # Representative sizes up to "the largest model ZeRO-Offload can
    # accommodate" (15B on a single superchip and on one NVL2 node in our
    # memory model) with the largest batch that avoids OOM.
    for label, n_chips, billions, batch in (
        ("single superchip", 1, 5, 8),
        ("single superchip", 1, 15, 8),
        ("one node", 2, 15, 16),
    ):
        system = ZeROOffload()
        setting = RunSetting(
            MODEL_CONFIG_TABLE[billions], gh200_cluster(n_chips),
            global_batch=batch,
        )
        est = system.best_estimate(setting)
        rows.append(
            {
                "setting": label,
                "model": f"{billions}B",
                "gpu_idle_pct": 100 * est.gpu_idle_fraction(),
                "cpu_busy_pct": 100 * est.trace.utilization(
                    "cpu", est.steady_window
                ),
                "iter_s": est.iter_time,
            }
        )
    return rows


def test_fig4_zero_offload_idle_time(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Fig. 4 — ZeRO-Offload idle time (paper: 40-50% GPU idle)",
        ["setting", "model", "GPU idle %", "CPU busy %", "iter (s)"],
        [[r["setting"], r["model"], r["gpu_idle_pct"], r["cpu_busy_pct"],
          r["iter_s"]] for r in rows],
    )
    # Substantial idle everywhere; the mid-size points land in the paper's
    # 40-50% band (our calibration puts the 15B point somewhat lower
    # because checkpointed recompute inflates GPU-busy time).
    for row in rows:
        assert 18 <= row["gpu_idle_pct"] <= 55, row
    assert rows[0]["gpu_idle_pct"] >= 30
