"""Extension experiment: ZeRO-Infinity's NVMe tier.

The paper's evaluation runs ZeRO-Infinity in CPU-offload-only mode for fair
comparison (§5.1); the full system can additionally spill optimizer states
to node-local NVMe (§2.2).  This harness measures the trade that tier
makes on a GH200: far larger trainable models at a fraction of the
throughput, because every optimizer step streams 24 bytes/param through
the drive.
"""

import pytest

from repro.systems import ZeROInfinity
from repro.training import gh200_cluster, throughput_sweep
from benchmarks.conftest import print_table


def measure():
    scale = {
        mode: ZeROInfinity(nvme=(mode == "nvme")).max_model_billions(
            gh200_cluster(1)
        )
        for mode in ("cpu", "nvme")
    }
    rows = throughput_sweep(
        ["zero_infinity", "zero_infinity_nvme"], [5, 25],
        n_superchips=1, global_batch=8,
    )
    tput = {}
    for r in rows:
        tput.setdefault(r["system"], {})[r["model_billions"]] = r["tflops"]
    return scale, tput


def test_ext_zero_infinity_nvme_tradeoff(benchmark):
    scale, tput = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Extension — ZeRO-Infinity NVMe tier (single superchip)",
        ["mode", "max model (B)", "TFLOPS @5B", "TFLOPS @25B"],
        [
            ["CPU offload", scale["cpu"], tput["zero_infinity"][5],
             tput["zero_infinity"][25]],
            ["+NVMe states", scale["nvme"], tput["zero_infinity_nvme"][5],
             tput["zero_infinity_nvme"][25]],
        ],
    )
    # capacity more than doubles...
    assert scale["nvme"] >= 2 * scale["cpu"]
    # ...at a large throughput cost (the drive gates the optimizer step)
    assert tput["zero_infinity_nvme"][5] < 0.5 * tput["zero_infinity"][5]
    assert tput["zero_infinity_nvme"][25] < 0.5 * tput["zero_infinity"][25]
