"""Fig. 6: weight-flow efficiency (eqs. 1-3) vs bandwidth and batch size.

The paper's analysis: even at the theoretical 450 GB/s uni-directional C2C
peak, batch size must reach 4 (seq 1024) before streaming FP16 weights can
hide behind forward compute at >60% efficiency.
"""

import pytest

from repro.core.policy import weight_flow_efficiency
from repro.hardware.registry import HOPPER_H100
from benchmarks.conftest import print_table

GBPS = 1e9
BANDWIDTHS = [32, 64, 128, 256, 450, 900]
BATCHES = [1, 2, 4, 8, 16, 32]


def sweep():
    peak = HOPPER_H100.achievable_flops
    psi = int(5e9)
    grid = {}
    for bw in BANDWIDTHS:
        for bsz in BATCHES:
            grid[(bw, bsz)] = weight_flow_efficiency(
                psi, bsz, 1024, bw * GBPS, peak
            )
    return grid


def test_fig6_efficiency_surface(benchmark):
    grid = benchmark(sweep)
    rows = []
    for bw in BANDWIDTHS:
        rows.append([f"{bw} GB/s"] + [grid[(bw, b)] for b in BATCHES])
    print_table(
        "Fig. 6 — efficiency of weight streaming (seq=1024)",
        ["bandwidth \\ batch"] + [str(b) for b in BATCHES],
        rows,
    )
    # paper's anchor: 450 GB/s needs batch >= 4 for >= 60%
    assert grid[(450, 4)] >= 0.60
    assert grid[(450, 2)] < grid[(450, 4)]
    # PCIe-gen4 (paper Table 1: 32-64 GB/s) never crosses 50% at batch <= 4
    assert grid[(32, 4)] < 0.5
    # monotone in both axes
    for bw in BANDWIDTHS:
        series = [grid[(bw, b)] for b in BATCHES]
        assert series == sorted(series)
