"""Table 1: GPU-node architecture comparison.

Regenerates the paper's hardware table from the registry, including the
derived GPU/CPU FLOPS ratio that motivates §4.3.
"""

import pytest

from repro.hardware import node_comparison_rows
from benchmarks.conftest import print_table

PAPER_RATIOS = {"DGX-2": 60.39, "DGX-A100": 135.65, "GH": 330.0}


def build_rows():
    return node_comparison_rows()


def test_table1_node_comparison(benchmark):
    rows = benchmark(build_rows)
    print_table(
        "Table 1 — node architecture comparison",
        ["arch", "CPU BW (GB/s)", "C<->GPU BW (GB/s)", "CPU cores",
         "CPU TFLOPS", "GPU TFLOPS", "GPU/CPU ratio"],
        [
            [r["arch"], r["cpu_bw_gbps"], r["cpu_gpu_bw_gbps"], r["cpu_cores"],
             r["cpu_tflops"], r["gpu_tflops"], r["gpu_cpu_flops_ratio"]]
            for r in rows
        ],
    )
    ratios = {r["arch"]: r["gpu_cpu_flops_ratio"] for r in rows}
    for arch, expected in PAPER_RATIOS.items():
        assert ratios[arch] == pytest.approx(expected, rel=0.01)
    # the superchip's compute gap is ~5.5x the DGX-2's (§4.3's argument)
    assert ratios["GH"] / ratios["DGX-2"] > 5
