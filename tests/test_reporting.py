"""Tests for table-cell rendering, including non-finite floats."""

from repro.reporting import format_cell, format_table


def test_none_renders_oom():
    assert format_cell(None) == "OOM"


def test_finite_floats_two_decimals():
    assert format_cell(3.14159) == "3.14"
    assert format_cell(-0.005) == "-0.01"


def test_nan_renders_explicitly():
    assert format_cell(float("nan")) == "NaN"


def test_infinities_render_explicitly():
    assert format_cell(float("inf")) == "inf"
    assert format_cell(float("-inf")) == "-inf"


def test_non_floats_pass_through():
    assert format_cell(7) == "7"
    assert format_cell("nan") == "nan"  # strings are data, not floats


def test_table_renders_nonfinite_cells():
    table = format_table("t", ["a", "b"], [[float("nan"), float("inf")]])
    assert "NaN" in table
    assert "inf" in table


def test_table_with_no_rows():
    table = format_table("empty", ["col"], [])
    assert "col" in table
