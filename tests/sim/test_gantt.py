"""Tests for the ASCII timeline renderer."""

import pytest

from repro.sim.engine import ScheduleSimulator, Task
from repro.sim.gantt import category_glyph, render_timeline, utilization_summary
from repro.sim.trace import Interval, Trace


def small_trace():
    trace = Trace()
    trace.record(Interval("gpu", "fwd", "compute", 0.0, 4.0))
    trace.record(Interval("gpu", "bwd", "compute", 4.0, 8.0))
    trace.record(Interval("cpu", "step", "optimizer", 8.0, 10.0))
    return trace


def test_rows_and_width():
    out = render_timeline(small_trace(), width=20)
    lines = out.splitlines()
    assert len(lines) == 3  # header + 2 resources
    for line in lines[1:]:
        body = line.split("|")[1]
        assert len(body) == 20


def test_glyphs_match_categories():
    out = render_timeline(small_trace(), width=10)
    gpu_line = next(l for l in out.splitlines() if l.strip().startswith("gpu"))
    cpu_line = next(l for l in out.splitlines() if l.strip().startswith("cpu"))
    assert "#" in gpu_line and "U" not in gpu_line
    assert "U" in cpu_line and "#" not in cpu_line
    # gpu idles (.) while the cpu steps
    assert gpu_line.split("|")[1].endswith("..")


def test_window_selection():
    out = render_timeline(small_trace(), width=10, window=(8.0, 10.0))
    cpu_line = next(l for l in out.splitlines() if l.strip().startswith("cpu"))
    assert cpu_line.split("|")[1] == "U" * 10


def test_resource_subset():
    out = render_timeline(small_trace(), resources=["cpu"], width=10)
    assert "gpu" not in out


def test_invalid_args():
    with pytest.raises(ValueError):
        render_timeline(small_trace(), width=5)
    with pytest.raises(ValueError):
        render_timeline(small_trace(), window=(2.0, 2.0))


def test_unknown_category_glyph():
    assert category_glyph("mystery") == "?"


def test_utilization_summary():
    summary = utilization_summary(small_trace())
    assert summary["gpu"] == pytest.approx(0.8)
    assert summary["cpu"] == pytest.approx(0.2)


def test_renders_simulated_schedule():
    sim = ScheduleSimulator(["gpu", "cpu"])
    a = Task("a", "gpu", 1.0)
    b = Task("b", "cpu", 1.0, deps=(a,), category="optimizer")
    trace = sim.run([a, b])
    out = render_timeline(trace, width=12)
    assert "|" in out and "#" in out and "U" in out
