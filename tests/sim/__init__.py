"""Test package."""
