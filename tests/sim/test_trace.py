"""Tests for trace utilization/idle accounting (the Fig. 4/15 machinery)."""

import pytest

from repro.sim.engine import ScheduleSimulator, Task
from repro.sim.trace import Interval, Trace


def build_trace():
    trace = Trace()
    trace.record(Interval("gpu", "a", "compute", 0.0, 2.0))
    trace.record(Interval("gpu", "b", "compute", 3.0, 5.0))
    trace.record(Interval("cpu", "c", "optimizer", 1.0, 4.0))
    return trace


def test_makespan():
    assert build_trace().makespan == 5.0


def test_busy_time_full_window():
    trace = build_trace()
    assert trace.busy_time("gpu") == 4.0
    assert trace.busy_time("cpu") == 3.0


def test_busy_time_clipped_window():
    trace = build_trace()
    assert trace.busy_time("gpu", (1.0, 4.0)) == 2.0


def test_utilization_and_idle():
    trace = build_trace()
    assert trace.utilization("gpu") == pytest.approx(0.8)
    assert trace.idle_fraction("gpu") == pytest.approx(0.2)


def test_idle_gaps():
    gaps = build_trace().idle_gaps("gpu")
    assert gaps == [(2.0, 3.0)]


def test_time_by_category():
    trace = build_trace()
    assert trace.time_by_category("cpu") == {"optimizer": 3.0}


def test_empty_window_zero_utilization():
    trace = build_trace()
    assert trace.utilization("gpu", (2.0, 2.0)) == 0.0


def test_resources_listing():
    assert build_trace().resources() == ["cpu", "gpu"]


def test_sim_trace_idle_matches_schedule():
    """ZeRO-Offload-like pattern: GPU idle while CPU steps (Fig. 3)."""
    sim = ScheduleSimulator(["gpu", "cpu"])
    bwd = Task("bwd", "gpu", 6.0)
    step = Task("step", "cpu", 4.0, deps=(bwd,))
    fwd = Task("fwd", "gpu", 6.0, deps=(step,))
    trace = sim.run([bwd, step, fwd])
    # GPU busy 12 of 16 seconds -> 25% idle.
    assert trace.idle_fraction("gpu") == pytest.approx(0.25)
