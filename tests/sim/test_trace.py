"""Tests for trace utilization/idle accounting (the Fig. 4/15 machinery)."""

import pytest

from repro.sim.engine import ScheduleSimulator, Task
from repro.sim.trace import Interval, Trace


def build_trace():
    trace = Trace()
    trace.record(Interval("gpu", "a", "compute", 0.0, 2.0))
    trace.record(Interval("gpu", "b", "compute", 3.0, 5.0))
    trace.record(Interval("cpu", "c", "optimizer", 1.0, 4.0))
    return trace


def test_makespan():
    assert build_trace().makespan == 5.0


def test_busy_time_full_window():
    trace = build_trace()
    assert trace.busy_time("gpu") == 4.0
    assert trace.busy_time("cpu") == 3.0


def test_busy_time_clipped_window():
    trace = build_trace()
    assert trace.busy_time("gpu", (1.0, 4.0)) == 2.0


def test_utilization_and_idle():
    trace = build_trace()
    assert trace.utilization("gpu") == pytest.approx(0.8)
    assert trace.idle_fraction("gpu") == pytest.approx(0.2)


def test_idle_gaps():
    gaps = build_trace().idle_gaps("gpu")
    assert gaps == [(2.0, 3.0)]


def test_time_by_category():
    trace = build_trace()
    assert trace.time_by_category("cpu") == {"optimizer": 3.0}


def test_empty_window_zero_utilization():
    trace = build_trace()
    assert trace.utilization("gpu", (2.0, 2.0)) == 0.0


def test_resources_listing():
    assert build_trace().resources() == ["cpu", "gpu"]


def test_utilization_empty_trace():
    trace = Trace()
    assert trace.utilization("gpu") == 0.0
    assert trace.idle_fraction("gpu") == 1.0


def test_window_past_makespan_counts_idle():
    trace = build_trace()  # gpu busy 4s, makespan 5
    assert trace.utilization("gpu", (0.0, 10.0)) == pytest.approx(0.4)
    assert trace.idle_fraction("gpu", (0.0, 10.0)) == pytest.approx(0.6)


def test_window_entirely_past_makespan():
    trace = build_trace()
    assert trace.utilization("gpu", (6.0, 8.0)) == 0.0
    assert trace.idle_fraction("gpu", (6.0, 8.0)) == 1.0


def test_inverted_window_is_empty():
    trace = build_trace()
    assert trace.utilization("gpu", (4.0, 1.0)) == 0.0


def test_zero_length_intervals_add_no_busy_time():
    trace = Trace()
    trace.record(Interval("gpu", "marker", "compute", 1.0, 1.0))
    trace.record(Interval("gpu", "work", "compute", 0.0, 2.0))
    assert trace.busy_time("gpu") == 2.0
    assert trace.utilization("gpu") == pytest.approx(1.0)
    trace.validate()  # zero-length inside a busy interval is fine


def test_validate_accepts_serial_trace():
    build_trace().validate()


def test_validate_accepts_touching_intervals():
    trace = Trace()
    trace.record(Interval("gpu", "a", "compute", 0.0, 2.0))
    trace.record(Interval("gpu", "b", "compute", 2.0, 4.0))
    trace.validate()


def test_validate_rejects_overlap():
    trace = build_trace()
    trace.record(Interval("gpu", "bad", "compute", 1.0, 2.5))
    with pytest.raises(ValueError, match="overlap"):
        trace.validate()


def test_validate_catches_overlap_past_zero_length_marker():
    trace = Trace()
    trace.record(Interval("gpu", "long", "compute", 0.0, 10.0))
    trace.record(Interval("gpu", "marker", "compute", 1.0, 1.0))
    trace.record(Interval("gpu", "bad", "compute", 2.0, 5.0))
    with pytest.raises(ValueError, match="overlap"):
        trace.validate()


def test_validate_is_per_resource():
    trace = Trace()
    trace.record(Interval("gpu", "a", "compute", 0.0, 2.0))
    trace.record(Interval("cpu", "b", "optimizer", 1.0, 3.0))
    trace.validate()  # concurrent across *different* resources is legal


def test_simulator_output_validates():
    sim = ScheduleSimulator(["gpu", "cpu"])
    a = Task("a", "gpu", 2.0)
    b = Task("b", "cpu", 3.0, deps=(a,))
    trace = sim.run([a, b])
    trace.validate()


def test_sim_trace_idle_matches_schedule():
    """ZeRO-Offload-like pattern: GPU idle while CPU steps (Fig. 3)."""
    sim = ScheduleSimulator(["gpu", "cpu"])
    bwd = Task("bwd", "gpu", 6.0)
    step = Task("step", "cpu", 4.0, deps=(bwd,))
    fwd = Task("fwd", "gpu", 6.0, deps=(step,))
    trace = sim.run([bwd, step, fwd])
    # GPU busy 12 of 16 seconds -> 25% idle.
    assert trace.idle_fraction("gpu") == pytest.approx(0.25)
