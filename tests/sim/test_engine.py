"""Tests for the discrete-event schedule simulator."""

import pytest

from repro.sim.engine import ScheduleSimulator, Task, chain


def make_sim():
    return ScheduleSimulator(["gpu", "cpu", "link"])


def test_serial_tasks_on_one_resource():
    sim = make_sim()
    a = Task("a", "gpu", 1.0)
    b = Task("b", "gpu", 2.0)
    sim.run([a, b])
    assert a.start == 0.0 and a.finish == 1.0
    assert b.start == 1.0 and b.finish == 3.0


def test_independent_resources_run_in_parallel():
    sim = make_sim()
    a = Task("a", "gpu", 5.0)
    b = Task("b", "cpu", 3.0)
    trace = sim.run([a, b])
    assert b.start == 0.0
    assert trace.makespan == 5.0


def test_dependency_delays_start():
    sim = make_sim()
    a = Task("a", "gpu", 2.0)
    b = Task("b", "cpu", 1.0, deps=(a,))
    sim.run([a, b])
    assert b.start == 2.0


def test_pipeline_overlap():
    """Producer chunks on gpu, consumer on cpu: classic overlap pattern."""
    sim = make_sim()
    producers = [Task(f"p{i}", "gpu", 1.0) for i in range(4)]
    chain(producers)
    consumers = [
        Task(f"c{i}", "cpu", 1.0, deps=(producers[i],)) for i in range(4)
    ]
    trace = sim.run(producers + consumers)
    # Consumers trail producers by one chunk: makespan 5, not 8.
    assert trace.makespan == 5.0


def test_topological_order_enforced():
    sim = make_sim()
    a = Task("a", "gpu", 1.0)
    b = Task("b", "gpu", 1.0, deps=(a,))
    with pytest.raises(ValueError, match="topologically"):
        sim.run([b, a])


def test_duplicate_task_rejected():
    sim = make_sim()
    a = Task("a", "gpu", 1.0)
    with pytest.raises(ValueError, match="twice"):
        sim.run([a, a])


def test_unknown_resource_rejected():
    sim = make_sim()
    with pytest.raises(KeyError, match="unregistered"):
        sim.run([Task("a", "tpu", 1.0)])


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        Task("a", "gpu", -1.0)


def test_earliest_start_respected():
    sim = make_sim()
    a = Task("a", "gpu", 1.0, earliest_start=5.0)
    sim.run([a])
    assert a.start == 5.0


def test_reset_clears_occupancy():
    sim = make_sim()
    sim.run([Task("a", "gpu", 3.0)])
    sim.reset()
    b = Task("b", "gpu", 1.0)
    sim.run([b])
    assert b.start == 0.0


def test_chain_helper_serializes():
    tasks = [Task(f"t{i}", "gpu", 1.0) for i in range(3)]
    chain(tasks)
    assert tasks[0] in tasks[1].deps
    assert tasks[1] in tasks[2].deps


def test_zero_duration_task():
    sim = make_sim()
    a = Task("a", "gpu", 0.0)
    sim.run([a])
    assert a.finish == 0.0
