"""Tests for compute timing and collective cost models."""

import pytest

from repro.hardware.registry import GRACE_CPU, HOPPER_H100, SLINGSHOT_11, GH200
from repro.hardware.topology import ClusterTopology, SuperchipNode
from repro.sim.collectives import CollectiveModel
from repro.sim.compute import ComputeModel, gemm_efficiency


class TestGemmEfficiency:
    def test_monotone_in_tokens(self):
        assert gemm_efficiency(8192, 4096) > gemm_efficiency(1024, 4096)

    def test_monotone_in_hidden(self):
        assert gemm_efficiency(4096, 8192) > gemm_efficiency(4096, 2048)

    def test_bounded_below_one(self):
        assert 0 < gemm_efficiency(10**9, 10**6) < 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gemm_efficiency(0, 1024)


class TestComputeModel:
    def test_dense_time_positive_and_scales(self):
        cm = ComputeModel(HOPPER_H100)
        t1 = cm.dense_time(1e12, 8192, 4096)
        t2 = cm.dense_time(2e12, 8192, 4096)
        assert t2 == pytest.approx(2 * t1)

    def test_5b_batch8_lands_near_paper_throughput(self):
        """The calibration anchor: ~245 TFLOPS busy rate for the 5B shape."""
        cm = ComputeModel(HOPPER_H100)
        flops = 6 * 4.98e9 * 8192
        t = cm.dense_time(flops, 8192, 3072)
        assert 220 <= flops / t / 1e12 <= 270

    def test_adam_kernel_ordering_matches_table3(self):
        cm = ComputeModel(GRACE_CPU)
        n = int(1e9)
        grace = cm.adam_step_time(n, "grace_adam")
        cpu = cm.adam_step_time(n, "cpu_adam")
        pt = cm.adam_step_time(n, "pt_cpu")
        assert grace < cpu < pt
        assert pt / grace > 3.0          # Table 3: >3x over PT-CPU
        assert 1.25 <= cpu / grace <= 1.5  # Table 3: ~1.36x over CPU-Adam

    def test_adam_absolute_latency_near_paper(self):
        """Table 3: GraceAdam 0.082 s at 1B parameters."""
        cm = ComputeModel(GRACE_CPU)
        assert cm.adam_step_time(int(1e9), "grace_adam") == pytest.approx(
            0.082, rel=0.15
        )

    def test_gpu_adam_on_cpu_rejected(self):
        with pytest.raises(ValueError):
            ComputeModel(GRACE_CPU).adam_step_time(10, "gpu")

    def test_cpu_kernel_on_gpu_rejected(self):
        with pytest.raises(ValueError):
            ComputeModel(HOPPER_H100).adam_step_time(10, "grace_adam")

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            ComputeModel(GRACE_CPU).adam_step_time(10, "sgd")

    def test_attention_near_peak(self):
        cm = ComputeModel(HOPPER_H100)
        flops = 1e15
        t = cm.attention_time(flops)
        assert 0.6 <= flops / t / HOPPER_H100.peak_flops <= 0.9


class TestCollectives:
    @pytest.fixture
    def cluster(self):
        return ClusterTopology(SuperchipNode(GH200, 2), 4, SLINGSHOT_11)

    def test_single_rank_is_free(self, cluster):
        coll = CollectiveModel(cluster)
        assert coll.all_reduce(1 << 30, participants=1) == 0.0

    def test_allreduce_twice_reduce_scatter(self, cluster):
        coll = CollectiveModel(cluster)
        n = 1 << 30
        ar = coll.all_reduce(n)
        rs = coll.reduce_scatter(n)
        assert ar == pytest.approx(2 * rs - 30e-6, rel=0.01)

    def test_intranode_collective_faster(self, cluster):
        coll = CollectiveModel(cluster)
        n = 1 << 30
        assert coll.all_reduce(n, participants=2) < coll.all_reduce(n)

    def test_volume_scales_with_participants_factor(self, cluster):
        coll = CollectiveModel(cluster)
        n = 1 << 28
        t8 = coll.all_gather(n, participants=8)
        t4 = coll.all_gather(n, participants=4)
        assert t8 > t4  # (p-1)/p grows with p

    def test_all_to_all_at_least_all_gather_cost(self, cluster):
        """All-to-all moves the same (p-1)/p volume but cannot use the
        hierarchical reduction trick — it is never cheaper."""
        coll = CollectiveModel(cluster)
        n = 1 << 28
        assert coll.all_to_all(n) >= coll.all_gather(n)

    def test_hierarchical_beats_flat_across_nodes(self, cluster):
        hier = CollectiveModel(cluster)
        flat = CollectiveModel(cluster, hierarchical=False)
        n = 1 << 30
        assert hier.reduce_scatter(n) < flat.reduce_scatter(n)
        assert hier.all_reduce(n) < flat.all_reduce(n)
        # intra-node collectives are identical either way
        assert hier.all_reduce(n, participants=2) == pytest.approx(
            flat.all_reduce(n, participants=2)
        )
