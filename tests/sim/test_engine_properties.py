"""Property-based tests of the schedule simulator's core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.engine import ScheduleSimulator, Task

RESOURCES = ["r0", "r1", "r2"]


@st.composite
def random_dags(draw):
    """Random topologically ordered task lists over three resources."""
    n = draw(st.integers(min_value=1, max_value=25))
    durations = draw(
        st.lists(st.floats(min_value=0.0, max_value=10.0),
                 min_size=n, max_size=n)
    )
    resources = draw(
        st.lists(st.sampled_from(RESOURCES), min_size=n, max_size=n)
    )
    tasks = []
    for i in range(n):
        n_deps = draw(st.integers(min_value=0, max_value=min(i, 3)))
        dep_idx = draw(
            st.lists(st.integers(min_value=0, max_value=i - 1),
                     min_size=n_deps, max_size=n_deps, unique=True)
        ) if i else []
        tasks.append(
            Task(f"t{i}", resources[i], durations[i],
                 deps=tuple(tasks[j] for j in dep_idx))
        )
    return tasks


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_dependencies_respected(tasks):
    ScheduleSimulator(RESOURCES).run(tasks)
    for task in tasks:
        for dep in task.deps:
            assert task.start >= dep.finish


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_no_overlap_on_any_resource(tasks):
    trace = ScheduleSimulator(RESOURCES).run(tasks)
    for resource in RESOURCES:
        intervals = trace.intervals_on(resource)
        for a, b in zip(intervals, intervals[1:]):
            assert b.start >= a.finish


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_makespan_bounds(tasks):
    """Makespan is at least the busiest resource and the longest dependency
    chain, and at most the serial sum of all work."""
    trace = ScheduleSimulator(RESOURCES).run(tasks)
    total = sum(t.duration for t in tasks)
    per_resource = {
        r: sum(t.duration for t in tasks if t.resource == r)
        for r in RESOURCES
    }

    def chain_length(task):
        if not task.deps:
            return task.duration
        return task.duration + max(chain_length(d) for d in task.deps)

    longest_chain = max(chain_length(t) for t in tasks)
    assert trace.makespan <= total + 1e-9
    assert trace.makespan >= max(per_resource.values()) - 1e-9
    assert trace.makespan >= longest_chain - 1e-9


@given(random_dags())
@settings(max_examples=50, deadline=None)
def test_determinism(tasks):
    """Two runs of the same structure produce identical timings."""
    trace1 = ScheduleSimulator(RESOURCES).run(tasks)
    starts1 = [t.start for t in tasks]
    for t in tasks:
        t.start = t.finish = None
    trace2 = ScheduleSimulator(RESOURCES).run(tasks)
    starts2 = [t.start for t in tasks]
    assert starts1 == starts2
    assert trace1.makespan == trace2.makespan


@given(random_dags())
@settings(max_examples=50, deadline=None)
def test_busy_time_equals_work(tasks):
    trace = ScheduleSimulator(RESOURCES).run(tasks)
    for resource in RESOURCES:
        work = sum(t.duration for t in tasks if t.resource == resource)
        assert trace.busy_time(resource) == np.float64(work) or (
            abs(trace.busy_time(resource) - work) < 1e-9
        )
