"""ChunkPlan invariants: exact tiling, alignment, balance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.plan import DEFAULT_ALIGN, ChunkPlan


class TestSplit:
    def test_exact_cover(self):
        plan = ChunkPlan.split(1000, 4)
        assert plan.chunks[0][0] == 0
        assert plan.chunks[-1][1] == 1000
        for (a, b), (c, d) in zip(plan.chunks, plan.chunks[1:]):
            assert b == c

    def test_interior_boundaries_aligned(self):
        plan = ChunkPlan.split(1000, 4, align=16)
        for lo, hi in plan.chunks[:-1]:
            assert hi % 16 == 0

    def test_small_n_fewer_chunks(self):
        # 20 elements can give at most one 16-aligned chunk.
        plan = ChunkPlan.split(20, 4, align=16)
        assert len(plan) == 1
        assert plan.chunks == ((0, 20),)

    def test_empty(self):
        plan = ChunkPlan.split(0, 4)
        assert len(plan) == 0
        assert plan.largest_chunk() == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChunkPlan.split(-1, 2)
        with pytest.raises(ValueError):
            ChunkPlan.split(10, 0)
        with pytest.raises(ValueError):
            ChunkPlan.split(10, 2, align=0)

    def test_validation_rejects_gaps(self):
        with pytest.raises(ValueError):
            ChunkPlan(100, ((0, 32), (48, 100)), 16)
        with pytest.raises(ValueError):
            ChunkPlan(100, ((0, 30), (30, 100)), 16)  # unaligned interior
        with pytest.raises(ValueError):
            ChunkPlan(100, ((0, 32),), 16)  # short cover

    @given(
        n=st.integers(min_value=0, max_value=1 << 20),
        n_chunks=st.integers(min_value=1, max_value=16),
        align=st.sampled_from([1, 4, 16, 64]),
    )
    @settings(max_examples=200, deadline=None)
    def test_properties_hold_for_any_split(self, n, n_chunks, align):
        plan = ChunkPlan.split(n, n_chunks, align)
        # exact tiling of [0, n)
        cursor = 0
        for lo, hi in plan:
            assert lo == cursor and hi > lo
            if hi != n:
                assert hi % align == 0
            cursor = hi
        assert cursor == n
        assert len(plan) <= n_chunks
        # balance: chunks differ by at most one align quantum (plus the
        # tail partial quantum riding with the last chunk)
        if len(plan) > 1:
            sizes = [hi - lo for lo, hi in plan.chunks[:-1]]
            assert max(sizes) - min(sizes) <= align

    def test_default_align_matches_sve_lanes(self):
        assert DEFAULT_ALIGN == 16
