"""KernelPool lifecycle: submit/wait, inline mode, errors, telemetry."""

import numpy as np
import pytest

from repro.exec.plan import ChunkPlan
from repro.exec.pool import (
    KernelPool,
    configure_default_pool,
    default_workers,
    get_pool,
)
from repro.telemetry import Telemetry


@pytest.fixture
def pool():
    p = KernelPool(2)
    yield p
    p.shutdown()


class TestSubmit:
    def test_submit_returns_result(self, pool):
        fut = pool.submit(lambda a, b: a + b, 2, 3)
        assert fut.result(timeout=5.0) == 5
        assert fut.done()

    def test_submit_propagates_exception(self, pool):
        def boom():
            raise RuntimeError("kernel failed")

        fut = pool.submit(boom)
        with pytest.raises(RuntimeError, match="kernel failed"):
            fut.result(timeout=5.0)

    def test_inline_pool_resolves_immediately(self):
        inline = KernelPool(1)
        fut = inline.submit(lambda: 42)
        assert fut.done() and fut.result() == 42

    def test_inline_pool_spawns_no_threads(self):
        inline = KernelPool(1)
        inline.submit(lambda: None).result()
        assert inline._threads == []

    def test_wait_all_reraises_first_failure(self, pool):
        def maybe(i):
            if i == 1:
                raise ValueError("chunk 1")
            return i

        futures = [pool.submit(maybe, i) for i in range(4)]
        with pytest.raises(ValueError, match="chunk 1"):
            pool.wait_all(futures)


class TestRun:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_run_covers_every_chunk(self, workers):
        pool = KernelPool(workers)
        try:
            buf = np.zeros(1024, dtype=np.float32)
            plan = ChunkPlan.split(buf.size, workers)

            def mark(lo, hi, out):
                out[lo:hi] += 1.0

            pool.run(mark, plan, buf)
            np.testing.assert_array_equal(buf, np.ones_like(buf))
        finally:
            pool.shutdown()

    def test_run_reraises_chunk_exception(self, pool):
        plan = ChunkPlan.split(64, 2)

        def boom(lo, hi):
            if lo > 0:
                raise RuntimeError("tail chunk")

        with pytest.raises(RuntimeError, match="tail chunk"):
            pool.run(boom, plan)

    def test_empty_plan_is_noop(self, pool):
        pool.run(lambda lo, hi: 1 / 0, ChunkPlan.split(0, 2))

    def test_submit_after_shutdown_rejected(self):
        p = KernelPool(2)
        p.submit(lambda: None).result()  # spin up threads
        p.shutdown()
        with pytest.raises(RuntimeError):
            p._ensure_threads()


class TestTelemetry:
    def test_per_worker_counters_record_chunks(self):
        telemetry = Telemetry()
        pool = KernelPool(2, telemetry=telemetry)
        try:
            plan = ChunkPlan.split(1024, 2)
            buf = np.zeros(1024, dtype=np.float32)

            def mark(lo, hi, out):
                out[lo:hi] = 1.0

            pool.run(mark, plan, buf)
            pool.run(mark, plan, buf)
            total = sum(
                telemetry.metrics.counter("exec_chunks_total", worker=i).value
                for i in range(2)
            )
            assert total == 2 * len(plan)
        finally:
            pool.shutdown()


class TestDefaultPool:
    def test_explicit_workers_builds_fresh_pool(self):
        a = get_pool(2)
        b = get_pool(2)
        assert a is not b
        a.shutdown()
        b.shutdown()

    def test_default_pool_is_shared(self):
        assert get_pool() is get_pool()

    def test_configure_replaces_default(self):
        old = get_pool()
        new = configure_default_pool(old.workers)
        try:
            assert get_pool() is new
            assert new is not old
        finally:
            pass  # leave the fresh default pool in place for other tests

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "not-a-number")
        assert default_workers() >= 1


class TestShutdownSafety:
    def test_shutdown_is_idempotent(self):
        p = KernelPool(2)
        p.submit(lambda: 1).result()
        p.shutdown()
        p.shutdown()  # second call is a no-op, no deadlock

    def test_shutdown_before_spawn_is_safe(self):
        KernelPool(2).shutdown()

    def test_queued_work_finishes_before_shutdown(self):
        import time

        p = KernelPool(1 + 1)  # 2 workers
        futures = [p.submit(time.sleep, 0.01) for _ in range(8)]
        p.shutdown()
        for f in futures:
            f.result(timeout=1.0)  # all ran, none stranded

    def test_submission_racing_shutdown_fails_future(self):
        p = KernelPool(2)
        p.submit(lambda: 1).result()
        p.shutdown()
        # _closed is set; the late submit must fail its future rather
        # than leave a waiter hanging behind the sentinels
        fut = p.submit(lambda: 2)
        with pytest.raises(RuntimeError, match="shut down"):
            fut.result(timeout=1.0)

    def test_live_pools_registered_for_atexit(self):
        from repro.exec import pool as pool_mod

        p = KernelPool(2)
        p.submit(lambda: 1).result()
        assert p in pool_mod._live_pools
        assert pool_mod._atexit_registered
        pool_mod._drain_live_pools()  # the atexit path, run eagerly
        assert p._closed

    def test_queue_wait_histogram_recorded(self):
        telemetry = Telemetry()
        p = KernelPool(2, telemetry=telemetry)
        try:
            for _ in range(4):
                p.submit(lambda: None).result(timeout=1.0)
            waits = sum(
                telemetry.metrics.histogram(
                    "exec_queue_wait_ms", worker=i
                ).count
                for i in range(2)
            )
            assert waits == 4
        finally:
            p.shutdown()
