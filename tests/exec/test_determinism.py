"""Bitwise identity of chunked execution vs. the serial ancestors.

The executor's contract (``repro.exec.kernels``): for *any* chunk plan,
any worker count, and any plane size — including adversarial sizes that
leave ragged tails and chunks that don't divide the worker count — the
parallel result equals the serial ancestor bit for bit.  These tests
force real multi-chunk dispatch by dropping the inline-dispatch cutoffs
to zero, so even tiny hypothesis-generated planes exercise the pool.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.exec.ops as ops
from repro.exec import kernels
from repro.exec.ops import (
    parallel_add_scaled,
    parallel_adam_flat,
    parallel_cast,
    parallel_copy,
    parallel_reduce,
    parallel_scale,
    parallel_scale_into,
)
from repro.exec.pool import KernelPool
from repro.numeric.lowprec import to_bf16
from repro.optim import AdamConfig, GraceAdam
from repro.tensors.arena import FlatArena

WORKER_COUNTS = (1, 2, 4)

#: Adversarial plane sizes: vector-tile multiples, off-by-one tails,
#: primes, and sizes not divisible by any tested worker count.
ADVERSARIAL_SIZES = (1, 15, 16, 17, 97, 255, 256, 1009, 4096, 4097)


@pytest.fixture(autouse=True)
def force_dispatch(monkeypatch):
    """Drop the inline cutoffs so small planes still hit the pool."""
    monkeypatch.setattr(ops, "MIN_PARALLEL_FUSED", 0)
    monkeypatch.setattr(ops, "MIN_PARALLEL_SIMPLE", 0)


@pytest.fixture(params=WORKER_COUNTS)
def pool(request):
    p = KernelPool(request.param)
    yield p
    p.shutdown()


def _split_params(rng, sizes):
    return {f"p{i:03d}": rng.standard_normal(s).astype(np.float32)
            for i, s in enumerate(sizes)}


class TestAdamStepIdentity:
    """Chunked GraceAdam == serial flat ancestor == per-tensor ancestor."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_three_way_bitwise(self, workers, n):
        rng = np.random.default_rng(n * 31 + workers)
        sizes = [max(1, n // 3), max(1, n // 4), n]
        cfg = AdamConfig(lr=1e-2, weight_decay=0.01)
        base = _split_params(rng, sizes)
        pool = KernelPool(workers)
        try:
            par_params = {k: v.copy() for k, v in base.items()}
            flat_params = {k: v.copy() for k, v in base.items()}
            tensor_params = {k: v.copy() for k, v in base.items()}
            FlatArena.adopt(par_params)
            FlatArena.adopt(flat_params)
            par = GraceAdam(par_params, cfg, pool=pool, chunked=True)
            flat = GraceAdam(flat_params, cfg, chunked=False)
            per_tensor = GraceAdam(tensor_params, cfg)
            for step in range(3):
                grads = {k: rng.standard_normal(v.shape, dtype=np.float32)
                         for k, v in base.items()}
                par_g = par.arena.like()
                par_g.fill_from(grads)
                flat_g = flat.arena.like()
                flat_g.fill_from(grads)
                par.step(dict(par_g.views))
                flat.step(dict(flat_g.views))
                # plain dict grads: not arena-backed -> per-tensor loop
                per_tensor.step({k: g.copy() for k, g in grads.items()})
            for k in base:
                np.testing.assert_array_equal(par.params[k], flat.params[k])
                np.testing.assert_array_equal(par.params[k],
                                              per_tensor.params[k])
                np.testing.assert_array_equal(par.state[k].m,
                                              per_tensor.state[k].m)
                np.testing.assert_array_equal(par.state[k].v,
                                              per_tensor.state[k].v)
        finally:
            pool.shutdown()

    @given(
        n=st.integers(min_value=1, max_value=3000),
        workers=st.sampled_from(WORKER_COUNTS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_flat_step_any_size(self, n, workers, seed):
        rng = np.random.default_rng(seed)
        cfg = AdamConfig(lr=3e-3, weight_decay=0.02)
        p0 = rng.standard_normal(n).astype(np.float32)
        m0 = np.abs(rng.standard_normal(n)).astype(np.float32) * 0.1
        v0 = np.abs(rng.standard_normal(n)).astype(np.float32) * 0.01
        g = rng.standard_normal(n).astype(np.float32)
        hyper = kernels.AdamChunkHyper.from_config(cfg, step=2)

        p_ref, m_ref, v_ref = p0.copy(), m0.copy(), v0.copy()
        kernels.adam_chunk(0, n, p_ref, m_ref, v_ref, g, hyper)

        pool = KernelPool(workers)
        try:
            p, m, v = p0.copy(), m0.copy(), v0.copy()
            parallel_adam_flat(p, m, v, g, cfg, 2, pool=pool)
            np.testing.assert_array_equal(p, p_ref)
            np.testing.assert_array_equal(m, m_ref)
            np.testing.assert_array_equal(v, v_ref)
        finally:
            pool.shutdown()


class TestSimpleOpIdentity:
    """scale / copy / cast / accumulate match their serial forms."""

    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_scale_matches_inplace_multiply(self, pool, n):
        rng = np.random.default_rng(n)
        buf = rng.standard_normal(n).astype(np.float32)
        coef = np.float32(0.4372)
        ref = buf.copy()
        ref *= coef
        parallel_scale(buf, coef, pool=pool)
        np.testing.assert_array_equal(buf, ref)

    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_copy_matches_memcpy(self, pool, n):
        rng = np.random.default_rng(n)
        src = rng.standard_normal(n).astype(np.float32)
        dst = np.zeros(n, dtype=np.float32)
        parallel_copy(dst, src, pool=pool)
        np.testing.assert_array_equal(dst, src)

    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_fp16_cast_matches_astype(self, pool, n):
        rng = np.random.default_rng(n)
        # include overflow values: the fp16 cast must saturate to inf
        # identically, with no warning escaping the worker thread
        src = (rng.standard_normal(n) * 1e5).astype(np.float32)
        ref = np.empty(n, dtype=np.float16)
        with np.errstate(over="ignore"):
            ref[...] = src
        dst = np.empty(n, dtype=np.float16)
        parallel_cast(dst, src, ignore_overflow=True, pool=pool)
        np.testing.assert_array_equal(dst, ref)

    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_bf16_cast_matches_to_bf16(self, pool, n):
        rng = np.random.default_rng(n)
        src = rng.standard_normal(n).astype(np.float32)
        dst = np.empty(n, dtype=np.float32)
        parallel_cast(dst, src, bf16=True, pool=pool)
        np.testing.assert_array_equal(dst, to_bf16(src))

    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_accumulate_matches_serial(self, pool, n):
        rng = np.random.default_rng(n)
        dst0 = rng.standard_normal(n).astype(np.float32)
        src = rng.standard_normal(n).astype(np.float32)
        scale = np.float32(1.0 / 7.0)
        ref = dst0.copy()
        ref += src * scale
        dst = dst0.copy()
        parallel_add_scaled(dst, src, scale, pool=pool)
        np.testing.assert_array_equal(dst, ref)
        out = np.empty(n, dtype=np.float32)
        parallel_scale_into(out, src, scale, pool=pool)
        np.testing.assert_array_equal(out, src * scale)


class TestReduceIdentity:
    """Fixed-order chunked reduce == the serial left fold."""

    @pytest.mark.parametrize("world", [1, 2, 3, 5])
    @pytest.mark.parametrize("n", ADVERSARIAL_SIZES)
    def test_matches_left_fold(self, pool, world, n):
        rng = np.random.default_rng(n * 7 + world)
        sources = [rng.standard_normal(n).astype(np.float32)
                   for _ in range(world)]
        ref = sources[0].copy()
        for s in sources[1:]:
            ref = ref + s
        ref = ref / np.float32(world)
        dst = np.empty(n, dtype=np.float32)
        parallel_reduce(dst, 0, sources, 0, n,
                        divisor=np.float32(world), pool=pool)
        np.testing.assert_array_equal(dst, ref)

    @given(
        n=st.integers(min_value=1, max_value=2000),
        world=st.integers(min_value=1, max_value=6),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_size_any_world(self, n, world, workers):
        rng = np.random.default_rng(n + world)
        sources = [rng.standard_normal(n).astype(np.float32)
                   for _ in range(world)]
        ref = sources[0].copy()
        for s in sources[1:]:
            ref = ref + s
        dst = np.empty(n, dtype=np.float32)
        pool = KernelPool(workers)
        try:
            parallel_reduce(dst, 0, sources, 0, n, pool=pool)
        finally:
            pool.shutdown()
        np.testing.assert_array_equal(dst, ref)
