"""Tests for engine checkpoint/resume."""

import numpy as np
import pytest

from repro.core import SuperOffloadConfig, SuperOffloadEngine, init
from repro.numeric.transformer import TinyTransformer


def test_resume_is_bitwise_identical(tiny_spec, tiny_batches):
    """Checkpoint at iteration 10, resume, and match an uninterrupted run."""
    straight = init(TinyTransformer(tiny_spec, seed=2),
                    SuperOffloadConfig(clip_norm=0.9))
    for ids, tg in tiny_batches:
        straight.train_step(ids, tg)

    first = init(TinyTransformer(tiny_spec, seed=2),
                 SuperOffloadConfig(clip_norm=0.9))
    for ids, tg in tiny_batches[:10]:
        first.train_step(ids, tg)
    checkpoint = first.state_dict()

    resumed = init(TinyTransformer(tiny_spec, seed=99),  # different init!
                   SuperOffloadConfig(clip_norm=0.9))
    resumed.load_state_dict(checkpoint)
    assert resumed.iteration == 10
    for ids, tg in tiny_batches[10:]:
        resumed.train_step(ids, tg)

    for k in straight.model.params:
        np.testing.assert_array_equal(
            straight.model.params[k], resumed.model.params[k]
        )
    assert resumed.iteration == straight.iteration


def test_checkpoint_captures_scaler_state(tiny_spec, tiny_batches):
    engine = init(TinyTransformer(tiny_spec, seed=2))
    engine._inner.grad_injection = 1e8  # force an overflow backoff
    engine.train_step(*tiny_batches[0])
    engine._inner.grad_injection = 1.0
    state = engine.state_dict()
    assert state["scale"] == engine.loss_scale
    fresh = init(TinyTransformer(tiny_spec, seed=5))
    fresh.load_state_dict(state)
    assert fresh.loss_scale == engine.loss_scale


def test_checkpoint_is_a_copy(tiny_spec, tiny_batches):
    engine = init(TinyTransformer(tiny_spec, seed=2))
    engine.train_step(*tiny_batches[0])
    state = engine.state_dict()
    frozen = {k: v.copy() for k, v in state["master"].items()}
    engine.train_step(*tiny_batches[1])
    for k in frozen:
        np.testing.assert_array_equal(state["master"][k], frozen[k])


def test_missing_keys_rejected(tiny_spec):
    engine = init(TinyTransformer(tiny_spec, seed=2))
    with pytest.raises(KeyError, match="missing"):
        engine.load_state_dict({"master": {}})


def test_fp16_copy_resynced_on_load(tiny_spec, tiny_batches):
    donor = init(TinyTransformer(tiny_spec, seed=2))
    donor.train_step(*tiny_batches[0])
    receiver = init(TinyTransformer(tiny_spec, seed=77))
    receiver.load_state_dict(donor.state_dict())
    assert receiver._inner.mp.drift() < 1e-2
