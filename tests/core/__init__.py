"""Test package."""
