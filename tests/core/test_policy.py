"""Tests for the adaptive weight policy and the eq. 1-3 efficiency model."""

import pytest

from repro.core.policy import (
    AdaptiveOffloadPolicy,
    EFFICIENCY_THRESHOLD,
    WeightPolicy,
    weight_flow_efficiency,
)
from repro.hardware.registry import HOPPER_H100, NVLINK_C2C
from repro.models.config import MODEL_CONFIG_TABLE

GBPS = 1e9


class TestEfficiencyModel:
    def test_fig6_anchor_point(self):
        """Fig. 6: at 450 GB/s uni-directional C2C, batch >= 4 at seq 1024
        is needed to exceed 60% efficiency."""
        psi = int(5e9)
        peak = HOPPER_H100.achievable_flops
        eff_b4 = weight_flow_efficiency(psi, 4, 1024, 450 * GBPS, peak)
        eff_b2 = weight_flow_efficiency(psi, 2, 1024, 450 * GBPS, peak)
        assert eff_b4 >= 0.60
        assert eff_b2 < eff_b4

    def test_efficiency_independent_of_model_size(self):
        """Both comp and comm are linear in Psi, so eq. 3 cancels it."""
        peak = HOPPER_H100.achievable_flops
        e1 = weight_flow_efficiency(int(1e9), 4, 1024, 450 * GBPS, peak)
        e2 = weight_flow_efficiency(int(50e9), 4, 1024, 450 * GBPS, peak)
        assert e1 == pytest.approx(e2)

    def test_monotone_in_bandwidth_and_batch(self):
        peak = HOPPER_H100.achievable_flops
        psi = int(5e9)
        assert weight_flow_efficiency(psi, 4, 1024, 900 * GBPS, peak) > (
            weight_flow_efficiency(psi, 4, 1024, 64 * GBPS, peak)
        )
        assert weight_flow_efficiency(psi, 8, 1024, 450 * GBPS, peak) > (
            weight_flow_efficiency(psi, 4, 1024, 450 * GBPS, peak)
        )

    def test_pcie_era_efficiency_is_hopeless(self):
        """The PCIe-era conclusion: weight flow cannot hide at 32 GB/s."""
        eff = weight_flow_efficiency(
            int(5e9), 4, 1024, 32 * GBPS, HOPPER_H100.achievable_flops
        )
        assert eff < 0.35

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            weight_flow_efficiency(0, 1, 1, 1.0, 1.0)


class TestAdaptivePolicy:
    @pytest.fixture
    def policy(self) -> AdaptiveOffloadPolicy:
        return AdaptiveOffloadPolicy(
            gpu=HOPPER_H100, c2c_bandwidth=NVLINK_C2C.peak_bandwidth
        )

    def test_small_model_short_seq_stays_stationary(self, policy):
        decision = policy.decide(MODEL_CONFIG_TABLE[5], micro_batch=8)
        assert decision.policy is WeightPolicy.STATIONARY

    def test_long_context_flips_to_flow(self, policy):
        """§4.2's scenario: long-context activations crowd out weights."""
        decision = policy.decide(
            MODEL_CONFIG_TABLE[13], micro_batch=1, seq=262144
        )
        assert decision.policy is WeightPolicy.FLOW
        assert decision.efficiency > EFFICIENCY_THRESHOLD

    def test_oversized_model_flows(self, policy):
        decision = policy.decide(MODEL_CONFIG_TABLE[80], micro_batch=1)
        assert decision.policy is WeightPolicy.FLOW

    def test_flow_resident_bytes_much_smaller(self, policy):
        cfg = MODEL_CONFIG_TABLE[13]
        stat = policy.decide(cfg, micro_batch=1, seq=1024, checkpointing=True)
        flow = policy.decide(cfg, micro_batch=1, seq=262144, checkpointing=True)
        # flow keeps only a layer working set instead of the full 2*Psi
        psi = 12 * cfg.n_layers * cfg.hidden**2
        assert stat.gpu_resident_bytes >= 2 * psi
        assert flow.gpu_resident_bytes - (
            flow.gpu_resident_bytes - 4 * psi / cfg.n_layers
        ) == pytest.approx(4 * psi / cfg.n_layers)

    def test_exposed_fraction(self, policy):
        assert policy.flow_exposed_fraction(0.9) == 0.0
        assert 0 < policy.flow_exposed_fraction(0.3) < 1

    def test_reason_strings_present(self, policy):
        d = policy.decide(MODEL_CONFIG_TABLE[5], micro_batch=8)
        assert "fit" in d.reason
