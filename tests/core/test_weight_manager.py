"""Tests for the operational weight-flow manager (§4.2 invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.weight_manager import WeightFlowManager
from repro.tensors import MemoryPool, PinnedBufferPool
from repro.tensors.errors import DeviceOutOfMemoryError

MB = 1024**2


def make_manager(n_layers=8, layer_mb=10, pool_mb=100, window=2,
                 pinned_mb=None):
    pool = MemoryPool("gpu:0", pool_mb * MB)
    pinned = PinnedBufferPool(pinned_mb * MB) if pinned_mb else None
    mgr = WeightFlowManager(
        [layer_mb * MB] * n_layers, pool, pinned_pool=pinned, window=window
    )
    return mgr, pool


class TestInvariants:
    def test_working_set_never_exceeds_window(self):
        mgr, pool = make_manager(window=3)
        mgr.run_pass(range(8))
        assert len(mgr.resident_layers) <= 3
        assert pool.peak <= 3 * 10 * MB

    def test_forward_then_backward_pass(self):
        mgr, _ = make_manager(window=2)
        mgr.run_pass(range(8))            # forward
        mgr.run_pass(reversed(range(8)))  # backward
        # re-streamed for backward except the layers still resident at the
        # forward/backward boundary (the window tail)
        fetched = [f.layer for f in mgr.fetches]
        for layer in range(8 - mgr.window):
            assert fetched.count(layer) >= 2, layer
        for layer in range(8):
            assert fetched.count(layer) >= 1

    def test_prefetch_hits(self):
        mgr, _ = make_manager(window=2)
        mgr.run_pass(range(8))
        # after warm-up every use hits the prefetched layer
        assert mgr.hit_rate() >= (8 - 1) / 8 - 1e-9
        demand = [f for f in mgr.fetches if not f.prefetched]
        assert len(demand) == 1  # only layer 0 was a demand fetch

    def test_eviction_order_is_use_order(self):
        mgr, _ = make_manager(window=2)
        mgr.run_pass(range(5))
        assert mgr.evictions == sorted(mgr.evictions)

    def test_memory_returned_on_release(self):
        mgr, pool = make_manager()
        mgr.run_pass(range(8))
        mgr.release_all()
        assert pool.used == 0
        assert not mgr.resident_layers

    def test_pinned_staging_used_when_available(self):
        mgr, _ = make_manager(pinned_mb=64)
        mgr.run_pass(range(4))
        assert all(f.pinned for f in mgr.fetches)

    def test_pageable_fallback_when_pinned_exhausted(self):
        mgr, _ = make_manager(layer_mb=10, pinned_mb=5)  # layer > pinned pool
        mgr.run_pass(range(4))
        assert all(not f.pinned for f in mgr.fetches)

    def test_window_shrinks_under_memory_pressure(self):
        # pool holds only 1.5 layers: manager must survive by evicting
        mgr, pool = make_manager(layer_mb=10, pool_mb=15, window=2)
        mgr.run_pass(range(6))
        assert len(mgr.resident_layers) == 1
        assert pool.peak <= 15 * MB

    def test_layer_too_big_for_pool_raises(self):
        pool = MemoryPool("gpu:0", 5 * MB)
        mgr = WeightFlowManager([10 * MB, 10 * MB], pool, window=2)
        with pytest.raises(DeviceOutOfMemoryError):
            mgr.use(0)

    def test_validation(self):
        pool = MemoryPool("gpu:0", 100 * MB)
        with pytest.raises(ValueError):
            WeightFlowManager([], pool)
        with pytest.raises(ValueError):
            WeightFlowManager([0], pool)
        with pytest.raises(ValueError):
            WeightFlowManager([MB], pool, window=1)
        mgr = WeightFlowManager([MB], pool)
        with pytest.raises(IndexError):
            mgr.use(5)

    def test_prefetch_out_of_range_is_noop(self):
        mgr, _ = make_manager()
        mgr.prefetch(-1)
        mgr.prefetch(100)
        assert not mgr.fetches


@given(
    n_layers=st.integers(min_value=2, max_value=12),
    window=st.integers(min_value=2, max_value=6),
    passes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_property_residency_and_accounting(n_layers, window, passes):
    pool = MemoryPool("gpu:0", 1000 * MB)
    mgr = WeightFlowManager([MB] * n_layers, pool, window=window)
    for p in range(passes):
        order = range(n_layers) if p % 2 == 0 else reversed(range(n_layers))
        mgr.run_pass(order)
        assert len(mgr.resident_layers) <= window
        assert pool.used == mgr.resident_bytes()
    mgr.release_all()
    assert pool.used == 0
