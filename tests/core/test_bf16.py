"""Tests for bf16 training mode."""

import numpy as np
import pytest

from repro.core import SuperOffloadConfig, init
from repro.core.stv import STVEngine, SynchronousEngine
from repro.numeric.transformer import TinyTransformer
from repro.optim import AdamConfig, GraceAdam
from repro.optim.mixed_precision import MixedPrecisionState, lower_precision


class TestLowerPrecision:
    def test_fp16_route(self, rng):
        x = rng.standard_normal(8).astype(np.float32)
        assert lower_precision(x, "fp16").dtype == np.float16

    def test_bf16_keeps_fp32_storage_and_range(self):
        x = np.array([1e38], dtype=np.float32)
        y = lower_precision(x, "bf16")
        assert y.dtype == np.float32
        assert np.isfinite(y).all()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            lower_precision(np.zeros(1, np.float32), "fp8")


class TestBF16Engine:
    def test_no_loss_scaling_by_default(self, tiny_spec):
        engine = init(TinyTransformer(tiny_spec),
                      SuperOffloadConfig(precision="bf16"))
        assert engine.loss_scale == 1.0

    def test_trains_and_converges(self, tiny_spec, tiny_batches):
        engine = init(
            TinyTransformer(tiny_spec, seed=3),
            SuperOffloadConfig(precision="bf16", clip_norm=None,
                               adam=AdamConfig(lr=5e-3)),
        )
        losses = [engine.train_step(ids, tg).loss for ids, tg in tiny_batches]
        assert np.mean(losses[-4:]) < np.mean(losses[:4])

    def test_no_overflow_where_fp16_overflows(self, tiny_spec, tiny_batches):
        """bf16's headline property: the spike that overflows fp16 at high
        scale passes through bf16 (it keeps fp32's exponent range)."""
        def one_step(precision):
            engine = init(
                TinyTransformer(tiny_spec, seed=3),
                SuperOffloadConfig(precision=precision, clip_norm=None),
            )
            engine._inner.grad_injection = 1e6
            report = engine.train_step(*tiny_batches[0])
            engine._inner.grad_injection = 1.0
            return report

        assert one_step("fp16").overflow
        assert not one_step("bf16").overflow

    def test_stv_equals_ste_in_bf16(self, tiny_spec, tiny_batches):
        results = {}
        for stv in (True, False):
            model = TinyTransformer(tiny_spec, seed=5)
            engine = init(model, SuperOffloadConfig(
                precision="bf16", stv=stv, clip_norm=0.9))
            for ids, tg in tiny_batches[:8]:
                engine.train_step(ids, tg)
            results[stv] = model.params
        for k in results[True]:
            np.testing.assert_array_equal(results[True][k], results[False][k])

    def test_mp_state_drift_bound(self, rng):
        master = {"w": (rng.standard_normal(64) * 100).astype(np.float32)}
        mp = MixedPrecisionState(master_fp32=master, low_dtype="bf16")
        assert mp.drift() <= np.abs(master["w"]).max() * 2**-7

    def test_invalid_precision_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            SuperOffloadConfig(precision="fp8")
        model = TinyTransformer(tiny_spec)
        with pytest.raises(ValueError):
            STVEngine(model, GraceAdam(model.params), precision="int8")
