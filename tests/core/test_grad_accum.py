"""Tests for gradient accumulation in the numeric engines (§5.2 strategy 1)."""

import numpy as np
import pytest

from repro.core.stv import STVEngine, SynchronousEngine
from repro.numeric.transformer import TinyTransformer
from repro.optim import AdamConfig, GraceAdam, LossScaler


def build(tiny_spec, engine_cls=STVEngine, clip=None, seed=7):
    model = TinyTransformer(tiny_spec, seed=seed)
    opt = GraceAdam(model.params, AdamConfig(lr=3e-3))
    scaler = LossScaler(init_scale=2.0**12)
    if engine_cls is STVEngine:
        return model, STVEngine(model, opt, clip_norm=clip,
                                loss_scaler=scaler, n_buckets=3)
    return model, SynchronousEngine(model, opt, clip_norm=clip,
                                    loss_scaler=scaler)


def test_accumulated_matches_full_batch_closely(tiny_spec, tiny_batches):
    """Averaging micro-batch gradients approximates the full-batch gradient
    (exact up to fp16 production rounding)."""
    ids, tg = tiny_batches[0]
    m_full, e_full = build(tiny_spec)
    m_acc, e_acc = build(tiny_spec)
    r_full = e_full.train_step(ids, tg, grad_accum=1)
    r_acc = e_acc.train_step(ids, tg, grad_accum=4)
    assert r_acc.loss == pytest.approx(r_full.loss, abs=1e-4)
    # On the very first Adam step the update is ~lr * sign(g), so an fp16
    # rounding flip on a near-zero gradient element can differ by up to
    # 2 * lr; everything else agrees to fp16 precision.
    lr = e_full.optimizer.config.lr
    for k in m_full.params:
        np.testing.assert_allclose(
            m_full.params[k], m_acc.params[k], atol=2.5 * lr
        )


def test_stv_equals_ste_under_accumulation(tiny_spec, tiny_batches):
    m_stv, e_stv = build(tiny_spec, STVEngine, clip=0.9)
    m_ste, e_ste = build(tiny_spec, SynchronousEngine, clip=0.9)
    for ids, tg in tiny_batches[:6]:
        e_stv.train_step(ids, tg, grad_accum=2)
        e_ste.train_step(ids, tg, grad_accum=2)
    for k in m_stv.params:
        np.testing.assert_array_equal(m_stv.params[k], m_ste.params[k])


def test_training_progresses_with_accumulation(tiny_spec, tiny_batches):
    _, engine = build(tiny_spec, clip=None)
    losses = [engine.train_step(ids, tg, grad_accum=2).loss
              for ids, tg in tiny_batches]
    assert np.mean(losses[-4:]) < np.mean(losses[:4])


def test_overflow_in_any_micro_batch_skips_iteration(tiny_spec, tiny_batches):
    m, engine = build(tiny_spec, clip=None)
    before = {k: v.copy() for k, v in m.params.items()}
    engine.grad_injection = 1e8
    report = engine.train_step(*tiny_batches[0], grad_accum=2)
    engine.grad_injection = 1.0
    assert report.overflow
    for k in before:
        np.testing.assert_array_equal(m.params[k], before[k])


def test_invalid_grad_accum(tiny_spec, tiny_batches):
    _, engine = build(tiny_spec)
    ids, tg = tiny_batches[0]
    with pytest.raises(ValueError):
        engine.train_step(ids, tg, grad_accum=0)
    with pytest.raises(ValueError):
        engine.train_step(ids, tg, grad_accum=3)  # batch of 4 not divisible
