"""Tests for the background validation worker (§4.4's validation process)."""

import numpy as np
import pytest

from repro.core.stv import STVEngine, SynchronousEngine
from repro.core.validator import BackgroundValidator
from repro.numeric.transformer import TinyTransformer
from repro.optim import AdamConfig, GraceAdam, LossScaler


class TestBackgroundValidator:
    def test_healthy_verdict(self):
        with BackgroundValidator() as v:
            ticket = v.submit({"g": np.ones(8, dtype=np.float32)}, 100.0)
            health = ticket.result(timeout=5)
        assert health.speculation_valid

    def test_overflow_verdict(self):
        with BackgroundValidator() as v:
            health = v.submit(
                {"g": np.array([np.inf], dtype=np.float32)}, None
            ).result(timeout=5)
        assert health.has_nan_or_inf

    def test_clip_verdict(self):
        with BackgroundValidator() as v:
            health = v.submit(
                {"g": np.full(100, 5.0, dtype=np.float32)}, 1.0
            ).result(timeout=5)
        assert health.clip_triggered

    def test_multiple_jobs_in_order(self):
        with BackgroundValidator() as v:
            tickets = [
                v.submit({"g": np.full(4, float(i), dtype=np.float32)}, None)
                for i in range(1, 6)
            ]
            norms = [t.result(timeout=5).global_norm for t in tickets]
        assert norms == sorted(norms)
        assert norms[0] == pytest.approx(2.0)  # ||(1,1,1,1)||

    def test_submit_after_close_rejected(self):
        v = BackgroundValidator()
        v.close()
        with pytest.raises(RuntimeError):
            v.submit({"g": np.ones(1, dtype=np.float32)}, None)

    def test_close_idempotent(self):
        v = BackgroundValidator()
        v.close()
        v.close()

    def test_done_polling(self):
        with BackgroundValidator() as v:
            ticket = v.submit({"g": np.ones(2, dtype=np.float32)}, None)
            ticket.result(timeout=5)
            assert ticket.done()


class TestEngineIntegration:
    def test_background_validation_identical_results(self, tiny_spec,
                                                     tiny_batches):
        def run(background):
            model = TinyTransformer(tiny_spec, seed=7)
            opt = GraceAdam(model.params, AdamConfig(lr=3e-3))
            engine = STVEngine(
                model, opt, clip_norm=0.9,
                loss_scaler=LossScaler(init_scale=2.0**14),
                background_validation=background,
            )
            for ids, tg in tiny_batches[:10]:
                engine.train_step(ids, tg)
            if engine._validator is not None:
                engine._validator.close()
            return model

    # both paths must be bit-identical — the worker computes the exact
    # same verdict, just on another thread
        m_bg = run(True)
        m_inline = run(False)
        for k in m_bg.params:
            np.testing.assert_array_equal(m_bg.params[k], m_inline.params[k])

    def test_background_matches_synchronous_engine(self, tiny_spec,
                                                   tiny_batches):
        model_bg = TinyTransformer(tiny_spec, seed=3)
        engine_bg = STVEngine(
            model_bg, GraceAdam(model_bg.params, AdamConfig(lr=3e-3)),
            clip_norm=0.9, loss_scaler=LossScaler(init_scale=2.0**14),
            background_validation=True,
        )
        model_ste = TinyTransformer(tiny_spec, seed=3)
        engine_ste = SynchronousEngine(
            model_ste, GraceAdam(model_ste.params, AdamConfig(lr=3e-3)),
            clip_norm=0.9, loss_scaler=LossScaler(init_scale=2.0**14),
        )
        for ids, tg in tiny_batches[:8]:
            engine_bg.train_step(ids, tg)
            engine_ste.train_step(ids, tg)
        engine_bg._validator.close()
        for k in model_bg.params:
            np.testing.assert_array_equal(
                model_bg.params[k], model_ste.params[k]
            )
