"""Tests for the SuperOffloadEngine facade and the Fig. 1 init() API."""

import numpy as np
import pytest

from repro.core import SuperOffloadConfig, SuperOffloadEngine, init
from repro.numeric.transformer import TinyTransformer
from repro.optim import GraceAdam, ReferenceAdam, RollbackStrategy


def test_init_returns_engine(tiny_spec):
    engine = init(TinyTransformer(tiny_spec))
    assert isinstance(engine, SuperOffloadEngine)
    assert engine.iteration == 0


def test_fig1_usage_pattern(tiny_spec, tiny_batches):
    """The paper's Fig. 1 loop, verbatim shape."""
    model = TinyTransformer(tiny_spec)
    engine = init(model)
    for ids, targets in tiny_batches[:5]:
        report = engine.train_step(ids, targets)
        assert np.isfinite(report.loss)
    assert engine.iteration == 5
    assert len(engine.history) == 5


def test_grace_adam_flag_selects_optimizer(tiny_spec):
    eng_on = SuperOffloadEngine(
        TinyTransformer(tiny_spec), SuperOffloadConfig(grace_adam=True)
    )
    eng_off = SuperOffloadEngine(
        TinyTransformer(tiny_spec), SuperOffloadConfig(grace_adam=False)
    )
    assert isinstance(eng_on.optimizer, GraceAdam)
    assert isinstance(eng_off.optimizer, ReferenceAdam)


def test_stv_flag_selects_engine(tiny_spec):
    from repro.core.stv import STVEngine, SynchronousEngine

    assert isinstance(
        SuperOffloadEngine(
            TinyTransformer(tiny_spec), SuperOffloadConfig(stv=True)
        )._inner,
        STVEngine,
    )
    assert isinstance(
        SuperOffloadEngine(
            TinyTransformer(tiny_spec), SuperOffloadConfig(stv=False)
        )._inner,
        SynchronousEngine,
    )


def test_stv_and_ste_engines_agree(tiny_spec, tiny_batches):
    """End-to-end via the public API: feature flag changes schedule, not
    numerics."""
    results = {}
    for stv in (True, False):
        model = TinyTransformer(tiny_spec, seed=3)
        engine = SuperOffloadEngine(
            model, SuperOffloadConfig(stv=stv, clip_norm=0.9)
        )
        for ids, tg in tiny_batches[:10]:
            engine.train_step(ids, tg)
        results[stv] = model.params
    for k in results[True]:
        np.testing.assert_array_equal(results[True][k], results[False][k])


def test_rollback_iteration_tracking(tiny_spec, tiny_batches):
    engine = init(
        TinyTransformer(tiny_spec),
        SuperOffloadConfig(clip_norm=1e-4),  # clip every iteration
    )
    for ids, tg in tiny_batches[:4]:
        engine.train_step(ids, tg)
    assert engine.rollback_count == 4
    assert engine.rollback_iterations() == [0, 1, 2, 3]
    assert len(engine.losses()) == 4


def test_loss_scale_exposed(tiny_spec, tiny_batches):
    engine = init(TinyTransformer(tiny_spec))
    assert engine.loss_scale == 2.0**16
    ids, tg = tiny_batches[0]
    engine.train_step(ids, tg)
    assert engine.loss_scale >= 1.0


def test_invalid_config():
    with pytest.raises(ValueError):
        SuperOffloadConfig(n_buckets=0)


def test_algebraic_rollback_config(tiny_spec, tiny_batches):
    engine = init(
        TinyTransformer(tiny_spec),
        SuperOffloadConfig(rollback=RollbackStrategy.ALGEBRAIC),
    )
    for ids, tg in tiny_batches[:3]:
        report = engine.train_step(ids, tg)
    assert engine.iteration == 3
