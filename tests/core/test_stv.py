"""Tests for speculation-then-validation: the §4.4 exactness claims.

The central property: STV training is *numerically equivalent* to
synchronize-then-execute training, including iterations that trigger
gradient clipping (rollback + re-execute) and fp16 overflow (rollback +
skip).
"""

import numpy as np
import pytest

from repro.core.stv import STVEngine, SynchronousEngine, _bucketize_names
from repro.numeric.transformer import TinyTransformer
from repro.optim import (
    AdamConfig,
    CPUAdam,
    GraceAdam,
    LossScaler,
    RollbackStrategy,
)


def build(engine_cls, tiny_spec, *, clip=0.9, n_buckets=3,
          rollback=RollbackStrategy.SNAPSHOT, seed=7, lr=3e-3):
    model = TinyTransformer(tiny_spec, seed=seed)
    opt = GraceAdam(model.params, AdamConfig(lr=lr, weight_decay=0.01))
    scaler = LossScaler(init_scale=2.0**14, growth_interval=8)
    if engine_cls is STVEngine:
        engine = STVEngine(model, opt, clip_norm=clip, loss_scaler=scaler,
                           n_buckets=n_buckets, rollback=rollback)
    else:
        engine = SynchronousEngine(model, opt, clip_norm=clip,
                                   loss_scaler=scaler)
    return model, engine


def run(engine, batches, injection=None):
    reports = []
    for i, (ids, tg) in enumerate(batches):
        engine.grad_injection = injection(i) if injection else 1.0
        reports.append(engine.train_step(ids, tg))
    engine.grad_injection = 1.0
    return reports


class TestBucketize:
    def test_buckets_partition_params(self, tiny_model):
        buckets = _bucketize_names(tiny_model.params, 4)
        assert len(buckets) == 4
        flat = [n for b in buckets for n in b]
        assert sorted(flat) == sorted(tiny_model.params)

    def test_reverse_order(self, tiny_model):
        buckets = _bucketize_names(tiny_model.params, 2)
        names = list(tiny_model.params)
        # first bucket holds the *last* parameters (backward production order)
        assert names[-1] in buckets[0]

    def test_single_bucket(self, tiny_model):
        buckets = _bucketize_names(tiny_model.params, 1)
        assert len(buckets) == 1

    def test_invalid(self, tiny_model):
        with pytest.raises(ValueError):
            _bucketize_names(tiny_model.params, 0)


class TestSTVEquivalence:
    def test_snapshot_rollback_bitwise_equal_to_ste(self, tiny_spec,
                                                    tiny_batches):
        m_ste, e_ste = build(SynchronousEngine, tiny_spec)
        m_stv, e_stv = build(STVEngine, tiny_spec)
        r_ste = run(e_ste, tiny_batches)
        r_stv = run(e_stv, tiny_batches)
        assert sum(r.clipped for r in r_ste) > 0  # stress actually occurred
        for k in m_ste.params:
            np.testing.assert_array_equal(m_ste.params[k], m_stv.params[k])
        # the event streams agree too
        assert [r.overflow for r in r_ste] == [r.overflow for r in r_stv]
        assert [r.clipped for r in r_ste] == [r.clipped for r in r_stv]

    def test_algebraic_rollback_equivalent_within_tolerance(
        self, tiny_spec, tiny_batches
    ):
        m_ste, e_ste = build(SynchronousEngine, tiny_spec)
        m_alg, e_alg = build(STVEngine, tiny_spec,
                             rollback=RollbackStrategy.ALGEBRAIC)
        run(e_ste, tiny_batches)
        run(e_alg, tiny_batches)
        for k in m_ste.params:
            np.testing.assert_allclose(
                m_ste.params[k], m_alg.params[k], atol=2e-4
            )

    def test_equivalence_without_clipping(self, tiny_spec, tiny_batches):
        m_ste, e_ste = build(SynchronousEngine, tiny_spec, clip=None)
        m_stv, e_stv = build(STVEngine, tiny_spec, clip=None)
        run(e_ste, tiny_batches)
        run(e_stv, tiny_batches)
        assert e_stv.rollback_count == 0
        for k in m_ste.params:
            np.testing.assert_array_equal(m_ste.params[k], m_stv.params[k])

    @pytest.mark.parametrize("n_buckets", [1, 2, 7])
    def test_equivalence_any_bucket_count(self, tiny_spec, tiny_batches,
                                          n_buckets):
        m_ste, e_ste = build(SynchronousEngine, tiny_spec)
        m_stv, e_stv = build(STVEngine, tiny_spec, n_buckets=n_buckets)
        run(e_ste, tiny_batches[:8])
        run(e_stv, tiny_batches[:8])
        for k in m_ste.params:
            np.testing.assert_array_equal(m_ste.params[k], m_stv.params[k])


class TestOverflowHandling:
    def test_injected_overflow_skips_iteration(self, tiny_spec, tiny_batches):
        m, engine = build(STVEngine, tiny_spec, clip=None)
        before = {k: v.copy() for k, v in m.params.items()}
        scale_before = engine.scaler.scale
        report = run(engine, tiny_batches[:1], injection=lambda i: 1e8)[0]
        assert report.overflow
        assert report.rolled_back or engine.rollback_count == 0
        # skipped: parameters unchanged, loss scale backed off
        for k in before:
            np.testing.assert_array_equal(m.params[k], before[k])
        assert engine.scaler.scale < scale_before

    def test_overflow_equivalence_ste_vs_stv(self, tiny_spec, tiny_batches):
        inject = lambda i: 1e8 if i in (2, 5) else 1.0
        m_ste, e_ste = build(SynchronousEngine, tiny_spec)
        m_stv, e_stv = build(STVEngine, tiny_spec)
        r_ste = run(e_ste, tiny_batches[:10], injection=inject)
        r_stv = run(e_stv, tiny_batches[:10], injection=inject)
        assert sum(r.overflow for r in r_ste) == 2
        assert sum(r.overflow for r in r_stv) == 2
        for k in m_ste.params:
            np.testing.assert_array_equal(m_ste.params[k], m_stv.params[k])

    def test_overflow_with_algebraic_rollback_stays_finite(
        self, tiny_spec, tiny_batches
    ):
        """The bucket-local guard keeps non-finite values out of the
        optimizer state so in-place rollback cannot be poisoned."""
        m, engine = build(STVEngine, tiny_spec,
                          rollback=RollbackStrategy.ALGEBRAIC)
        run(engine, tiny_batches[:6], injection=lambda i: 1e8 if i == 1 else 1.0)
        for v in m.params.values():
            assert np.all(np.isfinite(v))


class TestEngineBehaviour:
    def test_rollback_counter_counts_clip_and_overflow(self, tiny_spec,
                                                       tiny_batches):
        _, engine = build(STVEngine, tiny_spec, clip=1e-4)  # clip every step
        reports = run(engine, tiny_batches[:5])
        assert engine.rollback_count == 5
        assert all(r.rolled_back for r in reports)

    def test_training_progresses(self, tiny_spec, tiny_batches):
        _, engine = build(STVEngine, tiny_spec, clip=5.0, lr=5e-3)
        reports = run(engine, tiny_batches)
        first = np.mean([r.loss for r in reports[:4]])
        last = np.mean([r.loss for r in reports[-4:]])
        assert last < first

    def test_cpu_adam_rejected_for_stv(self, tiny_spec):
        model = TinyTransformer(tiny_spec, seed=0)
        opt = CPUAdam(model.params)
        with pytest.raises(TypeError, match="flat"):
            STVEngine(model, opt)

    def test_optimizer_must_wrap_model_params(self, tiny_spec):
        model = TinyTransformer(tiny_spec, seed=0)
        other = TinyTransformer(tiny_spec, seed=1)
        opt = GraceAdam(other.params)
        with pytest.raises(ValueError):
            STVEngine(model, opt)

    def test_fp16_copy_synced_after_step(self, tiny_spec, tiny_batches):
        m, engine = build(STVEngine, tiny_spec)
        run(engine, tiny_batches[:3])
        assert engine.mp.drift() <= float(
            max(np.abs(v).max() for v in m.params.values())
        ) * 2**-10 + 1e-6

    def test_grad_norm_reported(self, tiny_spec, tiny_batches):
        _, engine = build(STVEngine, tiny_spec, clip=None)
        report = run(engine, tiny_batches[:1])[0]
        assert report.grad_norm > 0
        assert report.loss_scale == 2.0**14
