"""Tests for the superchip-aware casting decision (§4.5)."""

import pytest

from repro.core.casting import choose_cast_path
from repro.hardware.casting import CastingModel
from repro.hardware.registry import (
    DGX2,
    GRACE_CPU,
    HOPPER_H100,
    c2c_bandwidth_model,
)
from repro.hardware.bandwidth import BandwidthModel

MiB = 1024**2


@pytest.fixture
def gh200_model() -> CastingModel:
    return CastingModel(HOPPER_H100, GRACE_CPU, c2c_bandwidth_model())


def test_aware_decision_picks_fp32_on_superchip(gh200_model):
    decision = choose_cast_path(256 * MiB, gh200_model)
    assert decision.path.path == "cast_gpu_move_fp32"
    assert decision.pinned_transfer
    assert decision.savings_seconds > 0


def test_unaware_decision_reproduces_greedy_edge_cut(gh200_model):
    decision = choose_cast_path(256 * MiB, gh200_model, superchip_aware=False)
    assert decision.path.path == "cast_cpu_move_fp16"
    assert not decision.pinned_transfer
    assert not decision.superchip_aware
    # the greedy choice costs more than the rejected alternative on GH200
    assert decision.savings_seconds < 0


def test_fp32_advantage_collapses_on_pcie(gh200_model):
    """The §4.5 thesis is architecture-dependence: on a DGX-2's PCIe link
    the fp32 path's margin shrinks sharply (and the historical fused
    CPU-Adam, which reads fp16 gradients directly, erases the remainder —
    which is why the PCIe-era greedy edge cut was right *there*)."""
    pcie = CastingModel(DGX2.gpu, DGX2.cpu, BandwidthModel(DGX2.c2c))
    gh_ratio = (
        gh200_model.cast_cpu_move_fp16(256 * MiB).total
        / gh200_model.cast_gpu_move_fp32(256 * MiB).total
    )
    pcie_ratio = (
        pcie.cast_cpu_move_fp16(256 * MiB).total
        / pcie.cast_gpu_move_fp32(256 * MiB).total
    )
    assert pcie_ratio < 0.75 * gh_ratio


def test_invalid_size(gh200_model):
    with pytest.raises(ValueError):
        choose_cast_path(0, gh200_model)


def test_savings_consistency(gh200_model):
    d = choose_cast_path(64 * MiB, gh200_model)
    assert d.savings_seconds == pytest.approx(
        d.alternative.total - d.path.total
    )
