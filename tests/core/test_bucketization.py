"""Tests for 64 MB bucketization and repartitioning (§4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bucketization import (
    build_bucket_plan,
    bucket_transfer_sizes,
    grid_search_gpu_buckets,
    repartition_headroom,
)
from repro.models.config import MODEL_CONFIG_TABLE
from repro.models.estimators import param_count
from repro.sim.calibration import BUCKET_BYTES

CFG = MODEL_CONFIG_TABLE[1]


class TestBucketPlan:
    def test_buckets_cover_all_params(self):
        plan = build_bucket_plan(CFG)
        assert sum(b.n_params for b in plan.buckets) == param_count(CFG)

    def test_default_bucket_is_64mb_fp16(self):
        plan = build_bucket_plan(CFG)
        full = [b for b in plan.buckets[:-1]]
        for b in full:
            assert b.grad_bytes_fp16 == BUCKET_BYTES

    def test_bucket_count_matches_size(self):
        plan = build_bucket_plan(CFG)
        expected = -(-param_count(CFG) // (BUCKET_BYTES // 2))
        assert plan.n_buckets == expected

    def test_tail_buckets_marked_on_gpu(self):
        plan = build_bucket_plan(CFG, n_gpu_buckets=3)
        assert len(plan.gpu_buckets) == 3
        # the *last produced* buckets stay on GPU
        gpu_idx = sorted(b.index for b in plan.gpu_buckets)
        assert gpu_idx == [plan.n_buckets - 3, plan.n_buckets - 2,
                           plan.n_buckets - 1]

    def test_gpu_cpu_param_split(self):
        plan = build_bucket_plan(CFG, n_gpu_buckets=2)
        assert plan.gpu_params + plan.cpu_params == param_count(CFG)
        assert plan.gpu_optimizer_state_bytes() == 12 * plan.gpu_params

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_bucket_plan(CFG, bucket_bytes=1)
        with pytest.raises(ValueError):
            build_bucket_plan(CFG, n_gpu_buckets=10**6)

    def test_transfer_sizes_fp32_doubles_fp16(self):
        plan = build_bucket_plan(CFG, n_gpu_buckets=1)
        fp16 = bucket_transfer_sizes(plan, fp32=False)
        fp32 = bucket_transfer_sizes(plan, fp32=True)
        assert len(fp16) == plan.n_buckets - 1
        assert all(b == 2 * a for a, b in zip(fp16, fp32))

    @given(st.integers(min_value=2, max_value=512))
    @settings(max_examples=20)
    def test_any_bucket_size_covers_params(self, mib):
        plan = build_bucket_plan(CFG, bucket_bytes=mib * 1024**2)
        assert sum(b.n_params for b in plan.buckets) == param_count(CFG)


class TestRepartition:
    def test_headroom_sign_encodes_eq4(self):
        """Eq. 4-5: enough GPU-side tail work hides the CPU round trip."""
        roundtrip = dict(
            move_grad_s=0.001, step_cpu_s=0.003, move_param_s=0.001
        )
        tight = repartition_headroom(
            **roundtrip, bwd_per_bucket_s=0.004, step_gpu_per_bucket_s=0.0005,
            n_gpu_buckets=1,
        )
        assert tight < 0  # one tail bucket is not enough
        loose = repartition_headroom(
            **roundtrip, bwd_per_bucket_s=0.004, step_gpu_per_bucket_s=0.0005,
            n_gpu_buckets=2,
        )
        assert loose > 0

    def test_headroom_monotone_in_n(self):
        values = [
            repartition_headroom(0.001, 0.003, 0.001, 0.004, 0.0005, n)
            for n in range(5)
        ]
        assert values == sorted(values)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            repartition_headroom(0, 0, 0, 0, 0, -1)


class TestGridSearch:
    def test_finds_convex_minimum(self):
        best, val = grid_search_gpu_buckets(
            32, objective=lambda n: (n - 7) ** 2 + 1.0
        )
        assert best == 7
        assert val == 1.0

    def test_respects_memory_cap(self):
        best, _ = grid_search_gpu_buckets(
            32, objective=lambda n: (n - 7) ** 2, max_gpu_buckets=3
        )
        assert best == 3

    def test_zero_can_win(self):
        best, _ = grid_search_gpu_buckets(8, objective=lambda n: float(n))
        assert best == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            grid_search_gpu_buckets(0, objective=lambda n: 0.0)
