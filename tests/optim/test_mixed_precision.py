"""Tests for loss scaling, gradient health checks, and the master copy."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.optim import (
    GradientHealth,
    LossScaler,
    MixedPrecisionState,
    check_gradients,
    clip_coefficient,
    global_grad_norm,
)


class TestGlobalNorm:
    def test_norm_over_multiple_tensors(self):
        grads = {
            "a": np.array([3.0], dtype=np.float32),
            "b": np.array([4.0], dtype=np.float32),
        }
        assert global_grad_norm(grads) == pytest.approx(5.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_norm_scales_linearly(self, s):
        g = {"a": np.arange(5, dtype=np.float32)}
        g2 = {"a": (np.arange(5) * s).astype(np.float32)}
        assert global_grad_norm(g2) == pytest.approx(
            s * global_grad_norm(g), rel=1e-5
        )


class TestCheckGradients:
    def test_healthy(self):
        h = check_gradients({"a": np.ones(3, dtype=np.float32)}, clip_norm=10.0)
        assert h.speculation_valid
        assert not h.has_nan_or_inf and not h.clip_triggered

    def test_nan_detected(self):
        h = check_gradients({"a": np.array([1.0, np.nan])}, clip_norm=10.0)
        assert h.has_nan_or_inf
        assert not h.speculation_valid

    def test_inf_detected(self):
        h = check_gradients({"a": np.array([np.inf])}, clip_norm=None)
        assert h.has_nan_or_inf

    def test_clip_triggered(self):
        h = check_gradients({"a": np.full(100, 10.0)}, clip_norm=1.0)
        assert h.clip_triggered and not h.has_nan_or_inf
        assert not h.speculation_valid

    def test_no_clip_threshold(self):
        h = check_gradients({"a": np.full(100, 10.0)}, clip_norm=None)
        assert h.speculation_valid


class TestClipCoefficient:
    def test_under_threshold_is_identity(self):
        assert clip_coefficient(0.5, 1.0) == 1.0

    def test_over_threshold_rescales(self):
        coef = clip_coefficient(10.0, 1.0)
        assert coef == pytest.approx(0.1, rel=1e-4)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            clip_coefficient(1.0, 0.0)


class TestLossScaler:
    def test_backoff_on_overflow(self):
        s = LossScaler(init_scale=1024.0)
        s.update(found_overflow=True)
        assert s.scale == 512.0

    def test_growth_after_interval(self):
        s = LossScaler(init_scale=4.0, growth_interval=3)
        for _ in range(3):
            s.update(found_overflow=False)
        assert s.scale == 8.0

    def test_overflow_resets_growth_counter(self):
        s = LossScaler(init_scale=4.0, growth_interval=2)
        s.update(False)
        s.update(True)
        s.update(False)
        assert s.scale == 2.0  # halved, no growth yet

    def test_min_scale_floor(self):
        s = LossScaler(init_scale=2.0, min_scale=1.0)
        for _ in range(10):
            s.update(True)
        assert s.scale == 1.0

    def test_unscale_divides_in_place(self):
        s = LossScaler(init_scale=8.0)
        g = {"a": np.full(3, 16.0, dtype=np.float32)}
        s.unscale(g)
        np.testing.assert_allclose(g["a"], 2.0)

    def test_scale_loss(self):
        s = LossScaler(init_scale=4.0)
        assert s.scale_loss(2.5) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0)
        with pytest.raises(ValueError):
            LossScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            LossScaler(backoff_factor=1.5)


class TestMixedPrecisionState:
    def test_fp16_copy_created_on_init(self, rng):
        master = {"w": rng.standard_normal(8).astype(np.float32)}
        mp = MixedPrecisionState(master_fp32=master)
        assert mp.model_fp16["w"].dtype == np.float16

    def test_drift_zero_after_sync(self, rng):
        master = {"w": rng.standard_normal(8).astype(np.float32)}
        mp = MixedPrecisionState(master_fp32=master)
        assert mp.drift() <= np.abs(master["w"]).max() * 2**-10

    def test_drift_detects_missed_sync(self, rng):
        master = {"w": rng.standard_normal(8).astype(np.float32)}
        mp = MixedPrecisionState(master_fp32=master)
        master["w"] += 1.0
        assert mp.drift() >= 0.9
        mp.sync_model_copy()
        assert mp.drift() < 0.01

    def test_partial_sync(self, rng):
        master = {
            "a": rng.standard_normal(4).astype(np.float32),
            "b": rng.standard_normal(4).astype(np.float32),
        }
        mp = MixedPrecisionState(master_fp32=master)
        master["a"] += 1.0
        master["b"] += 1.0
        mp.sync_model_copy(names=["a"])
        a_drift = np.abs(
            master["a"] - mp.model_fp16["a"].astype(np.float32)
        ).max()
        b_drift = np.abs(
            master["b"] - mp.model_fp16["b"].astype(np.float32)
        ).max()
        assert a_drift < 0.01 and b_drift >= 0.9

    def test_requires_fp32_master(self):
        with pytest.raises(TypeError):
            MixedPrecisionState(master_fp32={"w": np.zeros(2, np.float16)})
