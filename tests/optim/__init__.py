"""Test package."""
