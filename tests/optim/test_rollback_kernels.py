"""Tests for rollback strategies and the Table 3 latency models."""

import numpy as np
import pytest

from repro.optim import (
    AdamConfig,
    AlgebraicRollback,
    GraceAdam,
    RollbackStrategy,
    SnapshotRollback,
    adam_latency_seconds,
    adam_latency_table,
    make_rollback,
    rollback_spill_planes,
)
from repro.optim.kernels import compute_model_for, paper_table3_reference
from repro.tensors.spill import SpillArena


def setup_opt(rng):
    params = {"w": rng.standard_normal(32).astype(np.float32)}
    opt = GraceAdam(params, AdamConfig(lr=1e-2))
    opt.step({"w": rng.standard_normal(32).astype(np.float32)})  # warm state
    return opt


class TestSnapshotRollback:
    def test_bit_exact_restore(self, rng):
        opt = setup_opt(rng)
        rb = SnapshotRollback(opt)
        grads = {"w": rng.standard_normal(32).astype(np.float32)}
        before = opt.params["w"].copy()
        rb.capture(grads)
        opt.step(grads)
        rb.rollback(grads)
        np.testing.assert_array_equal(opt.params["w"], before)
        assert opt.step_count == 1

    def test_rollback_without_capture_rejected(self, rng):
        rb = SnapshotRollback(setup_opt(rng))
        with pytest.raises(RuntimeError):
            rb.rollback({"w": np.zeros(32, dtype=np.float32)})

    def test_scratch_accounting(self, rng):
        opt = setup_opt(rng)
        rb = SnapshotRollback(opt)
        grads = {"w": np.zeros(32, dtype=np.float32)}
        assert rb.scratch_bytes(grads) == 3 * 32 * 4

    def test_discard_releases_snapshot(self, rng):
        opt = setup_opt(rng)
        rb = SnapshotRollback(opt)
        grads = {"w": np.zeros(32, dtype=np.float32)}
        rb.capture(grads)
        rb.discard()
        with pytest.raises(RuntimeError):
            rb.rollback(grads)


class TestAlgebraicRollback:
    def test_restore_within_ulps(self, rng):
        opt = setup_opt(rng)
        rb = AlgebraicRollback(opt)
        grads = {"w": rng.standard_normal(32).astype(np.float32)}
        before = opt.params["w"].copy()
        rb.capture(grads)
        opt.step(grads)
        rb.rollback(grads)
        np.testing.assert_allclose(opt.params["w"], before, atol=1e-5)
        assert rb.scratch_bytes(grads) == 0  # the paper's in-place claim

    def test_double_rollback_rejected(self, rng):
        opt = setup_opt(rng)
        rb = AlgebraicRollback(opt)
        grads = {"w": rng.standard_normal(32).astype(np.float32)}
        rb.capture(grads)
        opt.step(grads)
        rb.rollback(grads)
        with pytest.raises(RuntimeError):
            rb.rollback(grads)


class TestSnapshotCutoff:
    """The range-memcpy path only engages above SMALL_SNAPSHOT_CUTOFF —
    below it per-tensor copies are allocator-cheap and the range path's
    span bookkeeping only ever costs (the 65k bench row regression)."""

    def _arena_opt(self, rng, n):
        import repro.optim.rollback as rollback_mod
        from repro.tensors.arena import FlatArena

        params = {"w": rng.standard_normal(n).astype(np.float32)}
        FlatArena.adopt(params)
        return rollback_mod, GraceAdam(params, AdamConfig(lr=1e-2))

    def test_small_bucket_takes_per_tensor_path(self, rng):
        rollback_mod, opt = self._arena_opt(rng, 64)
        rb = SnapshotRollback(opt)
        grads = {"w": rng.standard_normal(64).astype(np.float32)}
        rb.capture(grads)
        assert isinstance(rb._snapshot, dict)  # per-tensor, below cutoff
        rb.discard()

    def test_large_bucket_takes_arena_path(self, rng, monkeypatch):
        rollback_mod, opt = self._arena_opt(rng, 256)
        monkeypatch.setattr(rollback_mod, "SMALL_SNAPSHOT_CUTOFF", 128)
        rb = SnapshotRollback(opt)
        grads = {"w": rng.standard_normal(256).astype(np.float32)}
        before = opt.params["w"].copy()
        rb.capture(grads)
        assert isinstance(rb._snapshot, rollback_mod._ArenaSnapshot)
        opt.step(grads)
        rb.rollback(grads)
        np.testing.assert_array_equal(opt.params["w"], before)

    def test_both_paths_restore_identically(self, rng, monkeypatch):
        """Cutoff placement is pure perf policy: either path restores the
        exact same bits, so moving the cutoff can never change results."""
        import repro.optim.rollback as rollback_mod

        results = {}
        for cutoff in (1, 1 << 30):  # force arena path, then per-tensor
            r = np.random.default_rng(7)
            mod, opt = self._arena_opt(r, 256)
            monkeypatch.setattr(rollback_mod, "SMALL_SNAPSHOT_CUTOFF", cutoff)
            rb = SnapshotRollback(opt)
            grads = {"w": r.standard_normal(256).astype(np.float32)}
            opt.step(grads)
            rb.capture(grads)
            opt.step(grads)
            rb.rollback(grads)
            results[cutoff] = (opt.params["w"].copy(),
                               opt.state["w"].m.copy(),
                               opt.state["w"].v.copy())
        for a, b in zip(results[1], results[1 << 30]):
            np.testing.assert_array_equal(a, b)

    def test_scratch_persists_across_captures(self, rng, monkeypatch):
        """Steady-state captures must reuse the scratch block — its
        persistence is where the large-bucket speedup comes from."""
        rollback_mod, opt = self._arena_opt(rng, 256)
        monkeypatch.setattr(rollback_mod, "SMALL_SNAPSHOT_CUTOFF", 128)
        rb = SnapshotRollback(opt)
        grads = {"w": rng.standard_normal(256).astype(np.float32)}
        rb.capture(grads)
        first = rb._scratch
        rb.discard()
        rb.capture(grads)
        assert rb._scratch is first
        rb.discard()


class TestDurableSnapshots:
    """Arena-range captures optionally stream to a spill arena — the
    snapshot becomes durable while the speculative step runs."""

    def _arena_opt(self, rng, n):
        from repro.tensors.arena import FlatArena

        params = {"w": rng.standard_normal(n).astype(np.float32)}
        FlatArena.adopt(params)
        return GraceAdam(params, AdamConfig(lr=1e-2))

    def test_capture_streams_planes_to_disk(self, rng, tmp_path,
                                            monkeypatch):
        import repro.optim.rollback as rollback_mod

        monkeypatch.setattr(rollback_mod, "SMALL_SNAPSHOT_CUTOFF", 128)
        opt = self._arena_opt(rng, 256)
        grads = {"w": rng.standard_normal(256).astype(np.float32)}
        opt.step(grads)  # non-trivial (p, m, v)
        with SpillArena(
            tmp_path / "rb", rollback_spill_planes(opt)
        ) as spill:
            rb = SnapshotRollback(opt, spill=spill)
            want = (opt.params["w"].copy(), opt.state["w"].m.copy(),
                    opt.state["w"].v.copy())
            rb.capture(grads)
            lo, hi = 0, 256
            assert rb.spilled_range() == (lo, hi)
            opt.step(grads)  # the speculative step the writes overlap
            rb.rollback(grads)  # settles the spill tickets
            for plane, ref in zip(("p", "m", "v"), want):
                got = np.empty(hi - lo, dtype=np.float32)
                spill.read(f"rollback.{plane}", lo, hi, got)
                assert np.array_equal(got, ref), plane

    def test_spilled_bytes_match_scratch(self, rng, tmp_path, monkeypatch):
        import repro.optim.rollback as rollback_mod

        monkeypatch.setattr(rollback_mod, "SMALL_SNAPSHOT_CUTOFF", 128)
        opt = self._arena_opt(rng, 256)
        grads = {"w": rng.standard_normal(256).astype(np.float32)}
        with SpillArena(
            tmp_path / "rb", rollback_spill_planes(opt)
        ) as spill:
            rb = SnapshotRollback(opt, spill=spill)
            rb.capture(grads)
            rb.discard()  # settles tickets too
            assert spill.bytes_written == rb.scratch_bytes(grads)

    def test_per_tensor_capture_does_not_spill(self, rng, tmp_path):
        opt = self._arena_opt(rng, 64)  # below the cutoff
        grads = {"w": rng.standard_normal(64).astype(np.float32)}
        with SpillArena(
            tmp_path / "rb", rollback_spill_planes(opt)
        ) as spill:
            rb = SnapshotRollback(opt, spill=spill)
            rb.capture(grads)
            rb.discard()
            assert rb.spilled_range() is None
            assert spill.bytes_written == 0

    def test_schema_requires_arena(self):
        class NoArena:
            arena = None

        with pytest.raises(ValueError, match="arena"):
            rollback_spill_planes(NoArena())

    def test_schema_covers_all_planes(self, rng):
        opt = self._arena_opt(rng, 64)
        schema = rollback_spill_planes(opt)
        total = opt.arena.layout.total
        assert schema == {
            "rollback.p": total, "rollback.m": total, "rollback.v": total,
        }


def test_factory(rng):
    opt = setup_opt(rng)
    assert isinstance(
        make_rollback(RollbackStrategy.SNAPSHOT, opt), SnapshotRollback
    )
    assert isinstance(
        make_rollback(RollbackStrategy.ALGEBRAIC, opt), AlgebraicRollback
    )


class TestLatencyModels:
    def test_table3_shape(self):
        rows = adam_latency_table()
        assert [r["params_billion"] for r in rows] == [1, 2, 4, 8]
        for row in rows:
            assert row["grace_adam"] < row["cpu_adam"] < row["pt_cpu"]
            assert row["speedup_vs_pt"] > 3.0
            assert 1.25 <= row["speedup_vs_cpu_adam"] <= 1.5

    def test_latency_linear_in_params(self):
        t1 = adam_latency_seconds(int(1e9), "grace_adam")
        t8 = adam_latency_seconds(int(8e9), "grace_adam")
        assert t8 == pytest.approx(8 * t1, rel=1e-6)

    @pytest.mark.parametrize("kernel", ["pt_cpu", "cpu_adam", "grace_adam"])
    def test_within_20pct_of_paper_measurements(self, kernel):
        model_rows = {r["params_billion"]: r for r in adam_latency_table()}
        for paper in paper_table3_reference():
            ours = model_rows[paper["params_billion"]][kernel]
            assert ours == pytest.approx(paper[kernel], rel=0.20), (
                kernel, paper["params_billion"]
            )

    def test_compute_model_cached_per_spec(self):
        import dataclasses

        from repro.hardware.registry import GRACE_CPU

        first = compute_model_for(GRACE_CPU)
        assert compute_model_for(GRACE_CPU) is first
        # an equal-but-distinct spec hits the same cache entry
        clone = dataclasses.replace(GRACE_CPU)
        assert clone is not GRACE_CPU and clone == GRACE_CPU
        assert compute_model_for(clone) is first
