"""Tests for the three Adam implementations (Table 3 numerics)."""

import numpy as np
import pytest

from repro.optim import (
    AdamConfig,
    CPUAdam,
    GraceAdam,
    ReferenceAdam,
    make_optimizer,
)


def make_params(rng, n_tensors=4):
    return {
        f"p{i}": rng.standard_normal((5, 7)).astype(np.float32)
        for i in range(n_tensors)
    }


def make_grads(rng, params):
    return {k: rng.standard_normal(v.shape).astype(np.float32)
            for k, v in params.items()}


@pytest.mark.parametrize("kernel", ["pt_cpu", "cpu_adam", "grace_adam"])
def test_factory(kernel, rng):
    opt = make_optimizer(kernel, make_params(rng))
    assert opt.kernel_name == kernel


def test_factory_unknown(rng):
    with pytest.raises(KeyError):
        make_optimizer("sgd", make_params(rng))


def test_all_implementations_bitwise_identical(rng):
    """The Table 3 implementations differ in execution strategy only."""
    cfg = AdamConfig(lr=3e-3, weight_decay=0.01)
    base = make_params(rng)
    opts = {
        "ref": ReferenceAdam({k: v.copy() for k, v in base.items()}, cfg),
        "cpu": CPUAdam({k: v.copy() for k, v in base.items()}, cfg),
        "grace": GraceAdam({k: v.copy() for k, v in base.items()}, cfg,
                           tile_size=8),
    }
    for _ in range(5):
        grads = make_grads(rng, base)
        for opt in opts.values():
            opt.step({k: g.copy() for k, g in grads.items()})
    for k in base:
        np.testing.assert_array_equal(
            opts["ref"].params[k], opts["cpu"].params[k]
        )
        np.testing.assert_array_equal(
            opts["ref"].params[k], opts["grace"].params[k]
        )


def test_grace_tiling_independent_of_tile_size(rng):
    cfg = AdamConfig(lr=1e-2)
    base = make_params(rng)
    grads = make_grads(rng, base)
    results = []
    for tile in (1, 3, 16, 10**6):
        opt = GraceAdam({k: v.copy() for k, v in base.items()}, cfg,
                        tile_size=tile, vector_length=1)
        opt.step({k: g.copy() for k, g in grads.items()})
        results.append(opt.params)
    for other in results[1:]:
        for k in base:
            np.testing.assert_array_equal(results[0][k], other[k])


def test_grace_tile_rounds_to_vector_length():
    params = {"p": np.zeros(100, dtype=np.float32)}
    opt = GraceAdam(params, tile_size=100, vector_length=16)
    assert opt.tile_size == 96


def test_subset_step_only_touches_subset(rng):
    opt = GraceAdam(make_params(rng), AdamConfig(lr=0.1))
    before = {k: v.copy() for k, v in opt.params.items()}
    opt.step({"p0": np.ones_like(opt.params["p0"])})
    assert not np.allclose(opt.params["p0"], before["p0"])
    np.testing.assert_array_equal(opt.params["p1"], before["p1"])
    assert opt.state["p0"].step == 1
    assert opt.state["p1"].step == 0


def test_cpu_adam_requires_full_gradient_set(rng):
    opt = CPUAdam(make_params(rng))
    with pytest.raises(KeyError, match="full gradient set"):
        opt.step({"p0": np.ones_like(opt.params["p0"])})


def test_unknown_gradient_key_rejected(rng):
    opt = GraceAdam(make_params(rng))
    with pytest.raises(KeyError, match="unknown"):
        opt.step({"zzz": np.ones(3, dtype=np.float32)})


def test_empty_step_rejected(rng):
    opt = GraceAdam(make_params(rng))
    with pytest.raises(ValueError):
        opt.step({})


def test_invert_step_roundtrip_all_impls(rng):
    cfg = AdamConfig(lr=1e-2)
    base = make_params(rng)
    grads = make_grads(rng, base)
    for cls in (ReferenceAdam, GraceAdam, CPUAdam):
        opt = cls({k: v.copy() for k, v in base.items()}, cfg)
        warm = make_grads(rng, base)
        opt.step(warm)
        snapshot = {k: v.copy() for k, v in opt.params.items()}
        opt.step(grads)
        opt.invert_step(grads)
        assert opt.step_count == 1
        for k in base:
            np.testing.assert_allclose(
                opt.params[k], snapshot[k], atol=1e-5, rtol=1e-5
            )


def test_cpu_adam_flat_mirror_coherent_after_invert(rng):
    cfg = AdamConfig(lr=1e-2)
    opt = CPUAdam(make_params(rng), cfg)
    grads = make_grads(rng, opt.params)
    opt.step(grads)
    opt.invert_step(grads)
    # A subsequent step must produce the same result as a fresh optimizer.
    grads2 = make_grads(rng, opt.params)
    opt.step(grads2)
    fresh = CPUAdam({k: v.copy() for k, v in opt.params.items()}, cfg)
    assert opt._flat_step == 1


def test_requires_fp32_masters(rng):
    with pytest.raises(TypeError):
        GraceAdam({"p": np.zeros(3, dtype=np.float16)})


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        GraceAdam({})
