"""Tests for the functional Adam kernel and its inverse."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.optim import AdamConfig, AdamParamState, adam_apply, adam_invert


def test_config_validation():
    with pytest.raises(ValueError):
        AdamConfig(beta1=0.0)
    with pytest.raises(ValueError):
        AdamConfig(beta2=1.0)
    with pytest.raises(ValueError):
        AdamConfig(eps=0.0)
    with pytest.raises(ValueError):
        AdamConfig(lr=1.0, weight_decay=1.0)  # lr*wd >= 1 breaks inversion


def test_single_step_matches_hand_computation():
    cfg = AdamConfig(lr=0.1, beta1=0.9, beta2=0.99, eps=1e-8)
    p = np.array([1.0], dtype=np.float32)
    g = np.array([2.0], dtype=np.float32)
    st_ = AdamParamState.zeros_like(p)
    adam_apply(p, g, st_, cfg)
    m = 0.1 * 2.0
    v = 0.01 * 4.0
    m_hat = m / (1 - 0.9)
    v_hat = v / (1 - 0.99)
    expected = 1.0 - 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
    assert p[0] == pytest.approx(expected, rel=1e-6)
    assert st_.step == 1


def test_requires_fp32():
    cfg = AdamConfig()
    p = np.ones(2, dtype=np.float16)
    g = np.ones(2, dtype=np.float32)
    with pytest.raises(TypeError):
        adam_apply(p, g, AdamParamState.zeros_like(p), cfg)


def test_zero_gradient_with_decay_still_shrinks():
    cfg = AdamConfig(lr=0.01, weight_decay=0.1)
    p = np.array([5.0], dtype=np.float32)
    g = np.zeros(1, dtype=np.float32)
    adam_apply(p, g, AdamParamState.zeros_like(p), cfg)
    assert 0 < p[0] < 5.0


def test_invert_before_step_rejected():
    cfg = AdamConfig()
    p = np.ones(2, dtype=np.float32)
    with pytest.raises(ValueError):
        adam_invert(p, p.copy(), AdamParamState.zeros_like(p), cfg)


@given(
    arrays(np.float32, (6,), elements=st.floats(-2, 2, width=32)),
    arrays(np.float32, (6,), elements=st.floats(-2, 2, width=32)),
    st.floats(min_value=0.0, max_value=0.1),
)
@settings(max_examples=60)
def test_invert_recovers_state(p0, g, wd):
    """The §4.4 in-place rollback: apply then invert returns to start
    within a few fp32 ulps."""
    cfg = AdamConfig(lr=1e-2, weight_decay=wd)
    p = p0.copy()
    state = AdamParamState.zeros_like(p)
    # advance a couple of steps to get non-trivial moments
    warm = np.ones_like(p) * np.float32(0.3)
    adam_apply(p, warm, state, cfg)
    adam_apply(p, warm, state, cfg)
    snap_p, snap_m, snap_v = p.copy(), state.m.copy(), state.v.copy()
    adam_apply(p, g, state, cfg)
    adam_invert(p, g, state, cfg)
    assert state.step == 2
    np.testing.assert_allclose(p, snap_p, atol=5e-6, rtol=1e-5)
    np.testing.assert_allclose(state.m, snap_m, atol=5e-6, rtol=1e-5)
    np.testing.assert_allclose(state.v, snap_v, atol=5e-6, rtol=1e-5)


def test_invert_then_reapply_clipped_matches_direct():
    """Rollback + re-execute with clipped gradients ~= stepping with the
    clipped gradients directly (STV scenario 2)."""
    cfg = AdamConfig(lr=5e-3)
    rng = np.random.default_rng(0)
    g = rng.standard_normal(16).astype(np.float32) * 10
    clipped = (g * np.float32(0.1)).astype(np.float32)

    p_a = rng.standard_normal(16).astype(np.float32)
    p_b = p_a.copy()
    st_a = AdamParamState.zeros_like(p_a)
    st_b = AdamParamState.zeros_like(p_b)

    adam_apply(p_a, g, st_a, cfg)        # speculative
    adam_invert(p_a, g, st_a, cfg)       # rollback
    adam_apply(p_a, clipped, st_a, cfg)  # re-execute
    adam_apply(p_b, clipped, st_b, cfg)  # direct
    np.testing.assert_allclose(p_a, p_b, atol=1e-6, rtol=1e-5)


def test_bias_correction_off():
    cfg = AdamConfig(bias_correction=False, lr=0.1)
    p = np.array([0.0], dtype=np.float32)
    g = np.array([1.0], dtype=np.float32)
    st_ = AdamParamState.zeros_like(p)
    adam_apply(p, g, st_, cfg)
    # m = 0.1, v = 0.001; update = 0.1/(sqrt(0.001)+eps)
    assert p[0] == pytest.approx(-0.1 * 0.1 / np.sqrt(0.001), rel=1e-4)
