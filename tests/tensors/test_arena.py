"""Property and contract tests for the flat parameter arena."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim.adam import AdamConfig
from repro.optim.implementations import GraceAdam
from repro.parallel.zero import ZeroShardedAdam
from repro.telemetry import Telemetry
from repro.tensors.arena import ArenaLayout, FlatArena
from repro.tensors.errors import TensorValidationError, ensure_dense_fp32


def _shapes_strategy():
    shape = st.lists(
        st.integers(min_value=1, max_value=5), min_size=1, max_size=2
    ).map(tuple)
    return st.lists(shape, min_size=1, max_size=6).map(
        lambda shapes: {f"t{i}": s for i, s in enumerate(shapes)}
    )


class TestLayout:
    def test_padding_to_world_size(self):
        layout = ArenaLayout.plan({"a": (22,)}, world_size=4)
        assert layout.unpadded == 22
        assert layout.total == 24

    def test_offsets_are_packed(self):
        layout = ArenaLayout.plan({"a": (2, 3), "b": (5,), "c": (1,)})
        assert layout.offsets == (0, 6, 11)
        assert layout.total == layout.unpadded == 12

    def test_empty_rejected(self):
        with pytest.raises(TensorValidationError):
            ArenaLayout.plan({})


class TestAliasingInvariant:
    @given(shapes=_shapes_strategy(), world=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_view_writes_hit_flat_and_back(self, shapes, world):
        arena = FlatArena.zeros(shapes, world_size=world)
        rng = np.random.default_rng(0)
        # view -> flat
        for name, view in arena.views.items():
            view[...] = rng.standard_normal(view.shape).astype(np.float32)
        rebuilt = np.concatenate(
            [arena.views[n].ravel() for n in arena.layout.names]
        )
        np.testing.assert_array_equal(
            arena.flat[: arena.layout.unpadded], rebuilt
        )
        # flat -> view
        arena.flat[...] = np.arange(arena.layout.total, dtype=np.float32)
        for name, off, shape in zip(
            arena.layout.names, arena.layout.offsets, arena.layout.shapes
        ):
            size = int(np.prod(shape))
            np.testing.assert_array_equal(
                arena.views[name].ravel(),
                np.arange(off, off + size, dtype=np.float32),
            )

    @given(shapes=_shapes_strategy(), world=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_padding_never_leaks_into_views(self, shapes, world):
        arena = FlatArena.zeros(shapes, world_size=world)
        pad = arena.layout.total - arena.layout.unpadded
        # poison the pad region; no view may see it
        arena.flat[arena.layout.unpadded:] = np.float32(np.nan)
        for view in arena.views.values():
            assert np.all(np.isfinite(view))
        # and writes through views never touch the pad
        for view in arena.views.values():
            view[...] = 1.0
        if pad:
            assert np.all(np.isnan(arena.flat[arena.layout.unpadded:]))

    def test_shards_tile_the_flat_buffer(self):
        arena = FlatArena.zeros({"a": (10,)}, world_size=4)
        arena.flat[...] = np.arange(12, dtype=np.float32)
        gathered = np.concatenate([arena.shard(r) for r in range(4)])
        np.testing.assert_array_equal(gathered, arena.flat)
        assert all(arena.shard(r).base is not None for r in range(4))


class TestWrapAdopt:
    def test_adopt_rebinds_and_wrap_roundtrips(self, rng):
        params = {
            "w": rng.standard_normal((3, 4)).astype(np.float32),
            "b": rng.standard_normal(7).astype(np.float32),
        }
        originals = {k: v.copy() for k, v in params.items()}
        arena = FlatArena.adopt(params)
        for name in params:
            assert np.shares_memory(params[name], arena.flat)
            np.testing.assert_array_equal(params[name], originals[name])
        wrapped = FlatArena.wrap(params)
        assert wrapped is not None
        assert wrapped.flat.base is arena.flat.base or np.shares_memory(
            wrapped.flat, arena.flat
        )

    def test_wrap_rejects_unrelated_dicts(self, rng):
        params = {
            "w": rng.standard_normal(8).astype(np.float32),
            "b": rng.standard_normal(8).astype(np.float32),
        }
        assert FlatArena.wrap(params) is None

    def test_wrap_rejects_wrong_padding(self, rng):
        params = {"w": rng.standard_normal(10).astype(np.float32)}
        arena = FlatArena.adopt(params, world_size=4)  # total 12
        assert FlatArena.wrap(params, world_size=1) is None
        assert FlatArena.wrap(params, world_size=4) is not None
        assert arena.layout.total == 12

    def test_adopt_validates_inputs(self):
        with pytest.raises(TensorValidationError):
            FlatArena.adopt({"w": [1.0, 2.0]})
        with pytest.raises(TensorValidationError):
            FlatArena.adopt({"w": np.zeros(4, dtype=np.float64)})
        strided = np.zeros((4, 4), dtype=np.float32)[:, ::2]
        with pytest.raises(TensorValidationError):
            FlatArena.adopt({"w": strided})


class TestValidation:
    def test_ensure_dense_fp32_messages(self):
        with pytest.raises(TensorValidationError, match="numpy ndarray"):
            ensure_dense_fp32("x", 3.0)
        with pytest.raises(TensorValidationError, match="fp32"):
            ensure_dense_fp32("x", np.zeros(2, dtype=np.float16))
        with pytest.raises(TensorValidationError, match="contiguous"):
            ensure_dense_fp32("x", np.zeros((4, 4), dtype=np.float32).T)
        with pytest.raises(TensorValidationError, match="shape"):
            ensure_dense_fp32("x", np.zeros(2, dtype=np.float32), shape=(3,))

    def test_validation_error_is_type_and_value_error(self):
        assert issubclass(TensorValidationError, TypeError)
        assert issubclass(TensorValidationError, ValueError)

    def test_optimizer_rejects_mismatched_grad_shape(self, rng):
        params = {"w": rng.standard_normal(8).astype(np.float32)}
        opt = GraceAdam(params, AdamConfig())
        with pytest.raises(TensorValidationError, match="shape"):
            opt.step({"w": np.zeros(5, dtype=np.float32)})

    def test_fill_from_rejects_wrong_sets(self):
        arena = FlatArena.zeros({"a": (4,), "b": (4,)})
        with pytest.raises(TensorValidationError, match="missing"):
            arena.fill_from({"a": np.zeros(4, dtype=np.float32)})
        with pytest.raises(TensorValidationError, match="shape"):
            arena.fill_from({
                "a": np.zeros(4, dtype=np.float32),
                "b": np.zeros(5, dtype=np.float32),
            })


class TestRangeOf:
    def test_contiguous_and_holey_ranges(self):
        arena = FlatArena.zeros({"a": (4,), "b": (6,), "c": (2,)})
        assert arena.range_of(["a", "b"]) == (0, 10)
        assert arena.range_of(["b", "c"]) == (4, 12)
        assert arena.range_of(["c", "b"]) == (4, 12)  # order-insensitive
        assert arena.range_of(["a", "c"]) is None     # hole at b
        assert arena.range_of(["a", "nope"]) is None

    def test_snapshot_restore_roundtrip(self):
        arena = FlatArena.zeros({"a": (4,), "b": (6,)})
        arena.flat[...] = np.arange(10, dtype=np.float32)
        saved = arena.snapshot(4, 10)
        arena.flat[4:10] = -1.0
        arena.restore(saved, 4)
        np.testing.assert_array_equal(
            arena.flat, np.arange(10, dtype=np.float32)
        )


class TestTelemetryCounters:
    def test_adopt_counts_copies_and_flat_of_counts_aliases(self, rng):
        tel = Telemetry()
        params = {
            "w": rng.standard_normal(8).astype(np.float32),
            "b": rng.standard_normal(8).astype(np.float32),
        }
        arena = FlatArena.adopt(params, telemetry=tel)
        copied = tel.metrics.counter("arena_bytes_copied")
        aliased = tel.metrics.counter("arena_bytes_aliased")
        assert copied.value == 64  # 16 fp32 elements moved in, exactly once
        grads_arena = arena.like()
        grads_arena.views["w"][...] = 1.0
        assert arena.flat_of(dict(grads_arena.views)) is not None
        assert aliased.value == 64

    def test_flat_of_rejects_foreign_layout(self, rng):
        arena = FlatArena.zeros({"a": (4,), "b": (4,)})
        other = FlatArena.zeros({"a": (8,)})
        assert arena.flat_of(dict(other.views)) is None
        plain = {
            "a": np.zeros(4, dtype=np.float32),
            "b": np.zeros(4, dtype=np.float32),
        }
        assert arena.flat_of(plain) is None


class TestZeroOnArenaBitwise:
    """The tentpole guarantee: sharding over the arena changes no bit."""

    @given(
        world=st.integers(min_value=1, max_value=6),
        n_steps=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_sharded_arena_step_equals_unsharded_graceadam(
        self, world, n_steps
    ):
        rng = np.random.default_rng(world * 101 + n_steps)
        shapes = {"w": (5, 3), "b": (7,), "e": (11,)}
        init = {
            k: rng.standard_normal(s).astype(np.float32)
            for k, s in shapes.items()
        }
        sharded_params = {k: v.copy() for k, v in init.items()}
        plain_params = {k: v.copy() for k, v in init.items()}
        sharded = ZeroShardedAdam(sharded_params, world)
        reference = GraceAdam(plain_params, AdamConfig())
        for step in range(n_steps):
            grads = {
                k: rng.standard_normal(s).astype(np.float32)
                for k, s in shapes.items()
            }
            # every rank contributes the same gradients -> the average
            # equals the single-rank gradient
            sharded.step([{k: g.copy() for k, g in grads.items()}
                          for _ in range(world)])
            reference.step(grads)
        for k in shapes:
            np.testing.assert_array_equal(
                sharded.params[k], reference.params[k]
            )

    def test_dict_copy_and_arena_modes_agree_bitwise(self, rng):
        shapes = {"w": (6, 2), "b": (9,)}
        init = {
            k: rng.standard_normal(s).astype(np.float32)
            for k, s in shapes.items()
        }
        arena_mode = ZeroShardedAdam(
            {k: v.copy() for k, v in init.items()}, 3, zero_copy=True
        )
        dict_mode = ZeroShardedAdam(
            {k: v.copy() for k, v in init.items()}, 3, zero_copy=False
        )
        for _ in range(3):
            grads = {
                k: rng.standard_normal(s).astype(np.float32)
                for k, s in shapes.items()
            }
            per_rank = [
                {k: g.copy() for k, g in grads.items()} for _ in range(3)
            ]
            arena_mode.step(per_rank)
            dict_mode.step([{k: g.copy() for k, g in grads.items()}
                            for _ in range(3)])
        for k in shapes:
            np.testing.assert_array_equal(
                arena_mode.params[k], dict_mode.params[k]
            )
