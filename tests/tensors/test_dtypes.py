"""Tests for the dtype registry."""

import numpy as np
import pytest

from repro.tensors import FP16, FP32, FP64, BF16, INT8, INT32, dtype_by_name


def test_itemsizes_match_numpy():
    assert FP32.itemsize == np.dtype(np.float32).itemsize
    assert FP16.itemsize == np.dtype(np.float16).itemsize
    assert FP64.itemsize == 8
    assert INT32.itemsize == 4
    assert INT8.itemsize == 1


def test_bf16_is_two_bytes_but_stored_as_fp32():
    assert BF16.itemsize == 2
    assert BF16.numpy == np.dtype(np.float32)


def test_lookup_by_name_roundtrip():
    for dt in (FP16, FP32, FP64, BF16, INT8, INT32):
        assert dtype_by_name(dt.name) is dt


def test_lookup_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown dtype"):
        dtype_by_name("fp8")


def test_float_flags():
    assert FP16.is_float and FP32.is_float and BF16.is_float
    assert not INT8.is_float and not INT32.is_float
