"""ActivationWorkspace: reuse, lifetime protocol, and telemetry."""

import numpy as np
import pytest

from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.telemetry import Telemetry
from repro.tensors.workspace import ActivationWorkspace, take_like


class TestTakeGive:
    def test_take_allocates_then_reuses(self):
        ws = ActivationWorkspace()
        a = ws.take((4, 8))
        assert a.shape == (4, 8) and a.dtype == np.float32
        assert ws.alloc_count == 1 and ws.reuse_count == 0
        ws.give(a)
        b = ws.take((4, 8))
        assert b is a
        assert ws.alloc_count == 1 and ws.reuse_count == 1

    def test_outstanding_takes_never_alias(self):
        ws = ActivationWorkspace()
        a = ws.take((3, 3))
        b = ws.take((3, 3))
        assert a is not b
        assert not np.shares_memory(a, b)

    def test_keys_split_by_shape_and_dtype(self):
        ws = ActivationWorkspace()
        a = ws.take((2, 2), np.float32)
        ws.give(a)
        b = ws.take((2, 2), np.float64)
        assert b is not a
        c = ws.take((4,), np.float32)
        assert c is not a
        assert ws.take((2, 2), np.float32) is a

    def test_give_foreign_buffer_is_ignored(self):
        ws = ActivationWorkspace()
        foreign = np.zeros((5,), dtype=np.float32)
        ws.give(foreign)  # no throw, no adoption
        assert ws.take((5,), np.float32) is not foreign

    def test_double_give_does_not_duplicate(self):
        ws = ActivationWorkspace()
        a = ws.take((2,))
        ws.give(a)
        ws.give(a)  # second give is a no-op: not live anymore
        b = ws.take((2,))
        c = ws.take((2,))
        assert b is a and c is not a


class TestNewStep:
    def test_new_step_recycles_outstanding(self):
        ws = ActivationWorkspace()
        a = ws.take((8,))
        ws.new_step()
        assert ws.take((8,)) is a
        assert ws.alloc_count == 1

    def test_steady_state_allocations_zero(self):
        """After one warm-up step, a fixed-shape step allocates nothing."""
        ws = ActivationWorkspace()
        shapes = [(4, 16), (4, 16), (4, 1), (16,), (4, 16)]

        def step():
            ws.new_step()
            held = [ws.take(s) for s in shapes]
            ws.give(held[0])
            held.append(ws.take(shapes[0]))

        step()
        warm = ws.alloc_count
        for _ in range(5):
            step()
        assert ws.alloc_count == warm
        assert ws.reuse_count > 0

    def test_live_and_pooled_bytes(self):
        ws = ActivationWorkspace()
        a = ws.take((1024,))  # 4096 bytes
        assert ws.live_bytes == 4096
        assert ws.pooled_bytes == 0
        ws.give(a)
        assert ws.live_bytes == 0
        assert ws.pooled_bytes == 4096
        assert ws.peak_bytes == ws.total_bytes == 4096


class TestTelemetry:
    def test_counters_and_peak_gauge(self):
        telemetry = Telemetry()
        ws = ActivationWorkspace(telemetry=telemetry)
        a = ws.take((256,))
        ws.give(a)
        ws.take((256,))
        allocated = telemetry.metrics.counter("workspace_bytes_allocated")
        reused = telemetry.metrics.counter("workspace_bytes_reused")
        peak = telemetry.metrics.gauge("workspace_peak_bytes")
        assert allocated.value == 1024
        assert reused.value == 1024
        assert peak.value == 1024


class TestTakeLike:
    def test_with_and_without_workspace(self):
        plain = take_like(None, (3, 2), np.float32)
        assert plain.shape == (3, 2)
        ws = ActivationWorkspace()
        backed = take_like(ws, (3, 2), np.float32)
        assert ws.alloc_count == 1
        ws.give(backed)
        assert take_like(ws, (3, 2), np.float32) is backed


class TestModelStepIntegration:
    @pytest.mark.parametrize("backend", ["dense", "streaming"])
    def test_model_steady_state_allocations_zero(self, rng, backend):
        """The acceptance property: a full transformer loss_and_grads
        allocates zero workspace buffers once shapes have been seen."""
        spec = TransformerParams(
            vocab=48, max_seq=16, hidden=16, n_layers=2, n_heads=2
        )
        ws = ActivationWorkspace()
        model = TinyTransformer(
            spec, seed=0, workspace=ws, attn_backend=backend,
            block_q=8, block_k=8,
        )
        ids = rng.integers(0, spec.vocab, size=(2, 16))
        targets = rng.integers(0, spec.vocab, size=(2, 16))
        model.loss_and_grads(ids, targets)  # warm-up allocates
        warm_allocs = ws.alloc_count
        assert warm_allocs > 0
        for _ in range(3):
            model.loss_and_grads(ids, targets)
        assert ws.alloc_count == warm_allocs
        assert ws.peak_bytes == ws.total_bytes

    def test_gradients_are_never_workspace_backed(self, rng):
        """Param gradients outlive the step (DP accumulates them across
        ranks), so they must not come from the recycled pool."""
        spec = TransformerParams(
            vocab=32, max_seq=8, hidden=16, n_layers=1, n_heads=2
        )
        ws = ActivationWorkspace()
        model = TinyTransformer(spec, seed=0, workspace=ws)
        ids = rng.integers(0, spec.vocab, size=(1, 8))
        targets = rng.integers(0, spec.vocab, size=(1, 8))
        _, grads = model.loss_and_grads(ids, targets)
        snapshot = {k: g.copy() for k, g in grads.items()}
        # next step recycles every workspace buffer and overwrites them
        model.loss_and_grads(ids, targets)
        for key, g in grads.items():
            assert np.array_equal(g, snapshot[key]), key
