"""Tests for device memory pools and pinned buffers."""

import pytest
from hypothesis import given, strategies as st

from repro.tensors import (
    DeviceOutOfMemoryError,
    MemoryPool,
    PinnedBufferPool,
    PinnedPoolExhaustedError,
)


def test_allocate_and_free_roundtrip():
    pool = MemoryPool("gpu:0", 1000)
    a = pool.allocate(400, "weights")
    assert pool.used == 400
    assert pool.free_bytes == 600
    a.free()
    assert pool.used == 0


def test_oom_raises_with_details():
    pool = MemoryPool("gpu:0", 100)
    pool.allocate(80)
    with pytest.raises(DeviceOutOfMemoryError) as exc:
        pool.allocate(30)
    assert exc.value.requested == 30
    assert exc.value.free == 20
    assert exc.value.capacity == 100
    assert "gpu:0" in str(exc.value)


def test_reserved_counts_against_capacity():
    pool = MemoryPool("gpu:0", 100, reserved=40)
    assert pool.free_bytes == 60
    with pytest.raises(DeviceOutOfMemoryError):
        pool.allocate(61)


def test_peak_tracks_high_water_mark():
    pool = MemoryPool("gpu:0", 100)
    a = pool.allocate(70)
    a.free()
    pool.allocate(10)
    assert pool.peak == 70
    pool.reset_peak()
    assert pool.peak == 10


def test_double_free_rejected():
    pool = MemoryPool("gpu:0", 100)
    a = pool.allocate(10)
    a.free()
    with pytest.raises(KeyError):
        a.free()


def test_zero_byte_allocation_allowed():
    pool = MemoryPool("gpu:0", 10)
    a = pool.allocate(0)
    assert pool.used == 0
    a.free()


def test_invalid_construction():
    with pytest.raises(ValueError):
        MemoryPool("x", -1)
    with pytest.raises(ValueError):
        MemoryPool("x", 10, reserved=20)


def test_can_fit():
    pool = MemoryPool("gpu:0", 100)
    assert pool.can_fit(100)
    assert not pool.can_fit(101)
    assert not pool.can_fit(-1)


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20))
def test_used_never_exceeds_capacity(sizes):
    pool = MemoryPool("gpu:0", 200)
    live = []
    for s in sizes:
        if pool.can_fit(s):
            live.append(pool.allocate(s))
        assert 0 <= pool.used <= pool.capacity
    for a in live:
        a.free()
    assert pool.used == 0


def test_pinned_pool_fallback_and_exhaustion():
    pinned = PinnedBufferPool(100)
    a = pinned.reserve(60)
    assert pinned.try_reserve(50) is None  # falls back to pageable
    with pytest.raises(PinnedPoolExhaustedError):
        pinned.reserve(50)
    pinned.release(a)
    assert pinned.free_bytes == 100


def test_pinned_pool_mirrors_host_pool():
    host = MemoryPool("cpu:0", 1000)
    pinned = PinnedBufferPool(500, host_pool=host)
    a = pinned.reserve(200)
    assert host.used == 200
    pinned.release(a)
    assert host.used == 0


def test_pinned_pool_respects_host_capacity():
    host = MemoryPool("cpu:0", 100)
    pinned = PinnedBufferPool(500, host_pool=host)
    assert pinned.try_reserve(200) is None  # host can't back it


def test_pinned_release_frees_host_mirror_across_cycles():
    """Repeated reserve/release cycles must not leak host DRAM: every
    release returns *both* the pinned bytes and the mirrored host-pool
    allocation (a leaked mirror would strand host memory long after the
    pinned buffer itself is reusable)."""
    host = MemoryPool("cpu:0", 1000)
    pinned = PinnedBufferPool(400, host_pool=host)
    for cycle in range(50):
        a = pinned.reserve(300, tag=f"cycle{cycle}")
        b = pinned.reserve(100, tag=f"cycle{cycle}b")
        assert host.used == 400
        assert pinned.free_bytes == 0
        pinned.release(a)
        pinned.release(b)
        assert host.used == 0, f"host mirror leaked on cycle {cycle}"
        assert pinned.free_bytes == 400
    assert host.peak == 400  # high-water mark, not 50 cycles' worth


def test_pinned_release_without_host_pool():
    pinned = PinnedBufferPool(100)
    for _ in range(10):
        a = pinned.reserve(100)
        pinned.release(a)
    assert pinned.free_bytes == 100
