"""Property tests for the paged KV-cache and paged attention.

The contracts under test:

- append/view round-trip: the concatenated page views always equal the
  full K/V history, for any append chunking and page size;
- eviction + spill restore is lossless (decode-after-evict reads the
  same bytes back from disk), and a failed admission rolls back cleanly;
- ``paged_attention`` over the page list matches a dense causal softmax
  over the same history;
- steady-state serving allocates nothing: after warm-up, page churn is
  fed entirely by the workspace free list;
- LRU eviction picks the least-recently-touched unpinned page and the
  telemetry counters/gauges track it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import Telemetry
from repro.tensors.kvcache import (
    KVCacheFull,
    PagedKVCache,
    paged_attention,
)

HEADS, DIM = 2, 4


def _kv(rng, t):
    return (
        rng.standard_normal((HEADS, t, DIM)).astype(np.float32),
        rng.standard_normal((HEADS, t, DIM)).astype(np.float32),
    )


def _history(cache, session, layer):
    views = cache.view(session, layer)
    if not views:
        return None, None
    return (
        np.concatenate([k for k, _ in views], axis=1),
        np.concatenate([v for _, v in views], axis=1),
    )


# -- append / view round-trip -------------------------------------------


@given(
    page_tokens=st.integers(1, 7),
    chunks=st.lists(st.integers(1, 9), min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_append_view_roundtrip(page_tokens, chunks, seed):
    rng = np.random.default_rng(seed)
    ks, vs = [], []
    with PagedKVCache(1, HEADS, DIM, page_tokens=page_tokens) as cache:
        for t in chunks:
            k, v = _kv(rng, t)
            cache.append(0, 0, k, v)
            ks.append(k)
            vs.append(v)
        total = sum(chunks)
        assert cache.tokens(0) == total
        assert cache.pages_for(total) == -(-total // page_tokens)
        got_k, got_v = _history(cache, 0, 0)
    assert np.array_equal(got_k, np.concatenate(ks, axis=1))
    assert np.array_equal(got_v, np.concatenate(vs, axis=1))


def test_layers_and_sessions_are_independent():
    rng = np.random.default_rng(0)
    with PagedKVCache(2, HEADS, DIM, page_tokens=4) as cache:
        data = {}
        for session in (7, 9):
            for layer in (0, 1):
                k, v = _kv(rng, 5)
                cache.append(session, layer, k, v)
                data[(session, layer)] = (k, v)
        for (session, layer), (k, v) in data.items():
            got_k, got_v = _history(cache, session, layer)
            assert np.array_equal(got_k, k)
            assert np.array_equal(got_v, v)
        assert sorted(cache.sessions()) == [7, 9]
        cache.release(7)
        assert cache.sessions() == (9,)
        assert cache.view(7, 0) == []


# -- eviction, spill, rollback ------------------------------------------


def test_evict_restore_lossless(tmp_path):
    """History larger than the resident budget survives via disk."""
    rng = np.random.default_rng(1)
    telemetry = Telemetry()
    with PagedKVCache(
        1, HEADS, DIM, page_tokens=2, max_pages=2,
        spill=str(tmp_path / "kv"), telemetry=telemetry,
    ) as cache:
        k, v = _kv(rng, 12)  # 6 pages >> budget of 2
        cache.append(0, 0, k, v)
        assert cache.resident_pages <= 2
        evicted = telemetry.metrics.counter("kv_pages_evicted").value
        assert evicted >= 4
        # iter_pages restores one page at a time without exceeding budget
        got_k = np.concatenate(
            [pk.copy() for pk, _ in cache.iter_pages(0, 0)], axis=1
        )
        assert np.array_equal(got_k, k)
        assert telemetry.metrics.counter("kv_pages_restored").value > 0
        assert (
            telemetry.metrics.gauge("kv_bytes_resident").value
            <= 2 * cache.resident_bytes / max(cache.resident_pages, 1) * 2
        )


def test_full_cache_rejects_and_rolls_back():
    rng = np.random.default_rng(2)
    with PagedKVCache(1, HEADS, DIM, page_tokens=2, max_pages=3) as cache:
        k, v = _kv(rng, 4)
        cache.append(0, 0, k, v)  # 2 pages
        assert not cache.can_admit(5)  # needs 3 more pages; only 1 left
        before = cache.resident_pages
        with pytest.raises(KVCacheFull):
            cache.append(1, 0, *_kv(rng, 5))
        # rollback: the failed admission left no footprint
        assert cache.resident_pages == before
        assert cache.tokens(1) == 0
        assert 1 not in cache.sessions()
        # the survivor is intact
        got_k, _ = _history(cache, 0, 0)
        assert np.array_equal(got_k, k)


def test_pinned_pages_never_evicted(tmp_path):
    """The page being written survives eviction pressure mid-append."""
    rng = np.random.default_rng(3)
    with PagedKVCache(
        1, HEADS, DIM, page_tokens=2, max_pages=2,
        spill=str(tmp_path / "kv"),
    ) as cache:
        k, v = _kv(rng, 10)
        cache.append(0, 0, k, v)  # forces evictions while appending
        got_k = np.concatenate(
            [pk.copy() for pk, _ in cache.iter_pages(0, 0)], axis=1
        )
        assert np.array_equal(got_k, k)


# -- paged attention -----------------------------------------------------


def _dense_causal(q, k, v, past_len):
    heads, tq, d = q.shape
    s = np.einsum("hqd,hkd->hqk", q, k) / np.sqrt(d)
    rows = past_len + np.arange(tq)[:, None]
    cols = np.arange(k.shape[1])[None, :]
    s = np.where(cols > rows, -np.inf, s)
    p = np.exp(s - s.max(axis=-1, keepdims=True))
    p /= p.sum(axis=-1, keepdims=True)
    return np.einsum("hqk,hkd->hqd", p, v).astype(np.float32)


@given(
    page_tokens=st.integers(1, 5),
    past=st.integers(0, 9),
    tq=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_paged_attention_matches_dense(page_tokens, past, tq, seed):
    rng = np.random.default_rng(seed)
    k, v = _kv(rng, past + tq)
    q = rng.standard_normal((HEADS, tq, DIM)).astype(np.float32)
    with PagedKVCache(1, HEADS, DIM, page_tokens=page_tokens) as cache:
        cache.append(0, 0, k, v)
        got = paged_attention(q, cache.iter_pages(0, 0), past)
    ref = _dense_causal(q, k, v, past)
    assert float(np.abs(got - ref).max()) <= 1e-5


def test_paged_attention_validates_token_total():
    rng = np.random.default_rng(4)
    k, v = _kv(rng, 4)
    q = rng.standard_normal((HEADS, 1, DIM)).astype(np.float32)
    with PagedKVCache(1, HEADS, DIM, page_tokens=2) as cache:
        cache.append(0, 0, k, v)
        with pytest.raises(ValueError):
            paged_attention(q, cache.view(0, 0), past_len=9)


def test_decode_after_evict_attends_full_history(tmp_path):
    """Attention over a history bigger than the resident budget."""
    rng = np.random.default_rng(5)
    total = 16
    k, v = _kv(rng, total)
    with PagedKVCache(
        1, HEADS, DIM, page_tokens=2, max_pages=3,
        spill=str(tmp_path / "kv"),
    ) as cache:
        for i in range(total):
            cache.append(0, 0, k[:, i:i + 1], v[:, i:i + 1])
        q = rng.standard_normal((HEADS, 1, DIM)).astype(np.float32)
        got = paged_attention(q, cache.iter_pages(0, 0), total - 1)
    ref = _dense_causal(q, k[:, :total], v[:, :total], total - 1)
    assert float(np.abs(got - ref).max()) <= 1e-5


# -- steady state --------------------------------------------------------


def test_steady_state_zero_allocations():
    """After warm-up, session churn reuses pages from the free list."""
    rng = np.random.default_rng(6)
    with PagedKVCache(1, HEADS, DIM, page_tokens=4) as cache:
        def one_session(session):
            for _ in range(3):
                cache.append(session, 0, *_kv(rng, 3))
            cache.release(session)

        one_session(0)  # warm-up
        allocs = cache.workspace.alloc_count
        for s in range(1, 6):
            one_session(s)
        assert cache.workspace.alloc_count == allocs
