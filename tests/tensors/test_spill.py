"""Tests for the NVMe/disk spill tier (§2.2): extent-aligned plane
files, split read/write I/O streams, O_DIRECT sector handling, pinned
staging fallback, and the telemetry counters the overlap audit reads."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.telemetry import Telemetry
from repro.tensors.errors import TensorValidationError
from repro.tensors.pinned import PinnedBufferPool
from repro.tensors.spill import (
    SECTOR_BYTES,
    SpillArena,
    SpillTicket,
    wait_all,
)


def _arena(tmp_path, planes=None, **kw):
    return SpillArena(tmp_path / "spill", planes or {"m": 4096}, **kw)


class TestRoundTrip:
    def test_full_plane(self, tmp_path, rng):
        with _arena(tmp_path) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            sp.write("m", 0, 4096, src)
            out = np.empty(4096, dtype=np.float32)
            sp.read("m", 0, 4096, out)
            assert np.array_equal(out, src)

    def test_fresh_plane_reads_zero(self, tmp_path):
        """Plane files are zero-filled at creation — the invariant that
        makes disk-offloaded moments start identical to resident ones."""
        with _arena(tmp_path) as sp:
            out = np.ones(4096, dtype=np.float32)
            sp.read("m", 0, 4096, out)
            assert not out.any()

    def test_unaligned_subrange_rmw(self, tmp_path, rng):
        """A write to an odd sub-range must not disturb neighbours —
        the sector read-modify-write path under O_DIRECT."""
        with _arena(tmp_path) as sp:
            base = rng.standard_normal(4096).astype(np.float32)
            sp.write("m", 0, 4096, base)
            patch = rng.standard_normal(777).astype(np.float32)
            sp.write("m", 123, 900, patch)
            out = np.empty(4096, dtype=np.float32)
            sp.read("m", 0, 4096, out)
            expect = base.copy()
            expect[123:900] = patch
            assert np.array_equal(out, expect)

    def test_range_crossing_extents(self, tmp_path, rng):
        """Ranges split at extent boundaries must reassemble exactly."""
        n = SECTOR_BYTES  # 4096 elements = 16 KiB, 4 extents of 4 KiB
        with _arena(tmp_path, {"m": n}, chunk_bytes=SECTOR_BYTES) as sp:
            src = rng.standard_normal(n).astype(np.float32)
            sp.write("m", 0, n, src)
            lo, hi = 700, n - 300  # spans all extent boundaries
            out = np.empty(hi - lo, dtype=np.float32)
            sp.read("m", lo, hi, out)
            assert np.array_equal(out, src[lo:hi])

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data(), n=st.integers(min_value=1, max_value=3000))
    def test_write_sequence_matches_shadow(self, tmp_path, data, n):
        """Any sequence of sub-range writes reads back like a plain
        array — alignment, RMW, and extent splitting are invisible."""
        root = tmp_path / f"h{n}-{os.urandom(6).hex()}"
        shadow = np.zeros(n, dtype=np.float32)
        rng = np.random.default_rng(n)
        with SpillArena(root, {"p": n}, chunk_bytes=SECTOR_BYTES) as sp:
            for _ in range(data.draw(st.integers(1, 5))):
                lo = data.draw(st.integers(0, n - 1))
                hi = data.draw(st.integers(lo + 1, n))
                chunk = rng.standard_normal(hi - lo).astype(np.float32)
                sp.write("p", lo, hi, chunk)
                shadow[lo:hi] = chunk
            out = np.empty(n, dtype=np.float32)
            sp.read("p", 0, n, out)
            assert np.array_equal(out, shadow)


class TestAsyncStreams:
    def test_tickets_complete(self, tmp_path, rng):
        with _arena(tmp_path) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            t = sp.write_async("m", 0, 4096, src)
            assert isinstance(t, SpillTicket)
            t.wait()
            assert t.done
            out = np.empty(4096, dtype=np.float32)
            sp.read_async("m", 0, 4096, out).wait()
            assert np.array_equal(out, src)

    def test_wait_all_clears(self, tmp_path, rng):
        with _arena(tmp_path) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            tickets = [sp.write_async("m", 0, 4096, src) for _ in range(3)]
            wait_all(tickets)
            assert tickets == []

    def test_drain_settles_both_streams(self, tmp_path, rng):
        with _arena(tmp_path) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            out = np.empty(4096, dtype=np.float32)
            sp.write_async("m", 0, 4096, src).wait()
            sp.read_async("m", 0, 4096, out)
            sp.write_async("m", 0, 4096, src)
            sp.drain()
            assert np.array_equal(out, src)
            assert sp.bytes_read == 4096 * 4
            assert sp.bytes_written == 4096 * 4 * 2

    def test_task_ordered_after_writes(self, tmp_path, rng):
        """submit_task runs after all prior writes — the checkpoint
        commit's atomicity precondition."""
        with _arena(tmp_path) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            seen = {}

            def probe():
                out = np.empty(4096, dtype=np.float32)
                # Runs on the write thread: the write already landed, so
                # a direct file read (no queue round-trip) must see it.
                sp._do_read("m", 0, out, 0)
                seen["data"] = out

            sp.write_async("m", 0, 4096, src)
            sp.submit_task(probe).wait()
            assert np.array_equal(seen["data"], src)

    def test_wait_histogram_observes_blocking(self, tmp_path, rng):
        tel = Telemetry()
        with _arena(tmp_path, telemetry=tel) as sp:
            src = rng.standard_normal(4096).astype(np.float32)
            done = sp.submit_task(lambda: None)

            def slow():
                done.wait()

            sp.submit_task(slow)
            sp.write("m", 0, 4096, src)  # must queue behind slow()
        assert tel.metrics.counter("spill_bytes_written").value == 4096 * 4


class TestDirectIO:
    def test_chunk_clamped_to_sector_multiple(self, tmp_path):
        with _arena(tmp_path, chunk_bytes=5000) as sp:
            assert sp.chunk_bytes == SECTOR_BYTES
        with _arena(tmp_path / "b", chunk_bytes=100) as sp:
            assert sp.chunk_bytes == SECTOR_BYTES

    def test_plane_file_extent_sized(self, tmp_path):
        with _arena(tmp_path, {"m": 100}, chunk_bytes=8192) as sp:
            path = sp.directory / "m.plane"
            assert path.stat().st_size == 8192  # 400 bytes -> 1 extent

    def test_aligned_span_bounds(self, tmp_path):
        with _arena(tmp_path) as sp:
            a0, span = sp._aligned_span(100, 50)
            assert a0 == 0 and span == SECTOR_BYTES
            a0, span = sp._aligned_span(SECTOR_BYTES, SECTOR_BYTES)
            assert a0 == SECTOR_BYTES and span == SECTOR_BYTES
            # span never exceeds one extent when the range fits one
            a0, span = sp._aligned_span(SECTOR_BYTES - 4, 8)
            assert a0 == 0 and span == 2 * SECTOR_BYTES

    def test_buffered_fallback_matches(self, tmp_path, rng, monkeypatch):
        """Forcing the buffered path produces identical bytes."""
        src = rng.standard_normal(2048).astype(np.float32)
        with _arena(tmp_path, {"m": 2048}) as sp:
            sp.write("m", 10, 2048, src[10:])
            direct_out = np.empty(2038, dtype=np.float32)
            sp.read("m", 10, 2048, direct_out)
        monkeypatch.setattr(os, "O_DIRECT", 0, raising=False)
        with SpillArena(tmp_path / "buf", {"m": 2048}) as sp:
            assert not sp.direct
            sp.write("m", 10, 2048, src[10:])
            out = np.empty(2038, dtype=np.float32)
            sp.read("m", 10, 2048, out)
            assert np.array_equal(out, direct_out)

    def test_partial_direct_fallback_reopens_earlier_planes(
        self, tmp_path, rng, monkeypatch
    ):
        """Regression: if a later plane's O_DIRECT open fails, planes
        already opened with the flag must be reopened buffered — the
        fallback I/O path issues sector-unaligned transfers that a
        leftover direct fd would reject with EINVAL."""
        monkeypatch.setattr(os, "O_DIRECT", 0o40000, raising=False)
        real_open = os.open
        opens = []

        def fake_open(path, flags, *a, **kw):
            is_direct = bool(flags & os.O_DIRECT)
            opens.append((os.path.basename(str(path)), is_direct))
            if is_direct:
                if sum(1 for _, d in opens if d) > 1:
                    raise OSError(22, "Invalid argument")
                # pretend the fs accepted O_DIRECT for the first plane
                flags &= ~os.O_DIRECT
            return real_open(path, flags, *a, **kw)

        monkeypatch.setattr(os, "open", fake_open)
        with SpillArena(tmp_path / "mix", {"a": 2048, "b": 2048}) as sp:
            assert not sp.direct
            # plane a: the direct open, then the buffered reopen
            assert opens.count(("a.plane", True)) == 1
            assert opens.count(("a.plane", False)) == 1
            src = rng.standard_normal(900).astype(np.float32)
            for name in ("a", "b"):  # unaligned I/O on every plane
                sp.write(name, 123, 1023, src)
                out = np.empty(900, dtype=np.float32)
                sp.read(name, 123, 1023, out)
                assert np.array_equal(out, src)


class TestPinnedStaging:
    def test_staging_reserved_and_released(self, tmp_path):
        pool = PinnedBufferPool(1 << 22)
        sp = _arena(tmp_path, chunk_bytes=1 << 16, pinned_pool=pool)
        assert sp.staging_pinned == (True, True)
        assert pool.free_bytes == (1 << 22) - 2 * (1 << 16)
        sp.close()
        assert pool.free_bytes == pool.capacity
        assert not pool._host_allocs  # no leaked host mirrors

    def test_exhausted_pool_degrades_to_pageable(self, tmp_path, rng):
        pool = PinnedBufferPool(1 << 16)  # fits one buffer, not two
        with _arena(tmp_path, chunk_bytes=1 << 16, pinned_pool=pool) as sp:
            assert sp.staging_pinned == (True, False)
            src = rng.standard_normal(4096).astype(np.float32)
            sp.write("m", 0, 4096, src)
            out = np.empty(4096, dtype=np.float32)
            sp.read("m", 0, 4096, out)
            assert np.array_equal(out, src)
        assert not pool._host_allocs


class TestValidation:
    def test_rejects_empty_and_bad_planes(self, tmp_path):
        with pytest.raises(TensorValidationError):
            SpillArena(tmp_path / "a", {})
        with pytest.raises(TensorValidationError):
            SpillArena(tmp_path / "b", {"m": 0})
        with pytest.raises(TensorValidationError):
            SpillArena(tmp_path / "c", {"m": 16}, queue_bound=0)

    def test_rejects_bad_ranges_and_buffers(self, tmp_path, rng):
        with _arena(tmp_path) as sp:
            buf = np.empty(16, dtype=np.float32)
            with pytest.raises(TensorValidationError):
                sp.read("nope", 0, 16, buf)
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 5000, np.empty(5000, dtype=np.float32))
            with pytest.raises(TensorValidationError):
                sp.read("m", 8, 8, buf)
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 16, buf.astype(np.float64))
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 16, np.empty((4, 4), dtype=np.float32))
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 16, buf[::2])
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 32, buf)
            ro = np.empty(16, dtype=np.float32)
            ro.flags.writeable = False
            with pytest.raises(TensorValidationError):
                sp.read("m", 0, 16, ro)

    def test_closed_arena_rejects_submission(self, tmp_path):
        sp = _arena(tmp_path)
        sp.close()
        sp.close()  # idempotent
        with pytest.raises(TensorValidationError):
            sp.write("m", 0, 16, np.zeros(16, dtype=np.float32))

    def test_plane_introspection(self, tmp_path):
        with _arena(tmp_path, {"m": 64, "v": 128}) as sp:
            assert sp.plane_names == ("m", "v")
            assert sp.plane_elements("v") == 128

    def test_worker_error_surfaces_at_wait(self, tmp_path):
        with _arena(tmp_path) as sp:
            def boom():
                raise RuntimeError("io failed")

            t = sp.submit_task(boom)
            with pytest.raises(RuntimeError, match="io failed"):
                t.wait()
            # the worker survives a failed operation
            sp.write("m", 0, 16, np.zeros(16, dtype=np.float32))
