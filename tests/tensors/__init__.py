"""Test package."""
