"""Tests for TensorSpec."""

import pytest
from hypothesis import given, strategies as st

from repro.tensors import FP16, FP32, TensorSpec


def test_numel_and_nbytes():
    spec = TensorSpec("w", (4, 8, 2), FP32)
    assert spec.numel == 64
    assert spec.nbytes == 256


def test_scalar_shape():
    spec = TensorSpec("s", (), FP16)
    assert spec.numel == 1
    assert spec.nbytes == 2


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        TensorSpec("", (2,), FP32)


def test_negative_dim_rejected():
    with pytest.raises(ValueError):
        TensorSpec("w", (2, -1), FP32)


def test_to_gpu_clears_pinned():
    spec = TensorSpec("w", (2,), FP32, device="cpu:0", pinned=True)
    moved = spec.to("gpu:0")
    assert moved.device == "gpu:0"
    assert not moved.pinned
    assert moved.is_on_gpu()


def test_to_cpu_preserves_pinned_unless_overridden():
    spec = TensorSpec("w", (2,), FP32, device="cpu:0", pinned=True)
    assert spec.to("cpu:1").pinned
    assert not spec.to("cpu:1", pinned=False).pinned


def test_cast_halves_bytes_fp32_to_fp16():
    spec = TensorSpec("w", (10,), FP32)
    assert spec.cast(FP16).nbytes == spec.nbytes // 2


@given(st.lists(st.integers(min_value=0, max_value=64), max_size=4))
def test_nbytes_is_numel_times_itemsize(dims):
    spec = TensorSpec("w", tuple(dims), FP32)
    assert spec.nbytes == spec.numel * 4
