"""Tests for Ulysses sequence parallelism: exact equivalence with
single-rank attention (§4.7)."""

import numpy as np
import pytest

from repro.numeric.attention import MultiHeadAttention
from repro.parallel import SimProcessGroup, UlyssesAttention, all_to_all_4d


def make_qkv(rng, b=2, s=8, h=16):
    return rng.standard_normal((b, s, 3 * h)).astype(np.float32)


def seq_shards(x, p):
    s = x.shape[1]
    return [x[:, r * s // p : (r + 1) * s // p] for r in range(p)]


class TestAllToAll4D:
    def test_roundtrip_identity(self, rng):
        group = SimProcessGroup(2)
        shards = [rng.standard_normal((1, 4, 3, 2)) for _ in range(2)]
        heads = all_to_all_4d(shards, group, scatter_heads=True)
        back = all_to_all_4d(heads, group, scatter_heads=False)
        for a, b in zip(shards, back):
            np.testing.assert_array_equal(a, b)

    def test_head_scatter_shapes(self, rng):
        group = SimProcessGroup(4)
        shards = [rng.standard_normal((1, 8, 2, 5)) for _ in range(4)]
        out = all_to_all_4d(shards, group, scatter_heads=True)
        assert out[0].shape == (1, 2, 8, 5)

    def test_indivisible_heads_rejected(self, rng):
        group = SimProcessGroup(3)
        shards = [rng.standard_normal((1, 4, 2, 5)) for _ in range(3)]
        with pytest.raises(ValueError):
            all_to_all_4d(shards, group, scatter_heads=True)

    def test_indivisible_seq_rejected(self, rng):
        group = SimProcessGroup(3)
        shards = [rng.standard_normal((1, 3, 4, 5)) for _ in range(3)]
        with pytest.raises(ValueError):
            all_to_all_4d(shards, group, scatter_heads=False)


class TestUlyssesAttention:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_forward_matches_single_rank(self, rng, p):
        qkv = make_qkv(rng)
        ref, _ = MultiHeadAttention(4).forward(qkv)
        ua = UlyssesAttention(4, SimProcessGroup(p))
        outs, _ = ua.forward(seq_shards(qkv, p))
        np.testing.assert_allclose(
            np.concatenate(outs, axis=1), ref, atol=1e-6
        )

    @pytest.mark.parametrize("p", [2, 4])
    def test_backward_matches_single_rank(self, rng, p):
        qkv = make_qkv(rng)
        attn = MultiHeadAttention(4)
        ref_out, ref_cache = attn.forward(qkv)
        dout = rng.standard_normal(ref_out.shape).astype(np.float32)
        ref_dqkv = attn.backward(dout, ref_cache)

        ua = UlyssesAttention(4, SimProcessGroup(p))
        outs, caches = ua.forward(seq_shards(qkv, p))
        douts = ua.backward(seq_shards(dout, p), caches)
        np.testing.assert_allclose(
            np.concatenate(douts, axis=1), ref_dqkv, atol=1e-6
        )

    def test_causality_preserved_across_shards(self, rng):
        """Tokens in rank 0's shard must not attend to rank 1's tokens."""
        qkv = make_qkv(rng)
        ua = UlyssesAttention(4, SimProcessGroup(2))
        outs1, _ = ua.forward(seq_shards(qkv, 2))
        qkv2 = qkv.copy()
        qkv2[:, 6] += 5.0  # perturb a token in the second shard
        outs2, _ = ua.forward(seq_shards(qkv2, 2))
        np.testing.assert_allclose(outs1[0], outs2[0], atol=1e-6)
        assert not np.allclose(outs1[1], outs2[1])

    def test_heads_must_divide_world(self):
        with pytest.raises(ValueError):
            UlyssesAttention(3, SimProcessGroup(2))

    def test_shard_count_validated(self, rng):
        ua = UlyssesAttention(4, SimProcessGroup(2))
        with pytest.raises(ValueError):
            ua.forward(seq_shards(make_qkv(rng), 4))
