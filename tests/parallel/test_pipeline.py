"""1F1B pipeline parallelism: bitwise equivalence and bubble accounting.

Layer-range splitting changes no arithmetic and the schedule retires
backward microbatches in a fixed order, so — unlike the TP paths — the
pipelined step is *bitwise* identical to the unpipelined microbatched
reference for every (stage count, microbatch count), including the
degenerate ``m == 1`` and ``m == stages`` corners.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.parallel.comm import SimProcessGroup
from repro.parallel.pipeline import (
    PipelinedTransformer,
    microbatched_loss_and_grads,
    partition_layers,
    simulated_bubble_fraction,
    split_microbatches,
)
from repro.sim.engine import ideal_1f1b_bubble, stage_op_order
from repro.telemetry import Telemetry

SPEC = TransformerParams(vocab=64, max_seq=16, hidden=32, n_layers=4,
                         n_heads=4)


def _batch(seed=0, batch=8):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, SPEC.vocab, size=(batch, SPEC.max_seq)),
            rng.integers(0, SPEC.vocab, size=(batch, SPEC.max_seq)))


# -- partitioner --------------------------------------------------------


def test_partition_layers_even():
    assert partition_layers(4, 2) == [(0, 2), (2, 4)]
    assert partition_layers(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert partition_layers(4, 1) == [(0, 4)]


def test_partition_layers_remainder_to_early_stages():
    parts = partition_layers(7, 3)
    sizes = [e - s for s, e in parts]
    assert sizes == [3, 2, 2]
    assert parts[0][0] == 0 and parts[-1][1] == 7
    # contiguous cover
    for (_, a_end), (b_start, _) in zip(parts, parts[1:]):
        assert a_end == b_start


def test_partition_layers_balance_shifts_off_last_stage():
    base = partition_layers(4, 2, balance=0)
    shifted = partition_layers(4, 2, balance=1)
    assert (base[1][1] - base[1][0]) - (shifted[1][1] - shifted[1][0]) == 1
    assert shifted[0] == (0, 3) and shifted[1] == (3, 4)


def test_partition_layers_errors():
    with pytest.raises(ValueError, match="cannot split"):
        partition_layers(2, 3)
    with pytest.raises(ValueError):
        partition_layers(4, 1, balance=1)
    with pytest.raises(ValueError):
        partition_layers(4, 2, balance=5)


def test_split_microbatches_errors():
    ids, targets = _batch()
    with pytest.raises(ValueError):
        split_microbatches(ids, targets, 0)
    with pytest.raises(ValueError):
        split_microbatches(ids, targets, 3)  # 8 % 3
    with pytest.raises(ValueError):
        split_microbatches(ids[:4], targets, 2)


def test_split_microbatches_partitions_in_order():
    ids, targets = _batch()
    mids, mtargets = split_microbatches(ids, targets, 4)
    assert len(mids) == 4
    np.testing.assert_array_equal(np.concatenate(mids), ids)
    np.testing.assert_array_equal(np.concatenate(mtargets), targets)


# -- send/recv p2p ------------------------------------------------------


def test_send_recv_roundtrip_with_accounting():
    telemetry = Telemetry()
    group = SimProcessGroup(2, telemetry=telemetry)
    payload = np.arange(6, dtype=np.float32).reshape(2, 3)
    group.send(payload, src=0, dst=1, tag=7)
    assert group.pending_messages() == 1
    got = group.recv(src=0, dst=1, tag=7)
    np.testing.assert_array_equal(got, payload)
    assert group.pending_messages() == 0
    metrics = telemetry.metrics
    assert metrics.counter("collective_calls_total", op="send").value == 1
    assert metrics.counter(
        "collective_bytes_total", op="send"
    ).value == payload.nbytes
    assert metrics.counter(
        "collective_bytes_total", op="recv"
    ).value == payload.nbytes
    cats = {s.name: s.category for s in telemetry.tracer.spans}
    assert cats["pp_send"] == "pp_comm" and cats["pp_recv"] == "pp_comm"


def test_tagged_mailboxes_are_fifo_per_tag():
    group = SimProcessGroup(2)
    group.send(np.float32([1.0]), src=0, dst=1, tag=0)
    group.send(np.float32([2.0]), src=0, dst=1, tag=0)
    group.send(np.float32([9.0]), src=0, dst=1, tag=1)
    assert group.pending_messages() == 3
    assert group.recv(src=0, dst=1, tag=1)[0] == 9.0
    assert group.recv(src=0, dst=1, tag=0)[0] == 1.0
    assert group.recv(src=0, dst=1, tag=0)[0] == 2.0


def test_recv_without_send_is_a_clear_error():
    group = SimProcessGroup(2)
    with pytest.raises(RuntimeError, match="no matching send"):
        group.recv(src=0, dst=1)


def test_send_validates_ranks():
    group = SimProcessGroup(2)
    buf = np.zeros(1, dtype=np.float32)
    with pytest.raises(ValueError, match="must differ"):
        group.send(buf, src=0, dst=0)
    with pytest.raises(ValueError, match="out of range"):
        group.send(buf, src=0, dst=5)


# -- the bitwise gate: 1F1B vs unpipelined microbatched reference -------


@pytest.mark.parametrize("n_stages", [1, 2, 4])
@pytest.mark.parametrize("m", [1, 2, 4, 8])
def test_1f1b_bitwise_vs_microbatched(n_stages, m):
    model = TinyTransformer(SPEC, seed=3)
    ids, targets = _batch(seed=11)
    ref_loss, ref_grads = microbatched_loss_and_grads(model, ids, targets, m)
    pipe = PipelinedTransformer(model, SimProcessGroup(n_stages))
    loss, grads = pipe.loss_and_grads(ids, targets, n_microbatches=m)
    assert loss == ref_loss
    assert set(grads) == set(ref_grads)
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)


def test_microbatched_m1_bitwise_vs_plain():
    model = TinyTransformer(SPEC, seed=3)
    ids, targets = _batch(seed=2)
    ref_loss, ref_grads = model.loss_and_grads(ids, targets)
    loss, grads = microbatched_loss_and_grads(model, ids, targets, 1)
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)


def test_1f1b_with_loss_scale_bitwise():
    model = TinyTransformer(SPEC, seed=3)
    ids, targets = _batch(seed=4)
    ref_loss, ref_grads = microbatched_loss_and_grads(
        model, ids, targets, 4, loss_scale=16.0
    )
    pipe = PipelinedTransformer(model, SimProcessGroup(2))
    loss, grads = pipe.loss_and_grads(
        ids, targets, n_microbatches=4, loss_scale=16.0
    )
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), n_stages=st.sampled_from([2, 4]),
       m=st.sampled_from([2, 4, 8]))
def test_1f1b_property_random_batches(seed, n_stages, m):
    model = TinyTransformer(SPEC, seed=0)
    ids, targets = _batch(seed=seed)
    ref_loss, ref_grads = microbatched_loss_and_grads(model, ids, targets, m)
    loss, grads = PipelinedTransformer(
        model, SimProcessGroup(n_stages)
    ).loss_and_grads(ids, targets, n_microbatches=m)
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)


def test_pipeline_rejects_workspace_models():
    from repro.tensors.workspace import ActivationWorkspace

    model = TinyTransformer(SPEC, seed=0, workspace=ActivationWorkspace())
    with pytest.raises(ValueError, match="workspace"):
        PipelinedTransformer(model, SimProcessGroup(2))


# -- schedule / bubble accounting ---------------------------------------


def test_stage_op_order_invariants():
    for p in (1, 2, 4):
        for m in (1, 2, 4, 8):
            for s in range(p):
                ops = stage_op_order(p, m, s)
                fwd = [j for kind, j in ops if kind == "F"]
                bwd = [j for kind, j in ops if kind == "B"]
                assert fwd == list(range(m))
                # backwards retire in microbatch order — the bitwise
                # accumulation property
                assert bwd == list(range(m))
                warmup = min(m, p - 1 - s)
                assert [k for k, _ in ops[:warmup]] == ["F"] * warmup


@pytest.mark.parametrize("p,m", [(2, 4), (4, 8), (4, 4), (3, 1), (2, 1)])
def test_uniform_simulated_bubble_matches_ideal(p, m):
    frac = simulated_bubble_fraction(p, m, fwd_time=1.0, bwd_time=2.0)
    assert frac == pytest.approx(ideal_1f1b_bubble(p, m), abs=1e-9)


def test_ideal_bubble_formula():
    assert ideal_1f1b_bubble(1, 4) == 0.0
    assert ideal_1f1b_bubble(4, 1) == pytest.approx(0.75)
    assert ideal_1f1b_bubble(2, 8) == pytest.approx(1 / 9)
    with pytest.raises(ValueError):
        ideal_1f1b_bubble(0, 4)


def test_measured_bubble_close_to_ideal():
    model = TinyTransformer(SPEC, seed=3)
    ids, targets = _batch(seed=9)
    pipe = PipelinedTransformer(model, SimProcessGroup(2))
    # The measured fraction replays real wall-clock op durations, which
    # are noisy on a loaded machine; keep the least-perturbed of a few
    # steps and compare against the analytic fraction with a wide band.
    best = 1.0
    for _ in range(3):
        pipe.loss_and_grads(ids, targets, n_microbatches=8)
        measured = pipe.measured_bubble_fraction()
        assert 0.0 <= measured < 1.0
        best = min(best, abs(measured - ideal_1f1b_bubble(2, 8)))
    assert best < 0.35


def test_pipeline_emits_pp_spans():
    telemetry = Telemetry()
    model = TinyTransformer(SPEC, seed=3, telemetry=telemetry)
    pipe = PipelinedTransformer(model, SimProcessGroup(2,
                                                       telemetry=telemetry))
    ids, targets = _batch(seed=1)
    pipe.loss_and_grads(ids, targets, n_microbatches=2)
    names = {s.name for s in telemetry.tracer.spans}
    assert {"pp_fwd", "pp_bwd", "pp_send", "pp_recv"} <= names
