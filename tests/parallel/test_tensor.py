"""Tensor-parallel sharded linears vs the unsharded reference.

The equivalence contract (documented in ``repro.parallel.tensor``):
TP paths are *tolerance*-equivalent, not bitwise — OpenBLAS picks its
kernel blocking by operand shape, so even a column-sharded matmul can
differ from the full one in the last ulp, and row-parallel partial sums
reorder the k-dimension reduction outright.  The property suites here
pin that tolerance across shapes, world sizes 1/2/4, and adversarial
(odd, non-dividing) extents, which must be *rejected with clear errors*
rather than silently mis-sharded.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.layers import gelu
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.parallel.comm import SimProcessGroup
from repro.parallel.tensor import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelAttention,
    TensorParallelMLP,
    TensorParallelTransformer,
    gather_last_dim,
    shard_extent,
)

TOL = 1e-5


# -- shard_extent: the divisibility gate -------------------------------


def test_shard_extent_divides():
    assert shard_extent(12, 4, "hidden") == 3
    assert shard_extent(8, 1, "hidden") == 8


@pytest.mark.parametrize("total,world", [(7, 2), (33, 4), (10, 3)])
def test_shard_extent_rejects_odd_sizes(total, world):
    with pytest.raises(ValueError) as e:
        shard_extent(total, world, "hidden width")
    msg = str(e.value)
    assert "hidden width" in msg and str(total) in msg and str(world) in msg


def test_attention_rejects_non_dividing_heads():
    spec = TransformerParams(vocab=32, max_seq=8, hidden=24, n_layers=1,
                             n_heads=3)
    model = TinyTransformer(spec, seed=0)
    with pytest.raises(ValueError, match="attention heads"):
        TensorParallelTransformer(model, SimProcessGroup(2))


def test_transformer_rejects_non_dividing_vocab():
    spec = TransformerParams(vocab=30, max_seq=8, hidden=16, n_layers=1,
                             n_heads=2)
    model = TinyTransformer(spec, seed=0)
    with pytest.raises(ValueError, match="not divisible"):
        TensorParallelTransformer(model, SimProcessGroup(4))


# -- hypothesis property: sharded linears match dense ------------------


@settings(max_examples=40, deadline=None)
@given(
    world=st.sampled_from([1, 2, 4]),
    m=st.integers(1, 6),
    k_factor=st.integers(1, 5),
    n_factor=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_column_parallel_matches_dense(world, m, k_factor, n_factor, seed):
    rng = np.random.default_rng(seed)
    k, n = 4 * k_factor, world * n_factor
    x = rng.standard_normal((m, k), dtype=np.float32)
    w = rng.standard_normal((k, n), dtype=np.float32)
    b = rng.standard_normal(n, dtype=np.float32)
    layer = ColumnParallelLinear(w, b, SimProcessGroup(world))
    outs, caches = layer.forward([x] * world)
    for y in outs:
        np.testing.assert_allclose(y, x @ w + b, atol=TOL)
    dy = rng.standard_normal((m, n), dtype=np.float32)
    dxs, dws, dbs = layer.backward([dy] * world, caches)
    for dx in dxs:
        np.testing.assert_allclose(dx, dy @ w.T, atol=TOL)
    np.testing.assert_allclose(layer.full_weight_grad(dws), x.T @ dy,
                               atol=TOL)
    np.testing.assert_allclose(layer.full_bias_grad(dbs), dy.sum(axis=0),
                               atol=TOL)


@settings(max_examples=40, deadline=None)
@given(
    world=st.sampled_from([1, 2, 4]),
    m=st.integers(1, 6),
    k_factor=st.integers(1, 5),
    n_factor=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_row_parallel_matches_dense(world, m, k_factor, n_factor, seed):
    rng = np.random.default_rng(seed)
    k, n = world * k_factor, 4 * n_factor
    x = rng.standard_normal((m, k), dtype=np.float32)
    w = rng.standard_normal((k, n), dtype=np.float32)
    b = rng.standard_normal(n, dtype=np.float32)
    layer = RowParallelLinear(w, b, SimProcessGroup(world))
    per = k // world
    x_slices = [x[:, r * per:(r + 1) * per] for r in range(world)]
    outs, caches = layer.forward(x_slices)
    for y in outs:
        np.testing.assert_allclose(y, x @ w + b, atol=TOL)
    dy = rng.standard_normal((m, n), dtype=np.float32)
    dxs, dws, db = layer.backward([dy] * world, caches)
    np.testing.assert_allclose(np.concatenate(dxs, axis=-1), dy @ w.T,
                               atol=TOL)
    np.testing.assert_allclose(layer.full_weight_grad(dws), x.T @ dy,
                               atol=TOL)
    np.testing.assert_allclose(db, dy.sum(axis=0), atol=TOL)


def test_gather_last_dim_crossover_invariant():
    rng = np.random.default_rng(0)
    shards = [rng.standard_normal((3, 4), dtype=np.float32)
              for _ in range(4)]
    group = SimProcessGroup(4)
    small = gather_last_dim(shards, group, crossover=1)
    large = gather_last_dim(shards, group, crossover=1 << 30)
    full = np.concatenate(shards, axis=-1)
    for a, b in zip(small, large):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, full)


# -- composed blocks ----------------------------------------------------


@pytest.mark.parametrize("world", [1, 2, 4])
def test_tp_mlp_matches_dense(world):
    rng = np.random.default_rng(7)
    h, f = 16, 64
    x = rng.standard_normal((5, h), dtype=np.float32)
    w1 = rng.standard_normal((h, f), dtype=np.float32)
    b1 = rng.standard_normal(f, dtype=np.float32)
    w2 = rng.standard_normal((f, h), dtype=np.float32)
    b2 = rng.standard_normal(h, dtype=np.float32)
    mlp = TensorParallelMLP(w1, b1, w2, b2, SimProcessGroup(world))
    outs, caches = mlp.forward([x] * world)
    ref = gelu(x @ w1 + b1) @ w2 + b2
    for y in outs:
        np.testing.assert_allclose(y, ref, atol=TOL)
    dy = rng.standard_normal((5, h), dtype=np.float32)
    dxs, sharded, db2 = mlp.backward([dy] * world, caches)
    dw1, db1, dw2, db2_full = mlp.full_grads(sharded, db2)
    # Reference grads through the same dense ops.
    h1 = x @ w1 + b1
    from repro.numeric.layers import gelu_grad

    dact = dy @ w2.T
    dh1 = gelu_grad(h1) * dact
    np.testing.assert_allclose(dw2, gelu(h1).T @ dy, atol=TOL)
    np.testing.assert_allclose(db2_full, dy.sum(axis=0), atol=TOL)
    np.testing.assert_allclose(dw1, x.T @ dh1, atol=TOL)
    np.testing.assert_allclose(db1, dh1.sum(axis=0), atol=TOL)
    for dx in dxs:
        np.testing.assert_allclose(dx, dh1 @ w1.T, atol=TOL)


@pytest.mark.parametrize("world", [1, 2, 4])
def test_tp_attention_matches_single_rank(world):
    spec = TransformerParams(vocab=32, max_seq=8, hidden=32, n_layers=1,
                             n_heads=4)
    model = TinyTransformer(spec, seed=0)
    p = model.params
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, spec.max_seq, spec.hidden),
                            dtype=np.float32)

    def run(tp):
        attn = TensorParallelAttention(
            spec.hidden, spec.n_heads, p["h0.qkv.w"], p["h0.qkv.b"],
            p["h0.proj.w"], p["h0.proj.b"], SimProcessGroup(tp),
        )
        outs, caches = attn.forward([x] * tp)
        return outs[0]

    np.testing.assert_allclose(run(world), run(1), atol=TOL)


# -- the full sharded transformer --------------------------------------


@pytest.mark.parametrize("world", [1, 2, 4])
def test_tp_transformer_matches_unsharded(world):
    spec = TransformerParams(vocab=64, max_seq=16, hidden=32, n_layers=2,
                             n_heads=4)
    model = TinyTransformer(spec, seed=1)
    rng = np.random.default_rng(3)
    ids = rng.integers(0, spec.vocab, size=(4, spec.max_seq))
    targets = rng.integers(0, spec.vocab, size=(4, spec.max_seq))
    ref_loss, ref_grads = model.loss_and_grads(ids, targets)
    tp = TensorParallelTransformer(model, SimProcessGroup(world))
    loss, grads = tp.loss_and_grads(ids, targets)
    assert abs(loss - ref_loss) <= 1e-6
    assert set(grads) == set(ref_grads)
    for k in ref_grads:
        np.testing.assert_allclose(grads[k], ref_grads[k], atol=1e-6,
                                   err_msg=k)


def test_tp_transformer_loss_scale():
    spec = TransformerParams(vocab=32, max_seq=8, hidden=16, n_layers=1,
                             n_heads=2)
    model = TinyTransformer(spec, seed=2)
    rng = np.random.default_rng(5)
    ids = rng.integers(0, spec.vocab, size=(2, spec.max_seq))
    targets = rng.integers(0, spec.vocab, size=(2, spec.max_seq))
    _, ref = model.loss_and_grads(ids, targets, loss_scale=8.0)
    tp = TensorParallelTransformer(model, SimProcessGroup(2))
    _, got = tp.loss_and_grads(ids, targets, loss_scale=8.0)
    for k in ref:
        np.testing.assert_allclose(got[k], ref[k], atol=1e-4, err_msg=k)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), world=st.sampled_from([2, 4]))
def test_tp_transformer_property_random_batches(seed, world):
    spec = TransformerParams(vocab=32, max_seq=8, hidden=16, n_layers=1,
                             n_heads=4)
    model = TinyTransformer(spec, seed=0)
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, spec.vocab, size=(2, spec.max_seq))
    targets = rng.integers(0, spec.vocab, size=(2, spec.max_seq))
    ref_loss, ref_grads = model.loss_and_grads(ids, targets)
    loss, grads = TensorParallelTransformer(
        model, SimProcessGroup(world)
    ).loss_and_grads(ids, targets)
    assert abs(loss - ref_loss) <= 1e-6
    for k in ref_grads:
        np.testing.assert_allclose(grads[k], ref_grads[k], atol=1e-5,
                                   err_msg=k)
