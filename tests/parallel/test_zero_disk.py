"""Tests for the disk-offloaded ZeRO step (§2.2): bitwise identity with
the resident step across worker counts, prefetch on/off, checkpointable
moment planes, and pinned-pool exhaustion under concurrent spill."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec.pool import KernelPool
from repro.parallel import ZeroShardedAdam
from repro.tensors.pinned import PinnedBufferPool


def _fixture(seed, n, world, tmp_path=None, pool=None, **kw):
    """A (optimizer, flats) pair; disk mode when ``tmp_path`` is given.

    Same seed => identical params and gradients, so a resident and a
    disk fixture built from the same seed are bitwise comparables.
    """
    rng = np.random.default_rng(seed)
    params = {
        f"p{i}": rng.standard_normal(n // 4, dtype=np.float32)
        for i in range(4)
    }
    if tmp_path is not None:
        kw.update(offload="disk", spill_dir=str(tmp_path / "spill"))
    opt = ZeroShardedAdam(params, world, pipeline=True, pool=pool, **kw)
    flats = []
    for r in range(world):
        ga = opt.grad_arena(r)
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
        flats.append(ga.flat)
    return opt, flats


def _close(opt):
    opt.release_staging()
    opt.close_spill()


class TestDiskBitwiseIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_resident_across_worker_counts(self, tmp_path, workers):
        """The acceptance criterion: a disk-offloaded step is bitwise
        identical to the resident step, at every pool width."""
        pool = KernelPool(workers)
        try:
            n, world, steps = 4096, 2, 3
            resident, r_flats = _fixture(5, n, world, pool=pool)
            disk, d_flats = _fixture(
                5, n, world, tmp_path / f"w{workers}", pool=pool,
                bucket_elements=512, spill_prefetch_depth=2,
            )
            for _ in range(steps):
                resident.step_flat(r_flats)
                disk.step_flat(d_flats)
            assert np.array_equal(resident.arena.flat, disk.arena.flat)
            assert disk.step_count == resident.step_count == steps
            _close(disk)
            _close(resident)
        finally:
            pool.shutdown()

    def test_prefetch_off_is_bitwise_identical(self, tmp_path):
        base, b_flats = _fixture(9, 2048, 2, tmp_path / "on",
                                 bucket_elements=256)
        sync, s_flats = _fixture(9, 2048, 2, tmp_path / "off",
                                 bucket_elements=256, spill_prefetch=False)
        for _ in range(2):
            base.step_flat(b_flats)
            sync.step_flat(s_flats)
        assert np.array_equal(base.arena.flat, sync.arena.flat)
        _close(base)
        _close(sync)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        n=st.integers(min_value=64, max_value=5000),
        world=st.integers(min_value=1, max_value=3),
        bucket=st.sampled_from([64, 257, 1024]),
        depth=st.integers(min_value=1, max_value=4),
    )
    def test_adversarial_shapes_match_resident(
        self, tmp_path, n, world, bucket, depth
    ):
        """Odd totals, buckets not dividing shards, shard-boundary
        crossings: every shape must still be bitwise identical."""
        import os
        sub = tmp_path / f"{n}-{world}-{bucket}-{depth}-{os.urandom(4).hex()}"
        resident, r_flats = _fixture(n, n, world, bucket_elements=bucket)
        disk, d_flats = _fixture(
            n, n, world, sub, bucket_elements=bucket,
            spill_prefetch_depth=depth,
        )
        resident.step_flat(r_flats)
        disk.step_flat(d_flats)
        assert np.array_equal(resident.arena.flat, disk.arena.flat)
        _close(disk)
        _close(resident)


class TestMomentPlanes:
    def test_round_trip_resumes_identically(self, tmp_path):
        """moment_planes + shard_steps -> load_moments is a faithful
        optimizer-state snapshot (the checkpoint contract)."""
        a, a_flats = _fixture(3, 1024, 2, tmp_path / "a",
                              bucket_elements=128)
        a.step_flat(a_flats)
        planes = a.moment_planes()
        steps = a.shard_steps()
        master = a.arena.flat.copy()
        a.step_flat(a_flats)  # diverge

        b, b_flats = _fixture(3, 1024, 2, tmp_path / "b",
                              bucket_elements=128)
        b.arena.flat[...] = master
        b.load_moments(planes["m"], planes["v"], steps)
        assert b.shard_steps() == steps

        # one more step from the restored state must match one more step
        # from the snapshot state
        c, c_flats = _fixture(3, 1024, 2, tmp_path / "c",
                              bucket_elements=128)
        c.arena.flat[...] = master
        c.load_moments(planes["m"], planes["v"], steps)
        b.step_flat(b_flats)
        c.step_flat(c_flats)
        assert np.array_equal(b.arena.flat, c.arena.flat)
        for o in (a, b, c):
            _close(o)

    def test_disk_and_resident_planes_agree(self, tmp_path):
        resident, r_flats = _fixture(7, 512, 2)
        disk, d_flats = _fixture(7, 512, 2, tmp_path, bucket_elements=64)
        resident.step_flat(r_flats)
        disk.step_flat(d_flats)
        rp, dp = resident.moment_planes(), disk.moment_planes()
        assert np.array_equal(rp["m"], dp["m"])
        assert np.array_equal(rp["v"], dp["v"])
        _close(disk)
        _close(resident)

    def test_spill_telemetry_counters_advance(self, tmp_path):
        disk, flats = _fixture(1, 1024, 2, tmp_path, bucket_elements=128)
        disk.step_flat(flats)
        disk.spill.drain()
        nbytes = disk.layout.total * 4
        # every (m, v) byte is read and written exactly once per step
        assert disk.spill.bytes_read == 2 * nbytes
        assert disk.spill.bytes_written == 2 * nbytes
        _close(disk)


class TestPinnedExhaustion:
    def test_exhausted_pool_degrades_without_deadlock_or_leaks(
        self, tmp_path
    ):
        """A pool too small for both a pipelined resident optimizer and a
        disk optimizer's staging must degrade to pageable buffers, keep
        both steps bitwise correct, and leak no host mirrors."""
        pool = PinnedBufferPool(1 << 12)  # deliberately tiny
        disk, d_flats = _fixture(
            11, 2048, 2, tmp_path, bucket_elements=256, pinned_pool=pool,
        )
        piped, p_flats = _fixture(
            11, 2048, 2, bucket_elements=256, pinned_pool=pool,
        )
        ref, r_flats = _fixture(11, 2048, 2, bucket_elements=256)
        for _ in range(2):
            disk.step_flat(d_flats)
            piped.step_flat(p_flats)
            ref.step_flat(r_flats)
        assert np.array_equal(disk.arena.flat, ref.arena.flat)
        assert np.array_equal(piped.arena.flat, ref.arena.flat)
        # spill staging fell back to pageable (pool could not hold it)
        assert not all(disk.spill.staging_pinned)
        for o in (disk, piped, ref):
            _close(o)
        assert pool.free_bytes == pool.capacity
        assert not pool._host_allocs

    def test_adequate_pool_fully_released(self, tmp_path):
        pool = PinnedBufferPool(1 << 24)
        disk, flats = _fixture(
            13, 2048, 2, tmp_path, bucket_elements=256, pinned_pool=pool,
        )
        disk.step_flat(flats)
        assert all(disk.spill.staging_pinned)
        assert pool.free_bytes < pool.capacity
        _close(disk)
        assert pool.free_bytes == pool.capacity
        assert not pool._host_allocs


class TestDiskValidation:
    def test_disk_requires_spill_dir(self):
        with pytest.raises(ValueError, match="spill_dir"):
            ZeroShardedAdam(
                {"p": np.zeros(16, dtype=np.float32)}, 2, offload="disk"
            )

    def test_unknown_offload_rejected(self):
        with pytest.raises(ValueError, match="offload"):
            ZeroShardedAdam(
                {"p": np.zeros(16, dtype=np.float32)}, 2, offload="nvme"
            )

    def test_disk_requires_zero_copy(self, tmp_path):
        with pytest.raises(ValueError, match="zero_copy"):
            ZeroShardedAdam(
                {"p": np.zeros(16, dtype=np.float32)}, 2,
                zero_copy=False, offload="disk",
                spill_dir=str(tmp_path),
            )
