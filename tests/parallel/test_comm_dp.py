"""Tests for simulated collectives and data-parallel helpers."""

import numpy as np
import pytest

from repro.parallel import SimProcessGroup, average_gradients, shard_batch


class TestSimProcessGroup:
    def test_all_reduce_sums(self, rng):
        group = SimProcessGroup(3)
        bufs = [np.full(4, float(r), dtype=np.float32) for r in range(3)]
        out = group.all_reduce(bufs)
        for o in out:
            np.testing.assert_allclose(o, 3.0)

    def test_all_reduce_wrong_rank_count(self):
        group = SimProcessGroup(2)
        with pytest.raises(ValueError):
            group.all_reduce([np.zeros(2)])

    def test_reduce_scatter_chunks(self):
        group = SimProcessGroup(2)
        bufs = [np.arange(4, dtype=np.float32) for _ in range(2)]
        out = group.reduce_scatter(bufs)
        np.testing.assert_allclose(out[0], [0.0, 2.0])
        np.testing.assert_allclose(out[1], [4.0, 6.0])

    def test_reduce_scatter_indivisible_rejected(self):
        group = SimProcessGroup(2)
        with pytest.raises(ValueError):
            group.reduce_scatter([np.zeros(3), np.zeros(3)])

    def test_all_gather_concatenates_in_rank_order(self):
        group = SimProcessGroup(3)
        out = group.all_gather(
            [np.full(2, r, dtype=np.float32) for r in range(3)]
        )
        np.testing.assert_allclose(out[0], [0, 0, 1, 1, 2, 2])

    def test_reduce_scatter_then_all_gather_is_all_reduce(self, rng):
        group = SimProcessGroup(4)
        bufs = [rng.standard_normal(8).astype(np.float32) for _ in range(4)]
        rs = group.reduce_scatter(bufs)
        ag = group.all_gather(rs)
        ar = group.all_reduce(bufs)
        np.testing.assert_allclose(ag[0], ar[0], rtol=1e-6)

    def test_all_to_all_is_transpose(self):
        group = SimProcessGroup(2)
        outbox = [
            [np.array([0.0]), np.array([1.0])],
            [np.array([10.0]), np.array([11.0])],
        ]
        inbox = group.all_to_all(outbox)
        assert inbox[0][1][0] == 10.0  # receiver 0 got sender 1's chunk 0
        assert inbox[1][0][0] == 1.0

    def test_all_to_all_validates_outbox(self):
        group = SimProcessGroup(2)
        with pytest.raises(ValueError):
            group.all_to_all([[np.zeros(1)], [np.zeros(1), np.zeros(1)]])

    def test_broadcast(self):
        group = SimProcessGroup(3)
        out = group.broadcast(np.array([7.0]))
        assert len(out) == 3
        assert all(o[0] == 7.0 for o in out)
        out[0][0] = 0.0  # copies, not views
        assert out[1][0] == 7.0


class TestDP:
    def test_shard_batch_even(self, rng):
        ids = rng.integers(0, 9, size=(8, 4))
        tg = rng.integers(0, 9, size=(8, 4))
        shards = shard_batch(ids, tg, 4)
        assert len(shards) == 4
        np.testing.assert_array_equal(shards[2][0], ids[4:6])

    def test_shard_batch_indivisible_rejected(self, rng):
        ids = rng.integers(0, 9, size=(6, 4))
        with pytest.raises(ValueError):
            shard_batch(ids, ids, 4)

    def test_average_gradients(self, rng):
        group = SimProcessGroup(2)
        g1 = {"w": np.full(3, 2.0, dtype=np.float32)}
        g2 = {"w": np.full(3, 4.0, dtype=np.float32)}
        avg = average_gradients([g1, g2], group)
        np.testing.assert_allclose(avg["w"], 3.0)

    def test_average_gradients_key_mismatch(self):
        group = SimProcessGroup(2)
        with pytest.raises(ValueError):
            average_gradients(
                [{"a": np.zeros(1)}, {"b": np.zeros(1)}], group
            )

    def test_dp_equals_single_rank_large_batch(self, tiny_model, rng):
        """Data parallelism invariant: averaging shard gradients equals
        the gradient of the full batch."""
        ids = rng.integers(0, 61, size=(4, 8))
        targets = rng.integers(0, 61, size=(4, 8))
        _, full = tiny_model.loss_and_grads(ids, targets)
        group = SimProcessGroup(2)
        shards = shard_batch(ids, targets, 2)
        per_rank = [
            tiny_model.loss_and_grads(i, t)[1] for i, t in shards
        ]
        avg = average_gradients(per_rank, group)
        for k in full:
            np.testing.assert_allclose(avg[k], full[k], atol=1e-5)
