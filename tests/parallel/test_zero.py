"""Tests for ZeRO-style sharded optimization (§4.7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim import AdamConfig, GraceAdam
from repro.parallel import ZeroConfig, ZeroShardedAdam, partition_params


def make_params(rng):
    return {
        "a": rng.standard_normal((3, 5)).astype(np.float32),
        "b": rng.standard_normal(7).astype(np.float32),
    }


class TestPartition:
    def test_layout_padding(self, rng):
        params = make_params(rng)  # 22 elements
        layout = partition_params(params, 4)
        assert layout.unpadded == 22
        assert layout.total == 24
        assert layout.total % 4 == 0

    def test_offsets_contiguous(self, rng):
        layout = partition_params(make_params(rng), 2)
        assert layout.offsets == (0, 15)


class TestZeroShardedAdam:
    def test_matches_unsharded_adam(self, rng):
        """The core ZeRO invariant: sharding optimizer states across ranks
        reproduces the unsharded update."""
        cfg = AdamConfig(lr=1e-2, weight_decay=0.01)
        base = make_params(rng)
        ref = GraceAdam({k: v.copy() for k, v in base.items()}, cfg)
        sharded = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, world_size=4, config=cfg
        )
        for _ in range(4):
            per_rank = [
                {k: rng.standard_normal(v.shape).astype(np.float32)
                 for k, v in base.items()}
                for _ in range(4)
            ]
            # reference: same sum-then-divide averaging the group performs
            avg = {}
            for k in base:
                total = per_rank[0][k].copy()
                for g in per_rank[1:]:
                    total = total + g[k]
                avg[k] = (total / np.float32(4)).astype(np.float32)
            ref.step(avg)
            sharded.step(per_rank)
        for k in base:
            np.testing.assert_allclose(
                ref.params[k], sharded.params[k], atol=1e-6
            )

    def test_world_size_one_degenerates(self, rng):
        cfg = AdamConfig(lr=1e-2)
        base = make_params(rng)
        ref = GraceAdam({k: v.copy() for k, v in base.items()}, cfg)
        sharded = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, world_size=1, config=cfg
        )
        grads = {k: rng.standard_normal(v.shape).astype(np.float32)
                 for k, v in base.items()}
        ref.step(grads)
        sharded.step([grads])
        for k in base:
            np.testing.assert_allclose(ref.params[k], sharded.params[k],
                                       atol=1e-7)

    def test_state_bytes_shrink_with_world(self, rng):
        base = make_params(rng)
        per_rank_4 = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, 4
        ).optimizer_state_bytes_per_rank()
        per_rank_2 = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, 2
        ).optimizer_state_bytes_per_rank()
        assert per_rank_4 == pytest.approx(per_rank_2 / 2, rel=0.2)

    def test_owned_slices_disjoint_and_cover(self, rng):
        opt = ZeroShardedAdam(make_params(rng), 4)
        slices = [opt.owned_slice(r) for r in range(4)]
        assert slices[0][0] == 0
        for (a, b), (c, d) in zip(slices, slices[1:]):
            assert b == c
        assert slices[-1][1] == opt.layout.total
        with pytest.raises(IndexError):
            opt.owned_slice(4)

    def test_step_count_advances(self, rng):
        opt = ZeroShardedAdam(make_params(rng), 2)
        grads = [{k: np.zeros_like(v) for k, v in opt.params.items()}
                 for _ in range(2)]
        assert opt.step_count == 0
        opt.step(grads)
        assert opt.step_count == 1

    def test_wrong_rank_count_rejected(self, rng):
        opt = ZeroShardedAdam(make_params(rng), 2)
        with pytest.raises(ValueError):
            opt.step([{k: np.zeros_like(v) for k, v in opt.params.items()}])

    def test_no_average_mode(self, rng):
        base = make_params(rng)
        cfg = AdamConfig(lr=1e-2)
        ref = GraceAdam({k: v.copy() for k, v in base.items()}, cfg)
        opt = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, 2, config=cfg,
            zero=ZeroConfig(average_gradients=False),
        )
        g = {k: rng.standard_normal(v.shape).astype(np.float32)
             for k, v in base.items()}
        half = {k: (v / np.float32(2)).astype(np.float32) for k, v in g.items()}
        ref.step({k: half[k] + half[k] for k in half})
        opt.step([half, half])
        for k in base:
            np.testing.assert_allclose(ref.params[k], opt.params[k], atol=1e-6)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ZeroConfig(stage=4)
        with pytest.raises(ValueError):
            ZeroShardedAdam({"a": np.zeros(2, np.float32)}, 0)

class TestPipelinedStep:
    """The overlapped bucket pipeline must be bitwise identical to the
    serial zero-copy ``step_flat`` at every world size, bucket size, and
    worker count — including bucket sizes that leave ragged shard tails."""

    @staticmethod
    def _filled_flats(opt, rng):
        flats = []
        for r in range(opt.world_size):
            ga = opt.grad_arena(r)
            for view in ga.views.values():
                view[...] = rng.standard_normal(view.shape, dtype=np.float32)
            flats.append(ga.flat)
        return flats

    @pytest.mark.parametrize("world", [1, 2, 4])
    @pytest.mark.parametrize("bucket_elements", [1, 5, 64, 1 << 20])
    def test_bitwise_matches_serial_step_flat(self, rng, world,
                                              bucket_elements):
        from repro.exec.pool import KernelPool

        base = make_params(rng)
        serial = ZeroShardedAdam(
            {k: v.copy() for k, v in base.items()}, world
        )
        pool = KernelPool(2)
        try:
            pipe = ZeroShardedAdam(
                {k: v.copy() for k, v in base.items()}, world,
                pipeline=True, bucket_elements=bucket_elements, pool=pool,
            )
            for _ in range(3):
                flats = self._filled_flats(serial, rng)
                for r in range(world):
                    gp = pipe.grad_arena(r)
                    gp.flat[...] = flats[r]
                serial.step_flat(flats)
                pipe.step_flat([pipe.grad_arena(r).flat
                                for r in range(world)])
            assert serial.step_count == pipe.step_count
            np.testing.assert_array_equal(serial.arena.flat, pipe.arena.flat)
            for r in range(world):
                s_opt = serial._rank_optimizers[r]
                p_opt = pipe._rank_optimizers[r]
                np.testing.assert_array_equal(
                    s_opt.state["shard"].m, p_opt.state["shard"].m
                )
                np.testing.assert_array_equal(
                    s_opt.state["shard"].v, p_opt.state["shard"].v
                )
        finally:
            pipe.release_staging()
            pool.shutdown()

    def test_payload_accounting_matches_serial(self, rng):
        """The pipeline bypasses the collective entry points but must
        report the same reduce-scatter/all-gather payload bytes."""
        from repro.telemetry import Telemetry

        base = make_params(rng)
        results = {}
        for name, kwargs in (("serial", {}), ("pipeline", {"pipeline": True})):
            telemetry = Telemetry()
            opt = ZeroShardedAdam(
                {k: v.copy() for k, v in base.items()}, 2,
                telemetry=telemetry, **kwargs,
            )
            opt.step_flat(self._filled_flats(opt, rng))
            results[name] = {
                op: telemetry.metrics.counter(
                    "collective_bytes_total", op=op
                ).value
                for op in ("reduce_scatter", "all_gather")
            }
            opt.release_staging()
        assert results["serial"] == results["pipeline"]

    def test_pinned_staging_reserved_and_released(self, rng):
        from repro.tensors import MemoryPool, PinnedBufferPool

        host = MemoryPool("cpu:0", 1 << 20)
        pinned = PinnedBufferPool(1 << 20, host_pool=host)
        opt = ZeroShardedAdam(
            make_params(rng), 2, pipeline=True, bucket_elements=4,
            pinned_pool=pinned,
        )
        for _ in range(3):  # staging is built once, reused per step
            opt.step_flat(self._filled_flats(opt, rng))
        staged = 2 * opt.bucket_elements * 4  # double-buffered fp32
        assert pinned.free_bytes == pinned.capacity - staged
        assert host.used == staged
        opt.release_staging()
        assert pinned.free_bytes == pinned.capacity
        assert host.used == 0

    def test_full_pinned_pool_degrades_to_pageable(self, rng):
        from repro.tensors import PinnedBufferPool

        pinned = PinnedBufferPool(1)  # can't fit any staging bucket
        opt = ZeroShardedAdam(
            make_params(rng), 2, pipeline=True, bucket_elements=4,
            pinned_pool=pinned,
        )
        opt.step_flat(self._filled_flats(opt, rng))  # must not raise
        assert pinned.free_bytes == pinned.capacity
        opt.release_staging()

    def test_pipeline_requires_zero_copy(self, rng):
        with pytest.raises(ValueError):
            ZeroShardedAdam(make_params(rng), 2, zero_copy=False,
                            pipeline=True)
        with pytest.raises(ValueError):
            ZeroShardedAdam(make_params(rng), 2, pipeline=True,
                            bucket_elements=0)

    def test_bucket_elements_clamped_to_shard(self, rng):
        opt = ZeroShardedAdam(make_params(rng), 2, pipeline=True,
                              bucket_elements=1 << 30)
        assert opt.bucket_elements == opt.layout.total // 2

    @given(world=st.integers(min_value=1, max_value=4),
           bucket=st.integers(min_value=1, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_any_bucket_size_bitwise(self, world, bucket):
        rng = np.random.default_rng(world * 100 + bucket)
        base = {"w": rng.standard_normal(37).astype(np.float32)}
        serial = ZeroShardedAdam({"w": base["w"].copy()}, world)
        pipe = ZeroShardedAdam({"w": base["w"].copy()}, world,
                               pipeline=True, bucket_elements=bucket)
        flats = TestPipelinedStep._filled_flats(serial, rng)
        for r in range(world):
            gp = pipe.grad_arena(r)
            gp.flat[...] = flats[r]
        serial.step_flat(flats)
        pipe.step_flat([pipe.grad_arena(r).flat for r in range(world)])
        pipe.release_staging()
        np.testing.assert_array_equal(serial.arena.flat, pipe.arena.flat)


class TestZeroHypothesis:
    @given(world=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_sharded_invariant_any_world_size(self, world):
        rng = np.random.default_rng(world)
        base = {"w": rng.standard_normal(13).astype(np.float32)}
        cfg = AdamConfig(lr=5e-3)
        ref = GraceAdam({"w": base["w"].copy()}, cfg)
        opt = ZeroShardedAdam({"w": base["w"].copy()}, world, config=cfg)
        per_rank = [
            {"w": rng.standard_normal(13).astype(np.float32)}
            for _ in range(world)
        ]
        total = per_rank[0]["w"].copy()
        for g in per_rank[1:]:
            total = total + g["w"]
        ref.step({"w": (total / np.float32(world)).astype(np.float32)})
        opt.step(per_rank)
        np.testing.assert_allclose(ref.params["w"], opt.params["w"], atol=1e-6)
