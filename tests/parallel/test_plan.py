"""ParallelPlan geometry, validation, and the plan-routed PlanModel.

PlanModel equivalence follows the per-axis numerics contract: pure-PP
routing is bitwise against the microbatched reference (layer splitting
changes no arithmetic), while any ``tp > 1`` path inherits the
documented TP tolerance (OpenBLAS blocks matmuls by operand shape).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.parallel.pipeline import microbatched_loss_and_grads
from repro.parallel.plan import ParallelPlan, PlanModel

SPEC = TransformerParams(vocab=64, max_seq=16, hidden=32, n_layers=4,
                         n_heads=4)


def _batch(seed=0, batch=8):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, SPEC.vocab, size=(batch, SPEC.max_seq)),
            rng.integers(0, SPEC.vocab, size=(batch, SPEC.max_seq)))


# -- plan geometry ------------------------------------------------------


def test_world_size_and_describe():
    plan = ParallelPlan(tp=2, pp=2, dp=2, sp=1)
    assert plan.world_size == 8
    assert plan.describe() == "tp2.pp2.dp2.sp1"
    assert ParallelPlan().world_size == 1


def test_degree_validation():
    with pytest.raises(ValueError, match="tp degree"):
        ParallelPlan(tp=0)
    with pytest.raises(TypeError):
        ParallelPlan(pp=2.0)
    with pytest.raises(TypeError):
        ParallelPlan(dp=True)


@settings(max_examples=30, deadline=None)
@given(tp=st.integers(1, 4), pp=st.integers(1, 3), dp=st.integers(1, 3),
       sp=st.integers(1, 2))
def test_coords_rank_roundtrip(tp, pp, dp, sp):
    plan = ParallelPlan(tp=tp, pp=pp, dp=dp, sp=sp)
    seen = set()
    for rank in range(plan.world_size):
        c = plan.coords(rank)
        assert plan.rank_of(*c) == rank
        seen.add(c)
    assert len(seen) == plan.world_size


def test_tp_varies_fastest():
    plan = ParallelPlan(tp=2, pp=2, dp=2)
    # ranks 0 and 1 differ only in the tp coordinate — a contiguous
    # block, the Megatron nesting order.
    assert plan.coords(0)[:3] == plan.coords(1)[:3]
    assert plan.coords(0)[3] == 0 and plan.coords(1)[3] == 1


def test_coords_rank_errors():
    plan = ParallelPlan(tp=2, dp=2)
    with pytest.raises(ValueError, match="out of range"):
        plan.coords(4)
    with pytest.raises(ValueError, match="out of range"):
        plan.rank_of(2, 0, 0, 0)


# -- enumeration --------------------------------------------------------


def test_enumerate_covers_all_factorizations():
    plans = ParallelPlan.enumerate(4)
    assert all(p.world_size == 4 for p in plans)
    labels = {p.describe() for p in plans}
    assert "tp1.pp1.dp4.sp1" in labels
    assert "tp2.pp2.dp1.sp1" in labels
    assert "tp4.pp1.dp1.sp1" in labels
    # tp * pp * dp == 4 has 6 ordered factorizations
    assert len(plans) == 6


def test_enumerate_filters_by_spec():
    # 3 heads: tp=2 and tp=4 cannot shard attention.
    spec = TransformerParams(vocab=60, max_seq=8, hidden=24, n_layers=4,
                             n_heads=3)
    plans = ParallelPlan.enumerate(4, spec)
    assert all(p.tp == 1 for p in plans)


def test_enumerate_filters_pp_by_layers():
    spec = TransformerParams(vocab=64, max_seq=8, hidden=16, n_layers=2,
                             n_heads=2)
    plans = ParallelPlan.enumerate(4, spec)
    assert all(p.pp <= 2 for p in plans)


# -- validate_model error surface ---------------------------------------


def test_validate_model_messages_name_plan_and_axis():
    plan = ParallelPlan(tp=4)
    spec = TransformerParams(vocab=64, max_seq=8, hidden=6, n_layers=2,
                             n_heads=2)
    with pytest.raises(ValueError) as e:
        plan.validate_model(spec)
    msg = str(e.value)
    assert "tp4.pp1.dp1.sp1" in msg and "hidden width" in msg


def test_validate_model_pp_vs_layers():
    with pytest.raises(ValueError, match="pipeline stages"):
        ParallelPlan(pp=8).validate_model(SPEC)


def test_validate_model_batch_axes():
    plan = ParallelPlan(dp=3)
    with pytest.raises(ValueError, match="global batch"):
        plan.validate_model(SPEC, global_batch=8)
    with pytest.raises(ValueError, match="per-replica batch"):
        ParallelPlan(dp=2, pp=2).validate_model(
            SPEC, global_batch=8, n_microbatches=3
        )


def test_validate_model_sp_divides_per_tp_heads():
    plan = ParallelPlan(tp=2, sp=4)
    with pytest.raises(ValueError, match="per-TP-rank attention heads"):
        plan.validate_model(SPEC)  # 4 heads / tp2 = 2, not divisible by 4


# -- PlanModel routing --------------------------------------------------


def test_plan_model_identity_plan_passes_through():
    model = TinyTransformer(SPEC, seed=0)
    pm = PlanModel(model, ParallelPlan(dp=4))
    ids, targets = _batch()
    ref_loss, ref_grads = model.loss_and_grads(ids, targets)
    loss, grads = pm.loss_and_grads(ids, targets)
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k])


def test_plan_model_pp_only_is_bitwise():
    model = TinyTransformer(SPEC, seed=1)
    pm = PlanModel(model, ParallelPlan(pp=2), n_microbatches=4)
    ids, targets = _batch(seed=5)
    ref_loss, ref_grads = microbatched_loss_and_grads(model, ids, targets, 4)
    loss, grads = pm.loss_and_grads(ids, targets)
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)


@pytest.mark.parametrize("plan", [
    ParallelPlan(tp=2),
    ParallelPlan(tp=2, pp=2),
    ParallelPlan(tp=4, pp=2),
])
def test_plan_model_tp_paths_within_tolerance(plan):
    model = TinyTransformer(SPEC, seed=1)
    pm = PlanModel(model, plan, n_microbatches=2)
    ids, targets = _batch(seed=6)
    ref_loss, ref_grads = (
        microbatched_loss_and_grads(model, ids, targets, 2)
        if plan.pp > 1 else model.loss_and_grads(ids, targets)
    )
    loss, grads = pm.loss_and_grads(ids, targets)
    assert abs(loss - ref_loss) <= 1e-6
    assert set(grads) == set(ref_grads)
    for k in ref_grads:
        np.testing.assert_allclose(grads[k], ref_grads[k], atol=1e-5,
                                   err_msg=k)


def test_plan_model_params_override_rebuilds_exactly():
    model = TinyTransformer(SPEC, seed=2)
    pm = PlanModel(model, ParallelPlan(pp=2), n_microbatches=2)
    ids, targets = _batch(seed=7)
    override = {k: v * np.float32(0.5) for k, v in model.params.items()}
    ref_model = TinyTransformer(SPEC, seed=2)
    ref_model.params = {k: v.copy() for k, v in override.items()}
    ref_loss, ref_grads = microbatched_loss_and_grads(
        ref_model, ids, targets, 2
    )
    loss, grads = pm.loss_and_grads(ids, targets, params=override)
    assert loss == ref_loss
    for k in ref_grads:
        np.testing.assert_array_equal(grads[k], ref_grads[k], err_msg=k)
    # the wrapped model's own params are restored afterwards
    base_loss, _ = pm.loss_and_grads(ids, targets)
    plain_loss, _ = microbatched_loss_and_grads(model, ids, targets, 2)
    assert base_loss == plain_loss


def test_plan_model_rejects_workspace_with_pp():
    from repro.tensors.workspace import ActivationWorkspace

    model = TinyTransformer(SPEC, seed=0, workspace=ActivationWorkspace())
    with pytest.raises(ValueError, match="workspace"):
        PlanModel(model, ParallelPlan(pp=2))


def test_plan_model_delegates_attributes():
    model = TinyTransformer(SPEC, seed=0)
    pm = PlanModel(model, ParallelPlan(tp=2))
    assert pm.spec is model.spec
    assert pm.params is model.params


def test_measured_bubble_requires_pipeline_axis():
    model = TinyTransformer(SPEC, seed=0)
    pm = PlanModel(model, ParallelPlan(tp=2))
    with pytest.raises(RuntimeError, match="no pipeline axis"):
        pm.measured_bubble_fraction()


def test_measured_bubble_after_override_step():
    # The params-override path steps a rebuilt executor; the fraction
    # must come from that one, not the stale original.
    model = TinyTransformer(SPEC, seed=3)
    pm = PlanModel(model, ParallelPlan(pp=2), n_microbatches=4)
    ids, targets = _batch(seed=8)
    override = {k: v.copy() for k, v in model.params.items()}
    pm.loss_and_grads(ids, targets, params=override)
    frac = pm.measured_bubble_fraction()
    assert 0.0 <= frac < 1.0
