"""Test package."""
