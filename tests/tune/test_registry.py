"""The tunable registry: the single source of names, defaults, ranges."""

import pytest

from repro.tune import registry


def test_names_sorted_and_stable():
    names = registry.names()
    assert names == tuple(sorted(names))
    assert names == registry.names()


def test_every_default_is_valid():
    for name in registry.names():
        t = registry.get(name)
        assert registry.is_valid(name, t.default), name
        assert t.lo <= t.default <= t.hi, name


def test_every_choice_is_in_range():
    for name in registry.names():
        t = registry.get(name)
        for c in t.choices:
            assert registry.is_valid(name, c), (name, c)


def test_expected_tunables_present():
    names = set(registry.names())
    # The consumers this PR threads lookups through must all have a
    # registered knob; a rename here must be deliberate.
    assert {
        "adam.min_parallel", "adam.cache_tile", "scale.min_parallel",
        "copy.min_parallel", "cast.min_parallel",
        "scale_into.min_parallel", "add_scaled.min_parallel",
        "reduce.min_parallel", "grace.tile_size", "flash.block_q",
        "flash.block_k", "rollback.snapshot_cutoff",
        "zero.bucket_elements", "zero.min_pipeline", "pool.workers",
        "spill.chunk_bytes", "spill.prefetch_depth", "spill.writer_queue",
    } <= names


def test_spill_workload_has_revert_entries():
    """The end-to-end validation backstop must know which profile
    entries steer the spill workload (the revert set)."""
    from repro.tune.search import _WORKLOAD_ENTRIES

    assert _WORKLOAD_ENTRIES["spill"] == (
        "spill.chunk_bytes", "spill.prefetch_depth", "spill.writer_queue",
    )


def test_unknown_name_raises_with_known_names():
    with pytest.raises(KeyError) as exc:
        registry.get("nonsense.knob")
    assert "adam.min_parallel" in str(exc.value)
    with pytest.raises(KeyError):
        registry.default("nonsense.knob")


def test_is_valid_rejects_non_integers_and_bools():
    assert not registry.is_valid("adam.min_parallel", True)
    assert not registry.is_valid("adam.min_parallel", 1.5)
    assert not registry.is_valid("adam.min_parallel", "64")
    assert not registry.is_valid("adam.min_parallel", None)


def test_is_valid_rejects_out_of_range():
    t = registry.get("flash.block_q")
    assert not registry.is_valid("flash.block_q", t.lo - 1)
    assert not registry.is_valid("flash.block_q", t.hi + 1)
    assert registry.is_valid("flash.block_q", t.lo)
    assert registry.is_valid("flash.block_q", t.hi)


def test_is_valid_unknown_name_false():
    assert not registry.is_valid("nonsense.knob", 1)


def test_every_tunable_documents_its_consumer():
    for name in registry.names():
        t = registry.get(name)
        assert t.doc, name
        assert t.consumer, name
