"""The runtime lookup: fallback order, activation, autoload kill-switch."""

import json

import pytest

from repro.tune import profile as tp
from repro.tune import registry
from repro.tune import runtime


def _profile(**entries):
    prof = tp.TuneProfile(host="test-host", cpu_count=2)
    for name, value in entries.items():
        prof.set(name.replace("__", "."), value)
    return prof


def test_value_untuned_returns_passed_default():
    runtime.activate(None)
    assert runtime.value("adam.min_parallel", 12345) == 12345


def test_value_untuned_none_default_uses_registry():
    runtime.activate(None)
    assert runtime.value("adam.min_parallel") == registry.default(
        "adam.min_parallel"
    )


def test_value_unknown_name_raises_even_untuned():
    runtime.activate(None)
    with pytest.raises(KeyError):
        runtime.value("nonsense.knob", 1)


def test_value_tuned_beats_passed_default():
    runtime.activate(_profile(adam__min_parallel=1 << 18))
    assert runtime.value("adam.min_parallel", 12345) == 1 << 18


def test_value_tuned_profile_without_entry_falls_back():
    runtime.activate(_profile(adam__min_parallel=1 << 18))
    assert runtime.value("scale.min_parallel", 777) == 777


def test_value_band_resolution_threads_size():
    prof = tp.TuneProfile(host="h", cpu_count=1)
    t = registry.get("adam.min_parallel")
    prof.set_banded("adam.min_parallel", t.default, [(1 << 16, t.hi)])
    runtime.activate(prof)
    assert runtime.value("adam.min_parallel", 1, size=1 << 16) == t.hi
    assert runtime.value("adam.min_parallel", 1, size=(1 << 16) + 1) == t.default


def test_activate_none_disables_autoload(tmp_path, monkeypatch):
    path = _write_host_profile(tmp_path, adam_min_parallel=1 << 18)
    monkeypatch.setenv("REPRO_TUNE", "1")
    monkeypatch.setenv(tp.ENV_PROFILE, str(path))
    runtime.reset()
    runtime.activate(None)
    # Explicit deactivation wins over the autoloader.
    assert runtime.value("adam.min_parallel", 5) == 5
    assert runtime.active() is None


def test_autoload_from_env_profile(tmp_path, monkeypatch):
    path = _write_host_profile(tmp_path, adam_min_parallel=1 << 18)
    monkeypatch.setenv("REPRO_TUNE", "1")
    monkeypatch.setenv(tp.ENV_PROFILE, str(path))
    runtime.reset()
    assert runtime.value("adam.min_parallel", 5) == 1 << 18
    assert runtime.active() is not None


def test_kill_switch_blocks_autoload(tmp_path, monkeypatch):
    path = _write_host_profile(tmp_path, adam_min_parallel=1 << 18)
    monkeypatch.setenv("REPRO_TUNE", "0")
    monkeypatch.setenv(tp.ENV_PROFILE, str(path))
    runtime.reset()
    assert runtime.value("adam.min_parallel", 5) == 5
    # ... but explicit activation still works under the kill-switch.
    runtime.activate(_profile(adam__min_parallel=1 << 17))
    assert runtime.value("adam.min_parallel", 5) == 1 << 17


def test_reset_rearms_autoload(tmp_path, monkeypatch):
    path = _write_host_profile(tmp_path, adam_min_parallel=1 << 18)
    monkeypatch.setenv("REPRO_TUNE", "1")
    monkeypatch.setenv(tp.ENV_PROFILE, str(path))
    runtime.activate(None)
    assert runtime.value("adam.min_parallel", 5) == 5
    runtime.reset()
    assert runtime.value("adam.min_parallel", 5) == 1 << 18


def test_overridden_nests_and_restores():
    runtime.activate(_profile(adam__min_parallel=1 << 16))
    with runtime.overridden(_profile(adam__min_parallel=1 << 18)):
        assert runtime.value("adam.min_parallel") == 1 << 18
        with runtime.overridden(None):
            assert runtime.value("adam.min_parallel", 9) == 9
        assert runtime.value("adam.min_parallel") == 1 << 18
    assert runtime.value("adam.min_parallel") == 1 << 16


def test_overridden_restores_on_exception():
    runtime.activate(_profile(adam__min_parallel=1 << 16))
    with pytest.raises(RuntimeError):
        with runtime.overridden(None):
            raise RuntimeError("boom")
    assert runtime.value("adam.min_parallel") == 1 << 16


def _write_host_profile(tmp_path, adam_min_parallel):
    """A tune.json keyed under THIS host so the autoloader matches it."""
    path = tmp_path / "tune.json"
    path.write_text(json.dumps({
        "schema": registry.SCHEMA_VERSION,
        "hosts": {tp.host_key(): {
            "created": "", "cpu_count": 1,
            "entries": {"adam.min_parallel": adam_min_parallel},
        }},
    }))
    return path
