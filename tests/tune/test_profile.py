"""Profile persistence: round-trips, merging, graceful degradation."""

import json
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.tune import profile as tp
from repro.tune import registry


def _entry_strategy(name: str):
    """A valid scalar or banded entry for one tunable."""
    t = registry.get(name)
    values = st.sampled_from(list(t.choices) or [t.default])
    scalar = values
    band = st.tuples(
        values,
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=1 << 24), values),
            min_size=1, max_size=3, unique_by=lambda b: b[0],
        ),
    )
    return st.one_of(scalar, band)


@st.composite
def profiles(draw):
    names = draw(st.lists(
        st.sampled_from(sorted(registry.names())),
        min_size=0, max_size=6, unique=True,
    ))
    prof = tp.TuneProfile(host="test-host-cpu4", cpu_count=4,
                          created="2026-08-08T00:00:00+00:00")
    for name in names:
        entry = draw(_entry_strategy(name))
        if isinstance(entry, int):
            prof.set(name, entry)
        else:
            default, bands = entry
            prof.set_banded(name, default, bands)
    return prof


@settings(max_examples=25, deadline=None)
@given(profiles())
def test_save_load_round_trip(tmp_path_factory, prof):
    path = tmp_path_factory.mktemp("prof") / "tune.json"
    tp.save(prof, path)
    loaded = tp.load(path, host=prof.host)
    assert loaded is not None
    assert loaded.entries == prof.entries
    assert loaded.cpu_count == prof.cpu_count
    assert loaded.created == prof.created
    # loading twice yields the identical effective plan (determinism)
    again = tp.load(path, host=prof.host)
    assert again.plan() == loaded.plan()


def test_save_merges_hosts(tmp_path):
    path = tmp_path / "tune.json"
    a = tp.TuneProfile(host="host-a-cpu2", cpu_count=2)
    a.set("adam.min_parallel", 1 << 16)
    tp.save(a, path)
    b = tp.TuneProfile(host="host-b-cpu8", cpu_count=8)
    b.set("flash.block_q", 64)
    tp.save(b, path)
    assert tp.load(path, host="host-a-cpu2").entries == a.entries
    assert tp.load(path, host="host-b-cpu8").entries == b.entries


def test_save_overwrites_same_host(tmp_path):
    path = tmp_path / "tune.json"
    a = tp.TuneProfile(host="host-a-cpu2", cpu_count=2)
    a.set("adam.min_parallel", 1 << 16)
    tp.save(a, path)
    a2 = tp.TuneProfile(host="host-a-cpu2", cpu_count=2)
    a2.set("adam.min_parallel", 1 << 18)
    tp.save(a2, path)
    assert tp.load(path, host="host-a-cpu2").entries == a2.entries


def test_missing_file_is_silent(tmp_path):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert tp.load(tmp_path / "absent.json") is None


def test_corrupt_json_single_warning(tmp_path):
    path = tmp_path / "tune.json"
    path.write_text("{not json at all")
    with pytest.warns(tp._TuneWarning, match="unreadable"):
        assert tp.load(path) is None


def test_non_object_document_warns(tmp_path):
    path = tmp_path / "tune.json"
    path.write_text("[1, 2, 3]\n")
    with pytest.warns(tp._TuneWarning, match="not a JSON object"):
        assert tp.load(path) is None


def test_stale_schema_warns_and_degrades(tmp_path):
    path = tmp_path / "tune.json"
    path.write_text(json.dumps({"schema": 999, "hosts": {}}))
    with pytest.warns(tp._TuneWarning, match="schema"):
        assert tp.load(path) is None


def test_invalid_entries_dropped_with_one_warning(tmp_path):
    path = tmp_path / "tune.json"
    host = "h-cpu1"
    path.write_text(json.dumps({
        "schema": registry.SCHEMA_VERSION,
        "hosts": {host: {"created": "", "cpu_count": 1, "entries": {
            "adam.min_parallel": 1 << 16,      # valid -> kept
            "adam.cache_tile": -5,             # out of range -> dropped
            "unknown.tunable": 3,              # unknown -> dropped
            "flash.block_q": "big",            # wrong type -> dropped
        }}},
    }))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        loaded = tp.load(path, host=host)
    assert loaded is not None
    assert loaded.entries == {"adam.min_parallel": 1 << 16}
    tune_warnings = [w for w in caught
                     if issubclass(w.category, tp._TuneWarning)]
    assert len(tune_warnings) == 1


def test_banded_lookup_resolution():
    prof = tp.TuneProfile(host="h", cpu_count=1)
    prof.set_banded("adam.min_parallel", 1 << 15,
                    [(1 << 16, 1 << 20), (1 << 18, 1 << 21)])
    # inside first band
    assert prof.value("adam.min_parallel", size=1 << 16) == 1 << 20
    # between bands -> second band
    assert prof.value("adam.min_parallel", size=(1 << 16) + 1) == 1 << 21
    # above all bands -> the entry default
    assert prof.value("adam.min_parallel", size=(1 << 18) + 1) == 1 << 15
    # no size -> the entry default
    assert prof.value("adam.min_parallel") == 1 << 15


def test_set_rejects_out_of_range():
    prof = tp.TuneProfile(host="h", cpu_count=1)
    with pytest.raises(ValueError):
        prof.set("flash.block_q", 7)
    with pytest.raises(ValueError):
        prof.set_banded("flash.block_q", 64, [(0, 64)])
    with pytest.raises(ValueError):
        prof.set_banded("flash.block_q", 64, [(100, 7)])


def test_default_path_resolution(tmp_path, monkeypatch):
    env_path = tmp_path / "env.json"
    monkeypatch.setenv(tp.ENV_PROFILE, str(env_path))
    assert tp.default_path() == env_path
    monkeypatch.delenv(tp.ENV_PROFILE)
    monkeypatch.chdir(tmp_path)
    # no repo-local file -> home
    assert tp.default_path() == tp.HOME_PROFILE.expanduser()
    local = tmp_path / ".repro" / "tune.json"
    local.parent.mkdir()
    local.write_text("{}")
    assert tp.default_path() == tp.LOCAL_PROFILE


def test_atomic_save_preserves_on_readonly_parent(tmp_path):
    # A failed save must not leave a truncated file behind.
    path = tmp_path / "tune.json"
    good = tp.TuneProfile(host="h-cpu1", cpu_count=1)
    good.set("flash.block_q", 64)
    tp.save(good, path)
    before = path.read_text()
    json.loads(before)  # well-formed
    assert tp.load(path, host="h-cpu1").entries == good.entries
