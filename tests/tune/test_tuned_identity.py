"""Tuned configurations are pure perf policy: results never move.

The autotuner's core guarantee — any profile built from registry-valid
values changes only *where* work runs (inline vs pool, tile sizes,
bucket shapes), never *what* comes out.  These tests sample random
tuned configs with hypothesis and compare every op bit-for-bit against
the serial kernel ancestor, across worker counts 1/2/4 and adversarial
sizes that straddle the sampled crossovers.  The flash block sides are
the documented exception (they reorder the online softmax) and are held
to fp32 tolerance vs the dense reference plus bitwise determinism
across worker counts instead.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import kernels, ops
from repro.exec.pool import KernelPool
from repro.numeric import flash
from repro.numeric.attention import MultiHeadAttention
from repro.optim import AdamConfig, GraceAdam
from repro.optim.rollback import SnapshotRollback
from repro.parallel.zero import ZeroShardedAdam
from repro.tensors.arena import FlatArena
from repro.tune import profile as tp
from repro.tune import registry, runtime

WORKER_COUNTS = (1, 2, 4)

#: Off-by-one tails, primes, sizes no worker count divides — and sizes
#: on both sides of every sampled crossover below.
ADVERSARIAL_SIZES = (1, 15, 16, 17, 97, 255, 256, 1009, 4096, 4097)

#: Crossover samples from force-parallel (1) through force-inline (hi);
#: all within the registry's [lo, hi] for every *.min_parallel tunable.
CROSSOVER_SAMPLES = (1, 64, 4096, 1 << 17, 1 << 26)

OP_CROSSOVERS = (
    "adam.min_parallel", "scale.min_parallel", "copy.min_parallel",
    "cast.min_parallel", "scale_into.min_parallel",
    "add_scaled.min_parallel", "reduce.min_parallel",
)


@st.composite
def tuned_profiles(draw):
    """A random but registry-valid profile over the op tunables."""
    prof = tp.TuneProfile(host="hypothesis-host", cpu_count=4)
    for name in OP_CROSSOVERS:
        value = draw(st.sampled_from(CROSSOVER_SAMPLES))
        if draw(st.booleans()):
            # The banded shape the tuner writes on a never-won search:
            # measured value up to band_hi, authoring default above.
            band_hi = draw(st.sampled_from((256, 4096, 1 << 16)))
            prof.set_banded(name, registry.default(name),
                            [(band_hi, value)])
        else:
            prof.set(name, value)
    prof.set("adam.cache_tile",
             draw(st.sampled_from(registry.get("adam.cache_tile").choices)))
    return prof


@pytest.fixture(params=WORKER_COUNTS)
def pool(request):
    p = KernelPool(request.param)
    yield p
    p.shutdown()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(prof=tuned_profiles(),
       size=st.sampled_from(ADVERSARIAL_SIZES),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_every_op_bitwise_under_sampled_config(pool, prof, size, seed):
    rng = np.random.default_rng(seed)
    src = rng.standard_normal(size).astype(np.float32)
    acc = rng.standard_normal(size).astype(np.float32)
    coef = np.float32(0.99970243)
    scale = np.float32(1e-3)

    serial = src.copy()
    kernels.scale_chunk(0, size, serial, coef)
    tuned = src.copy()
    with runtime.overridden(prof):
        ops.parallel_scale(tuned, coef, pool=pool)
    np.testing.assert_array_equal(tuned, serial)

    dst = np.empty_like(src)
    with runtime.overridden(prof):
        ops.parallel_copy(dst, src, pool=pool)
    np.testing.assert_array_equal(dst, src)

    serial16 = np.empty(size, np.float16)
    kernels.cast_chunk(0, size, serial16, src, True)
    tuned16 = np.empty(size, np.float16)
    with runtime.overridden(prof):
        ops.parallel_cast(tuned16, src, ignore_overflow=True, pool=pool)
    np.testing.assert_array_equal(tuned16, serial16)

    serial_si = np.empty_like(src)
    kernels.scale_into_chunk(0, size, serial_si, src, scale)
    tuned_si = np.empty_like(src)
    with runtime.overridden(prof):
        ops.parallel_scale_into(tuned_si, src, scale, pool=pool)
    np.testing.assert_array_equal(tuned_si, serial_si)

    serial_as = acc.copy()
    kernels.add_scaled_chunk(0, size, serial_as, src, scale)
    tuned_as = acc.copy()
    with runtime.overridden(prof):
        ops.parallel_add_scaled(tuned_as, src, scale, pool=pool)
    np.testing.assert_array_equal(tuned_as, serial_as)

    sources = [rng.standard_normal(size).astype(np.float32)
               for _ in range(3)]
    serial_r = np.zeros(size, np.float32)
    kernels.reduce_chunk(0, size, serial_r, 0, sources, np.float32(3.0))
    tuned_r = np.zeros(size, np.float32)
    with runtime.overridden(prof):
        ops.parallel_reduce(tuned_r, 0, sources, 0, size,
                            divisor=np.float32(3.0), pool=pool)
    np.testing.assert_array_equal(tuned_r, serial_r)

    p0 = rng.standard_normal(size).astype(np.float32)
    m0 = (rng.standard_normal(size) * 0.01).astype(np.float32)
    v0 = np.abs(rng.standard_normal(size)).astype(np.float32) * 0.01
    g = rng.standard_normal(size).astype(np.float32)
    config = AdamConfig(lr=1e-3, weight_decay=0.01)
    hyper = kernels.AdamChunkHyper.from_config(config, 3)
    sp, sm, sv = p0.copy(), m0.copy(), v0.copy()
    kernels.adam_chunk(0, size, sp, sm, sv, g, hyper, kernels.CACHE_TILE)
    tp_, tm, tv = p0.copy(), m0.copy(), v0.copy()
    with runtime.overridden(prof):
        ops.parallel_adam_flat(tp_, tm, tv, g, config, 3, pool=pool)
    np.testing.assert_array_equal(tp_, sp)
    np.testing.assert_array_equal(tm, sm)
    np.testing.assert_array_equal(tv, sv)


@pytest.mark.parametrize("tile", registry.get("grace.tile_size").choices)
def test_grace_tile_bitwise(tile):
    """Any tuned GraceAdam tile produces the same parameters."""
    n = 5000  # crosses the smallest tile candidates, leaves a tail
    results = {}
    for candidate in (None, tile):
        rng = np.random.default_rng(17)
        params = {"w": rng.standard_normal(n).astype(np.float32)}
        prof = tp.TuneProfile(host="h", cpu_count=1)
        if candidate is not None:
            prof.set("grace.tile_size", candidate)
            cm = runtime.overridden(prof)
        else:
            cm = runtime.overridden(None)
        with cm:
            opt = GraceAdam(params, AdamConfig(lr=1e-2), chunked=False)
            for _ in range(3):
                opt.step({"w": rng.standard_normal(n).astype(np.float32)})
        results[candidate] = opt.params["w"].copy()
    np.testing.assert_array_equal(results[None], results[tile])


def _zero_fixture(prof):
    """A 4-rank pipelined ZeRO optimizer + per-rank grad flats, seeded
    identically per call so any two fixtures must agree bitwise."""
    rng = np.random.default_rng(5)
    params = {f"p{i}": rng.standard_normal(1024).astype(np.float32)
              for i in range(8)}
    with runtime.overridden(prof):
        opt = ZeroShardedAdam(params, 4, AdamConfig(lr=1e-3),
                              pipeline=True)
    flats = []
    for r in range(4):
        ga = opt.grad_arena(r)
        ga.flat[:] = np.random.default_rng(100 + r).standard_normal(
            ga.flat.size).astype(np.float32)
        flats.append(ga.flat)
    return opt, flats


@pytest.mark.parametrize("bucket", (1 << 10, 1 << 11))
@pytest.mark.parametrize("min_pipeline", (0, 1 << 13))
def test_zero_pipeline_bitwise(bucket, min_pipeline):
    """Tuned bucket sizes and pipeline crossovers match the serial step.

    ``min_pipeline=1<<13`` sits above the fixture's 8192 total elements,
    so that arm exercises the forced-serial fallback; the serial
    reference pins ``min_pipeline`` at the registry hi (never pipeline).
    """
    serial_prof = tp.TuneProfile(host="h", cpu_count=1)
    serial_prof.set("zero.min_pipeline",
                    registry.get("zero.min_pipeline").hi)
    tuned_prof = tp.TuneProfile(host="h", cpu_count=1)
    tuned_prof.set("zero.bucket_elements", bucket)
    tuned_prof.set("zero.min_pipeline", min_pipeline)

    arenas = {}
    for tag, prof in (("serial", serial_prof), ("tuned", tuned_prof)):
        opt, flats = _zero_fixture(prof)
        with runtime.overridden(prof):
            for _ in range(2):
                opt.step_flat(flats)
        arenas[tag] = opt.arena.flat.copy()
        opt.release_staging()
    np.testing.assert_array_equal(arenas["tuned"], arenas["serial"])


@pytest.mark.parametrize("cutoff", (1, 1 << 26))
def test_rollback_cutoff_bitwise(cutoff):
    """Either snapshot path (arena-range or per-tensor) restores the
    same bits, so a tuned cutoff can never change results."""
    prof = tp.TuneProfile(host="h", cpu_count=1)
    prof.set("rollback.snapshot_cutoff", cutoff)
    rng = np.random.default_rng(23)
    params = {"w": rng.standard_normal(4096).astype(np.float32)}
    FlatArena.adopt(params)
    opt = GraceAdam(params, AdamConfig(lr=1e-2))
    grads = {"w": rng.standard_normal(4096).astype(np.float32)}
    opt.step(grads)
    before = (opt.params["w"].copy(), opt.state["w"].m.copy(),
              opt.state["w"].v.copy(), opt.state["w"].step)
    rb = SnapshotRollback(opt)
    with runtime.overridden(prof):
        rb.capture(grads)
        opt.step(grads)
        rb.rollback(grads)
    np.testing.assert_array_equal(opt.params["w"], before[0])
    np.testing.assert_array_equal(opt.state["w"].m, before[1])
    np.testing.assert_array_equal(opt.state["w"].v, before[2])
    assert opt.state["w"].step == before[3]


@pytest.mark.parametrize("block", (32, 64))
def test_flash_tuned_blocks_tolerance_and_determinism(block):
    """The documented exception: tuned flash blocks hold fp32 tolerance
    vs the dense reference and stay bitwise deterministic across pools."""
    prof = tp.TuneProfile(host="h", cpu_count=1)
    prof.set("flash.block_q", block)
    prof.set("flash.block_k", block)
    rng = np.random.default_rng(31)
    q = rng.standard_normal((1, 2, 96, 8)).astype(np.float32)
    k = rng.standard_normal((1, 2, 96, 8)).astype(np.float32)
    v = rng.standard_normal((1, 2, 96, 8)).astype(np.float32)
    ref, _ = MultiHeadAttention.core_forward(q, k, v, True)
    outs = []
    for workers in WORKER_COUNTS:
        p = KernelPool(workers)
        try:
            with runtime.overridden(prof):
                out, _ = flash.streaming_attention_forward(
                    q, k, v, causal=True, pool=p
                )
        finally:
            p.shutdown()
        outs.append(out)
    assert float(np.abs(outs[0] - ref).max()) <= 1e-5
    for other in outs[1:]:
        np.testing.assert_array_equal(other, outs[0])


def test_same_profile_yields_same_plan(tmp_path):
    """Plan determinism: one saved profile, one effective plan."""
    prof = tp.TuneProfile(host="plan-host", cpu_count=2)
    prof.set("adam.min_parallel", 1 << 16)
    prof.set_banded("copy.min_parallel", registry.default(
        "copy.min_parallel"), [(1 << 16, 1 << 26)])
    path = tp.save(prof, tmp_path / "tune.json")
    first = tp.load(path, host="plan-host").plan()
    second = tp.load(path, host="plan-host").plan()
    assert first == second
    assert set(first) == set(registry.names())
    # untuned names resolve to registry defaults; banded to their default
    assert first["scale.min_parallel"] == registry.default(
        "scale.min_parallel")
    assert first["copy.min_parallel"] == registry.default(
        "copy.min_parallel")
    assert first["adam.min_parallel"] == 1 << 16
