"""Tests for the superchip-aware dataflow graph (§4.1)."""

import networkx as nx
import pytest

from repro.hardware.bandwidth import BandwidthModel
from repro.hardware.registry import GRACE_CPU, HOPPER_H100, NVLINK_C2C, PCIE3_X16
from repro.models import MODEL_CONFIG_TABLE
from repro.models.sadfg import (
    OpCost,
    OpKind,
    SADFG,
    build_training_sadfg,
    greedy_min_cut_partition,
    partition_cost,
    superchip_partition,
)

CFG = MODEL_CONFIG_TABLE[1]


@pytest.fixture
def dfg() -> SADFG:
    return build_training_sadfg(CFG, HOPPER_H100, GRACE_CPU, micro_batch=4,
                                n_buckets=4)


def test_graph_is_dag(dfg):
    assert nx.is_directed_acyclic_graph(dfg.graph)


def test_vertex_counts(dfg):
    kinds = [dfg.cost_of(n).kind for n in dfg.graph.nodes]
    assert kinds.count(OpKind.FORWARD) == CFG.n_layers
    assert kinds.count(OpKind.BACKWARD) == CFG.n_layers
    assert kinds.count(OpKind.OPTIMIZER) == 4
    assert kinds.count(OpKind.CAST) == 4


def test_cpu_slower_than_gpu_for_compute(dfg):
    for name in dfg.graph.nodes:
        cost = dfg.cost_of(name)
        if cost.kind in (OpKind.FORWARD, OpKind.BACKWARD):
            assert cost.cpu_time > cost.gpu_time


def test_min_cut_puts_optimizer_on_cpu(dfg):
    assignment = greedy_min_cut_partition(dfg)
    for name in dfg.graph.nodes:
        kind = dfg.cost_of(name).kind
        if kind in (OpKind.OPTIMIZER, OpKind.CAST):
            assert assignment[name] == "cpu"
        else:
            assert assignment[name] == "gpu"


def test_min_cut_minimizes_cut_bytes_vs_all_gpu_optimizer(dfg):
    greedy = greedy_min_cut_partition(dfg)
    all_gpu = {n: "gpu" for n in dfg.graph.nodes}
    # all-GPU has no cut at all, but requires the optimizer states in HBM;
    # among *offloading* assignments, the greedy cut is minimal.
    assert dfg.cut_bytes(all_gpu) == 0
    moved = dict(greedy)
    some_bwd = next(
        n for n in dfg.graph.nodes if dfg.cost_of(n).kind == OpKind.BACKWARD
    )
    moved[some_bwd] = "cpu"
    assert dfg.cut_bytes(moved) > dfg.cut_bytes(greedy)


def test_superchip_partition_pulls_buckets_back_on_fast_link(dfg):
    """On NVLink-C2C the time-optimal partition keeps some optimizer
    vertices on the GPU (the §4.3 repartitioning at DFG level)."""
    link = BandwidthModel(NVLINK_C2C)
    assignment = superchip_partition(dfg, link, gpu_memory_budget=2**33)
    on_gpu = [
        n for n in dfg.graph.nodes
        if dfg.cost_of(n).kind == OpKind.OPTIMIZER and assignment[n] == "gpu"
    ]
    assert on_gpu  # at least one bucket repatriated
    greedy = greedy_min_cut_partition(dfg)
    assert partition_cost(dfg, assignment, link, overlap=0.8) <= (
        partition_cost(dfg, greedy, link, overlap=0.8)
    )


def test_superchip_partition_respects_memory_budget(dfg):
    link = BandwidthModel(NVLINK_C2C)
    assignment = superchip_partition(dfg, link, gpu_memory_budget=0)
    assert assignment == greedy_min_cut_partition(dfg)


def test_pcie_era_partition_stays_greedy(dfg):
    """On a PCIe link, pulling optimizer vertices back is not worth it —
    the historical design point the paper revisits."""
    link = BandwidthModel(PCIE3_X16)
    pcie = superchip_partition(dfg, link, gpu_memory_budget=2**33, overlap=0.0)
    c2c = superchip_partition(
        dfg, BandwidthModel(NVLINK_C2C), gpu_memory_budget=2**33, overlap=0.0
    )
    pcie_gpu = sum(1 for n, d in pcie.items() if d == "gpu")
    c2c_gpu = sum(1 for n, d in c2c.items() if d == "gpu")
    assert pcie_gpu <= c2c_gpu


class TestGraphConstruction:
    def test_duplicate_op_rejected(self):
        g = SADFG()
        g.add_op("a", OpCost(OpKind.FORWARD, 1.0, 2.0))
        with pytest.raises(ValueError):
            g.add_op("a", OpCost(OpKind.FORWARD, 1.0, 2.0))

    def test_cycle_rejected(self):
        g = SADFG()
        g.add_op("a", OpCost(OpKind.FORWARD, 1.0, 2.0))
        g.add_op("b", OpCost(OpKind.FORWARD, 1.0, 2.0))
        g.add_flow("a", "b", 10)
        with pytest.raises(ValueError, match="cycle"):
            g.add_flow("b", "a", 10)

    def test_unknown_endpoint_rejected(self):
        g = SADFG()
        g.add_op("a", OpCost(OpKind.FORWARD, 1.0, 2.0))
        with pytest.raises(KeyError):
            g.add_flow("a", "missing", 1)

    def test_partition_cost_validates_overlap(self, dfg):
        link = BandwidthModel(NVLINK_C2C)
        with pytest.raises(ValueError):
            partition_cost(dfg, greedy_min_cut_partition(dfg), link, overlap=1.0)
