"""Tests for model configs (Appendix A) and the estimators."""

import pytest
from hypothesis import given, strategies as st

from repro.models import (
    MODEL_CONFIG_TABLE,
    ModelConfig,
    activation_bytes,
    activation_bytes_per_token,
    config_for_params,
    flops_per_token,
    model_state_bytes,
    param_count,
)
from repro.models.estimators import (
    attention_flops_per_token,
    logits_bytes,
    mixed_precision_breakdown,
)


class TestAppendixA:
    @pytest.mark.parametrize(
        "billions,layers,hidden",
        [(1, 20, 2048), (4, 64, 2304), (5, 44, 3072), (15, 78, 4096),
         (20, 25, 8192), (150, 45, 16384), (200, 60, 16384)],
    )
    def test_table4_rows(self, billions, layers, hidden):
        cfg = MODEL_CONFIG_TABLE[billions]
        assert cfg.n_layers == layers
        assert cfg.hidden == hidden

    @pytest.mark.parametrize("billions", sorted(MODEL_CONFIG_TABLE))
    def test_param_count_within_25pct_of_label(self, billions):
        cfg = MODEL_CONFIG_TABLE[billions]
        assert param_count(cfg) == pytest.approx(billions * 1e9, rel=0.25)

    def test_param_count_identity(self):
        cfg = MODEL_CONFIG_TABLE[5]
        assert param_count(cfg) == 12 * 44 * 3072**2

    def test_embeddings_optional(self):
        cfg = MODEL_CONFIG_TABLE[1]
        assert param_count(cfg, include_embeddings=True) == (
            param_count(cfg) + cfg.vocab * cfg.hidden
        )

    def test_nearest_config_snap(self):
        assert config_for_params(5.2) is MODEL_CONFIG_TABLE[5]
        assert config_for_params(7) is MODEL_CONFIG_TABLE[6] or (
            config_for_params(7) is MODEL_CONFIG_TABLE[8]
        )

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            config_for_params(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 100, 3)  # hidden not divisible by heads
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 128, 2)


class TestEstimators:
    def test_model_state_is_16_bytes_per_param(self):
        """§2.2: mixed precision training consumes 16*Psi bytes."""
        cfg = MODEL_CONFIG_TABLE[5]
        assert model_state_bytes(cfg) == 16 * param_count(cfg)

    def test_7b_model_states_near_112gb(self):
        """§4.2: 'a 7B-parameter model requires 112GB for model states'."""
        cfg = config_for_params(7)
        assert model_state_bytes(cfg) == pytest.approx(112e9, rel=0.25)

    def test_flops_per_token_dominated_by_6psi_at_short_seq(self):
        cfg = MODEL_CONFIG_TABLE[5]
        assert flops_per_token(cfg, 1024) == pytest.approx(
            6 * param_count(cfg), rel=0.08
        )

    def test_attention_flops_dominate_at_1m_tokens(self):
        """§5.3 regime: at 1M tokens the O(s) attention term dwarfs 6*Psi."""
        cfg = MODEL_CONFIG_TABLE[13]
        assert attention_flops_per_token(cfg, 1_000_000) > (
            10 * 6 * param_count(cfg)
        )

    def test_checkpointing_shrinks_activations(self):
        cfg = MODEL_CONFIG_TABLE[5]
        full = activation_bytes(cfg, 8)
        ckpt = activation_bytes(cfg, 8, checkpointing=True)
        assert ckpt < 0.1 * full

    def test_flash_attention_removes_quadratic_term(self):
        cfg = MODEL_CONFIG_TABLE[5]
        with_mat = activation_bytes_per_token(cfg, 1024)
        flash = activation_bytes_per_token(cfg, 1024, flash_attention=True)
        assert flash == pytest.approx(34 * cfg.hidden)
        assert with_mat > flash

    def test_long_context_activations_dwarf_model_states(self):
        """§4.2's motivating example: activations at ~1M sequence length
        are an order of magnitude beyond model states."""
        cfg = config_for_params(7)
        acts = activation_bytes(cfg, 1, seq=1_000_000, flash_attention=True)
        assert acts > 5 * model_state_bytes(cfg)

    def test_logits_bytes_capped_for_long_seq(self):
        cfg = MODEL_CONFIG_TABLE[5]
        assert logits_bytes(cfg, 10**7) == logits_bytes(cfg, 16384)

    def test_breakdown_total(self):
        cfg = MODEL_CONFIG_TABLE[1]
        bd = mixed_precision_breakdown(cfg, 2)
        psi = param_count(cfg)
        assert bd.params_fp16 == 2 * psi
        assert bd.optimizer_fp32 == 12 * psi
        assert bd.total == pytest.approx(
            16 * psi + activation_bytes(cfg, 2)
        )

    @given(st.integers(min_value=1, max_value=64))
    def test_activation_bytes_linear_in_micro_batch(self, micro):
        cfg = MODEL_CONFIG_TABLE[1]
        one = activation_bytes(cfg, 1) - logits_bytes(cfg, cfg.seq)
        many = activation_bytes(cfg, micro) - logits_bytes(cfg, micro * cfg.seq)
        assert many == pytest.approx(micro * one, rel=1e-9)

    def test_invalid_inputs(self):
        cfg = MODEL_CONFIG_TABLE[1]
        with pytest.raises(ValueError):
            activation_bytes(cfg, 0)
        with pytest.raises(ValueError):
            flops_per_token(cfg, 0)
