"""Test package."""
