"""Property-based tests over the estimators and policy curves."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import weight_flow_efficiency
from repro.hardware.registry import HOPPER_H100
from repro.models import (
    MODEL_CONFIG_TABLE,
    activation_bytes,
    flops_per_token,
    model_state_bytes,
    param_count,
)

SIZES = sorted(MODEL_CONFIG_TABLE)
CFG = MODEL_CONFIG_TABLE[5]


@given(st.sampled_from(SIZES))
def test_state_bytes_identity_for_every_config(billions):
    cfg = MODEL_CONFIG_TABLE[billions]
    assert model_state_bytes(cfg) == 16 * param_count(cfg)


@given(st.integers(min_value=1, max_value=20))
def test_flops_monotone_in_seq(k):
    s1, s2 = 512 * k, 512 * (k + 1)
    assert flops_per_token(CFG, s2) > flops_per_token(CFG, s1)


@given(
    seq=st.sampled_from([256, 1024, 4096]),
    micro=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=40)
def test_checkpointing_never_increases_activations(seq, micro):
    full = activation_bytes(CFG, micro, seq)
    ckpt = activation_bytes(CFG, micro, seq, checkpointing=True)
    assert ckpt < full


@given(
    seq=st.sampled_from([1024, 8192]),
    micro=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30)
def test_flash_attention_never_increases_activations(seq, micro):
    dense = activation_bytes(CFG, micro, seq)
    flash = activation_bytes(CFG, micro, seq, flash_attention=True)
    assert flash <= dense


@given(
    bw=st.floats(min_value=1e9, max_value=1e12),
    bsz=st.integers(min_value=1, max_value=64),
    seq=st.integers(min_value=64, max_value=65536),
)
@settings(max_examples=100)
def test_efficiency_always_in_unit_interval(bw, bsz, seq):
    eff = weight_flow_efficiency(
        int(5e9), bsz, seq, bw, HOPPER_H100.achievable_flops
    )
    assert 0 < eff < 1


@given(
    bsz=st.integers(min_value=1, max_value=32),
    seq=st.integers(min_value=128, max_value=16384),
)
@settings(max_examples=60)
def test_efficiency_strictly_monotone_in_bandwidth(bsz, seq):
    peak = HOPPER_H100.achievable_flops
    low = weight_flow_efficiency(int(5e9), bsz, seq, 64e9, peak)
    high = weight_flow_efficiency(int(5e9), bsz, seq, 900e9, peak)
    assert high > low


@given(st.sampled_from(SIZES))
def test_larger_configs_have_more_params(billions):
    sizes = sorted(MODEL_CONFIG_TABLE)
    idx = sizes.index(billions)
    if idx + 1 < len(sizes):
        assert param_count(MODEL_CONFIG_TABLE[sizes[idx + 1]]) > param_count(
            MODEL_CONFIG_TABLE[billions]
        )
