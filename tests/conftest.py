"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticPile
from repro.numeric.transformer import TinyTransformer, TransformerParams


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_spec() -> TransformerParams:
    """A minimal transformer shape, fast enough for per-test training."""
    return TransformerParams(
        vocab=61, max_seq=16, hidden=24, n_layers=2, n_heads=4
    )


@pytest.fixture
def tiny_model(tiny_spec: TransformerParams) -> TinyTransformer:
    """A freshly initialized tiny transformer."""
    return TinyTransformer(tiny_spec, seed=7)


@pytest.fixture
def tiny_batches(tiny_spec: TransformerParams):
    """Twenty deterministic (ids, targets) batches for the tiny model."""
    pile = SyntheticPile(tiny_spec.vocab, seed=3)
    gen = pile.batches(4, tiny_spec.max_seq)
    return [next(gen) for _ in range(20)]
