"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticPile
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.tune import runtime as tune_runtime


@pytest.fixture(autouse=True)
def _no_host_tune_profile(monkeypatch):
    """Keep developer-machine tune.json profiles out of every test.

    ``REPRO_TUNE=0`` disables the runtime's lazy autoload (a host
    profile would silently change dispatch crossovers and block sizes
    under test); explicit ``tune.activate(...)`` still works, which is
    exactly what the tune tests use.  The runtime is reset on both sides
    so no activation leaks between tests.
    """
    monkeypatch.setenv("REPRO_TUNE", "0")
    tune_runtime.reset()
    yield
    tune_runtime.reset()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_spec() -> TransformerParams:
    """A minimal transformer shape, fast enough for per-test training."""
    return TransformerParams(
        vocab=61, max_seq=16, hidden=24, n_layers=2, n_heads=4
    )


@pytest.fixture
def tiny_model(tiny_spec: TransformerParams) -> TinyTransformer:
    """A freshly initialized tiny transformer."""
    return TinyTransformer(tiny_spec, seed=7)


@pytest.fixture
def tiny_batches(tiny_spec: TransformerParams):
    """Twenty deterministic (ids, targets) batches for the tiny model."""
    pile = SyntheticPile(tiny_spec.vocab, seed=3)
    gen = pile.batches(4, tiny_spec.max_seq)
    return [next(gen) for _ in range(20)]
