"""Tests for the ZeRO-Infinity NVMe extension."""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import (
    ExecutionChoice,
    RunSetting,
    ZeROInfinity,
    get_system,
)
from repro.training.cluster import gh200_cluster


def test_registered_variant():
    assert get_system("zero_infinity_nvme").nvme
    assert not get_system("zero_infinity").nvme


def test_host_footprint_shrinks_with_nvme():
    setting = RunSetting(MODEL_CONFIG_TABLE[25], gh200_cluster(1),
                        global_batch=8)
    choice = ExecutionChoice(1, 8, True)
    cpu_only = ZeROInfinity().cpu_state_bytes(setting, choice)
    with_nvme = ZeROInfinity(nvme=True).cpu_state_bytes(setting, choice)
    assert with_nvme == pytest.approx(cpu_only / 3)
    assert ZeROInfinity(nvme=True).nvme_state_bytes(setting) == (
        12 * setting.psi
    )


def test_nvme_extends_model_scale():
    cluster = gh200_cluster(1)
    assert ZeROInfinity(nvme=True).max_model_billions(cluster) >= (
        2 * ZeROInfinity().max_model_billions(cluster)
    )


def test_nvme_capacity_bounds_scale():
    """The drive is finite too: the per-chip state must fit it."""
    from repro.hardware.registry import NVME_CAPACITY

    cluster = gh200_cluster(1)
    best = ZeROInfinity(nvme=True).max_model_billions(cluster)
    setting = RunSetting(MODEL_CONFIG_TABLE[best], cluster, global_batch=1)
    assert ZeROInfinity(nvme=True).nvme_state_bytes(setting) <= NVME_CAPACITY


def test_nvme_throughput_penalty():
    setting = RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                        global_batch=8)
    cpu_est = ZeROInfinity().best_estimate(setting)
    nvme_est = ZeROInfinity(nvme=True).best_estimate(setting)
    assert nvme_est.tflops_per_gpu < 0.5 * cpu_est.tflops_per_gpu
