"""Tests for the training-system base machinery."""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import (
    ExecutionChoice,
    InfeasibleError,
    PyTorchDDP,
    RunSetting,
    build_all_systems,
    get_system,
)
from repro.training.cluster import gh200_cluster


@pytest.fixture
def setting_1b():
    return RunSetting(MODEL_CONFIG_TABLE[1], gh200_cluster(1), global_batch=8)


def test_registry_contains_all_appendix_b_systems():
    systems = build_all_systems()
    for name in ("ddp", "megatron", "zero2", "zero3", "zero_offload",
                 "zero_infinity", "fsdp_offload", "superoffload",
                 "ulysses", "superoffload_ulysses"):
        assert name in systems


def test_get_system_unknown():
    with pytest.raises(KeyError):
        get_system("deepspeed")


def test_run_setting_properties(setting_1b):
    assert setting_1b.world == 1
    assert setting_1b.psi == 12 * 20 * 2048**2
    assert not setting_1b.flash_attention
    long = RunSetting(MODEL_CONFIG_TABLE[1], gh200_cluster(1), 1, seq=16384)
    assert long.flash_attention


def test_execution_choice_validation():
    with pytest.raises(ValueError):
        ExecutionChoice(0, 1, False)
    with pytest.raises(ValueError):
        ExecutionChoice(1, 0, False)


def test_candidate_choices_cover_paper_strategies(setting_1b):
    ddp = PyTorchDDP()
    choices = ddp.candidate_choices(setting_1b)
    micro_sizes = {c.micro_batch for c in choices}
    assert micro_sizes == {8, 4, 2, 1}
    # both OOM-avoidance strategies present per size
    assert any(c.checkpointing for c in choices)
    assert any(not c.checkpointing for c in choices)


def test_estimate_requires_feasibility():
    huge = RunSetting(MODEL_CONFIG_TABLE[50], gh200_cluster(1), global_batch=8)
    with pytest.raises(InfeasibleError):
        PyTorchDDP().estimate(huge, ExecutionChoice(1, 8, True))


def test_best_estimate_raises_when_nothing_fits():
    huge = RunSetting(MODEL_CONFIG_TABLE[50], gh200_cluster(1), global_batch=8)
    with pytest.raises(InfeasibleError):
        PyTorchDDP().best_estimate(huge)


def test_estimate_produces_consistent_metrics(setting_1b):
    est = PyTorchDDP().estimate(setting_1b, ExecutionChoice(8, 1, False))
    assert est.iter_time > 0
    assert 0 < est.tflops_per_gpu < 990
    assert 0 < est.mfu < 1
    assert est.steady_window[1] - est.steady_window[0] == pytest.approx(
        est.iter_time
    )
    assert 0 <= est.gpu_idle_fraction() <= 1


def test_tflops_consistent_with_flops_accounting(setting_1b):
    sys_ = PyTorchDDP()
    est = sys_.estimate(setting_1b, ExecutionChoice(8, 1, False))
    flops = sys_.effective_flops_per_iter_per_gpu(setting_1b)
    assert est.tflops_per_gpu == pytest.approx(
        flops / est.iter_time / 1e12
    )


def test_checkpointing_lowers_effective_throughput(setting_1b):
    sys_ = PyTorchDDP()
    plain = sys_.estimate(setting_1b, ExecutionChoice(8, 1, False))
    ckpt = sys_.estimate(setting_1b, ExecutionChoice(8, 1, True))
    assert ckpt.tflops_per_gpu < plain.tflops_per_gpu
    # ~25% loss (the paper cites ~33% including other overheads)
    assert ckpt.tflops_per_gpu > 0.6 * plain.tflops_per_gpu


def test_smaller_micro_batch_lowers_gemm_efficiency(setting_1b):
    sys_ = PyTorchDDP()
    big = sys_.estimate(setting_1b, ExecutionChoice(8, 1, False))
    small = sys_.estimate(setting_1b, ExecutionChoice(1, 8, False))
    assert small.tflops_per_gpu < big.tflops_per_gpu


def test_schedule_tasks_tagged_by_iteration(setting_1b):
    tasks = PyTorchDDP().build_schedule(setting_1b, ExecutionChoice(4, 2, False), 2)
    assert all(t.name.startswith("it") for t in tasks)
    its = {int(t.name[2:t.name.index(".")]) for t in tasks}
    assert its == {0, 1}
