"""The composed TPxPP performance model (PipelinedTP)."""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.sim.engine import ideal_1f1b_bubble
from repro.systems import (
    ExecutionChoice,
    InfeasibleError,
    PipelinedTP,
    RunSetting,
    build_all_systems,
)
from repro.training.cluster import gh200_cluster


def _setting(billions=5, world=4, batch=16):
    return RunSetting(
        MODEL_CONFIG_TABLE[billions], gh200_cluster(world),
        global_batch=batch, seq=1024,
    )


def test_registered_in_build_all_systems():
    systems = build_all_systems()
    assert "pipeline_tp" in systems
    assert isinstance(systems["pipeline_tp"], PipelinedTP)


def test_degree_validation():
    with pytest.raises(ValueError):
        PipelinedTP(tp=0)
    with pytest.raises(ValueError):
        PipelinedTP(pp=0)


def test_name_encodes_degrees():
    assert PipelinedTP(tp=1, pp=2).name == "pipeline_tp"
    assert PipelinedTP(tp=2, pp=4).name == "pipeline_tp2x4"


def test_infeasible_when_mp_does_not_divide_world():
    system = PipelinedTP(tp=2, pp=2)  # mp = 4
    with pytest.raises(InfeasibleError, match="does not divide world"):
        system.best_estimate(_setting(world=6))


def test_best_estimate_produces_a_feasible_plan():
    est = PipelinedTP(tp=2, pp=2).best_estimate(_setting())
    assert est.iter_time > 0
    assert est.tflops_per_gpu > 0
    assert est.choice.grad_accum >= 1


def test_predicted_bubble_matches_ideal_under_uniform_stages():
    system = PipelinedTP(tp=1, pp=4)
    setting = _setting(world=4, batch=8)
    for m in (1, 2, 4, 8):
        frac = system.predicted_bubble_fraction(
            setting, ExecutionChoice(1, m, checkpointing=False)
        )
        ideal = ideal_1f1b_bubble(4, m)
        # the inter-stage hop adds a small, strictly non-negative skew
        assert frac >= ideal - 1e-9
        assert frac - ideal < 0.05


def test_more_microbatches_shrink_the_bubble():
    system = PipelinedTP(tp=1, pp=4)
    setting = _setting(world=4, batch=8)
    fracs = [
        system.predicted_bubble_fraction(
            setting, ExecutionChoice(1, m, checkpointing=False)
        )
        for m in (1, 2, 4, 8)
    ]
    assert fracs == sorted(fracs, reverse=True)
    assert fracs[-1] < fracs[0]


def test_state_bytes_shrink_with_model_parallel_degree():
    setting = _setting()
    choice = ExecutionChoice(1, 4, checkpointing=False)
    full = PipelinedTP(tp=1, pp=1).gpu_state_bytes(setting, choice)
    quartered = PipelinedTP(tp=2, pp=2).gpu_state_bytes(setting, choice)
    assert quartered == pytest.approx(full / 4)


def test_extra_resources_cover_stages_and_links():
    system = PipelinedTP(tp=2, pp=3)
    resources = system.extra_resources(
        _setting(world=6), ExecutionChoice(1, 4, checkpointing=False)
    )
    assert set(resources) == {
        "pp.stage0", "pp.stage1", "pp.stage2", "pp.link0", "pp.link1",
    }
