"""Test package."""
