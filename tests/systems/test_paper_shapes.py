"""Integration tests: the paper's evaluation-section claims as assertions.

These pin the *shape* of the reproduction — who wins, by roughly what
factor, where the ceilings fall — against §5 of the paper.  The benchmark
harnesses print the full tables; these tests keep the shapes from
regressing.
"""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import (
    ExecutionChoice,
    RunSetting,
    SuperOffloadFeatures,
    SuperOffloadSystem,
    build_all_systems,
)
from repro.training import ablation_table, gh200_cluster, throughput_sweep


@pytest.fixture(scope="module")
def single_chip_sweep():
    return throughput_sweep(
        ["ddp", "zero_offload", "zero_infinity", "fsdp_offload",
         "superoffload"],
        [1, 3, 5],
        n_superchips=1,
        global_batch=8,
    )


def by_system(rows, system, size):
    for r in rows:
        if r["system"] == system and r["model_billions"] == size:
            return r
    raise KeyError((system, size))


class TestFig10SingleSuperchip:
    def test_superoffload_beats_every_baseline_everywhere(
        self, single_chip_sweep
    ):
        for size in (1, 3, 5):
            so = by_system(single_chip_sweep, "superoffload", size)["tflops"]
            for other in ("ddp", "zero_offload", "zero_infinity",
                          "fsdp_offload"):
                t = by_system(single_chip_sweep, other, size)["tflops"]
                if t is not None:
                    assert so > t, (size, other)

    def test_superoffload_about_2x_zero_offload(self, single_chip_sweep):
        """§5.2: 2x on average, up to 2.5x."""
        ratios = [
            by_system(single_chip_sweep, "superoffload", s)["tflops"]
            / by_system(single_chip_sweep, "zero_offload", s)["tflops"]
            for s in (1, 3, 5)
        ]
        assert max(ratios) >= 1.8
        assert sum(ratios) / len(ratios) >= 1.5

    def test_zero_infinity_below_50_tflops(self, single_chip_sweep):
        for size in (1, 3, 5):
            assert by_system(
                single_chip_sweep, "zero_infinity", size
            )["tflops"] < 55

    def test_fsdp_offload_below_15_tflops(self, single_chip_sweep):
        for size in (1, 3, 5):
            assert by_system(
                single_chip_sweep, "fsdp_offload", size
            )["tflops"] < 16

    def test_ddp_ooms_beyond_its_ceiling(self, single_chip_sweep):
        assert by_system(single_chip_sweep, "ddp", 5)["tflops"] is None

    def test_superoffload_5b_near_paper_239(self, single_chip_sweep):
        so = by_system(single_chip_sweep, "superoffload", 5)["tflops"]
        assert so == pytest.approx(238.9, rel=0.15)


class TestFig4And15IdleTime:
    def test_zero_offload_idles_40_to_50_pct(self, single_chip_sweep):
        """Fig. 4: 40-50% GPU idle per iteration (we accept 30-55%)."""
        idle = by_system(single_chip_sweep, "zero_offload", 5)[
            "gpu_idle_fraction"
        ]
        assert 0.30 <= idle <= 0.55

    def test_superoffload_near_zero_idle(self, single_chip_sweep):
        """Fig. 15: near-complete GPU utilization."""
        idle = by_system(single_chip_sweep, "superoffload", 5)[
            "gpu_idle_fraction"
        ]
        assert idle < 0.10


class TestFig13ModelScale:
    @pytest.fixture(scope="class")
    def systems(self):
        return build_all_systems()

    def test_single_superchip_ceilings(self, systems):
        cluster = gh200_cluster(1)
        assert systems["ddp"].max_model_billions(cluster) == 3.5
        assert systems["zero_offload"].max_model_billions(cluster) == 15
        assert systems["superoffload"].max_model_billions(cluster) == 25
        assert systems["zero_infinity"].max_model_billions(cluster) == 25

    def test_gpu_only_sharded_systems_near_ddp_on_single_gpu(self, systems):
        cluster = gh200_cluster(1)
        ddp = systems["ddp"].max_model_billions(cluster)
        for name in ("megatron", "zero2", "zero3"):
            assert systems[name].max_model_billions(cluster) <= 2 * ddp

    def test_multi_superchip_ceilings(self, systems):
        four = gh200_cluster(4)
        sixteen = gh200_cluster(16)
        # §5.4: SuperOffload trains 50B on 4 and 200B on 16 superchips.
        assert systems["superoffload"].max_model_billions(four) == 50
        assert systems["superoffload"].max_model_billions(sixteen) == 200
        # ZeRO-Offload is pinned at 20B regardless of GPU count.
        assert systems["zero_offload"].max_model_billions(four) == 20
        assert systems["zero_offload"].max_model_billions(sixteen) == 20
        # DDP never moves.
        assert systems["ddp"].max_model_billions(sixteen) == 3.5

    def test_scale_multipliers_vs_ddp(self, systems):
        """§5.4: 57x over DDP on 16 superchips."""
        sixteen = gh200_cluster(16)
        so = systems["superoffload"].max_model_billions(sixteen)
        ddp = systems["ddp"].max_model_billions(sixteen)
        assert so / ddp == pytest.approx(57, rel=0.05)


class TestTable2Ablation:
    @pytest.fixture(scope="class")
    def table(self):
        return ablation_table()

    def test_monotone_improvements(self, table):
        tflops = [r["tflops"] for r in table]
        assert tflops == sorted(tflops)

    def test_stv_is_the_largest_jump(self, table):
        tflops = [r["tflops"] for r in table]
        gains = [b / a for a, b in zip(tflops, tflops[1:])]
        stv_gain = gains[2]
        assert stv_gain == max(gains)
        assert stv_gain > 1.2  # paper: +45%

    def test_total_speedup_substantial(self, table):
        """Paper: 2.06x baseline-to-full; we require >= 1.5x."""
        assert table[-1]["tflops"] / table[0]["tflops"] >= 1.5

    def test_flags_recorded(self, table):
        assert not table[0]["grace_adam"]
        assert all(table[-1][k] for k in
                   ("grace_adam", "sac", "stv", "bucket_repartitioning"))


class TestMultiSuperchip:
    def test_superoffload_wins_at_4_gpus(self):
        rows = throughput_sweep(
            ["zero2", "zero3", "zero_offload", "superoffload"],
            [10], n_superchips=4, global_batch=16,
        )
        so = by_system(rows, "superoffload", 10)["tflops"]
        for other in ("zero2", "zero3", "zero_offload"):
            t = by_system(rows, other, 10)["tflops"]
            assert so > t, other

    def test_superoffload_trains_50b_on_4(self):
        rows = throughput_sweep(
            ["zero3", "superoffload"], [50], n_superchips=4, global_batch=16
        )
        assert by_system(rows, "superoffload", 50)["tflops"] is not None
        assert by_system(rows, "zero3", 50)["tflops"] is None


class TestSuperOffloadInternals:
    def test_weight_flow_engages_for_large_models(self):
        from repro.core.policy import WeightPolicy

        system = SuperOffloadSystem()
        setting = RunSetting(
            MODEL_CONFIG_TABLE[25], gh200_cluster(1), global_batch=8
        )
        # 25B fp16 weights (48 GB) still fit beside checkpointed
        # activations; an 80B model's 161 GB cannot — the policy flips.
        stationary = system._weight_policy(setting, ExecutionChoice(1, 8, True))
        assert stationary is WeightPolicy.STATIONARY
        big = RunSetting(
            MODEL_CONFIG_TABLE[80], gh200_cluster(1), global_batch=8
        )
        assert system._weight_policy(big, ExecutionChoice(1, 8, True)) is (
            WeightPolicy.FLOW
        )

    def test_repartition_tail_selected_when_enabled(self):
        system = SuperOffloadSystem()
        setting = RunSetting(
            MODEL_CONFIG_TABLE[3], gh200_cluster(1), global_batch=8
        )
        plan = system.plan(setting, ExecutionChoice(8, 1, False))
        assert plan.n_tail >= 0
        no_repart = SuperOffloadSystem(
            features=SuperOffloadFeatures(bucket_repartitioning=False),
            name="so-norep",
        ).plan(setting, ExecutionChoice(8, 1, False))
        assert no_repart.n_tail == 0

    def test_sac_off_switches_to_pageable_fp16(self):
        aware = SuperOffloadSystem()
        unaware = SuperOffloadSystem(
            features=SuperOffloadFeatures(superchip_aware_casting=False),
            name="so-nosac",
        )
        setting = RunSetting(
            MODEL_CONFIG_TABLE[3], gh200_cluster(1), global_batch=8
        )
        choice = ExecutionChoice(8, 1, False)
        p_aware = aware._base_plan(setting, choice)
        p_unaware = unaware._base_plan(setting, choice)
        # fp16 payload is half, but pageable: slower end to end.
        assert p_unaware.d2h_t > p_aware.d2h_t / 2
        assert p_unaware.cpu_step_t > p_aware.cpu_step_t
