"""Cross-system schedule sanity: every registered performance model must
produce valid, physically sensible schedules."""

import pytest

from repro.models.config import MODEL_CONFIG_TABLE
from repro.sim.engine import ScheduleSimulator
from repro.systems import (
    ExecutionChoice,
    RunSetting,
    build_all_systems,
)
from repro.systems.base import RESOURCES
from repro.training.cluster import gh200_cluster

SINGLE_CHIP = [
    "ddp", "zero_offload", "zero_infinity", "zero_infinity_nvme",
    "fsdp_offload", "superoffload",
]
MULTI_CHIP = [
    "megatron", "zero2", "zero3", "zero_offload", "superoffload",
    "ulysses", "superoffload_ulysses",
]


@pytest.fixture(scope="module")
def systems():
    return build_all_systems()


@pytest.mark.parametrize("name", SINGLE_CHIP)
def test_single_chip_schedule_is_valid(systems, name):
    setting = RunSetting(MODEL_CONFIG_TABLE[3], gh200_cluster(1),
                        global_batch=8)
    choice = ExecutionChoice(4, 2, checkpointing=False)
    tasks = systems[name].build_schedule(setting, choice, 3)
    trace = ScheduleSimulator(RESOURCES).run(tasks)  # raises on bad DAGs
    assert trace.makespan > 0
    # GPU compute exists in every iteration
    for it in range(3):
        assert any(t.name.startswith(f"it{it}.") and t.resource == "gpu"
                   for t in tasks), (name, it)


@pytest.mark.parametrize("name", MULTI_CHIP)
def test_multi_chip_schedule_is_valid(systems, name):
    setting = RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(4),
                        global_batch=16)
    choice = ExecutionChoice(2, 2, checkpointing=True)
    tasks = systems[name].build_schedule(setting, choice, 3)
    trace = ScheduleSimulator(RESOURCES).run(tasks)
    assert trace.makespan > 0
    # multi-rank systems must touch the network
    if name not in ("superoffload_ulysses",):
        assert trace.busy_time("net") > 0, name


@pytest.mark.parametrize("name", SINGLE_CHIP)
def test_iteration_time_scales_with_model(systems, name):
    """Per-iteration time must grow with model size at a fixed choice."""
    system = systems[name]
    times = []
    for billions in (1, 3):
        setting = RunSetting(MODEL_CONFIG_TABLE[billions], gh200_cluster(1),
                            global_batch=8)
        choice = ExecutionChoice(2, 4, checkpointing=True)
        times.append(system.estimate(setting, choice).iter_time)
    assert times[1] > times[0], name


@pytest.mark.parametrize("name", SINGLE_CHIP + ["megatron", "zero2", "zero3"])
def test_feasibility_monotone_in_model_size(systems, name):
    """If a system fits a larger model, it fits every smaller one."""
    system = systems[name]
    cluster = gh200_cluster(1)
    feasible = []
    for billions in sorted(MODEL_CONFIG_TABLE):
        setting = RunSetting(MODEL_CONFIG_TABLE[billions], cluster,
                            global_batch=1)
        choice = ExecutionChoice(1, 1, checkpointing=True)
        feasible.append(system.feasible(setting, choice))
    # once infeasible, always infeasible as size grows
    seen_false = False
    for ok in feasible:
        if not ok:
            seen_false = True
        assert not (seen_false and ok), name


def test_superoffload_never_loses_single_chip(systems):
    """The Fig. 10 headline as a cross-registry sweep at one extra size."""
    setting = RunSetting(MODEL_CONFIG_TABLE[6], gh200_cluster(1),
                        global_batch=8)
    so = systems["superoffload"].best_estimate(setting).tflops_per_gpu
    for name in ("zero_offload", "zero_infinity", "fsdp_offload"):
        assert so > systems[name].best_estimate(setting).tflops_per_gpu


def test_gpu_idle_ordering_across_offloaders(systems):
    """Idle time ordering: SuperOffload < ZeRO-Offload < ZeRO-Infinity."""
    setting = RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                        global_batch=8)
    idles = {
        name: systems[name].best_estimate(setting).gpu_idle_fraction()
        for name in ("superoffload", "zero_offload", "zero_infinity")
    }
    assert idles["superoffload"] < idles["zero_offload"] < (
        idles["zero_infinity"]
    )
