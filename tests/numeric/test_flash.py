"""Streaming blocked attention vs. the dense reference.

The contract under test (ISSUE 5 / DESIGN §9): streaming agrees with
dense to fp32 tolerance (NOT bitwise — the online softmax reorders the
reduction), is bitwise identical across worker counts, never
materializes an ``S x S`` array, and slots into the Ulysses shard path
and the workspace-backed transformer unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.pool import KernelPool
from repro.numeric import flash
from repro.numeric.attention import (
    BACKENDS,
    MultiHeadAttention,
    causal_mask,
    masked_fill_value,
)
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.parallel.comm import SimProcessGroup
from repro.parallel.ulysses import UlyssesAttention
from repro.tensors.workspace import ActivationWorkspace

FWD_TOL = 1e-5
BWD_TOL = 1e-4


def _qkv(rng, b, h, sq, sk, d):
    q = rng.standard_normal((b, h, sq, d)).astype(np.float32)
    k = rng.standard_normal((b, h, sk, d)).astype(np.float32)
    v = rng.standard_normal((b, h, sk, d)).astype(np.float32)
    return q, k, v


def _max_grad_diff(got, ref):
    return max(float(np.abs(a - b).max()) for a, b in zip(got, ref))


class TestForwardAgainstDense:
    @given(
        seq=st.integers(min_value=1, max_value=65),
        block_q=st.integers(min_value=1, max_value=70),
        block_k=st.integers(min_value=1, max_value=70),
        causal=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_tolerance_any_blocking(self, seq, block_q, block_k, causal):
        """Odd lengths, blocks that do not divide S, both mask modes."""
        rng = np.random.default_rng(seq * 1000 + block_q * 10 + block_k)
        q, k, v = _qkv(rng, 1, 2, seq, seq, 8)
        ref, _ = MultiHeadAttention.core_forward(q, k, v, causal)
        out, cache = flash.streaming_attention_forward(
            q, k, v, causal=causal, block_q=block_q, block_k=block_k
        )
        assert float(np.abs(out - ref).max()) <= FWD_TOL
        assert cache.lse.shape == q.shape[:3]
        assert np.isfinite(cache.lse).all()

    def test_cross_attention_shapes(self, rng):
        q, k, v = _qkv(rng, 2, 2, 13, 29, 8)
        ref, _ = MultiHeadAttention.core_forward(q, k, v, causal=False)
        out, _ = flash.streaming_attention_forward(
            q, k, v, causal=False, block_q=5, block_k=7
        )
        assert float(np.abs(out - ref).max()) <= FWD_TOL

    def test_causal_rejects_longer_queries(self, rng):
        q, k, v = _qkv(rng, 1, 1, 8, 4, 4)
        with pytest.raises(ValueError, match="seq_q <= seq_k"):
            flash.streaming_attention_forward(q, k, v, causal=True)

    def test_rejects_non_4d(self, rng):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        with pytest.raises(ValueError, match="expected"):
            flash.streaming_attention_forward(x, x, x)

    def test_rejects_bad_blocks(self, rng):
        q, k, v = _qkv(rng, 1, 1, 4, 4, 4)
        with pytest.raises(ValueError, match="block"):
            flash.streaming_attention_forward(q, k, v, block_q=0)


class TestBackwardAgainstDense:
    @given(
        seq=st.integers(min_value=1, max_value=48),
        block=st.integers(min_value=1, max_value=50),
        causal=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_gradients_tolerance(self, seq, block, causal):
        rng = np.random.default_rng(seq * 100 + block)
        q, k, v = _qkv(rng, 1, 2, seq, seq, 8)
        dout = rng.standard_normal(q.shape).astype(np.float32)
        _, ref_cache = MultiHeadAttention.core_forward(q, k, v, causal)
        ref = MultiHeadAttention.core_backward(dout, ref_cache)
        _, cache = flash.streaming_attention_forward(
            q, k, v, causal=causal, block_q=block, block_k=block
        )
        got = flash.streaming_attention_backward(dout, cache)
        assert _max_grad_diff(got, ref) <= BWD_TOL

    def test_gradients_match_finite_difference(self, rng):
        """Direct gradcheck, independent of the dense implementation."""
        q, k, v = _qkv(rng, 1, 1, 6, 6, 4)
        dout = rng.standard_normal(q.shape).astype(np.float32)
        _, cache = flash.streaming_attention_forward(
            q, k, v, causal=True, block_q=3, block_k=3
        )
        dq, dk, dv = flash.streaming_attention_backward(dout, cache)
        eps, tol = 1e-3, 2e-2
        for arr, grad in ((q, dq), (k, dk), (v, dv)):
            for idx in [(0, 0, 1, 2), (0, 0, 5, 0), (0, 0, 3, 3)]:
                orig = arr[idx]
                arr[idx] = orig + eps
                up, _ = flash.streaming_attention_forward(q, k, v)
                arr[idx] = orig - eps
                dn, _ = flash.streaming_attention_forward(q, k, v)
                arr[idx] = orig
                fd = float(((up - dn) * dout).sum() / (2 * eps))
                assert abs(fd - grad[idx]) <= tol * max(1.0, abs(fd))


class TestWorkerDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bitwise_across_worker_counts(self, rng, workers):
        """Every tile has one writer and a fixed reduction order, so the
        fan-out width cannot change a single bit."""
        q, k, v = _qkv(rng, 2, 4, 37, 37, 8)
        dout = rng.standard_normal(q.shape).astype(np.float32)
        out1, cache1 = flash.streaming_attention_forward(
            q, k, v, block_q=8, block_k=8, pool=None
        )
        grads1 = flash.streaming_attention_backward(dout, cache1)
        pool = KernelPool(workers)
        try:
            outn, cachen = flash.streaming_attention_forward(
                q, k, v, block_q=8, block_k=8, pool=pool
            )
            gradsn = flash.streaming_attention_backward(
                dout, cachen, pool=pool
            )
        finally:
            pool.shutdown()
        assert np.array_equal(out1, outn)
        assert np.array_equal(cache1.lse, cachen.lse)
        for a, b in zip(grads1, gradsn):
            assert np.array_equal(a, b)


class TestMemoryFootprint:
    def test_scratch_stays_within_tile_bound(self, rng):
        """Steady-state tile scratch is O(block), not O(S) — re-running
        the same shapes allocates nothing, and the per-thread total sits
        under the documented bound (far below any S x S plane)."""
        seq, d, bq, bk = 96, 8, 16, 16
        q, k, v = _qkv(rng, 1, 2, seq, seq, d)
        dout = rng.standard_normal(q.shape).astype(np.float32)

        def step():
            _, cache = flash.streaming_attention_forward(
                q, k, v, block_q=bq, block_k=bk, pool=None
            )
            flash.streaming_attention_backward(dout, cache, pool=None)

        step()  # warm the calling thread's scratch
        before = flash.scratch_bytes_total()
        step()
        assert flash.scratch_bytes_total() == before
        # This thread's share of the global total is bounded by the
        # per-thread tile bound, which is itself far below one S x S.
        assert flash.tile_scratch_bytes(bq, bk, d) < seq * seq * 4

    def test_workspace_peak_is_linear_not_quadratic(self, rng):
        """A workspace-backed streaming attention holds O(B*H*S*d)
        bytes; the dense S x S planes for the same shape would dwarf it."""
        b, h, seq, d = 1, 4, 96, 8
        hidden = h * d
        ws = ActivationWorkspace()
        attn = MultiHeadAttention(
            h, backend="streaming", block_q=16, block_k=16,
            workspace=ws, pool=None,
        )
        qkv = rng.standard_normal((b, seq, 3 * hidden)).astype(np.float32)
        out, cache = attn.forward(qkv)
        dout = rng.standard_normal(out.shape).astype(np.float32)
        attn.backward(dout, cache)
        dense_scores = b * h * seq * seq * 4
        assert ws.peak_bytes < dense_scores


class TestBackendDispatch:
    def test_backends_tuple(self):
        assert BACKENDS == ("dense", "streaming")
        with pytest.raises(ValueError, match="backend"):
            MultiHeadAttention(2, backend="sparse")

    def test_streaming_hidden_level_matches_dense(self, rng):
        qkv = rng.standard_normal((2, 21, 3 * 24)).astype(np.float32)
        dout = rng.standard_normal((2, 21, 24)).astype(np.float32)
        dense = MultiHeadAttention(4)
        stream = MultiHeadAttention(
            4, backend="streaming", block_q=8, block_k=8, pool=None
        )
        ref, ref_cache = dense.forward(qkv)
        got, got_cache = stream.forward(qkv)
        assert float(np.abs(got - ref).max()) <= FWD_TOL
        dref = dense.backward(dout, ref_cache)
        dgot = stream.backward(dout, got_cache)
        assert float(np.abs(dgot - dref).max()) <= BWD_TOL

    def test_dense_is_bitwise_stable_reference(self, rng):
        """The dense backend is the seed path: same call, same bits."""
        q, k, v = _qkv(rng, 2, 2, 11, 11, 4)
        a, cache_a = MultiHeadAttention.core_forward(q, k, v, True)
        b_, cache_b = MultiHeadAttention.core_forward(q, k, v, True)
        assert np.array_equal(a, b_)
        dout = rng.standard_normal(a.shape).astype(np.float32)
        for ga, gb in zip(
            MultiHeadAttention.core_backward(dout, cache_a),
            MultiHeadAttention.core_backward(dout, cache_b),
        ):
            assert np.array_equal(ga, gb)


class TestMaskHelpers:
    def test_causal_mask_memoized_and_readonly(self):
        m1 = causal_mask(9, 9)
        assert m1 is causal_mask(9, 9)
        assert not m1.flags.writeable
        assert m1[0, 1] and not m1[1, 0] and not m1[3, 3]

    def test_masked_fill_is_finite_and_underflows(self):
        for dtype in (np.float16, np.float32, np.float64):
            fill = masked_fill_value(dtype)
            assert np.isfinite(fill)
            assert fill.dtype == np.dtype(dtype)
        # fp32: exp(fill - max) must be exactly zero, like the old -1e9
        fill = float(masked_fill_value(np.float32))
        assert np.exp(np.float32(fill) - np.float32(10.0)) == 0.0


class TestUlyssesStreaming:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_sharded_streaming_matches_single_rank_dense(self, rng, world):
        """The Ulysses exchange with streaming per-rank cores still
        reproduces single-rank attention (tolerance, like the backend)."""
        b, seq, heads, d = 2, 16, 4, 6
        hidden = heads * d
        qkv = rng.standard_normal((b, seq, 3 * hidden)).astype(np.float32)
        single = MultiHeadAttention(heads)
        ref, ref_cache = single.forward(qkv)
        group = SimProcessGroup(world)
        ua = UlyssesAttention(
            heads, group, backend="streaming", block_q=8, block_k=8,
            pool=None,
        )
        shard = seq // world
        shards = [qkv[:, r * shard : (r + 1) * shard] for r in range(world)]
        outs, caches = ua.forward(shards)
        got = np.concatenate(outs, axis=1)
        assert float(np.abs(got - ref).max()) <= FWD_TOL
        dout = rng.standard_normal(ref.shape).astype(np.float32)
        dref = single.backward(dout, ref_cache)
        dshards = [
            dout[:, r * shard : (r + 1) * shard] for r in range(world)
        ]
        dgot = np.concatenate(ua.backward(dshards, caches), axis=1)
        assert float(np.abs(dgot - dref).max()) <= BWD_TOL

    def test_dense_default_unchanged(self, rng):
        """Ulysses without a backend argument still runs the bitwise
        dense core (the seed equivalence tests rely on it)."""
        group = SimProcessGroup(2)
        ua = UlyssesAttention(4, group)
        assert ua.attn.backend == "dense"


class TestTransformerStreaming:
    def test_streaming_workspace_model_matches_dense(self, rng):
        spec = TransformerParams(
            vocab=64, max_seq=24, hidden=32, n_layers=2, n_heads=4
        )
        ids = rng.integers(0, spec.vocab, size=(2, 19))
        targets = rng.integers(0, spec.vocab, size=(2, 19))
        base = TinyTransformer(spec, seed=3)
        loss0, grads0 = base.loss_and_grads(ids, targets, loss_scale=4.0)
        ws = ActivationWorkspace()
        model = TinyTransformer(
            spec, seed=3, workspace=ws, attn_backend="streaming",
            block_q=8, block_k=8,
        )
        loss1, grads1 = model.loss_and_grads(ids, targets, loss_scale=4.0)
        assert abs(loss1 - loss0) <= FWD_TOL
        assert set(grads1) == set(grads0)
        worst = max(
            float(np.abs(grads0[k] - grads1[k]).max()) for k in grads0
        )
        assert worst <= BWD_TOL

    def test_dense_workspace_model_is_bitwise(self, rng):
        """Workspace buffers change where activations live, not their
        bits: the dense+workspace model reproduces the seed exactly."""
        spec = TransformerParams(
            vocab=32, max_seq=16, hidden=16, n_layers=2, n_heads=2
        )
        ids = rng.integers(0, spec.vocab, size=(2, 13))
        targets = rng.integers(0, spec.vocab, size=(2, 13))
        base = TinyTransformer(spec, seed=5)
        loss0, grads0 = base.loss_and_grads(ids, targets, loss_scale=2.0)
        model = TinyTransformer(
            spec, seed=5, workspace=ActivationWorkspace()
        )
        for _ in range(2):  # cold and warm workspace steps
            loss1, grads1 = model.loss_and_grads(ids, targets,
                                                 loss_scale=2.0)
            assert loss1 == loss0
            for key in grads0:
                assert np.array_equal(grads0[key], grads1[key]), key
