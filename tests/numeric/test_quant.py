"""Property tests for blocked int8 quantization and the fused qmatmul.

The contracts under test:

- round-trip error of ``dequantize(quantize(w))`` stays within the
  analytic per-group bound ``scale / 2`` (elementwise);
- degenerate groups (all-zero, non-finite) quantize to exact zero codes
  with scale 1.0, so dequantization is exact there;
- the fused :func:`~repro.exec.ops.parallel_qmatmul` agrees with the
  dense-dequant reference within fp32-reassociation tolerance, and with
  the analytic bound against the exact fp32 product;
- results are bitwise identical across worker counts 1/2/4 (the column
  tile decomposition never depends on the pool);
- :class:`~repro.numeric.lowprec.QuantizedStore` packs planes into one
  contiguous code/scale buffer pair with zero-copy views.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.exec.ops as ops
from repro.exec.ops import parallel_qmatmul, qmatmul_reference
from repro.exec.pool import KernelPool
from repro.numeric.lowprec import (
    QuantizedStore,
    QuantizedTensor,
    cast_roundtrip_error,
    dequantize_int8_blocked,
    quantization_error_bound,
    quantize_int8_blocked,
)


def _weights(rng, rows, cols, scale=0.1):
    return (scale * rng.standard_normal((rows, cols))).astype(np.float32)


# -- round-trip bound ----------------------------------------------------


@given(
    rows=st.integers(1, 130),
    cols=st.integers(1, 17),
    group_size=st.sampled_from([1, 3, 8, 32, 64, 128]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_error_within_analytic_bound(rows, cols, group_size,
                                               seed):
    rng = np.random.default_rng(seed)
    w = _weights(rng, rows, cols)
    q, scales = quantize_int8_blocked(w, group_size)
    back = dequantize_int8_blocked(q, scales, group_size)
    bound = quantization_error_bound(scales, group_size, rows)
    assert q.dtype == np.int8 and scales.dtype == np.float32
    # rint quantization: error <= scale / 2 elementwise, plus an epsilon
    # for the fp32 division/multiply in the round trip itself.
    assert np.all(np.abs(back - w) <= bound * (1 + 1e-5) + 1e-12)


def test_non_dividing_group_size_covers_tail():
    rng = np.random.default_rng(0)
    w = _weights(rng, 100, 5)
    q, scales = quantize_int8_blocked(w, 64)  # groups: 64 + 36-row tail
    assert scales.shape == (2, 5)
    back = dequantize_int8_blocked(q, scales, 64)
    bound = quantization_error_bound(scales, 64, 100)
    assert bound.shape == (100, 5)
    assert np.all(np.abs(back - w) <= bound * (1 + 1e-5))


def test_degenerate_groups_exact_zero():
    """All-zero and non-finite groups get scale 1.0 and zero codes."""
    w = np.zeros((8, 3), dtype=np.float32)
    w[4:, 1] = np.nan
    w[4:, 2] = np.inf
    q, scales = quantize_int8_blocked(w, 4)
    assert np.array_equal(q, np.zeros_like(q))
    assert np.array_equal(scales, np.ones_like(scales))
    assert np.array_equal(
        dequantize_int8_blocked(q, scales, 4), np.zeros_like(w)
    )


def test_cast_roundtrip_error_ignores_nonfinite():
    x = np.array([1.0, np.nan, np.inf, -2.0], dtype=np.float32)
    err = cast_roundtrip_error(x, "fp16")
    assert np.isfinite(err)
    all_bad = np.array([np.nan, np.inf], dtype=np.float32)
    assert cast_roundtrip_error(all_bad, "bf16") == 0.0


# -- fused qmatmul vs reference -----------------------------------------


@given(
    m=st.integers(1, 9),
    k=st.integers(1, 200),
    n=st.integers(1, 40),
    group_size=st.sampled_from([8, 64, 128]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_qmatmul_matches_reference(m, k, n, group_size, seed):
    rng = np.random.default_rng(seed)
    w = _weights(rng, k, n)
    x = rng.standard_normal((m, k)).astype(np.float32)
    bias = rng.standard_normal(n).astype(np.float32)
    qt = QuantizedTensor(*quantize_int8_blocked(w, group_size), group_size)
    got = parallel_qmatmul(x, qt, bias, tile=16)
    ref = qmatmul_reference(x, qt, bias)
    scale = float(np.abs(ref).max()) + 1e-9
    assert float(np.abs(got - ref).max()) / scale <= 1e-4


def test_qmatmul_within_analytic_bound_of_exact():
    """|fused - x @ w_fp32| <= |x| @ bound, plus reassociation slack."""
    rng = np.random.default_rng(7)
    w = _weights(rng, 256, 64)
    x = rng.standard_normal((4, 256)).astype(np.float32)
    qt = QuantizedTensor(*quantize_int8_blocked(w, 64), 64)
    got = parallel_qmatmul(x, qt)
    exact = x @ w
    bound = np.abs(x) @ qt.error_bound()
    assert np.all(np.abs(got - exact) <= bound * (1 + 1e-4) + 1e-5)


def test_qmatmul_leading_dims_and_out():
    rng = np.random.default_rng(3)
    w = _weights(rng, 48, 32)
    qt = QuantizedTensor(*quantize_int8_blocked(w, 16), 16)
    x = rng.standard_normal((2, 5, 48)).astype(np.float32)
    out = np.empty((2, 5, 32), dtype=np.float32)
    got = parallel_qmatmul(x, qt, out=out)
    assert got is out
    flat = parallel_qmatmul(x.reshape(10, 48), qt)
    assert np.array_equal(out.reshape(10, 32), flat)


def test_qmatmul_rejects_feature_mismatch():
    rng = np.random.default_rng(1)
    qt = QuantizedTensor(*quantize_int8_blocked(_weights(rng, 16, 8), 8), 8)
    with pytest.raises(ValueError):
        parallel_qmatmul(np.ones((2, 17), dtype=np.float32), qt)


# -- determinism across worker counts -----------------------------------


@pytest.mark.parametrize("group_size", [32, 64, 100])
def test_qmatmul_bitwise_across_workers(monkeypatch, group_size):
    """Workers 1/2/4 produce bitwise-identical outputs.

    The dispatcher clamps fan-out to the host's usable CPUs, so the
    pool path is forced via monkeypatch — the determinism contract must
    hold when threads really race over the column tiles.
    """
    monkeypatch.setattr(ops, "_usable_cpus", lambda: 4)
    monkeypatch.setattr(ops, "QMATMUL_MIN_PARALLEL", 1)
    rng = np.random.default_rng(11)
    w = _weights(rng, 200, 96)
    x = rng.standard_normal((6, 200)).astype(np.float32)
    bias = rng.standard_normal(96).astype(np.float32)
    qt = QuantizedTensor(*quantize_int8_blocked(w, group_size), group_size)
    outs = []
    for workers in (1, 2, 4):
        pool = KernelPool(workers)
        try:
            outs.append(
                parallel_qmatmul(x, qt, bias, pool=pool, tile=16)
            )
        finally:
            pool.shutdown()
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[0], outs[2])


def test_qmatmul_tiles_agree_within_tolerance():
    """Tile width re-chunks the fan-out; results agree to fp32 slack.

    Not bitwise: the BLAS kernels may reassociate dot products
    differently per operand width.  Bitwise invariance is only promised
    across *worker counts* at a fixed tile (the test above).
    """
    rng = np.random.default_rng(13)
    w = _weights(rng, 128, 64)
    x = rng.standard_normal((3, 128)).astype(np.float32)
    qt = QuantizedTensor(*quantize_int8_blocked(w, 32), 32)
    ref = parallel_qmatmul(x, qt, tile=64)
    scale = float(np.abs(ref).max()) + 1e-9
    for tile in (8, 16, 48):
        got = parallel_qmatmul(x, qt, tile=tile)
        assert float(np.abs(got - ref).max()) / scale <= 1e-5


# -- packed store --------------------------------------------------------


def test_quantized_store_roundtrip_and_views():
    rng = np.random.default_rng(5)
    planes = {
        "a": _weights(rng, 96, 32),
        "b": _weights(rng, 64, 48),
        "c": _weights(rng, 100, 8),  # ragged tail group
    }
    store = QuantizedStore.pack(planes.items(), group_size=64)
    for name, w in planes.items():
        qt = store.get(name)
        solo = QuantizedTensor(*quantize_int8_blocked(w, 64), 64)
        assert np.array_equal(qt.qweight, solo.qweight)
        assert np.array_equal(qt.scales, solo.scales)
        # zero-copy: views alias the packed buffers
        assert qt.qweight.base is not None
    fp32 = sum(w.nbytes for w in planes.values())
    assert fp32 / store.nbytes >= 3.0
    assert store.compression_ratio >= 3.0


def test_quantized_store_accepts_generator():
    rng = np.random.default_rng(6)
    planes = [("x", _weights(rng, 32, 16)), ("y", _weights(rng, 16, 16))]
    store = QuantizedStore.pack((p for p in planes), group_size=16)
    assert np.array_equal(
        store.get("x").dequantize(),
        QuantizedTensor(
            *quantize_int8_blocked(planes[0][1], 16), 16
        ).dequantize(),
    )


def test_dequantize_rows_matches_full():
    rng = np.random.default_rng(8)
    w = _weights(rng, 90, 24)
    qt = QuantizedTensor(*quantize_int8_blocked(w, 32), 32)
    rows = np.array([0, 5, 63, 64, 89])
    assert np.array_equal(
        qt.dequantize_rows(rows), qt.dequantize()[rows]
    )
