"""Test package."""
