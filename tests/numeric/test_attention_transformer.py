"""Tests for attention and the full transformer (gradients, causality)."""

import numpy as np
import pytest

from repro.numeric import TinyTransformer, TransformerParams
from repro.numeric.attention import MultiHeadAttention
from repro.numeric.layers import cross_entropy


class TestAttention:
    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadAttention(2)
        qkv = rng.standard_normal((1, 6, 3 * 8)).astype(np.float32)
        out1, _ = attn.forward(qkv)
        qkv2 = qkv.copy()
        qkv2[0, 5] += 10.0
        out2, _ = attn.forward(qkv2)
        np.testing.assert_allclose(out1[0, :5], out2[0, :5], atol=1e-6)
        assert not np.allclose(out1[0, 5], out2[0, 5])

    def test_split_merge_roundtrip(self, rng):
        attn = MultiHeadAttention(4)
        x = rng.standard_normal((2, 5, 16))
        np.testing.assert_array_equal(
            attn.merge_heads(attn.split_heads(x)), x
        )

    def test_split_heads_validates_divisibility(self, rng):
        attn = MultiHeadAttention(3)
        with pytest.raises(ValueError):
            attn.split_heads(rng.standard_normal((1, 2, 16)))

    def test_backward_matches_finite_difference(self, rng):
        attn = MultiHeadAttention(2)
        qkv = rng.standard_normal((1, 4, 3 * 8)).astype(np.float64)
        dout = rng.standard_normal((1, 4, 8))
        out, cache = attn.forward(qkv)
        dqkv = attn.backward(dout, cache)
        eps = 1e-6
        for _ in range(6):
            idx = tuple(rng.integers(0, s) for s in qkv.shape)
            orig = qkv[idx]
            qkv[idx] = orig + eps
            lp = float((attn.forward(qkv)[0] * dout).sum())
            qkv[idx] = orig - eps
            lm = float((attn.forward(qkv)[0] * dout).sum())
            qkv[idx] = orig
            fd = (lp - lm) / (2 * eps)
            assert fd == pytest.approx(dqkv[idx], abs=2e-4)

    def test_uniform_attention_averages_values(self):
        """With identical q/k, attention over a prefix is a running mean."""
        attn = MultiHeadAttention(1)
        seq, dim = 4, 2
        q = np.zeros((1, 1, seq, dim))
        k = np.zeros((1, 1, seq, dim))
        v = np.arange(seq, dtype=np.float64).reshape(1, 1, seq, 1) * np.ones(
            (1, 1, seq, dim)
        )
        ctx, _ = MultiHeadAttention.core_forward(q, k, v)
        np.testing.assert_allclose(ctx[0, 0, 2, 0], 1.0)  # mean(0,1,2)=1


class TestTransformer:
    def test_forward_shapes(self, tiny_model, rng):
        ids = rng.integers(0, 61, size=(2, 10))
        logits, _ = tiny_model.forward(ids)
        assert logits.shape == (2, 10, 61)

    def test_sequence_too_long_rejected(self, tiny_model, rng):
        ids = rng.integers(0, 61, size=(1, 17))
        with pytest.raises(ValueError):
            tiny_model.forward(ids)

    def test_deterministic_init(self, tiny_spec):
        m1 = TinyTransformer(tiny_spec, seed=5)
        m2 = TinyTransformer(tiny_spec, seed=5)
        for k in m1.params:
            np.testing.assert_array_equal(m1.params[k], m2.params[k])

    def test_param_count(self, tiny_model):
        assert tiny_model.param_count() == sum(
            p.size for p in tiny_model.params.values()
        )

    def test_gradients_match_finite_difference(self, tiny_model, rng):
        ids = rng.integers(0, 61, size=(2, 8))
        targets = rng.integers(0, 61, size=(2, 8))
        loss, grads = tiny_model.loss_and_grads(ids, targets)
        assert set(grads) == set(tiny_model.params)
        eps = 1e-3
        checked = 0
        for name in ("h0.qkv.w", "h1.fc1.w", "tok_emb", "ln_f.g", "head.w",
                     "pos_emb", "h0.proj.b", "h1.ln2.g"):
            p = tiny_model.params[name]
            for _ in range(2):
                idx = tuple(rng.integers(0, s) for s in p.shape)
                orig = p[idx]
                p[idx] = orig + eps
                lp = tiny_model.loss(ids, targets)
                p[idx] = orig - eps
                lm = tiny_model.loss(ids, targets)
                p[idx] = orig
                fd = (lp - lm) / (2 * eps)
                an = grads[name][idx]
                assert abs(fd - an) <= 2e-4 + 0.05 * abs(fd), (name, idx)
                checked += 1
        assert checked == 16

    def test_loss_scale_multiplies_gradients(self, tiny_model, rng):
        ids = rng.integers(0, 61, size=(1, 8))
        targets = rng.integers(0, 61, size=(1, 8))
        _, g1 = tiny_model.loss_and_grads(ids, targets, loss_scale=1.0)
        _, g2 = tiny_model.loss_and_grads(ids, targets, loss_scale=8.0)
        for k in g1:
            np.testing.assert_allclose(g2[k], 8.0 * g1[k], rtol=1e-4, atol=1e-6)

    def test_external_params_used(self, tiny_model, rng):
        ids = rng.integers(0, 61, size=(1, 6))
        zeroed = {k: np.zeros_like(v) for k, v in tiny_model.params.items()}
        logits, _ = tiny_model.forward(ids, params=zeroed)
        np.testing.assert_allclose(logits, 0.0)

    def test_training_reduces_loss(self, tiny_model, tiny_batches):
        """A few plain SGD steps on real data reduce the loss."""
        ids, targets = tiny_batches[0]
        loss0, _ = cross_entropy(tiny_model.forward(ids)[0], targets)
        for _ in range(30):
            _, grads = tiny_model.loss_and_grads(ids, targets)
            for k, g in grads.items():
                tiny_model.params[k] -= (0.5 * g).astype(np.float32)
        loss1, _ = cross_entropy(tiny_model.forward(ids)[0], targets)
        assert loss1 < loss0 - 0.2
