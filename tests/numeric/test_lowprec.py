"""Tests for low-precision emulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.numeric.lowprec import cast_roundtrip_error, from_fp16, to_bf16, to_fp16


def test_fp16_overflow_to_inf():
    x = np.array([1e5, -1e5], dtype=np.float32)
    y = to_fp16(x)
    assert np.isinf(y).all()


def test_fp16_roundtrip_small_values_exact():
    x = np.array([1.0, 0.5, -2.0, 1024.0], dtype=np.float32)
    np.testing.assert_array_equal(from_fp16(to_fp16(x)), x)


@given(arrays(np.float32, (8,), elements=st.floats(-1e3, 1e3, width=32)))
def test_fp16_roundtrip_error_bounded(x):
    # fp16 has ~3 decimal digits: relative error <= 2^-10 plus denormal floor.
    err = cast_roundtrip_error(x, "fp16")
    assert err <= np.abs(x).max() * 2**-10 + 1e-6


@given(arrays(np.float32, (8,), elements=st.floats(-1e6, 1e6, width=32)))
def test_bf16_roundtrip_error_bounded(x):
    err = cast_roundtrip_error(x, "bf16")
    assert err <= np.abs(x).max() * 2**-7 + 1e-30


def test_bf16_preserves_exact_powers_of_two():
    x = np.array([2.0**-30, 2.0**40, -2.0**10], dtype=np.float32)
    np.testing.assert_array_equal(to_bf16(x), x)


def test_bf16_keeps_fp32_range():
    """bf16's raison d'etre: 1e38 survives (it overflows fp16)."""
    x = np.array([1e38], dtype=np.float32)
    assert np.isfinite(to_bf16(x)).all()
    assert np.isinf(to_fp16(x)).all()


def test_bf16_round_to_nearest_even():
    # 1 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and 1+2^-7;
    # round-to-even picks 1.0 (even mantissa).
    x = np.array([1.0 + 2.0**-8], dtype=np.float32)
    assert to_bf16(x)[0] == 1.0


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError):
        cast_roundtrip_error(np.ones(2, dtype=np.float32), "fp8")


def test_bf16_preserves_shape_noncontiguous():
    x = np.arange(12, dtype=np.float32).reshape(3, 4)[:, ::2]
    y = to_bf16(x)
    assert y.shape == x.shape
    np.testing.assert_array_equal(y, x)
