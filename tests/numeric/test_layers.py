"""Finite-difference and invariant tests for the numpy layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
    softmax,
)


def fd_check(f, x, analytic, eps=1e-4, tol=2e-3):
    """Central finite differences over a few random coordinates."""
    rng = np.random.default_rng(0)
    for _ in range(5):
        idx = tuple(rng.integers(0, s) for s in x.shape)
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        fd = (fp - fm) / (2 * eps)
        assert abs(fd - analytic[idx]) <= tol * max(1.0, abs(fd)), idx


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((4, 9)).astype(np.float32)
        p = softmax(x)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_handles_large_values(self):
        p = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(p).all()
        assert p[0] == pytest.approx(1.0)


class TestGelu:
    def test_known_values(self):
        assert gelu(np.array(0.0)) == 0.0
        assert gelu(np.array(10.0)) == pytest.approx(10.0, rel=1e-4)
        assert gelu(np.array(-10.0)) == pytest.approx(0.0, abs=1e-3)

    @given(st.floats(min_value=-5, max_value=5))
    @settings(max_examples=30)
    def test_grad_matches_finite_difference(self, x):
        eps = 1e-5
        fd = (gelu(np.array(x + eps)) - gelu(np.array(x - eps))) / (2 * eps)
        assert gelu_grad(np.array(x)) == pytest.approx(fd, abs=1e-4)


class TestDense:
    def test_forward_shape_and_value(self, rng):
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((4, 5))
        b = rng.standard_normal(5)
        y, _ = Dense.forward(x, w, b)
        assert y.shape == (2, 3, 5)
        np.testing.assert_allclose(y, x @ w + b)

    def test_backward_gradients(self, rng):
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((4, 5))
        b = rng.standard_normal(5)
        dy = rng.standard_normal((2, 3, 5))

        def loss():
            return float((Dense.forward(x, w, b)[0] * dy).sum())

        _, cache = Dense.forward(x, w, b)
        dx, dw, db = Dense.backward(dy, cache)
        fd_check(loss, x, dx)
        fd_check(loss, w, dw)
        fd_check(loss, b, db)


class TestLayerNorm:
    def test_output_normalized_with_unit_gain(self, rng):
        x = rng.standard_normal((4, 16)) * 5 + 3
        y, _ = LayerNorm.forward(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-6)
        np.testing.assert_allclose(y.var(axis=-1), 1, atol=1e-3)

    def test_backward_gradients(self, rng):
        x = rng.standard_normal((3, 8))
        g = rng.standard_normal(8)
        b = rng.standard_normal(8)
        dy = rng.standard_normal((3, 8))

        def loss():
            return float((LayerNorm.forward(x, g, b)[0] * dy).sum())

        _, cache = LayerNorm.forward(x, g, b)
        dx, dg, db = LayerNorm.backward(dy, cache)
        fd_check(loss, x, dx)
        fd_check(loss, g, dg)
        fd_check(loss, b, db)


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.standard_normal((10, 4))
        ids = np.array([[1, 3], [0, 9]])
        y, _ = Embedding.forward(ids, table)
        np.testing.assert_array_equal(y[0, 1], table[3])

    def test_out_of_range_rejected(self, rng):
        table = rng.standard_normal((10, 4))
        with pytest.raises(IndexError):
            Embedding.forward(np.array([[10]]), table)

    def test_backward_scatter_adds_duplicates(self, rng):
        table = rng.standard_normal((5, 3))
        ids = np.array([[2, 2, 1]])
        _, cache = Embedding.forward(ids, table)
        dy = np.ones((1, 3, 3))
        dtable = Embedding.backward(dy, cache)
        np.testing.assert_allclose(dtable[2], 2.0)
        np.testing.assert_allclose(dtable[1], 1.0)
        np.testing.assert_allclose(dtable[0], 0.0)


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_vocab(self):
        logits = np.zeros((2, 3, 7), dtype=np.float32)
        targets = np.zeros((2, 3), dtype=np.int64)
        loss, _ = cross_entropy(logits, targets)
        assert loss == pytest.approx(np.log(7))

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((2, 4, 9)).astype(np.float32)
        targets = rng.integers(0, 9, size=(2, 4))
        _, dlogits = cross_entropy(logits, targets)
        np.testing.assert_allclose(dlogits.sum(axis=-1), 0, atol=1e-6)

    def test_gradient_finite_difference(self, rng):
        logits = rng.standard_normal((1, 2, 5)).astype(np.float64)
        targets = rng.integers(0, 5, size=(1, 2))

        def loss():
            return cross_entropy(logits, targets)[0]

        _, d = cross_entropy(logits, targets)
        fd_check(loss, logits, d, eps=1e-5, tol=1e-4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3, 5)), np.zeros((2, 4), dtype=int))

    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 1, 4), -30.0, dtype=np.float64)
        logits[0, 0, 2] = 30.0
        loss, _ = cross_entropy(logits, np.array([[2]]))
        assert loss < 1e-6
