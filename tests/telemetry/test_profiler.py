"""Tests for step-phase attribution, overlap audit, and overhead."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.transformer import TransformerParams
from repro.telemetry import StepProfiler, Telemetry
from repro.telemetry.profiler import (
    PHASES,
    _attribute_window,
    phase_of,
    profiler_overhead,
)
from repro.telemetry.report import (
    measured_trace,
    phase_rows,
    sim_comparison_rows,
    worker_rows,
)
from repro.telemetry.tracer import Span


def _span(name, category, start, finish, depth=1, thread=0, **attrs):
    return Span(name=name, category=category, start=start, finish=finish,
                depth=depth, thread=thread, attrs=attrs)


TINY = TransformerParams(vocab=64, max_seq=16, hidden=32, n_layers=2,
                         n_heads=2)


def _stv_profiler(iters=3):
    from repro.training.stv_trainer import STVTrainer

    profiler = StepProfiler()
    trainer = STVTrainer(spec=TINY, batch=2, seed=3,
                         telemetry=profiler.telemetry)
    trainer.run(iters)
    return profiler


class TestPhaseMapping:
    def test_names_win_over_categories(self):
        s = _span("bucket_wait", "optim", 0, 1)
        assert phase_of(s) == "stall"

    def test_category_fallback(self):
        assert phase_of(_span("anything", "rollback", 0, 1)) == "rollback"

    def test_unmapped_is_none(self):
        assert phase_of(_span("train_step", "step", 0, 1)) is None


class TestAttribution:
    def test_uncovered_time_is_idle(self):
        seconds, segments = _attribute_window(
            [_span("forward", "compute", 1.0, 2.0)], 0.0, 3.0
        )
        assert seconds["forward"] == pytest.approx(1.0)
        assert seconds["idle"] == pytest.approx(2.0)
        assert [s.phase for s in segments] == ["idle", "forward", "idle"]

    def test_innermost_span_wins(self):
        spans = [
            _span("fwd_bwd", "compute", 0.0, 4.0, depth=1),
            _span("forward", "compute", 0.0, 2.0, depth=2),
        ]
        seconds, _ = _attribute_window(spans, 0.0, 4.0)
        assert seconds["forward"] == pytest.approx(2.0)
        assert seconds["backward"] == pytest.approx(2.0)

    def test_spans_clipped_to_window(self):
        seconds, _ = _attribute_window(
            [_span("forward", "compute", -1.0, 10.0)], 0.0, 2.0
        )
        assert seconds == {"forward": pytest.approx(2.0)}

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["forward", "backward", "grad_reduce",
                             "bucket_wait", "cast"]),
            st.floats(0.0, 10.0),
            st.floats(0.0, 10.0),
            st.integers(1, 4),
        ),
        max_size=12,
    ))
    def test_phases_partition_the_window(self, raw):
        """Phase durations always sum to the window length exactly."""
        spans = [
            _span(name, "compute", min(a, b), max(a, b), depth=d)
            for name, a, b, d in raw
        ]
        seconds, segments = _attribute_window(spans, 0.0, 10.0)
        assert sum(seconds.values()) == pytest.approx(10.0, abs=1e-9)
        assert set(seconds) <= set(PHASES)
        # segments also partition the window, in order, without overlap
        cursor = 0.0
        for seg in segments:
            assert seg.start == pytest.approx(cursor, abs=1e-9)
            assert seg.finish >= seg.start
            cursor = seg.finish
        assert cursor == pytest.approx(10.0, abs=1e-9)


class TestStepProfiler:
    def test_requires_enabled_telemetry(self):
        with pytest.raises(ValueError):
            StepProfiler(Telemetry(enabled=False))

    def test_phase_sums_match_step_wall_time(self):
        report = _stv_profiler().report()
        assert report.step_count == 3
        for step in report.steps:
            total = sum(step.phase_seconds.values())
            assert total == pytest.approx(step.wall_seconds, rel=1e-6)

    def test_compute_dominates_a_training_step(self):
        report = _stv_profiler().report()
        compute = (report.phase_share("forward")
                   + report.phase_share("backward"))
        assert compute > 0.3
        assert 0.0 <= report.phase_share("idle") < 0.6

    def test_phase_rows_include_total(self):
        report = _stv_profiler().report()
        rows = phase_rows(report)
        assert rows[-1][0] == "total"
        assert rows[-1][1] == pytest.approx(report.wall_seconds)

    def test_memory_watcher_tracks_peak(self):
        profiler = StepProfiler()
        level = {"value": 0.0}
        profiler.watch_memory("fake", lambda: level["value"])
        tracer = profiler.telemetry.tracer
        with tracer.span("train_step", category="step"):
            level["value"] = 100.0
            with tracer.span("forward", category="compute"):
                pass
            level["value"] = 40.0  # drop after the peak
        report = profiler.report()
        (mark,) = report.watermarks
        assert mark.name == "fake"
        assert mark.peak_bytes == 100.0
        assert mark.samples >= 2

    def test_watcher_errors_never_propagate(self):
        profiler = StepProfiler()
        profiler.watch_memory("broken", lambda: 1 / 0)
        with profiler.telemetry.tracer.span("forward", category="compute"):
            pass  # closing must not raise


class TestOverlapAudit:
    def _dp_report(self, pipeline, workers=2):
        from repro.exec.pool import KernelPool
        from repro.training.dp_trainer import DataParallelTrainer

        profiler = StepProfiler()
        pool = KernelPool(workers, telemetry=profiler.telemetry)
        try:
            dp = DataParallelTrainer(
                TINY, world_size=2, telemetry=profiler.telemetry,
                pipeline=pipeline, bucket_elements=4096, pool=pool,
            )
            dp.train(2, batch=4)
            return profiler.report()
        finally:
            pool.shutdown()

    def test_pipelined_steps_are_audited(self):
        report = self._dp_report(pipeline=True)
        assert len(report.overlap) == 2
        for audit in report.overlap:
            assert 0.0 <= audit.efficiency <= 1.0
            assert audit.buckets > 0
            assert audit.serial_seconds > 0
            assert audit.lower_bound_seconds <= audit.serial_seconds
            assert audit.bubble_seconds >= 0

    def test_serial_steps_are_not_audited(self):
        report = self._dp_report(pipeline=False)
        assert report.overlap == []
        # the serial path exposes the reduce/gather as a grad_reduce phase
        assert report.phase_totals.get("grad_reduce", 0.0) > 0.0

    def test_worker_utilization_rows(self):
        report = self._dp_report(pipeline=True)
        assert [w.worker for w in report.workers] == [0, 1]
        assert sum(w.chunks for w in report.workers) > 0
        for w in report.workers:
            assert 0.0 <= w.utilization <= 1.0
        rows = worker_rows(report)
        assert rows[-1][0] == "straggler(max/mean)"

    def test_measured_trace_validates(self):
        report = self._dp_report(pipeline=True)
        trace = measured_trace(report)
        trace.validate()
        assert trace.intervals
        busy = trace.busy_time("measured")
        wall = report.wall_seconds
        idleish = (report.phase_totals.get("idle", 0.0)
                   + 0.0)  # idle segments become gaps
        assert busy == pytest.approx(wall - idleish, rel=1e-6)

    def test_sim_comparison_rows_are_percentages(self):
        from repro.models.config import MODEL_CONFIG_TABLE
        from repro.systems import RunSetting, SuperOffloadSystem
        from repro.training.cluster import gh200_cluster

        report = self._dp_report(pipeline=True)
        est = SuperOffloadSystem().best_estimate(
            RunSetting(MODEL_CONFIG_TABLE[5], gh200_cluster(1),
                       global_batch=8)
        )
        rows = sim_comparison_rows(report, est.trace, est.steady_window)
        cats = [r[0] for r in rows]
        assert "compute" in cats
        assert cats[-1] == "idle(vs sim gpu)"
        for _, measured, predicted, delta in rows:
            assert 0.0 <= measured <= 100.0
            assert 0.0 <= predicted <= 100.0
            assert delta == pytest.approx(measured - predicted)


class TestOverhead:
    def test_profiled_run_is_bitwise_identical(self):
        result = profiler_overhead(iters=2, repeats=1)
        assert result.bitwise_identical
        assert result.baseline_seconds > 0
        assert result.profiled_seconds > 0

    def test_disabled_telemetry_records_nothing(self):
        from repro.telemetry import NULL_TELEMETRY
        from repro.training.stv_trainer import STVTrainer

        trainer = STVTrainer(spec=TINY, batch=2, seed=3,
                             telemetry=NULL_TELEMETRY)
        trainer.run(2)
        assert NULL_TELEMETRY.tracer.spans == ()


class TestSpillPhases:
    def test_spill_wait_maps_to_its_own_phase(self):
        assert phase_of(_span("spill_wait", "stall", 0, 1)) == "spill_wait"
        assert "spill_wait" in PHASES

    def test_checkpoint_spans_map_to_checkpoint_phase(self):
        assert phase_of(_span("ckpt_capture", "checkpoint", 0, 1)) == \
            "checkpoint"
        assert phase_of(_span("checkpoint", "checkpoint", 0, 1)) == \
            "checkpoint"
        assert "checkpoint" in PHASES

    def test_spill_io_spans_are_not_step_phases(self):
        """spill_read/spill_write run on the I/O thread; they feed the
        overlap audit, never same-thread step attribution."""
        assert phase_of(_span("spill_read", "spill_io", 0, 1)) is None
        assert phase_of(_span("spill_write", "spill_io", 0, 1)) is None


class TestSpillOverlapAudit:
    def _disk_report(self, tmp_path, every=0):
        from repro.exec.pool import KernelPool
        from repro.training.dp_trainer import DataParallelTrainer

        profiler = StepProfiler()
        pool = KernelPool(2, telemetry=profiler.telemetry)
        try:
            dp = DataParallelTrainer(
                TINY, world_size=2, telemetry=profiler.telemetry,
                pipeline=True, bucket_elements=4096, pool=pool,
                offload="disk", spill_dir=str(tmp_path / "spill"),
            )
            if every:
                dp.attach_checkpointer(str(tmp_path / "ckpt"), every=every)
            dp.train(2, batch=4)
            dp.finish_checkpoints()
            dp.optimizer.release_staging()
            dp.optimizer.close_spill()
            return profiler.report()
        finally:
            pool.shutdown()

    def test_disk_steps_report_spill_io_and_efficiency(self, tmp_path):
        report = self._disk_report(tmp_path)
        assert len(report.overlap) == 2
        for audit in report.overlap:
            assert audit.spill_read_seconds > 0
            assert audit.spill_write_seconds > 0
            assert audit.spill_wait_seconds >= 0
            assert 0.0 <= audit.spill_overlap_efficiency <= 1.0

    def test_resident_steps_have_no_spill_audit(self):
        from repro.exec.pool import KernelPool
        from repro.training.dp_trainer import DataParallelTrainer

        profiler = StepProfiler()
        pool = KernelPool(2, telemetry=profiler.telemetry)
        try:
            dp = DataParallelTrainer(
                TINY, world_size=2, telemetry=profiler.telemetry,
                pipeline=True, bucket_elements=4096, pool=pool,
            )
            dp.train(1, batch=4)
        finally:
            pool.shutdown()
        report = profiler.report()
        for audit in report.overlap:
            assert audit.spill_overlap_efficiency is None
            assert audit.spill_read_seconds == 0.0

    def test_checkpointed_run_shows_checkpoint_phase(self, tmp_path):
        report = self._disk_report(tmp_path, every=1)
        assert report.phase_totals.get("checkpoint", 0.0) > 0.0

    def test_spill_sim_rows_cover_both_directions(self, tmp_path):
        from repro.telemetry.report import SPILL_SIM_HEADERS, spill_sim_rows

        rows = spill_sim_rows(1 << 20, 1 << 19, 0.004, 0.002)
        assert [r[0] for r in rows] == ["read", "write"]
        for _, nbytes, measured_ms, predicted_ms, delta in rows:
            assert nbytes > 0
            assert measured_ms > 0 and predicted_ms > 0
            assert delta == pytest.approx(
                (measured_ms - predicted_ms) / predicted_ms * 100.0
            )
        assert len(SPILL_SIM_HEADERS) == len(rows[0])
        assert spill_sim_rows(0, 0, 0.0, 0.0) == []
