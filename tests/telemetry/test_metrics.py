"""Tests for counters, gauges, and percentile histograms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import (
    SUMMARY_HEADERS,
    MetricsRegistry,
    NullMetricsRegistry,
)


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("bytes_total", op="all_gather")
    counter.inc()
    counter.inc(41.0)
    assert counter.value == 42.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("c").inc(-1)


def test_gauge_last_write_wins():
    gauge = MetricsRegistry().gauge("loss_scale")
    gauge.set(2**12)
    gauge.set(2**11)
    assert gauge.value == 2**11


def test_labels_separate_instruments():
    registry = MetricsRegistry()
    a = registry.counter("calls", op="all_reduce")
    b = registry.counter("calls", op="all_gather")
    a.inc()
    assert a is not b
    assert b.value == 0.0
    # same (name, labels) -> same instrument regardless of kwarg order
    assert registry.counter("x", a="1", b="2") is registry.counter(
        "x", b="2", a="1"
    )


def test_kind_namespaces_are_distinct():
    registry = MetricsRegistry()
    registry.counter("m").inc()
    registry.gauge("m").set(5)
    assert registry.counter("m").value == 1.0
    assert registry.gauge("m").value == 5.0


def test_histogram_summary_exact():
    hist = MetricsRegistry().histogram("latency")
    for v in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(v)
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["p50"] == pytest.approx(2.5)


def test_histogram_empty_summary():
    summary = MetricsRegistry().histogram("empty").summary()
    assert summary["count"] == 0
    assert summary["p50"] is None


def test_percentile_bounds_checked():
    hist = MetricsRegistry().histogram("h")
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 1.0


def test_summary_rows_match_headers():
    registry = MetricsRegistry()
    registry.counter("calls", op="bcast").inc(3)
    registry.gauge("scale").set(7.5)
    registry.histogram("loss").observe(1.0)
    rows = registry.summary_rows()
    assert len(rows) == 3
    assert all(len(row) == len(SUMMARY_HEADERS) for row in rows)
    kinds = [row[2] for row in rows]
    assert kinds == ["counter", "gauge", "histogram"]


def test_iteration_is_sorted_and_sized():
    registry = MetricsRegistry()
    registry.gauge("b")
    registry.counter("a")
    assert len(registry) == 2
    assert [kind for kind, _ in registry] == ["counter", "gauge"]


def test_null_registry_is_inert():
    registry = NullMetricsRegistry()
    registry.counter("c", op="x").inc(5)
    registry.gauge("g").set(1)
    registry.histogram("h").observe(2)
    assert len(registry) == 0
    assert registry.summary_rows() == []
    assert list(registry) == []


# ---- Hypothesis: percentile order statistics are monotone ----------------


@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_percentiles_monotone_p50_p95_p99(values):
    hist = MetricsRegistry().histogram("h")
    for v in values:
        hist.observe(v)
    p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
    assert p50 <= p95 <= p99
    assert min(values) <= p50
    assert p99 <= max(values)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=100,
    ),
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2,
             max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_p(values, percentiles):
    hist = MetricsRegistry().histogram("h")
    for v in values:
        hist.observe(v)
    ordered_p = sorted(percentiles)
    results = [hist.percentile(p) for p in ordered_p]
    assert all(a <= b for a, b in zip(results, results[1:]))


# ---- Percentile edges: empty, exact endpoints, infinite samples ----------


def test_percentile_empty_returns_none():
    hist = MetricsRegistry().histogram("h")
    assert hist.percentile(0) is None
    assert hist.percentile(50) is None
    assert hist.percentile(100) is None


def test_percentile_endpoints_are_exact_min_max():
    hist = MetricsRegistry().histogram("h")
    for v in (5.0, 1.0, 9.0, 3.0):
        hist.observe(v)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 9.0


def test_percentile_endpoints_never_nan_with_inf():
    import math

    hist = MetricsRegistry().histogram("h")
    hist.observe(1.0)
    hist.observe(float("inf"))
    # the naive lerp at p=100 evaluates inf - inf -> NaN
    assert hist.percentile(100) == float("inf")
    assert hist.percentile(0) == 1.0
    p50 = hist.percentile(50)
    assert p50 is not None and not math.isnan(p50)


def test_summary_rows_blank_cells_for_empty_histogram():
    registry = MetricsRegistry()
    registry.histogram("empty")
    (row,) = registry.summary_rows()
    assert row[3] == 0          # count
    assert row[4:] == ["", "", "", ""]  # mean/p50/p95/p99 render blank
