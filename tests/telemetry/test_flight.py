"""Tests for the crash-dump flight recorder."""

import json
import sys

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.flight import FLIGHT_SCHEMA_VERSION, FlightRecorder


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_ring_keeps_only_the_last_spans():
    tel = Telemetry()
    recorder = FlightRecorder(tel, capacity=3)
    for i in range(10):
        with tel.tracer.span(f"s{i}", category="test"):
            pass
    assert [s.name for s in recorder.spans] == ["s7", "s8", "s9"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(Telemetry(), capacity=0)


def test_dump_writes_header_spans_and_metrics(tmp_path):
    tel = Telemetry()
    recorder = FlightRecorder(tel, capacity=8)
    with tel.tracer.span("optimizer_step", category="optim", bucket=2):
        pass
    tel.metrics.counter("steps_total").inc(5)
    tel.metrics.histogram("loss").observe(1.5)
    path = tmp_path / "flight.jsonl"
    n = recorder.dump(str(path), reason="unit-test")
    lines = _lines(path)
    assert len(lines) == n
    header = lines[0]
    assert header["kind"] == "header"
    assert header["schema"] == FLIGHT_SCHEMA_VERSION
    assert header["reason"] == "unit-test"
    assert header["retained"] == 1
    spans = [l for l in lines if l["kind"] == "span"]
    assert spans[0]["name"] == "optimizer_step"
    assert spans[0]["attrs"] == {"bucket": 2}
    metrics = {l["name"]: l for l in lines if l["kind"] == "metric"}
    assert metrics["steps_total"]["value"] == 5
    assert metrics["loss"]["summary"]["count"] == 1


def test_dump_serializes_non_json_attrs(tmp_path):
    tel = Telemetry()
    recorder = FlightRecorder(tel)
    with tel.tracer.span("s", category="test", obj=object()):
        pass
    path = tmp_path / "flight.jsonl"
    recorder.dump(str(path))
    (span,) = [l for l in _lines(path) if l["kind"] == "span"]
    assert span["attrs"]["obj"].startswith("<object")


def test_excepthook_dumps_then_chains(tmp_path):
    tel = Telemetry()
    recorder = FlightRecorder(tel, capacity=4)
    with tel.tracer.span("last_thing", category="test"):
        pass
    path = tmp_path / "crash.jsonl"
    seen = []
    previous = sys.excepthook
    sys.excepthook = lambda *a: seen.append(a)
    try:
        recorder.install(str(path))
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            sys.excepthook(*sys.exc_info())
    finally:
        recorder.uninstall()
        sys.excepthook = previous
    assert len(seen) == 1  # the previous hook still ran
    lines = _lines(path)
    assert lines[0]["reason"] == "exception:RuntimeError"
    assert any(l.get("name") == "last_thing" for l in lines)


def test_install_twice_rejected(tmp_path):
    recorder = FlightRecorder(Telemetry())
    recorder.install(str(tmp_path / "a.jsonl"))
    try:
        with pytest.raises(RuntimeError):
            recorder.install(str(tmp_path / "b.jsonl"))
    finally:
        recorder.uninstall()


def test_uninstall_restores_excepthook(tmp_path):
    recorder = FlightRecorder(Telemetry())
    before = sys.excepthook
    recorder.install(str(tmp_path / "a.jsonl"))
    assert sys.excepthook is not before
    recorder.uninstall()
    assert sys.excepthook is before
    recorder.uninstall()  # idempotent
