"""End-to-end tests of telemetry wired through engines, trainers, comms."""

import numpy as np
import pytest

from repro.core.engine import SuperOffloadConfig, SuperOffloadEngine
from repro.numeric.transformer import TransformerParams
from repro.parallel.comm import SimProcessGroup
from repro.parallel.ulysses import UlyssesAttention
from repro.telemetry import Telemetry
from repro.training import DataParallelTrainer, InstabilityInjector, STVTrainer


def run_trainer(telemetry=None, iters=12):
    trainer = STVTrainer(
        batch=4,
        injector=InstabilityInjector(
            warmup_iters=8, spike_probability=0.6, spike_scale=80.0,
            overflow_probability=0.4, seed=0,
        ),
        seed=1,
        telemetry=telemetry,
    )
    return trainer, trainer.run(iters)


def test_engine_emits_phase_spans(tiny_model):
    telemetry = Telemetry()
    engine = SuperOffloadEngine(
        tiny_model, SuperOffloadConfig(clip_norm=8.0), telemetry=telemetry
    )
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 61, size=(4, 16))
    targets = rng.integers(0, 61, size=(4, 16))
    engine.train_step(ids, targets)
    names = {s.name for s in telemetry.tracer.spans}
    assert {"train_step", "fwd_bwd", "cast", "speculative_step",
            "validate"} <= names
    step = telemetry.tracer.spans_named("train_step")[0]
    assert step.attrs == {"iteration": 0}
    # phase spans nest inside the step span
    fwd = telemetry.tracer.spans_named("fwd_bwd")[0]
    assert fwd.depth == step.depth + 1
    assert step.start <= fwd.start and fwd.finish <= step.finish


def test_rollback_counter_matches_engine_count():
    telemetry = Telemetry()
    trainer, record = run_trainer(telemetry)
    assert record.rollback_iterations, "injector must provoke rollbacks"
    metrics = telemetry.metrics
    total = (
        metrics.counter("rollbacks_total", reason="overflow").value
        + metrics.counter("rollbacks_total", reason="clip").value
    )
    assert total == trainer.engine.rollback_count
    assert len(telemetry.tracer.spans_named("rollback")) == int(total)
    assert metrics.counter("train_iterations_total").value == 12
    assert metrics.histogram("train_loss").count == 12


def test_loss_scale_gauge_tracks_scaler():
    telemetry = Telemetry()
    trainer, _ = run_trainer(telemetry)
    gauge = telemetry.metrics.gauge("loss_scale")
    assert gauge.value == trainer.engine.loss_scale


def test_default_is_noop_and_records_nothing(tiny_model):
    engine = SuperOffloadEngine(tiny_model, SuperOffloadConfig(clip_norm=8.0))
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 61, size=(4, 16))
    targets = rng.integers(0, 61, size=(4, 16))
    engine.train_step(ids, targets)
    assert not engine.telemetry.enabled
    assert engine.telemetry.tracer.spans == ()
    assert len(engine.telemetry.metrics) == 0
    assert engine.telemetry.metrics.summary_rows() == []


def test_telemetry_does_not_perturb_numerics():
    _, silent = run_trainer(telemetry=None)
    _, traced = run_trainer(telemetry=Telemetry())
    assert silent.losses == traced.losses
    assert silent.rollback_iterations == traced.rollback_iterations


def test_collective_counters_count_payload_bytes():
    telemetry = Telemetry()
    group = SimProcessGroup(2, telemetry=telemetry)
    bufs = [np.ones(4, dtype=np.float32) for _ in range(2)]
    group.all_reduce(bufs)
    group.all_gather(bufs)
    group.reduce_scatter(bufs)
    metrics = telemetry.metrics
    for op in ("all_reduce", "all_gather", "reduce_scatter"):
        assert metrics.counter("collective_calls_total", op=op).value == 1
        assert metrics.counter("collective_bytes_total", op=op).value == 32
    group.broadcast(bufs[0])
    assert metrics.counter("collective_bytes_total", op="broadcast").value \
        == 32  # 16 bytes replicated to 2 ranks


def test_reduce_scatter_does_not_double_count_all_reduce():
    telemetry = Telemetry()
    group = SimProcessGroup(2, telemetry=telemetry)
    group.reduce_scatter([np.ones(4, dtype=np.float32) for _ in range(2)])
    assert telemetry.metrics.counter(
        "collective_calls_total", op="all_reduce"
    ).value == 0


def test_ulysses_counts_reshards(rng):
    telemetry = Telemetry()
    group = SimProcessGroup(2, telemetry=telemetry)
    attn = UlyssesAttention(4, group)
    h = 8
    qkv = [rng.standard_normal((1, 4, 3 * h)).astype(np.float32)
           for _ in range(2)]
    outputs, caches = attn.forward(qkv)
    attn.backward([o.copy() for o in outputs], caches)
    metrics = telemetry.metrics
    scatter = metrics.counter(
        "ulysses_reshards_total", direction="scatter_heads"
    ).value
    gather = metrics.counter(
        "ulysses_reshards_total", direction="gather_seq"
    ).value
    # forward: 3 scatter + 1 gather; backward: 1 scatter + 3 gather
    assert scatter == 4
    assert gather == 4
    assert metrics.counter(
        "collective_calls_total", op="all_to_all"
    ).value == 8


def test_dp_trainer_instrumented():
    telemetry = Telemetry()
    spec = TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                             n_heads=4)
    trainer = DataParallelTrainer(spec, world_size=2, clip_norm=1.0,
                                  telemetry=telemetry)
    trainer.train(3, batch=4)
    metrics = telemetry.metrics
    assert metrics.histogram("dp_train_loss").count == 3
    assert metrics.counter(
        "collective_calls_total", op="reduce_scatter"
    ).value == 3
    names = {s.name for s in telemetry.tracer.spans}
    assert {"train_step", "fwd_bwd", "zero_step", "shard_adam",
            "cast"} <= names
    steps = telemetry.tracer.spans_named("train_step")
    assert [s.attrs["iteration"] for s in steps] == [0, 1, 2]


def test_dp_trainer_numerics_unchanged_by_telemetry():
    spec = TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                             n_heads=4)
    silent = DataParallelTrainer(spec, world_size=2, clip_norm=1.0)
    traced = DataParallelTrainer(spec, world_size=2, clip_norm=1.0,
                                 telemetry=Telemetry())
    a = silent.train(3, batch=4)
    b = traced.train(3, batch=4)
    assert [r.loss for r in a] == [r.loss for r in b]


def test_synchronous_engine_spans(tiny_model):
    telemetry = Telemetry()
    engine = SuperOffloadEngine(
        tiny_model,
        SuperOffloadConfig(stv=False, clip_norm=8.0),
        telemetry=telemetry,
    )
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 61, size=(4, 16))
    targets = rng.integers(0, 61, size=(4, 16))
    engine.train_step(ids, targets)
    names = {s.name for s in telemetry.tracer.spans}
    assert {"train_step", "fwd_bwd", "validate", "optimizer_step",
            "cast"} <= names
    assert "speculative_step" not in names
