"""Tests for the JSONL and Chrome ``trace_event`` exporters."""

import json

import pytest

from repro.sim.trace import Interval, Trace
from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.export import (
    LIVE_PID,
    build_chrome_trace,
    chrome_events_from_sim_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from tests.telemetry.test_tracer import FakeClock

REQUIRED_KEYS = ("ph", "ts", "dur", "pid", "tid", "name")


def make_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("train_step", category="step", iteration=0):
        with tracer.span("fwd_bwd", category="compute"):
            pass
    return tracer


def make_sim_trace() -> Trace:
    trace = Trace()
    trace.record(Interval("gpu", "fwd", "compute", 0.0, 2.0))
    trace.record(Interval("cpu", "step", "optimizer", 2.0, 5.0))
    trace.record(Interval("h2d", "up", "transfer", 1.0, 1.5))
    return trace


def test_every_event_has_required_keys():
    document = build_chrome_trace(
        tracer=make_tracer(), sim_traces={"sim": make_sim_trace()}
    )
    assert document["traceEvents"]
    for event in document["traceEvents"]:
        for key in REQUIRED_KEYS:
            assert key in event, f"missing {key} in {event}"
    validate_chrome_trace(document)


def test_live_and_sim_on_separate_pids():
    document = build_chrome_trace(
        tracer=make_tracer(), sim_traces={"sim": make_sim_trace()}
    )
    pids = {e["pid"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert pids == {LIVE_PID, LIVE_PID + 1}


def test_sim_resources_map_to_named_tids():
    events = chrome_events_from_sim_trace(make_sim_trace(), pid=7)
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # resources sorted alphabetically -> stable tid assignment
    assert names == {0: "cpu", 1: "gpu", 2: "h2d"}
    gpu_events = [e for e in events if e["ph"] == "X" and e["tid"] == 1]
    assert [e["name"] for e in gpu_events] == ["fwd"]


def test_span_times_scaled_to_microseconds():
    document = build_chrome_trace(tracer=make_tracer())
    x = [e for e in document["traceEvents"] if e["ph"] == "X"]
    outer = next(e for e in x if e["name"] == "train_step")
    # FakeClock ticks 1 s per reading; outer spans readings 1..4
    assert outer["ts"] == pytest.approx(1e6)
    assert outer["dur"] == pytest.approx(3e6)


def test_roundtrip_through_file(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer=make_tracer(),
                       sim_traces={"sim": make_sim_trace()})
    loaded = json.loads(path.read_text())
    validate_chrome_trace(loaded)
    x_names = {e["name"] for e in loaded["traceEvents"] if e["ph"] == "X"}
    assert {"train_step", "fwd_bwd", "fwd", "step", "up"} <= x_names


def test_validate_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0, "dur": -1, "pid": 1,
                              "tid": 0, "name": "x"}]}
        )


def test_jsonl_schema(tmp_path):
    registry = MetricsRegistry()
    registry.counter("rollbacks_total", reason="clip").inc(2)
    registry.histogram("loss").observe(1.5)
    path = tmp_path / "events.jsonl"
    n = write_events_jsonl(path, make_tracer(), registry)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == n
    assert lines[0]["type"] == "meta" and lines[0]["schema"] == 1
    by_type = {}
    for line in lines[1:]:
        by_type.setdefault(line["type"], []).append(line)
    assert {"span", "counter", "histogram"} <= set(by_type)
    span = by_type["span"][0]
    assert {"name", "cat", "start_s", "dur_s", "thread", "depth",
            "attrs"} <= set(span)
    counter = by_type["counter"][0]
    assert counter["labels"] == {"reason": "clip"}
    assert counter["value"] == 2.0
    hist = by_type["histogram"][0]
    assert hist["count"] == 1 and hist["p50"] == 1.5


def test_jsonl_without_sources(tmp_path):
    path = tmp_path / "events.jsonl"
    assert write_events_jsonl(path) == 1  # just the meta header
