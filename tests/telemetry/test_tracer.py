"""Tests for the span tracer (nesting, threading, and the no-op default)."""

import threading

from repro.telemetry import NullTracer, Tracer
from repro.telemetry.tracer import _NULL_SPAN


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_span_records_name_category_and_attrs():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("fwd", category="compute", layer=3) as handle:
        handle.set_attr("tokens", 128)
    (span,) = tracer.spans
    assert span.name == "fwd"
    assert span.category == "compute"
    assert span.attrs == {"layer": 3, "tokens": 128}
    assert span.finish is not None and span.finish > span.start
    assert span.duration > 0


def test_times_are_relative_to_epoch():
    clock = FakeClock(step=1.0)
    tracer = Tracer(clock=clock)  # epoch consumes reading 0
    with tracer.span("a"):
        pass
    (span,) = tracer.spans
    assert span.start == 1.0
    assert span.finish == 2.0


def test_nesting_depth_tracked():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    spans = {s.name: s for s in tracer.spans}
    assert spans["outer"].depth == 0
    assert spans["inner"].depth == 1
    assert spans["inner2"].depth == 1
    # completion order: inner spans close before the outer one
    assert [s.name for s in tracer.spans] == ["inner", "inner2", "outer"]


def test_spans_survive_exceptions():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("risky"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (span,) = tracer.spans
    assert span.name == "risky"
    assert span.finish is not None


def test_spans_named_filter():
    tracer = Tracer(clock=FakeClock())
    for _ in range(3):
        with tracer.span("step"):
            pass
    with tracer.span("other"):
        pass
    assert len(tracer.spans_named("step")) == 3
    assert len(tracer.spans_named("other")) == 1


def test_clear_drops_spans():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.spans == ()


def test_threads_get_stable_distinct_indices():
    tracer = Tracer()
    barrier = threading.Barrier(4)

    def work():
        barrier.wait()
        for _ in range(50):
            with tracer.span("t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.spans) == 200
    by_thread = {s.thread for s in tracer.spans}
    assert len(by_thread) == 4
    # nesting depth is per-thread: everything here was top-level
    assert all(s.depth == 0 for s in tracer.spans)


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    with tracer.span("anything", category="x", a=1) as handle:
        handle.set_attr("b", 2)
    assert tracer.spans == ()
    assert not tracer.enabled


def test_null_tracer_reuses_one_handle():
    tracer = NullTracer()
    assert tracer.span("a") is tracer.span("b") is _NULL_SPAN


def test_close_hooks_fire_in_order():
    tracer = Tracer(clock=FakeClock())
    seen = []
    tracer.add_close_hook(lambda s: seen.append(("a", s.name)))
    tracer.add_close_hook(lambda s: seen.append(("b", s.name)))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    assert seen == [("a", "inner"), ("b", "inner"),
                    ("a", "outer"), ("b", "outer")]


def test_on_close_constructor_arg():
    seen = []
    tracer = Tracer(clock=FakeClock(), on_close=seen.append)
    with tracer.span("s"):
        pass
    assert [s.name for s in seen] == ["s"]


def test_null_tracer_accepts_close_hooks():
    tracer = NullTracer()
    tracer.add_close_hook(lambda s: (_ for _ in ()).throw(AssertionError))
    with tracer.span("s"):
        pass  # hook never fires
