"""Test package."""
