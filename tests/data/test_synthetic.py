"""Tests for the synthetic Pile-like corpus."""

import numpy as np
import pytest

from repro.data import SourceSpec, SyntheticPile, token_batches


def test_determinism():
    a = SyntheticPile(128, seed=5).sample_tokens(256)
    b = SyntheticPile(128, seed=5).sample_tokens(256)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = SyntheticPile(128, seed=5).sample_tokens(256)
    b = SyntheticPile(128, seed=6).sample_tokens(256)
    assert not np.array_equal(a, b)


def test_streams_disjoint():
    pile = SyntheticPile(128, seed=0)
    a = pile.sample_tokens(128, stream=0)
    b = pile.sample_tokens(128, stream=1)
    assert not np.array_equal(a, b)


def test_tokens_in_vocab():
    tokens = SyntheticPile(64, seed=1).sample_tokens(1000)
    assert tokens.min() >= 0 and tokens.max() < 64


def test_batches_shapes_and_shift():
    pile = SyntheticPile(100, seed=2)
    ids, targets = next(pile.batches(4, 16))
    assert ids.shape == (4, 16)
    assert targets.shape == (4, 16)
    # targets are next-token shifted
    np.testing.assert_array_equal(ids[:, 1:], targets[:, :-1])


def test_rank_streams_differ():
    pile = SyntheticPile(100, seed=2)
    ids0, _ = next(pile.batches(4, 16, rank=0))
    ids1, _ = next(pile.batches(4, 16, rank=1))
    assert not np.array_equal(ids0, ids1)


def test_markov_structure_is_learnable():
    """The corpus must carry next-token signal: the empirical bigram
    predictor beats the unigram baseline."""
    pile = SyntheticPile(
        32, sources=(SourceSpec("s", 1.0, 1.3, 0.8),), seed=3
    )
    tokens = pile.sample_tokens(50_000)
    pairs = {}
    for a, b in zip(tokens[:-1], tokens[1:]):
        pairs.setdefault(int(a), {}).setdefault(int(b), 0)
        pairs[int(a)][int(b)] += 1
    correct = sum(max(nxt.values()) for nxt in pairs.values())
    bigram_acc = correct / (len(tokens) - 1)
    unigram_acc = np.bincount(tokens).max() / len(tokens)
    assert bigram_acc > unigram_acc + 0.2


def test_zipf_marginal_is_skewed():
    pile = SyntheticPile(256, seed=4)
    tokens = pile.sample_tokens(30_000)
    counts = np.sort(np.bincount(tokens, minlength=256))[::-1]
    top10 = counts[:10].sum() / counts.sum()
    assert top10 > 0.3  # heavily skewed, unlike uniform (~0.04)


def test_validation():
    with pytest.raises(ValueError):
        SyntheticPile(2)
    with pytest.raises(ValueError):
        SourceSpec("x", 0.0, 1.2, 0.5)
    with pytest.raises(ValueError):
        SourceSpec("x", 1.0, 1.0, 0.5)
    with pytest.raises(ValueError):
        SourceSpec("x", 1.0, 1.2, 1.0)
    with pytest.raises(ValueError):
        SyntheticPile(64).sample_tokens(0)


def test_token_batches_helper():
    batches = token_batches(64, batch=2, seq=8, n_batches=3, seed=9)
    assert len(batches) == 3
    assert batches[0][0].shape == (2, 8)
    with pytest.raises(ValueError):
        token_batches(64, 2, 8, 0)
