"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig10", "table2", "fig13"):
        assert name in out


def test_every_artifact_registered():
    for artifact in ("table1", "fig4", "fig6", "fig7", "fig9", "fig10",
                     "fig11", "fig12", "fig13", "table2", "table3", "fig14",
                     "fig15", "timeline", "trace", "bench"):
        assert artifact in COMMANDS


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_table1_output(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "GH" in out and "330" in out


def test_fig6_output(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "450 GB/s" in out


def test_fig7_output(capsys):
    assert main(["fig7"]) == 0
    assert "GB/s" in capsys.readouterr().out


def test_table3_output(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "GraceAdam" in out and "0.080/0.082" in out


def test_fig10_quick(capsys):
    assert main(["fig10", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "superoffload" in out
    assert "OOM" in out  # DDP dies at 5B


def test_fig12_single_chip_count(capsys):
    assert main(["fig12", "--chips", "8"]) == 0
    out = capsys.readouterr().out
    assert "1024K" in out  # the million-token headline


def test_timeline_output(capsys):
    assert main(["timeline"]) == 0
    out = capsys.readouterr().out
    assert "ZeRO-Offload" in out and "SuperOffload" in out
    assert "|" in out and "#" in out


def test_trace_writes_artifacts(tmp_path, capsys):
    import json

    from repro.telemetry.export import validate_chrome_trace

    assert main(["trace", "--quick", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "telemetry metrics summary" in out
    assert "rollbacks_total" in out
    assert "loss_scale" in out

    document = json.loads((tmp_path / "trace.json").read_text())
    validate_chrome_trace(document)
    x_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    pids = {e["pid"] for e in x_events}
    assert len(pids) == 2  # live tracer + simulator timelines
    names = {e["name"] for e in x_events}
    assert {"train_step", "fwd_bwd", "speculative_step"} <= names

    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert records[0]["type"] == "meta"
    assert any(r["type"] == "span" for r in records)
    assert any(r["type"] == "counter" for r in records)


def test_bench_writes_valid_json(tmp_path, capsys):
    import json

    assert main(["bench", "--quick", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "bytes copied" in out

    document = json.loads((tmp_path / "BENCH_substrate.json").read_text())
    assert document["benchmark"] == "substrate_arena"
    for row in document["zero_step"]:
        assert row["speedup"] > 0
        assert row["dict_copy_ms"] > 0 and row["arena_ms"] > 0
    assert document["rollback"]
    steady = document["steady_state"]
    assert steady["arena_bytes_copied_per_step"] == 0.0
    assert steady["arena_bytes_aliased_per_step"] > 0



def test_profile_quick(tmp_path, capsys):
    import json

    assert main(["profile", "--quick", "--compare-sim", "--workers", "2",
                 "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "STV step phases" in out
    assert "overlap audit" in out
    assert "worker utilization" in out
    assert "memory high-water" in out
    assert "measured vs simulated" in out
    assert "profiler overhead" in out

    profile = json.loads((tmp_path / "PROFILE.json").read_text())
    assert profile["bitwise_identical"] is True
    assert 0.0 <= profile["overlap_efficiency"] <= 1.0
    assert profile["stv_phase_seconds"]["forward"] > 0
    assert profile["dp_phase_seconds"]["backward"] > 0
    assert profile["memory_highwater_bytes"]["workspace"] > 0
    assert profile["sim_comparison"]

    from repro.telemetry.export import validate_chrome_trace
    document = json.loads((tmp_path / "trace.json").read_text())
    validate_chrome_trace(document)

    flight = (tmp_path / "flight.jsonl").read_text().splitlines()
    assert json.loads(flight[0])["kind"] == "header"


def test_bench_warns_on_regression(capsys, monkeypatch):
    # Force a below-1.0x row through a stubbed bench result so the WARN
    # path is exercised deterministically.
    import repro.training as training

    def fake_bench(quick=False, workers=None, sections=None):
        return {
            "benchmark": "substrate_arena",
            "world_size": 2,
            "workers": 2,
            "zero_step": [
                {"elements": 65536, "dict_copy_ms": 1.0, "arena_ms": 2.0,
                 "speedup": 0.5},
                {"elements": 524288, "dict_copy_ms": 4.0, "arena_ms": 2.0,
                 "speedup": 2.0},
            ],
        }

    monkeypatch.setattr(training, "substrate_bench", fake_bench)
    assert main(["bench", "--quick", "--out", "/tmp"]) == 0
    out = capsys.readouterr().out
    assert "WARN: zero_step size 65536 speedup 0.50x < 1.0x" in out
    # only the regressing row warns, not the 2.0x one
    row_warns = [l for l in out.splitlines()
                 if l.startswith("WARN: zero_step")]
    assert len(row_warns) == 1
