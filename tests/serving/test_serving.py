"""Tests for the continuous-batching inference stack.

The contracts under test:

- the quantized engine's mixed prefill+decode step produces the same
  tokens whether sessions run solo or continuously batched together
  (iteration-level scheduling never changes what a session generates);
- the engine's incremental decode agrees with the model's full
  ``forward`` over the same prefix (fp32 engine, exact match of argmax);
- the scheduler gates admission on the KV budget and requeues FIFO;
- the streaming server delivers every token to concurrent client
  threads and surfaces loop errors instead of hanging;
- quantization shrinks the resident model >= 3x.
"""

import threading

import numpy as np
import pytest

from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.serving import (
    ContinuousBatchingScheduler,
    InferenceEngine,
    SessionRegistry,
    StreamingServer,
    aggregate_metrics,
)
from repro.serving.engine import generate

SPEC = TransformerParams(
    vocab=64, max_seq=48, hidden=32, n_layers=2, n_heads=4
)


def _model():
    return TinyTransformer(SPEC, seed=0)


def _prompts(rng, n, lo=3, hi=9):
    return [
        rng.integers(0, SPEC.vocab, size=rng.integers(lo, hi))
        for _ in range(n)
    ]


# -- engine correctness --------------------------------------------------


def test_decode_matches_full_forward_fp32():
    """Incremental decode == argmax of the model's dense forward."""
    rng = np.random.default_rng(0)
    model = _model()
    prompt = rng.integers(0, SPEC.vocab, size=6)
    with InferenceEngine(model, quantized=False) as engine:
        got = generate(engine, prompt, max_new_tokens=8)
    ids = list(prompt)
    want = []
    for _ in range(8):
        logits, _ = model.forward(np.asarray([ids]))
        tok = int(np.argmax(logits[0, -1]))
        want.append(tok)
        ids.append(tok)
    assert got == want


def test_quantized_engine_close_to_fp32():
    """int8 weights perturb logits, not (usually) the argmax path.

    Greedy decoding can diverge once a single argmax flips, so the
    check is the first decoded token plus the whole-model compression —
    exact token equality across quantization is not a contract.
    """
    rng = np.random.default_rng(1)
    prompt = rng.integers(0, SPEC.vocab, size=6)
    with InferenceEngine(_model(), quantized=False) as fp32:
        t_fp32 = generate(fp32, prompt, max_new_tokens=1)
    with InferenceEngine(_model(), quantized=True) as q8:
        t_q8 = generate(q8, prompt, max_new_tokens=1)
        assert q8.memory_ratio >= 3.0
    assert t_q8 == t_fp32


def test_batched_equals_solo_generation():
    """Continuous batching never changes a session's token stream."""
    rng = np.random.default_rng(2)
    prompts = _prompts(rng, 5)
    solo = []
    for p in prompts:
        with InferenceEngine(_model(), quantized=True) as engine:
            solo.append(generate(engine, p, max_new_tokens=6))
    with InferenceEngine(_model(), quantized=True) as engine:
        registry = SessionRegistry()
        sessions = [registry.create(p, 6) for p in prompts]
        sched = ContinuousBatchingScheduler(engine, registry, max_batch=3)
        sched.run_until_done()
    assert [s.generated for s in sessions] == solo


def test_engine_deterministic_across_runs():
    rng = np.random.default_rng(3)
    prompt = rng.integers(0, SPEC.vocab, size=5)
    runs = []
    for _ in range(2):
        with InferenceEngine(_model(), quantized=True) as engine:
            runs.append(generate(engine, prompt, max_new_tokens=10))
    assert runs[0] == runs[1]


def test_step_rejects_overlong_session():
    with InferenceEngine(_model(), quantized=False) as engine:
        ids = np.zeros(SPEC.max_seq + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            engine.step([(0, ids)])


# -- scheduler -----------------------------------------------------------


def test_scheduler_admission_respects_kv_budget():
    """A session that cannot fit waits; FIFO order is preserved."""
    rng = np.random.default_rng(4)
    model = _model()
    # Budget: each session needs pages_for(prompt + budget) pages.
    with InferenceEngine(
        model, quantized=True, page_tokens=4, max_pages=12
    ) as engine:
        registry = SessionRegistry()
        big = registry.create(rng.integers(0, SPEC.vocab, size=8), 8)
        small = registry.create(rng.integers(0, SPEC.vocab, size=4), 4)
        sched = ContinuousBatchingScheduler(engine, registry, max_batch=8)
        sched.step()
        # Footprint is pages_for(tokens) x n_layers: big reserves
        # 4 x 2 = 8 pages, small 2 x 2 = 4 — together they fill the
        # 12-page budget exactly, so both are admitted in step one.
        assert big.state != "waiting"
        sched.run_until_done()
        assert big.done and small.done
        assert len(big.generated) == 8 and len(small.generated) == 4
        # all pages recycled after retirement
        assert engine.cache.sessions() == ()


def test_scheduler_requeue_keeps_fifo():
    rng = np.random.default_rng(5)
    with InferenceEngine(
        _model(), quantized=True, page_tokens=4, max_pages=8
    ) as engine:
        registry = SessionRegistry()
        first = registry.create(rng.integers(0, SPEC.vocab, size=8), 8)
        second = registry.create(rng.integers(0, SPEC.vocab, size=2), 2)
        sched = ContinuousBatchingScheduler(engine, registry, max_batch=8)
        emissions = sched.step()
        # first fills the whole budget (16 tokens x 2 layers = 8
        # pages); second (1 page x 2 layers) is blocked behind it.
        assert [s.sid for s, _, _ in emissions] == [first.sid]
        assert second.state == "waiting"
        sched.run_until_done()
        assert second.done
        # second only started after first retired some pages
        assert second.token_times[0] > first.token_times[0]


def test_metrics_aggregation():
    rng = np.random.default_rng(6)
    with InferenceEngine(_model(), quantized=True) as engine:
        registry = SessionRegistry()
        for p in _prompts(rng, 3):
            registry.create(p, 4)
        ContinuousBatchingScheduler(
            engine, registry, max_batch=4
        ).run_until_done()
        m = aggregate_metrics(registry.sessions())
    assert m["sessions"] == 3
    assert m["tokens"] == 12
    assert m["tokens_per_sec"] > 0
    assert m["p95_token_ms"] >= m["p50_token_ms"] >= 0
    assert m["ttft_ms"] > 0


# -- streaming server ----------------------------------------------------


def test_server_streams_concurrent_clients():
    """8 client threads all receive their full token streams."""
    rng = np.random.default_rng(7)
    prompts = _prompts(rng, 8)
    solo = []
    for p in prompts:
        with InferenceEngine(_model(), quantized=True) as engine:
            solo.append(generate(engine, p, max_new_tokens=5))
    results = [None] * len(prompts)
    with StreamingServer(
        InferenceEngine(_model(), quantized=True), max_batch=4
    ) as server:
        def client(i):
            sid = server.submit(prompts[i], max_new_tokens=5)
            results[i] = list(server.stream(sid))

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(prompts))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert results == solo


def test_server_rejects_overlong_prompt():
    with StreamingServer(
        InferenceEngine(_model(), quantized=True)
    ) as server:
        with pytest.raises(ValueError):
            server.submit(np.zeros(SPEC.max_seq, dtype=np.int64), 4)


def test_server_clamps_generation_to_max_seq():
    with StreamingServer(
        InferenceEngine(_model(), quantized=True)
    ) as server:
        prompt = np.zeros(SPEC.max_seq - 2, dtype=np.int64)
        sid = server.submit(prompt, max_new_tokens=100)
        assert len(server.result(sid)) == 2


def test_server_propagates_engine_errors():
    """A crashed loop raises in the client instead of hanging it."""
    engine = InferenceEngine(_model(), quantized=True)

    def boom(items):
        raise RuntimeError("kaboom")

    engine.step = boom
    server = StreamingServer(engine, max_batch=2)
    server.start()
    try:
        sid = server.submit(np.array([1, 2, 3]), max_new_tokens=4)
        with pytest.raises(RuntimeError):
            list(server.stream(sid))
    finally:
        server.close(drain=False)
