"""Tests for the Fig. 14 numeric training run (loss curve + rollbacks)."""

import numpy as np
import pytest

from repro.core.engine import SuperOffloadConfig
from repro.training import InstabilityInjector, STVTrainer


@pytest.fixture(scope="module")
def record():
    trainer = STVTrainer(
        batch=4,
        injector=InstabilityInjector(
            warmup_iters=30, spike_probability=0.5, spike_scale=100.0,
            overflow_probability=0.2, seed=0,
        ),
        seed=1,
    )
    return trainer.run(120)


class TestFig14Dynamics:
    def test_loss_decreases(self, record):
        first = np.mean(record.losses[:10])
        last = np.mean(record.losses[-10:])
        assert last < first - 0.1

    def test_rollbacks_concentrated_in_warmup(self, record):
        """Fig. 14: frequent rollbacks before stabilization, rare after."""
        early = record.rollback_rate(0, 30)
        late = record.rollback_rate(30)
        assert early > 0.15
        assert late < early / 2

    def test_both_rollback_scenarios_exercised(self, record):
        assert record.clip_iterations, "no clipping rollbacks occurred"
        assert record.overflow_iterations, "no overflow skips occurred"

    def test_event_indices_within_range(self, record):
        for i in record.rollback_iterations:
            assert 0 <= i < record.n_iterations


class TestTrainerBehaviour:
    def test_clean_run_has_no_rollbacks(self):
        trainer = STVTrainer(batch=4, injector=None, seed=2,
                             config=SuperOffloadConfig(clip_norm=100.0))
        record = trainer.run(20)
        assert not record.rollback_iterations

    def test_deterministic_given_seed(self):
        def losses():
            t = STVTrainer(
                batch=4, seed=3,
                injector=InstabilityInjector(warmup_iters=10, seed=4),
            )
            return t.run(15).losses

        assert losses() == losses()

    def test_stv_and_ste_runs_identical(self):
        """Fig. 14's premise: STV preserves the training trajectory exactly
        even under injected instability."""
        def run(stv):
            trainer = STVTrainer(
                batch=4, seed=5,
                config=SuperOffloadConfig(stv=stv, clip_norm=0.9),
                injector=InstabilityInjector(
                    warmup_iters=15, spike_probability=0.6, seed=6
                ),
            )
            record = trainer.run(40)
            return record, trainer

        rec_stv, t_stv = run(True)
        rec_ste, t_ste = run(False)
        assert rec_stv.losses == rec_ste.losses
        for k in t_stv.model.params:
            np.testing.assert_array_equal(
                t_stv.model.params[k], t_ste.model.params[k]
            )
        # ... but only STV actually rolled back (STE never speculates)
        assert rec_stv.rollback_iterations
        assert not rec_ste.rollback_iterations

    def test_rollback_rate_bounds(self, record):
        assert record.rollback_rate(0, 0) == 0.0
        assert 0 <= record.rollback_rate() <= 1

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            STVTrainer(batch=2).run(0)
