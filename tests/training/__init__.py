"""Test package."""
