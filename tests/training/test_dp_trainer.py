"""Tests for numeric data-parallel training (§4.7)."""

import numpy as np
import pytest

from repro.numeric.transformer import TransformerParams
from repro.optim.adam import AdamConfig
from repro.training.dp_trainer import DataParallelTrainer


@pytest.fixture
def spec():
    return TransformerParams(vocab=67, max_seq=12, hidden=16, n_layers=2,
                             n_heads=4)


def batches(spec, n, batch=8, seed=11):
    from repro.data import SyntheticPile

    pile = SyntheticPile(spec.vocab, seed=seed)
    gen = pile.batches(batch, spec.max_seq)
    return [next(gen) for _ in range(n)]


class TestDPEquivalence:
    @pytest.mark.parametrize("world", [2, 4])
    def test_matches_single_rank_training(self, spec, world):
        data = batches(spec, 6)
        single = DataParallelTrainer(spec, 1, adam=AdamConfig(lr=5e-3), seed=3)
        multi = DataParallelTrainer(spec, world, adam=AdamConfig(lr=5e-3),
                                    seed=3)
        for ids, tg in data:
            r1 = single.train_step(ids, tg)
            rn = multi.train_step(ids, tg)
            assert r1.loss == pytest.approx(rn.loss, abs=1e-5)
        for k in single.model.params:
            np.testing.assert_allclose(
                single.model.params[k], multi.model.params[k], atol=1e-5
            )

    def test_clipping_consistent_across_worlds(self, spec):
        data = batches(spec, 5)
        single = DataParallelTrainer(spec, 1, adam=AdamConfig(lr=5e-3),
                                     clip_norm=0.5, seed=3)
        multi = DataParallelTrainer(spec, 4, adam=AdamConfig(lr=5e-3),
                                    clip_norm=0.5, seed=3)
        clip_single = [single.train_step(*b).clipped for b in data]
        clip_multi = [multi.train_step(*b).clipped for b in data]
        assert clip_single == clip_multi
        assert any(clip_single)  # threshold tight enough to trigger
        for k in single.model.params:
            np.testing.assert_allclose(
                single.model.params[k], multi.model.params[k], atol=1e-5
            )


class TestDPBehaviour:
    def test_training_reduces_loss(self, spec):
        trainer = DataParallelTrainer(spec, 2, adam=AdamConfig(lr=5e-3),
                                      seed=0)
        reports = trainer.train(30, batch=8, seed=4)
        assert np.mean([r.loss for r in reports[-5:]]) < np.mean(
            [r.loss for r in reports[:5]]
        )

    def test_batch_must_divide(self, spec):
        trainer = DataParallelTrainer(spec, 4)
        ids = np.zeros((6, spec.max_seq), dtype=np.int64)
        with pytest.raises(ValueError):
            trainer.train_step(ids, ids)

    def test_iteration_counter(self, spec):
        trainer = DataParallelTrainer(spec, 2)
        trainer.train(3, batch=4)
        assert trainer.iteration == 3

    def test_invalid_world(self, spec):
        with pytest.raises(ValueError):
            DataParallelTrainer(spec, 0)

    def test_fp16_copy_tracks_master(self, spec):
        trainer = DataParallelTrainer(spec, 2, adam=AdamConfig(lr=5e-3))
        trainer.train(2, batch=4)
        for k, master in trainer.model.params.items():
            drift = np.abs(
                master - trainer._fp16[k].astype(np.float32)
            ).max()
            assert drift <= np.abs(master).max() * 2**-10 + 1e-6
