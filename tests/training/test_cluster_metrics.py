"""Tests for cluster construction and throughput metrics."""

import pytest

from repro.hardware.registry import HOPPER_H100
from repro.models.config import MODEL_CONFIG_TABLE
from repro.training import gh200_cluster, mfu, tflops


def test_single_superchip_cluster():
    cluster = gh200_cluster(1)
    assert cluster.world_size == 1
    # single-chip testbed carries the 480 GB host memory (§5.1)
    assert cluster.node.chip.cpu.mem_capacity == int(480e9)


def test_nvl2_pairs():
    cluster = gh200_cluster(8)
    assert cluster.world_size == 8
    assert cluster.n_nodes == 4
    assert cluster.node.n_superchips == 2
    assert cluster.node.chip.cpu.mem_capacity == int(240e9)


def test_odd_counts_rejected():
    with pytest.raises(ValueError):
        gh200_cluster(3)
    with pytest.raises(ValueError):
        gh200_cluster(0)


def test_tflops_accounting():
    cfg = MODEL_CONFIG_TABLE[1]
    value = tflops(cfg, tokens_per_gpu=8192, seconds=1.0)
    assert value > 0
    assert tflops(cfg, 8192, 2.0) == pytest.approx(value / 2)
    with pytest.raises(ValueError):
        tflops(cfg, 8192, 0.0)


def test_mfu_against_peak():
    assert mfu(990.0, HOPPER_H100) == pytest.approx(1.0)
    assert mfu(495.0, HOPPER_H100) == pytest.approx(0.5)
