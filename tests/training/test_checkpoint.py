"""Tests for zero-stall async checkpointing: slot ping-pong, manifest
atomicity (including a crash mid-manifest), restore fidelity, and the
SIGKILL crash-consistency property the module docstring promises."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.tensors.errors import TensorValidationError
from repro.training.checkpoint import (
    MANIFEST,
    AsyncCheckpointer,
    read_manifest,
    run_checkpointed,
)

PLANES = {"master": 256, "m": 256, "v": 256}


def _snapshot(rng):
    return {k: rng.standard_normal(n).astype(np.float32)
            for k, n in PLANES.items()}


class TestAsyncCheckpointer:
    def test_save_restore_round_trip(self, tmp_path, rng):
        snap = _snapshot(rng)
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(3, snap, meta={"loss": 1.5}).wait()
            out = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            info = ck.restore(out)
        assert info.step == 3
        assert info.meta == {"loss": 1.5}
        for k in PLANES:
            assert np.array_equal(out[k], snap[k])

    def test_slots_ping_pong_and_latest_wins(self, tmp_path, rng):
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            first = _snapshot(rng)
            second = _snapshot(rng)
            ck.save(1, first)
            ck.save(2, second)
            ck.wait()
            info = ck.latest()
            assert info.step == 2
            assert info.slot == 1  # second save: slots follow save order
            out = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            ck.restore(out)
            assert np.array_equal(out["master"], second["master"])
            assert ck.saves_total == 2

    def test_same_parity_steps_still_alternate_slots(self, tmp_path, rng):
        """Regression: an even checkpoint cadence (steps 0, 2, 4...) must
        not aim every save at the slot the committed manifest points at —
        slots key on the save sequence, not step parity."""
        snaps = [_snapshot(rng) for _ in range(3)]
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            slots = []
            for i, snap in enumerate(snaps):
                ck.save(2 * i, snap).wait()
                slots.append(ck.latest().slot)
            assert slots == [0, 1, 0]
            out = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            info = ck.restore(out)
        assert info.step == 4
        for k in PLANES:
            assert np.array_equal(out[k], snaps[-1][k])

    def test_resumed_save_avoids_committed_slot(self, tmp_path, rng):
        """A fresh checkpointer over an existing manifest must write its
        first save to the *other* slot, whatever the step numbers say."""
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(0, _snapshot(rng)).wait()
            committed = ck.latest().slot
        snap = _snapshot(rng)
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(2, snap).wait()
            info = ck.latest()
            assert info.slot == 1 - committed
            out = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            ck.restore(out)
        for k in PLANES:
            assert np.array_equal(out[k], snap[k])

    def test_restore_into_noncontiguous_arrays(self, tmp_path, rng):
        """reshape(-1) on a non-contiguous destination is a copy; restore
        must still land the data in the caller's arrays."""
        snap = _snapshot(rng)
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(0, snap).wait()
            out = {k: np.full((n, 2), -1.0, dtype=np.float32)[:, 0]
                   for k, n in PLANES.items()}
            assert not any(o.flags["C_CONTIGUOUS"] for o in out.values())
            ck.restore(out)
        for k in PLANES:
            assert np.array_equal(out[k], snap[k])

    def test_restore_size_mismatch_rejected(self, tmp_path, rng):
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(0, _snapshot(rng)).wait()
            bad = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            bad["m"] = np.empty(7, dtype=np.float32)
            with pytest.raises(TensorValidationError):
                ck.restore(bad)

    def test_capture_frees_live_arrays_immediately(self, tmp_path, rng):
        """The zero-stall contract: mutating the live planes after
        save() returns must not corrupt the snapshot."""
        snap = _snapshot(rng)
        want = {k: v.copy() for k, v in snap.items()}
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            t = ck.save(0, snap)
            for v in snap.values():
                v[...] = -1.0  # trample while the write may be in flight
            t.wait()
            out = {k: np.empty(n, dtype=np.float32)
                   for k, n in PLANES.items()}
            ck.restore(out)
        for k in PLANES:
            assert np.array_equal(out[k], want[k])

    def test_resume_keeps_recorded_chunk_bytes(self, tmp_path, rng):
        with AsyncCheckpointer(tmp_path, PLANES, chunk_bytes=8192) as ck:
            ck.save(0, _snapshot(rng)).wait()
        with AsyncCheckpointer(tmp_path, PLANES, chunk_bytes=65536) as ck:
            assert ck.chunk_bytes == 8192  # the manifest's layout wins

    def test_schema_mismatch_rejected(self, tmp_path, rng):
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(0, _snapshot(rng)).wait()
        with pytest.raises(TensorValidationError, match="schema"):
            AsyncCheckpointer(tmp_path, {"master": 128})

    def test_bad_saves_rejected(self, tmp_path, rng):
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            with pytest.raises(ValueError):
                ck.save(-1, _snapshot(rng))
            with pytest.raises(TensorValidationError):
                ck.save(0, {"master": np.zeros(256, dtype=np.float32)})
            wrong = _snapshot(rng)
            wrong["m"] = np.zeros(7, dtype=np.float32)
            with pytest.raises(TensorValidationError):
                ck.save(0, wrong)
            with pytest.raises(FileNotFoundError):
                ck.restore({k: np.empty(n, dtype=np.float32)
                            for k, n in PLANES.items()})


class TestManifestAtomicity:
    def test_missing_manifest_is_none(self, tmp_path):
        assert read_manifest(tmp_path) is None

    def test_leftover_tmp_is_ignored(self, tmp_path, rng):
        """A crash mid-manifest leaves ``manifest.json.tmp``; readers
        must only ever consult the committed name."""
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            ck.save(5, _snapshot(rng)).wait()
        (tmp_path / (MANIFEST + ".tmp")).write_text('{"torn":')
        info = read_manifest(tmp_path)
        assert info is not None and info.step == 5
        # and a new checkpointer opens cleanly over the debris
        with AsyncCheckpointer(tmp_path, PLANES) as ck:
            assert ck.latest().step == 5

    def test_unrecognised_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST).write_text(json.dumps({"checkpoint": "other"}))
        with pytest.raises(TensorValidationError):
            read_manifest(tmp_path)


class TestRunCheckpointed:
    def _final(self, path):
        with np.load(path) as doc:
            return doc["master"].copy(), int(doc["iteration"])

    @pytest.mark.parametrize("offload", ["none", "disk"])
    def test_interrupt_resume_bit_identical(self, tmp_path, offload):
        """The headline property: stop after half the steps, resume from
        the manifest, and land bitwise on the uninterrupted run."""
        kw = {}
        if offload == "disk":
            kw["spill_dir"] = str(tmp_path / "ref-spill")
        run_checkpointed(tmp_path / "ref-ckpt", 4, batch=4,
                         offload=offload, out=str(tmp_path / "ref.npz"),
                         **kw)
        kw2 = {}
        if offload == "disk":
            kw2["spill_dir"] = str(tmp_path / "spill-a")
        run_checkpointed(tmp_path / "ckpt", 2, batch=4, offload=offload,
                         **kw2)
        kw3 = {}
        if offload == "disk":
            kw3["spill_dir"] = str(tmp_path / "spill-b")
        run_checkpointed(tmp_path / "ckpt", 4, batch=4, offload=offload,
                         out=str(tmp_path / "resumed.npz"), **kw3)
        ref, ref_it = self._final(tmp_path / "ref.npz")
        got, got_it = self._final(tmp_path / "resumed.npz")
        assert got_it == ref_it == 4
        assert np.array_equal(ref, got)

    def test_even_cadence_interrupt_resume_bit_identical(self, tmp_path):
        """Regression for the step-parity slot bug: with ``every=2`` all
        checkpoints land on even steps, so slots must alternate by save
        order or every save would overwrite the committed slot."""
        run_checkpointed(tmp_path / "ref-ckpt", 6, batch=4, every=2,
                         out=str(tmp_path / "ref.npz"))
        run_checkpointed(tmp_path / "ckpt", 4, batch=4, every=2)
        run_checkpointed(tmp_path / "ckpt", 6, batch=4, every=2,
                         out=str(tmp_path / "resumed.npz"))
        ref, ref_it = self._final(tmp_path / "ref.npz")
        got, got_it = self._final(tmp_path / "resumed.npz")
        assert got_it == ref_it == 6
        assert np.array_equal(ref, got)

    def test_resume_skips_completed_iterations(self, tmp_path):
        run_checkpointed(tmp_path / "ckpt", 3, batch=4)
        trainer = run_checkpointed(tmp_path / "ckpt", 3, batch=4)
        assert trainer.iteration == 3


def _ckpt_cmd(ckpt_dir, iters, out=None, every=1):
    cmd = [
        sys.executable, "-m", "repro.training.checkpoint",
        "--dir", str(ckpt_dir), "--iters", str(iters), "--batch", "4",
        "--every", str(every),
    ]
    if out is not None:
        cmd += ["--out", str(out)]
    return cmd


def _env():
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    env["REPRO_TUNE"] = "0"
    return env


class TestCrashConsistency:
    """SIGKILL a checkpointing subprocess at random points — including
    the window where a manifest commit may be mid-flight — and assert
    the resumed run finishes bit-identical to an uninterrupted one."""

    @pytest.mark.slow
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        iters = 4
        ref_out = tmp_path / "ref.npz"
        proc = subprocess.run(
            _ckpt_cmd(tmp_path / "ref", iters, ref_out),
            env=_env(), capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        with np.load(ref_out) as doc:
            ref = doc["master"].copy()

        delays = np.random.default_rng(int(os.environ.get(
            "REPRO_CRASH_SEED", "0"
        ))).uniform(0.05, 2.0, size=3)
        for i, delay in enumerate(delays):
            every = 1 + (i % 2)  # cover even cadences (same-parity steps)
            ckpt = tmp_path / f"run{i}"
            child = subprocess.Popen(
                _ckpt_cmd(ckpt, iters, every=every), env=_env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            time.sleep(float(delay))
            child.kill()  # SIGKILL: no cleanup, no atexit, no flush
            child.wait(timeout=60)
            if child.returncode == 0:
                continue  # finished before the kill landed
            assert child.returncode == -signal.SIGKILL
            out = tmp_path / f"out{i}.npz"
            proc = subprocess.run(
                _ckpt_cmd(ckpt, iters, out, every=every),
                env=_env(), capture_output=True, text=True, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            with np.load(out) as doc:
                got = doc["master"].copy()
                assert int(doc["iteration"]) == iters
            assert np.array_equal(ref, got), (
                f"kill after {delay:.2f}s diverged from the clean run"
            )

    @pytest.mark.slow
    def test_kill_mid_manifest_resumes_from_previous(self, tmp_path):
        """Simulated torn commit: run to completion, then hand-craft the
        crash artifact (a partial .tmp beside an older manifest) and
        prove the resume path trusts only the committed manifest."""
        ckpt = tmp_path / "ckpt"
        proc = subprocess.run(
            _ckpt_cmd(ckpt, 2), env=_env(),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        committed = json.loads((ckpt / MANIFEST).read_text())
        # a later save tore halfway through writing the new manifest
        (ckpt / (MANIFEST + ".tmp")).write_text(
            json.dumps(committed)[: len(json.dumps(committed)) // 2]
        )
        out = tmp_path / "out.npz"
        proc = subprocess.run(
            _ckpt_cmd(ckpt, 4, out), env=_env(),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        ref_out = tmp_path / "ref.npz"
        proc = subprocess.run(
            _ckpt_cmd(tmp_path / "ref", 4, ref_out), env=_env(),
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        with np.load(out) as a, np.load(ref_out) as b:
            assert np.array_equal(a["master"], b["master"])
