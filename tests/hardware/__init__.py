"""Test package."""
