"""Tests for the bandwidth model against the paper's Fig. 7 observations."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import BandwidthModel, LinkSpec
from repro.hardware.registry import NVLINK_C2C, c2c_bandwidth_model

MiB = 1024**2


@pytest.fixture
def c2c() -> BandwidthModel:
    return c2c_bandwidth_model()


def test_small_tensor_bandwidth_drops_to_50gbps(c2c):
    """§5.2: C2C bandwidth 'can drop to as low as 50 GB/s' for small tensors."""
    eff = c2c.effective_bandwidth(1 * MiB) / 1e9
    assert 30 <= eff <= 80


def test_saturation_near_64mb(c2c):
    """Fig. 7: bandwidth saturates around 64 MB."""
    sat = c2c.saturation_size(0.9)
    assert 32 * MiB <= sat <= 128 * MiB


def test_bandwidth_monotone_in_size(c2c):
    sizes = [2**k * MiB for k in range(0, 11)]
    series = [c2c.effective_bandwidth(s) for s in sizes]
    assert all(b2 > b1 for b1, b2 in zip(series, series[1:]))


def test_large_transfers_approach_peak(c2c):
    eff = c2c.effective_bandwidth(1024 * MiB)
    assert eff > 0.95 * NVLINK_C2C.peak_bandwidth


def test_pageable_slower_than_pinned(c2c):
    pinned = c2c.transfer_time(256 * MiB, pinned=True)
    pageable = c2c.transfer_time(256 * MiB, pinned=False)
    assert pageable > 1.5 * pinned


def test_zero_bytes_is_free(c2c):
    assert c2c.transfer_time(0) == 0.0


def test_negative_bytes_rejected(c2c):
    with pytest.raises(ValueError):
        c2c.transfer_time(-1)
    with pytest.raises(ValueError):
        c2c.effective_bandwidth(0)


def test_sweep_produces_series(c2c):
    rows = c2c.sweep([MiB, 64 * MiB])
    assert len(rows) == 2
    assert rows[0][1] < rows[1][1]


@given(st.integers(min_value=1, max_value=2**34))
def test_effective_bandwidth_never_exceeds_peak(nbytes):
    model = c2c_bandwidth_model()
    assert model.effective_bandwidth(nbytes) < model.link.peak_bandwidth


def test_link_validation():
    with pytest.raises(ValueError):
        LinkSpec("bad", 0)
    with pytest.raises(ValueError):
        LinkSpec("bad", 1e9, pageable_fraction=0.0)


def test_bandwidth_table_registration():
    from repro.hardware import LinkBandwidthTable

    table = LinkBandwidthTable()
    table.register(NVLINK_C2C)
    assert "nvlink-c2c" in table
    assert table["nvlink-c2c"].link is NVLINK_C2C
    with pytest.raises(KeyError, match="unknown link"):
        table["pcie9"]
