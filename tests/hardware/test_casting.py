"""Tests for the casting cost model against the paper's Fig. 9."""

import pytest

from repro.hardware.casting import CastingModel
from repro.hardware.registry import GRACE_CPU, HOPPER_H100, c2c_bandwidth_model

MiB = 1024**2


@pytest.fixture
def model() -> CastingModel:
    return CastingModel(HOPPER_H100, GRACE_CPU, c2c_bandwidth_model())


def test_cpu_path_roughly_2x_slower_in_paper_range(model):
    """Fig. 9: cast_cpu<->move_fp16 takes ~2x the time of
    cast_gpu<->move_fp32 for 256 MB - 2 GB tensors."""
    for size in (256 * MiB, 512 * MiB, 1024 * MiB, 2048 * MiB):
        gpu = model.cast_gpu_move_fp32(size).total
        cpu = model.cast_cpu_move_fp16(size).total
        assert 1.6 <= cpu / gpu <= 3.0, f"ratio off at {size}"


def test_preferred_path_is_gpu_fp32_on_superchip(model):
    for size in (16 * MiB, 256 * MiB, 2048 * MiB):
        assert model.preferred_path(size).path == "cast_gpu_move_fp32"


def test_fp16_path_moves_half_the_bytes_but_loses(model):
    """The §4.5 point: minimum communication volume is not minimum time."""
    size = 512 * MiB
    gpu = model.cast_gpu_move_fp32(size)
    cpu = model.cast_cpu_move_fp16(size)
    # The fp16 payload is half...
    assert cpu.move_time < 2 * gpu.move_time
    # ...yet the end-to-end path is slower.
    assert cpu.total > gpu.total


def test_costs_scale_linearly_at_large_sizes(model):
    small = model.cast_gpu_move_fp32(256 * MiB).total
    large = model.cast_gpu_move_fp32(1024 * MiB).total
    assert 3.5 <= large / small <= 4.5


def test_sweep_rows_contain_ratio(model):
    rows = model.sweep([64 * MiB, 256 * MiB])
    assert len(rows) == 2
    for row in rows:
        assert row["cpu_over_gpu_ratio"] > 1.0
        assert row["cast_cpu_move_fp16_ms"] > row["cast_gpu_move_fp32_ms"]


def test_total_is_cast_plus_move(model):
    cost = model.cast_gpu_move_fp32(64 * MiB)
    assert cost.total == pytest.approx(cost.cast_time + cost.move_time)
