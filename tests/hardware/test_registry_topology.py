"""Tests for hardware registry (Table 1) and node/cluster topology."""

import pytest

from repro.hardware import (
    DGX2,
    DGX_A100,
    GH200,
    NODE_COMPARISON_TABLE,
    NumaBinding,
    SuperchipNode,
    ClusterTopology,
    node_comparison_rows,
)
from repro.hardware.registry import SLINGSHOT_11, gh200_superchip


class TestTable1:
    def test_gh200_row_matches_paper(self):
        row = NODE_COMPARISON_TABLE["GH"]
        assert row["cpu_bw_gbps"] == 500
        assert row["cpu_gpu_bw_gbps"] == 900
        assert row["cpu_cores"] == 72
        assert row["gpu_tflops"] == 990.0

    def test_flops_ratio_derivation(self):
        rows = {r["arch"]: r for r in node_comparison_rows()}
        assert rows["GH"]["gpu_cpu_flops_ratio"] == pytest.approx(330.0)
        assert rows["DGX-2"]["gpu_cpu_flops_ratio"] == pytest.approx(60.39, abs=0.01)
        assert rows["DGX-A100"]["gpu_cpu_flops_ratio"] == pytest.approx(135.65, abs=0.01)

    def test_superchip_flops_ratio_property(self):
        assert GH200.flops_ratio == pytest.approx(330.0)
        assert DGX2.flops_ratio < DGX_A100.flops_ratio < GH200.flops_ratio

    def test_nvl2_variant_has_less_host_memory(self):
        assert gh200_superchip(nvl2=True).cpu.mem_capacity < (
            gh200_superchip().cpu.mem_capacity
        )


class TestNumaBinding:
    def test_affine_binding_colocates_all_ranks(self):
        numa = NumaBinding(4, 72)
        numa.bind_affine()
        assert all(numa.is_colocated(r) for r in range(4))
        assert numa.core_range_of(2) == (144, 216)

    def test_random_binding_misplaces_ranks(self):
        numa = NumaBinding(4, 72)
        numa.bind_random(seed=0)
        assert not all(numa.is_colocated(r) for r in range(4))

    def test_unbound_rank_raises(self):
        numa = NumaBinding(2, 72)
        with pytest.raises(KeyError):
            numa.numa_node_of(0)


class TestTopology:
    def test_node_pools_per_superchip(self):
        node = SuperchipNode(GH200, 4)
        assert len(node.gpu_pools) == 4
        assert len(node.cpu_pools) == 4
        assert node.gpu_pools[0].capacity == GH200.gpu.mem_capacity

    def test_misbound_rank_uses_slower_link(self):
        node = SuperchipNode(GH200, 4)
        node.numa.bind_random(seed=1)
        misbound = [r for r in range(4) if not node.numa.is_colocated(r)]
        assert misbound
        r = misbound[0]
        slow = node.host_link_for(r)
        assert slow.link.peak_bandwidth < node.c2c.link.peak_bandwidth

    def test_colocated_rank_uses_c2c(self):
        node = SuperchipNode(GH200, 2)
        assert node.host_link_for(0) is node.c2c

    def test_cluster_world_size_and_links(self):
        node = SuperchipNode(GH200, 2)
        cluster = ClusterTopology(node, 4, SLINGSHOT_11)
        assert cluster.world_size == 8
        # same node -> fast link; cross node -> network
        assert cluster.link_between(0, 1) is node.gpu_link
        assert cluster.link_between(0, 2) is cluster.network

    def test_single_node_bottleneck_is_intranode(self):
        node = SuperchipNode(GH200, 4)
        cluster = ClusterTopology(node, 1, SLINGSHOT_11)
        assert cluster.slowest_link_bandwidth() == (
            node.gpu_link.link.peak_bandwidth
        )

    def test_multi_node_bottleneck_is_network(self):
        node = SuperchipNode(GH200, 2)
        cluster = ClusterTopology(node, 2, SLINGSHOT_11)
        assert cluster.slowest_link_bandwidth() == SLINGSHOT_11.peak_bandwidth

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            SuperchipNode(GH200, 0)
        with pytest.raises(ValueError):
            ClusterTopology(SuperchipNode(GH200, 1), 0, SLINGSHOT_11)

    def test_reset_memory_restores_capacity(self):
        node = SuperchipNode(GH200, 1)
        node.gpu_pools[0].allocate(1024)
        node.reset_memory()
        assert node.gpu_pools[0].used == node.gpu_pools[0].reserved
