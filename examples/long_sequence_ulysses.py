"""Long-sequence training with SuperOffload-Ulysses (§4.7, §5.3, Fig. 12).

Two halves:

1. **Numeric**: run Ulysses sequence-parallel attention across simulated
   ranks and verify it reproduces single-device attention exactly — the
   correctness basis for the sequence-parallel results.
2. **Performance**: for the paper's 13B/30B models on 4 and 8 superchips,
   find the longest trainable sequence and its MFU for vanilla Ulysses vs
   SuperOffload-Ulysses, regenerating the Fig. 12 story (8x longer
   sequences; 1M tokens at ~55% MFU for 13B on 8 chips).

Run:  python examples/long_sequence_ulysses.py
"""

from __future__ import annotations

import numpy as np

from repro.models.config import MODEL_CONFIG_TABLE
from repro.numeric.attention import MultiHeadAttention
from repro.parallel import SimProcessGroup, UlyssesAttention
from repro.systems import RunSetting, build_all_systems, max_sequence_tokens
from repro.training.cluster import gh200_cluster


def numeric_equivalence_demo() -> None:
    print("=== Ulysses numeric equivalence ===")
    rng = np.random.default_rng(0)
    batch, seq, hidden, heads, world = 2, 16, 32, 8, 4
    qkv = rng.standard_normal((batch, seq, 3 * hidden)).astype(np.float32)

    reference, _ = MultiHeadAttention(heads).forward(qkv)

    group = SimProcessGroup(world)
    ulysses = UlyssesAttention(heads, group)
    shards = [qkv[:, r * seq // world:(r + 1) * seq // world]
              for r in range(world)]
    outputs, _ = ulysses.forward(shards)
    reassembled = np.concatenate(outputs, axis=1)

    err = float(np.abs(reassembled - reference).max())
    print(f"{world}-rank sequence-parallel attention vs single device: "
          f"max |diff| = {err:.2e}")
    assert err < 1e-5


def fig12_sweep() -> None:
    print("\n=== Fig. 12: max sequence length and MFU ===")
    systems = build_all_systems()
    header = (f"{'chips':>5}  {'model':>6}  {'system':24s}  "
              f"{'max seq':>10}  {'MFU':>6}")
    print(header)
    print("-" * len(header))
    for n_chips in (4, 8):
        cluster = gh200_cluster(n_chips)
        for billions in (13, 30):
            config = MODEL_CONFIG_TABLE[billions]
            proto = RunSetting(config, cluster, global_batch=1,
                               seq=n_chips * 1024)
            for name in ("ulysses", "superoffload_ulysses"):
                system = systems[name]
                max_seq = max_sequence_tokens(system, proto)
                if max_seq:
                    est = system.best_estimate(
                        RunSetting(config, cluster, global_batch=1,
                                   seq=max_seq)
                    )
                    mfu = f"{est.mfu:5.1%}"
                    seq_label = f"{max_seq // 1024}K"
                else:
                    mfu, seq_label = "  OOM", "-"
                print(f"{n_chips:>5}  {billions:>5}B  "
                      f"{system.display_name:24s}  {seq_label:>10}  {mfu:>6}")
    print(
        "\npaper headline: SuperOffload-Ulysses trains the 13B model at "
        "1M tokens on 8 superchips at ~55% MFU — 8x longer than Ulysses."
    )


def main() -> None:
    numeric_equivalence_demo()
    fig12_sweep()


if __name__ == "__main__":
    main()
