"""Resilient pre-training: bf16, background validation, checkpoint/resume.

A production-flavoured tour of the engine features beyond the basic loop:

* **bf16 training** — GH200's native format; no loss scaling, immune to
  the fp16 overflows that trigger STV's skip path.
* **background validation** — the §4.4 validator running on its own
  worker, exactly as the paper's multiprocessing design.
* **instability + rollback** — injected warm-up gradient spikes exercise
  the in-place rollback machinery on a real run.
* **checkpoint / resume** — interrupt training mid-run and resume
  bit-exactly.

Run:  python examples/resilient_pretraining.py
"""

from __future__ import annotations

import numpy as np

import repro.core as superoffload
from repro.core import SuperOffloadConfig
from repro.core.stv import STVEngine
from repro.data import SyntheticPile
from repro.numeric import TinyTransformer, TransformerParams
from repro.optim import AdamConfig, GraceAdam
from repro.training import InstabilityInjector, STVTrainer


def stv_under_instability() -> None:
    print("=== STV under injected warm-up instability (fp16) ===")
    trainer = STVTrainer(
        batch=8,
        injector=InstabilityInjector(
            warmup_iters=40, spike_probability=0.4, spike_scale=80.0,
            overflow_probability=0.15, seed=0,
        ),
        seed=1,
    )
    record = trainer.run(120)
    print(f"loss {record.losses[0]:.3f} -> {record.losses[-1]:.3f} over "
          f"{record.n_iterations} iterations")
    print(f"rollbacks: {len(record.rollback_iterations)} total "
          f"({len(record.overflow_iterations)} overflow skips, "
          f"{len(record.clip_iterations)} clip re-executions)")
    print(f"rollback rate: warm-up {record.rollback_rate(0, 40):.1%}, "
          f"after {record.rollback_rate(40):.2%} "
          "(the Fig. 14 pattern)\n")


def bf16_vs_fp16_overflow() -> None:
    print("=== bf16 shrugs off the spike that overflows fp16 ===")
    spec = TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                             n_heads=4)
    pile = SyntheticPile(61, seed=3)
    ids, targets = next(pile.batches(4, 16))
    for precision in ("fp16", "bf16"):
        engine = superoffload.init(
            TinyTransformer(spec, seed=3),
            SuperOffloadConfig(precision=precision, clip_norm=None),
        )
        engine._inner.grad_injection = 1e6  # violent gradient spike
        report = engine.train_step(ids, targets)
        engine._inner.grad_injection = 1.0
        outcome = "overflow -> iteration skipped" if report.overflow else (
            "absorbed (no overflow)"
        )
        print(f"  {precision}: loss scale {report.loss_scale:>8.0f}, "
              f"spike {outcome}")
    print()


def background_validation() -> None:
    print("=== validation on the background worker (§4.4) ===")
    spec = TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                             n_heads=4)
    model = TinyTransformer(spec, seed=7)
    engine = STVEngine(
        model, GraceAdam(model.params, AdamConfig(lr=3e-3)),
        clip_norm=2.0, background_validation=True,
    )
    pile = SyntheticPile(61, seed=5)
    batches = pile.batches(4, 16)
    for _ in range(20):
        engine.train_step(*next(batches))
    engine._validator.close()
    print(f"  20 iterations validated off-thread; "
          f"{engine.rollback_count} rollbacks; final loss "
          f"{engine.mp.drift():.2e} drift between master and low-precision copy\n")


def checkpoint_and_resume() -> None:
    print("=== checkpoint / resume is bit-exact ===")
    spec = TransformerParams(vocab=61, max_seq=16, hidden=24, n_layers=2,
                             n_heads=4)
    pile = SyntheticPile(61, seed=9)
    batches = [next(pile.batches(4, 16, start_step=i)) for i in range(20)]

    straight = superoffload.init(TinyTransformer(spec, seed=2))
    for ids, tg in batches:
        straight.train_step(ids, tg)

    interrupted = superoffload.init(TinyTransformer(spec, seed=2))
    for ids, tg in batches[:10]:
        interrupted.train_step(ids, tg)
    checkpoint = interrupted.state_dict()   # "the job dies here"

    resumed = superoffload.init(TinyTransformer(spec, seed=42))
    resumed.load_state_dict(checkpoint)
    for ids, tg in batches[10:]:
        resumed.train_step(ids, tg)

    worst = max(
        float(np.abs(straight.model.params[k] - resumed.model.params[k]).max())
        for k in straight.model.params
    )
    print(f"  resumed-vs-uninterrupted max |param diff|: {worst:.1e} "
          f"(iteration {resumed.iteration} == {straight.iteration})")


def main() -> None:
    stv_under_instability()
    bf16_vs_fp16_overflow()
    background_validation()
    checkpoint_and_resume()


if __name__ == "__main__":
    main()
