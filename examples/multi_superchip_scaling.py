"""Multi-superchip scaling with ZeRO-style data parallelism (§4.7, §5.2,
§5.4).

Three parts:

1. **Numeric**: ZeRO-sharded Adam across simulated ranks reproduces the
   unsharded update exactly (the §4.7 partition-before-offload invariant).
2. **Throughput** (Fig. 11): per-GPU TFLOPS for Megatron / ZeRO-2 / ZeRO-3 /
   ZeRO-Offload / SuperOffload on 4 and 16 superchips.
3. **Model scale** (Fig. 13): the largest trainable model per system.

Run:  python examples/multi_superchip_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.optim import AdamConfig, GraceAdam
from repro.parallel import ZeroShardedAdam
from repro.training import max_model_table, throughput_sweep


def numeric_zero_demo() -> None:
    print("=== ZeRO sharding numeric equivalence ===")
    rng = np.random.default_rng(0)
    params = {"w": rng.standard_normal(1000).astype(np.float32),
              "b": rng.standard_normal(17).astype(np.float32)}
    world = 4

    reference = GraceAdam({k: v.copy() for k, v in params.items()},
                          AdamConfig(lr=1e-2))
    sharded = ZeroShardedAdam({k: v.copy() for k, v in params.items()},
                              world_size=world, config=AdamConfig(lr=1e-2))
    for _ in range(5):
        per_rank = [
            {k: rng.standard_normal(v.shape).astype(np.float32)
             for k, v in params.items()}
            for _ in range(world)
        ]
        total = {k: sum(g[k] for g in per_rank) for k in params}
        reference.step(
            {k: (v / np.float32(world)).astype(np.float32)
             for k, v in total.items()}
        )
        sharded.step(per_rank)
    err = max(float(np.abs(reference.params[k] - sharded.params[k]).max())
              for k in params)
    print(f"{world}-rank ZeRO-sharded Adam vs unsharded after 5 steps: "
          f"max |diff| = {err:.2e}")
    print(f"optimizer state per rank: "
          f"{sharded.optimizer_state_bytes_per_rank():,} bytes "
          f"(1/{world} of the unsharded footprint)\n")


SYSTEMS = ["megatron", "zero2", "zero3", "zero_offload", "superoffload"]


def fig11_throughput() -> None:
    print("=== Fig. 11: multi-superchip throughput (per-GPU TFLOPS) ===")
    for n_chips, batch, sizes in ((4, 16, [5, 10, 20, 50]),
                                  (16, 128, [20, 50, 80, 200])):
        rows = throughput_sweep(SYSTEMS, sizes, n_superchips=n_chips,
                                global_batch=batch)
        print(f"\n{n_chips} superchips, global batch {batch}:")
        print(f"{'model':>7} " + "".join(f"{s:>14}" for s in SYSTEMS))
        table = {}
        for r in rows:
            table.setdefault(r["model_billions"], {})[r["system"]] = r["tflops"]
        for size in sizes:
            cells = "".join(
                f"{table[size][s]:>14.1f}" if table[size][s] is not None
                else f"{'OOM':>14}"
                for s in SYSTEMS
            )
            print(f"{size:>6}B {cells}")


def fig13_model_scale() -> None:
    print("\n=== Fig. 13: largest trainable model (billions) ===")
    rows = max_model_table(SYSTEMS + ["ddp"], [1, 4, 16])
    table = {}
    for r in rows:
        table.setdefault(r["system"], {})[r["n_superchips"]] = (
            r["max_model_billions"]
        )
    print(f"{'system':>14} {'1 chip':>8} {'4 chips':>8} {'16 chips':>9}")
    for system, row in table.items():
        print(f"{system:>14} {row[1]:>8g} {row[4]:>8g} {row[16]:>9g}")
    print(
        "\npaper headlines: SuperOffload trains 25B on one superchip "
        "(7x DDP), 50B on four, and 200B on sixteen (57x DDP, 10x "
        "ZeRO-Offload)."
    )


def main() -> None:
    numeric_zero_demo()
    fig11_throughput()
    fig13_model_scale()


if __name__ == "__main__":
    main()
