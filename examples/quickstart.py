"""Quickstart: train a real (small) GPT with SuperOffload in a few lines.

This is the paper's Fig. 1 usage pattern on the numeric substrate: build a
model, call ``superoffload.init``, and loop.  The engine handles mixed
precision, bucketized speculative optimizer steps (STV, §4.4), validation,
and exact rollback behind the single ``train_step`` call.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro.core as superoffload
from repro.core import SuperOffloadConfig
from repro.data import SyntheticPile
from repro.numeric import TinyTransformer, TransformerParams


def main() -> None:
    spec = TransformerParams(
        vocab=256, max_seq=32, hidden=64, n_layers=2, n_heads=4
    )
    model = TinyTransformer(spec, seed=0)

    # --- the Fig. 1 API: one init call, then a plain training loop --------
    engine = superoffload.init(
        model,
        SuperOffloadConfig(clip_norm=8.0, n_buckets=4),
    )

    pile = SyntheticPile(vocab=spec.vocab, seed=0)
    batches = pile.batches(batch=8, seq=spec.max_seq)

    print(f"training a {model.param_count():,}-parameter GPT "
          f"({spec.n_layers} layers x {spec.hidden} hidden) on the "
          "synthetic Pile\n")
    for step in range(200):
        ids, targets = next(batches)
        report = engine.train_step(ids, targets)
        if step % 20 == 0:
            print(
                f"iter {report.iteration:4d}  loss {report.loss:6.3f}  "
                f"grad-norm {report.grad_norm:6.2f}  "
                f"loss-scale {report.loss_scale:8.0f}"
                + ("  [rolled back]" if report.rolled_back else "")
            )

    losses = engine.losses()
    print(f"\nfirst-10 mean loss: {sum(losses[:10]) / 10:.3f}")
    print(f"last-10  mean loss: {sum(losses[-10:]) / 10:.3f}")
    print(f"STV rollbacks: {engine.rollback_count} "
          f"(iterations {engine.rollback_iterations() or 'none'})")


if __name__ == "__main__":
    main()
