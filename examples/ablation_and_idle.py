"""Ablation study and GPU-idle analysis (Table 2, Figs. 4 & 15).

Walks SuperOffload's optimizations in the paper's cumulative order —
GraceAdam, superchip-aware casting, speculation-then-validation, and
bucketization repartitioning — reporting simulated throughput after each,
then contrasts the GPU idle profile of ZeRO-Offload (Fig. 4) with
SuperOffload (Fig. 15) on the same workload.

Run:  python examples/ablation_and_idle.py
"""

from __future__ import annotations

from repro.models.config import MODEL_CONFIG_TABLE
from repro.systems import RunSetting, SuperOffloadSystem, ZeROOffload
from repro.training import ablation_table, gh200_cluster

PAPER_TABLE2 = [116.20, 128.23, 144.49, 209.36, 238.92]


def table2() -> None:
    print("=== Table 2: optimization breakdown (5B model, batch 8) ===")
    rows = ablation_table()
    print(f"{'configuration':>15} {'TFLOPS (ours)':>14} {'TFLOPS (paper)':>15}"
          f" {'gain':>7}")
    prev = None
    for row, paper in zip(rows, PAPER_TABLE2):
        gain = f"+{(row['tflops'] / prev - 1) * 100:.1f}%" if prev else "-"
        print(f"{row['row']:>15} {row['tflops']:>14.1f} {paper:>15.1f} "
              f"{gain:>7}")
        prev = row["tflops"]
    total = rows[-1]["tflops"] / rows[0]["tflops"]
    print(f"\ncumulative speedup: {total:.2f}x (paper: 2.06x); "
          "STV is the dominant contribution in both.")


def idle_profile() -> None:
    print("\n=== Figs. 4 & 15: GPU idle time on the same workload ===")
    setting = RunSetting(
        MODEL_CONFIG_TABLE[5], gh200_cluster(1), global_batch=8
    )
    for system in (ZeROOffload(), SuperOffloadSystem()):
        est = system.best_estimate(setting)
        window = est.steady_window
        gpu_idle = est.gpu_idle_fraction()
        cpu_busy = est.trace.utilization("cpu", window)
        print(f"\n{system.display_name}: iter {est.iter_time * 1e3:.0f} ms, "
              f"{est.tflops_per_gpu:.0f} TFLOPS")
        print(f"  GPU idle: {gpu_idle:6.1%}   CPU busy: {cpu_busy:6.1%}")
        by_cat = est.trace.time_by_category("gpu")
        total = sum(by_cat.values())
        for category, seconds in sorted(by_cat.items()):
            print(f"  gpu time in {category:10s}: {seconds / total:6.1%}")
    print(
        "\npaper: ZeRO-Offload leaves the Hopper GPU idle 40-50% per "
        "iteration (Fig. 4); SuperOffload eliminates the idle periods "
        "(Fig. 15)."
    )


def main() -> None:
    table2()
    idle_profile()


if __name__ == "__main__":
    main()
