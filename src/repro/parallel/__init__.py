"""Numeric parallelism substrates: simulated process groups, data-parallel
gradient reduction, ZeRO-style sharding (§4.7), and Ulysses sequence
parallelism with all-to-all attention exchange (§4.7).

These run *for real* on numpy across simulated ranks inside one process;
the tests assert they reproduce the single-rank computation exactly.
"""

from repro.parallel.comm import SimProcessGroup
from repro.parallel.dp import average_gradients, shard_batch
from repro.parallel.pipeline import (
    PipelinedTransformer,
    microbatched_loss_and_grads,
    partition_layers,
    split_microbatches,
)
from repro.parallel.plan import ParallelPlan, PlanGroups, PlanModel
from repro.parallel.tensor import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelAttention,
    TensorParallelMLP,
    TensorParallelTransformer,
)
from repro.parallel.zero import ZeroConfig, ZeroShardedAdam, partition_params
from repro.parallel.ulysses import UlyssesAttention, all_to_all_4d

__all__ = [
    "SimProcessGroup",
    "average_gradients",
    "shard_batch",
    "PipelinedTransformer",
    "microbatched_loss_and_grads",
    "partition_layers",
    "split_microbatches",
    "ParallelPlan",
    "PlanGroups",
    "PlanModel",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelAttention",
    "TensorParallelMLP",
    "TensorParallelTransformer",
    "ZeroConfig",
    "ZeroShardedAdam",
    "partition_params",
    "UlyssesAttention",
    "all_to_all_4d",
]
