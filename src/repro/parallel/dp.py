"""Data-parallel helpers: batch sharding and gradient averaging."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.parallel.comm import SimProcessGroup

Grads = Dict[str, np.ndarray]


def shard_batch(
    ids: np.ndarray, targets: np.ndarray, world_size: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a global batch across ranks along the batch dimension."""
    if ids.shape[0] % world_size:
        raise ValueError(
            f"global batch {ids.shape[0]} not divisible by world {world_size}"
        )
    per = ids.shape[0] // world_size
    return [
        (ids[r * per : (r + 1) * per], targets[r * per : (r + 1) * per])
        for r in range(world_size)
    ]


def average_gradients(
    per_rank_grads: Sequence[Grads], group: SimProcessGroup
) -> Grads:
    """All-reduce-average gradients across data-parallel replicas.

    Each rank computed gradients of the *mean* loss over its shard; with
    equal shards the global gradient is the plain average.
    """
    if len(per_rank_grads) != group.world_size:
        raise ValueError("one gradient dict per rank required")
    names = list(per_rank_grads[0])
    for grads in per_rank_grads[1:]:
        if list(grads) != names:
            raise ValueError("gradient keys differ across ranks")
    averaged: Grads = {}
    for name in names:
        stacked = group.all_reduce([g[name] for g in per_rank_grads])[0]
        averaged[name] = (stacked / group.world_size).astype(np.float32)
    return averaged
