"""The unified parallel plan: TP x PP x DP x SP in one object.

A :class:`ParallelPlan` names how many ways each axis shards —

* ``tp``: Megatron-style tensor parallelism (:mod:`repro.parallel.tensor`),
* ``pp``: 1F1B pipeline stages (:mod:`repro.parallel.pipeline`),
* ``dp``: data-parallel replicas (:mod:`repro.parallel.dp` + ZeRO),
* ``sp``: Ulysses sequence parallelism (:mod:`repro.parallel.ulysses`),

— validates the divisibility every axis needs against a concrete
:class:`~repro.numeric.transformer.TransformerParams`, builds the nested
:class:`~repro.parallel.comm.SimProcessGroup` communicators, and maps
global ranks to per-axis coordinates (tp fastest, then sp, pp, dp — the
Megatron group-nesting order, so a TP group is a contiguous rank block).

The same plan drives both worlds: the substrate executes it for real via
:class:`PlanModel` (which the DP/STV trainers route their
forward/backward through), and the simulator prices it via
:class:`repro.systems.pipeline_tp.PipelinedTP` — one plan, one
vocabulary, cross-checked bubble fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.numeric.transformer import Params, TinyTransformer, TransformerParams
from repro.parallel.comm import SimProcessGroup
from repro.parallel.pipeline import PipelinedTransformer
from repro.parallel.tensor import TensorParallelTransformer
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class ParallelPlan:
    """How the world splits across the four parallelism axes.

    Attributes:
        tp: tensor-parallel degree (shards hidden/ffn/vocab widths and
            attention heads).
        pp: pipeline stages (shards layers; 1F1B schedule).
        dp: data-parallel replicas (shards the global batch).
        sp: Ulysses sequence-parallel degree (shards the sequence inside
            attention; divides each TP rank's head subset).
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    sp: int = 1

    def __post_init__(self) -> None:
        for axis, value in (
            ("tp", self.tp), ("pp", self.pp), ("dp", self.dp),
            ("sp", self.sp),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"{axis} degree must be an int")
            if value < 1:
                raise ValueError(f"{axis} degree must be >= 1, got {value}")

    @property
    def world_size(self) -> int:
        """Total ranks the plan occupies."""
        return self.tp * self.pp * self.dp * self.sp

    def describe(self) -> str:
        """Compact label, e.g. ``"tp2.pp2.dp1.sp1"``."""
        return f"tp{self.tp}.pp{self.pp}.dp{self.dp}.sp{self.sp}"

    # -- rank geometry ------------------------------------------------------

    def coords(self, rank: int) -> Tuple[int, int, int, int]:
        """``(dp, pp, sp, tp)`` coordinates of a global rank.

        TP varies fastest (contiguous blocks — the highest-traffic axis
        maps to the tightest interconnect), then SP, then PP, then DP.
        """
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world size {self.world_size}"
            )
        tp_i = rank % self.tp
        rest = rank // self.tp
        sp_i = rest % self.sp
        rest //= self.sp
        pp_i = rest % self.pp
        dp_i = rest // self.pp
        return dp_i, pp_i, sp_i, tp_i

    def rank_of(self, dp_i: int, pp_i: int, sp_i: int, tp_i: int) -> int:
        """Inverse of :meth:`coords`."""
        for axis, i, n in (
            ("dp", dp_i, self.dp), ("pp", pp_i, self.pp),
            ("sp", sp_i, self.sp), ("tp", tp_i, self.tp),
        ):
            if not 0 <= i < n:
                raise ValueError(f"{axis} index {i} out of range (degree {n})")
        return ((dp_i * self.pp + pp_i) * self.sp + sp_i) * self.tp + tp_i

    # -- validation ---------------------------------------------------------

    def validate_model(
        self,
        spec: TransformerParams,
        global_batch: Optional[int] = None,
        n_microbatches: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        """Raise ``ValueError`` with a precise reason if the plan cannot
        execute this model shape (the divisibility contract)."""
        def need(total: int, degree: int, what: str, axis: str) -> None:
            if total % degree:
                raise ValueError(
                    f"plan {self.describe()}: {what} ({total}) not "
                    f"divisible by {axis} degree {degree}"
                )

        if self.tp > 1:
            need(spec.hidden, self.tp, "hidden width", "tp")
            need(spec.n_heads, self.tp, "attention heads", "tp")
            need(spec.hidden * spec.ffn_mult, self.tp, "ffn width", "tp")
            need(spec.vocab, self.tp, "vocabulary", "tp")
        if self.sp > 1:
            need(spec.n_heads // self.tp, self.sp,
                 "per-TP-rank attention heads", "sp")
            if seq is not None:
                need(seq, self.sp, "sequence length", "sp")
        if self.pp > spec.n_layers:
            raise ValueError(
                f"plan {self.describe()}: {spec.n_layers} layers cannot "
                f"fill {self.pp} pipeline stages"
            )
        if global_batch is not None:
            need(global_batch, self.dp, "global batch", "dp")
            if n_microbatches is not None:
                need(global_batch // self.dp, n_microbatches,
                     "per-replica batch", "pp microbatch count")

    # -- group construction -------------------------------------------------

    def build_groups(
        self, telemetry: Optional[Telemetry] = None
    ) -> "PlanGroups":
        """Instantiate the per-axis communicators (shared telemetry)."""
        t = telemetry if telemetry is not None else NULL_TELEMETRY
        return PlanGroups(
            plan=self,
            tp_group=SimProcessGroup(self.tp, telemetry=t),
            pp_group=SimProcessGroup(self.pp, telemetry=t),
            dp_group=SimProcessGroup(self.dp, telemetry=t),
            sp_group=SimProcessGroup(self.sp, telemetry=t),
        )

    # -- enumeration (the bench grid) ----------------------------------------

    @staticmethod
    def enumerate(
        world_size: int,
        spec: Optional[TransformerParams] = None,
        include_sp: bool = False,
    ) -> List["ParallelPlan"]:
        """Every factorization ``tp*pp*dp(*sp) == world_size``.

        With ``spec``, plans the model shape cannot execute are filtered
        out (:meth:`validate_model`).  SP factors are included only on
        request — the bench sweeps TPxPPxDP by default.
        """
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        plans: List[ParallelPlan] = []
        for tp in _divisors(world_size):
            for pp in _divisors(world_size // tp):
                rest = world_size // (tp * pp)
                sps = _divisors(rest) if include_sp else (1,)
                for sp in sps:
                    plan = ParallelPlan(
                        tp=tp, pp=pp, dp=rest // sp, sp=sp
                    )
                    if spec is not None:
                        try:
                            plan.validate_model(spec)
                        except ValueError:
                            continue
                    plans.append(plan)
        return plans


def _divisors(n: int) -> Tuple[int, ...]:
    return tuple(d for d in range(1, n + 1) if n % d == 0)


@dataclass
class PlanGroups:
    """The instantiated communicators of one plan."""

    plan: ParallelPlan
    tp_group: SimProcessGroup
    pp_group: SimProcessGroup
    dp_group: SimProcessGroup
    sp_group: SimProcessGroup


class PlanModel:
    """A plan-routed drop-in for ``TinyTransformer.loss_and_grads``.

    Wraps an unsharded model and executes its step according to the
    plan's model-parallel axes: through
    :class:`~repro.parallel.pipeline.PipelinedTransformer` when
    ``pp > 1`` (with TP inside each stage when also ``tp > 1``), through
    :class:`~repro.parallel.tensor.TensorParallelTransformer` when only
    ``tp > 1`` (optionally SP-composed), and straight through the model
    when neither shards.  The DP axis is *not* executed here — the
    data-parallel trainers own batch sharding and gradient reduction;
    they route each replica's forward/backward through this wrapper.

    Supports the ``params=`` override the mixed-precision engines use by
    rebuilding the sharded executors against the override (sharding is
    slicing, so this is exact), and attribute access falls through to the
    wrapped model so engine plumbing (``params``, ``spec``, arenas) keeps
    working.

    Args:
        model: the unsharded reference model.
        plan: the parallel plan (``dp`` is ignored here by design).
        groups: pre-built communicators (defaults to fresh ones sharing
            the model's telemetry).
        n_microbatches: 1F1B microbatch count when ``pp > 1`` (defaults
            to the ``pp.microbatches`` tunable).
        backend: attention core for the sharded paths.
    """

    def __init__(
        self,
        model: TinyTransformer,
        plan: ParallelPlan,
        groups: Optional[PlanGroups] = None,
        n_microbatches: Optional[int] = None,
        backend: str = "dense",
    ):
        plan.validate_model(model.spec)
        if plan.pp > 1 and model.workspace is not None:
            raise ValueError(
                "pipeline parallelism cannot run over a workspace-backed "
                "model (in-flight microbatches would alias buffers)"
            )
        self._model = model
        self.plan = plan
        self.groups = (
            groups if groups is not None
            else plan.build_groups(model.telemetry)
        )
        self.n_microbatches = n_microbatches
        self._backend = backend
        self._executor = self._build_executor(model)
        self._last_executor = self._executor

    def _build_executor(self, model: TinyTransformer):
        plan, groups = self.plan, self.groups
        if plan.pp > 1:
            return PipelinedTransformer(
                model, groups.pp_group,
                tp_group=groups.tp_group if plan.tp > 1 else None,
                backend=self._backend,
            )
        if plan.tp > 1:
            return TensorParallelTransformer(
                model, groups.tp_group,
                sp_group=groups.sp_group if plan.sp > 1 else None,
                backend=self._backend,
            )
        return None

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def loss_and_grads(
        self,
        ids: np.ndarray,
        targets: np.ndarray,
        params: Optional[Params] = None,
        loss_scale: float = 1.0,
    ) -> Tuple[float, Params]:
        """The plan-routed step; same signature/contract as the model's.

        Gradients come back keyed exactly like the unsharded model's, so
        optimizers, ZeRO sharding, and clipping consume them unchanged.
        """
        plan = self.plan
        if plan.tp == 1 and plan.pp == 1:
            return self._model.loss_and_grads(
                ids, targets, params=params, loss_scale=loss_scale
            )
        model = self._model
        executor = self._executor
        swapped = False
        if params is not None and params is not model.params:
            # The sharded executors slice weights at construction; rebuild
            # them over the override (exact — sharding is pure slicing).
            original = model.params
            model.params = params  # type: ignore[assignment]
            swapped = True
            executor = self._build_executor(model)
        self._last_executor = executor
        try:
            if plan.pp > 1:
                return executor.loss_and_grads(
                    ids, targets,
                    n_microbatches=self.n_microbatches,
                    loss_scale=loss_scale,
                )
            return executor.loss_and_grads(
                ids, targets, loss_scale=loss_scale
            )
        finally:
            if swapped:
                model.params = original  # type: ignore[assignment]

    def measured_bubble_fraction(self) -> float:
        """Forwarded from the pipelined executor (``pp > 1`` only)."""
        if self.plan.pp <= 1:
            raise RuntimeError(
                f"plan {self.plan.describe()} has no pipeline axis"
            )
        # The params-override path runs a rebuilt executor; the measured
        # durations live on whichever executor stepped last.
        return self._last_executor.measured_bubble_fraction()
