"""Megatron-style tensor parallelism over :class:`SimProcessGroup`.

The two primitives (Megatron-LM §3) and their compositions:

* :class:`ColumnParallelLinear` — the weight shards along the *output*
  dimension; every rank sees the full input and produces a column slice
  of the output.  The forward optionally all-gathers the slices back to
  the full activation; the backward's input gradient is a partial sum
  all-reduced across ranks.
* :class:`RowParallelLinear` — the weight shards along the *input*
  dimension; every rank sees an input slice (usually the ungathered
  output of a preceding column-parallel layer) and produces a *partial*
  full-width output, summed by an all-reduce.
* :class:`TensorParallelMLP` — column-parallel fc1, per-shard GELU,
  row-parallel fc2: one all-reduce per pass, the canonical Megatron MLP.
* :class:`TensorParallelAttention` — heads partition across the TP
  group (the qkv projection is column-parallel *by head*, the output
  projection row-parallel).  Each rank's head subset can additionally be
  sequence-parallel via :class:`~repro.parallel.ulysses.UlyssesAttention`
  over an orthogonal SP group — the TPxSP composition.
* :class:`TensorParallelTransformer` — a full
  :class:`~repro.numeric.transformer.TinyTransformer` step with every
  block TP-sharded (LayerNorms and embeddings replicated, the LM head
  column-parallel over the vocabulary), returning full-model gradients
  keyed exactly like the unsharded model.

Numerics contract (tested by ``tests/parallel/test_tensor.py``): the
sharded paths are *tolerance*-identical to the unsharded reference, not
bitwise.  Two genuine reduction-order differences are documented here:
the row-parallel (and column-backward) partial sums run rank-by-rank
where the unsharded GEMM accumulates over the full K dimension in one
sweep, and BLAS itself selects different kernel blocking for the sharded
operand shapes (an ``x @ W[:, :n/2]`` is *not* guaranteed bit-equal to
the corresponding slice of ``x @ W`` — observed on OpenBLAS at specific
shapes).  What *is* exact: sharding and gathering are pure slicing and
concatenation, elementwise ops (GELU, residuals, LayerNorm affine)
commute with column slicing bit-for-bit, and every TP run is
deterministic for a fixed plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.numeric.attention import MultiHeadAttention
from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
)
from repro.numeric.transformer import TinyTransformer
from repro.parallel.comm import SimProcessGroup
from repro.parallel.ulysses import UlyssesAttention
from repro.tune import registry as tune_registry
from repro.tune import runtime as tune_runtime

Params = Dict[str, np.ndarray]

#: Output elements below which a gathered column-parallel forward uses the
#: broadcast-assemble path (latency-bound regime) instead of the
#: transpose-based all-gather (bandwidth regime).  Both paths produce
#: bitwise-identical arrays — the tunable moves modeled traffic, not math.
GATHER_CROSSOVER = tune_registry.default("tp.gather_crossover")


def shard_extent(total: int, world: int, what: str) -> int:
    """Per-rank extent of an evenly sharded dimension, or a clear error."""
    if world < 1:
        raise ValueError(f"world size must be >= 1, got {world}")
    if total % world:
        raise ValueError(
            f"{what} ({total}) not divisible by tensor-parallel world "
            f"size {world}"
        )
    return total // world


def gather_last_dim(
    shards: Sequence[np.ndarray],
    group: SimProcessGroup,
    crossover: Optional[int] = None,
) -> List[np.ndarray]:
    """All-gather per-rank slices of the trailing dimension.

    Every rank receives the concatenation (rank order) along the last
    axis.  Small payloads (< ``tp.gather_crossover`` elements) assemble
    once and broadcast; large payloads move the trailing axis to the
    front so the flat rank-ordered :meth:`SimProcessGroup.all_gather`
    concatenates the right dimension.  Both routes are exact
    (concatenation only), so the crossover is purely a traffic-shape
    choice the tuner can search under the bitwise gate.
    """
    if len(shards) != group.world_size:
        raise ValueError(
            f"expected {group.world_size} shards, got {len(shards)}"
        )
    if group.world_size == 1:
        return [np.asarray(shards[0])]
    if crossover is None:
        crossover = tune_runtime.value(
            "tp.gather_crossover", GATHER_CROSSOVER
        )
    full_elems = sum(np.asarray(s).size for s in shards)
    if full_elems < crossover:
        full = np.concatenate([np.asarray(s) for s in shards], axis=-1)
        return group.broadcast(full)
    first = np.asarray(shards[0])
    lead = first.shape[:-1]
    # Move the sharded axis to the front: the flat all-gather then
    # concatenates exactly along it, and one transpose restores layout.
    moved = [np.ascontiguousarray(np.moveaxis(s, -1, 0)) for s in shards]
    gathered = group.all_gather(moved)
    total_last = sum(s.shape[-1] for s in shards)
    out: List[np.ndarray] = []
    for g in gathered:
        stacked = g.reshape((total_last,) + lead)
        out.append(np.ascontiguousarray(np.moveaxis(stacked, 0, -1)))
    return out


class ColumnParallelLinear:
    """``y = x @ w + b`` with ``w``/``b`` sharded along the output axis.

    Args:
        w: full weight ``(in, out)``.
        b: full bias ``(out,)``.
        group: the tensor-parallel communicator.
        gather_output: all-gather the column slices into the full output
            (``True``) or hand each rank its slice (``False`` — the
            Megatron MLP/attention interior, where the next op is
            shard-local).
    """

    def __init__(
        self,
        w: np.ndarray,
        b: np.ndarray,
        group: SimProcessGroup,
        gather_output: bool = True,
    ):
        out = w.shape[-1]
        per = shard_extent(out, group.world_size, "output features")
        self.group = group
        self.gather_output = gather_output
        self.out_features = out
        self.per_rank = per
        self.w_shards = [
            np.ascontiguousarray(w[:, r * per : (r + 1) * per])
            for r in range(group.world_size)
        ]
        self.b_shards = [
            np.ascontiguousarray(b[r * per : (r + 1) * per])
            for r in range(group.world_size)
        ]

    def forward(
        self, x_per_rank: Sequence[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[Tuple]]:
        """Per-rank forward over replicated inputs.

        Returns per-rank outputs (full-width if ``gather_output``, column
        slices otherwise) and the per-rank backward caches.
        """
        outs, caches = [], []
        for r in range(self.group.world_size):
            y, cache = Dense.forward(
                x_per_rank[r], self.w_shards[r], self.b_shards[r]
            )
            outs.append(y)
            caches.append(cache)
        if self.gather_output:
            outs = gather_last_dim(outs, self.group)
        return outs, caches

    def backward(
        self, dy_per_rank: Sequence[np.ndarray], caches: Sequence[Tuple]
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Per-rank backward.

        ``dy_per_rank`` carries the full output gradient when the forward
        gathered (each rank slices out its columns), or per-rank slices
        otherwise.  The returned input gradients are the all-reduced
        partial sums (full width, replicated); weight/bias gradients stay
        sharded.
        """
        per = self.per_rank
        dxs, dws, dbs = [], [], []
        for r in range(self.group.world_size):
            dy = dy_per_rank[r]
            if self.gather_output:
                dy = dy[..., r * per : (r + 1) * per]
            dx, dw, db = Dense.backward(dy, caches[r])
            dxs.append(dx)
            dws.append(dw)
            dbs.append(db)
        # dx = Σ_r dy_r @ w_r^T — a genuine cross-rank reduction; order
        # is fixed (rank 0 first) but differs from the unsharded single
        # GEMM, hence the documented tolerance.
        dxs = self.group.all_reduce(dxs)
        return dxs, dws, dbs

    def full_weight_grad(self, dws: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank weight-gradient shards (exact)."""
        return np.concatenate(list(dws), axis=-1)

    def full_bias_grad(self, dbs: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate(list(dbs), axis=-1)


class RowParallelLinear:
    """``y = x @ w + b`` with ``w`` sharded along the *input* axis.

    Each rank holds an input slice and produces a partial full-width
    output; the forward all-reduces the partials and adds the
    (replicated) bias after the reduction — one collective per pass.

    Args:
        w: full weight ``(in, out)``.
        b: full bias ``(out,)`` (replicated, applied post-reduce).
        group: the tensor-parallel communicator.
    """

    def __init__(self, w: np.ndarray, b: np.ndarray, group: SimProcessGroup):
        n_in = w.shape[0]
        per = shard_extent(n_in, group.world_size, "input features")
        self.group = group
        self.per_rank = per
        self.in_features = n_in
        self.b = np.ascontiguousarray(b)
        self.w_shards = [
            np.ascontiguousarray(w[r * per : (r + 1) * per, :])
            for r in range(group.world_size)
        ]

    def forward(
        self, x_per_rank: Sequence[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[Tuple]]:
        """Per-rank forward over input slices; outputs are replicated.

        The partial-sum all-reduce is the Megatron ``g`` operator — the
        one place the TP forward reorders a reduction relative to the
        unsharded GEMM (documented tolerance).
        """
        partials, caches = [], []
        for r in range(self.group.world_size):
            x = x_per_rank[r]
            partials.append(x @ self.w_shards[r])
            caches.append((x, self.w_shards[r]))
        reduced = self.group.all_reduce(partials)
        outs = [y + self.b for y in reduced]
        return outs, caches

    def backward(
        self, dy_per_rank: Sequence[np.ndarray], caches: Sequence[Tuple]
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
        """Per-rank backward; no collective needed.

        ``dy`` is replicated (the forward all-reduced); each rank's input
        gradient is its own slice ``dy @ w_r^T`` and its weight gradient
        is ``x_r^T @ dy``.  The bias gradient is identical on every rank;
        one copy is returned.
        """
        dxs, dws = [], []
        db: Optional[np.ndarray] = None
        for r in range(self.group.world_size):
            x, w = caches[r]
            dy = dy_per_rank[r]
            dxs.append(dy @ w.T)
            flat_x = x.reshape(-1, x.shape[-1])
            flat_dy = dy.reshape(-1, dy.shape[-1])
            dws.append(flat_x.T @ flat_dy)
            if db is None:
                db = flat_dy.sum(axis=0)
        assert db is not None
        return dxs, dws, db

    def full_weight_grad(self, dws: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank weight-gradient shards (exact)."""
        return np.concatenate(list(dws), axis=0)


class TensorParallelMLP:
    """The Megatron MLP: column fc1 -> shard-local GELU -> row fc2.

    Args:
        w1, b1: full fc1 parameters ``(h, f)`` / ``(f,)``.
        w2, b2: full fc2 parameters ``(f, h)`` / ``(h,)``.
        group: the tensor-parallel communicator.
    """

    def __init__(
        self,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
        group: SimProcessGroup,
    ):
        self.group = group
        self.fc1 = ColumnParallelLinear(w1, b1, group, gather_output=False)
        self.fc2 = RowParallelLinear(w2, b2, group)

    def forward(
        self, x_per_rank: Sequence[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[Tuple]]:
        """Replicated inputs in, replicated (reduced) outputs out."""
        h1, c1 = self.fc1.forward(x_per_rank)
        # GELU is elementwise: applying it to a column shard equals the
        # matching slice of the full activation bit-for-bit.
        act = [gelu(h) for h in h1]
        y, c2 = self.fc2.forward(act)
        return y, [(c1[r], h1[r], c2[r]) for r in range(len(c1))]

    def backward(
        self, dy_per_rank: Sequence[np.ndarray], caches: Sequence[Tuple]
    ) -> Tuple[List[np.ndarray], Dict[str, List[np.ndarray]], np.ndarray]:
        """Returns (dx replicated, sharded weight grads, fc2 bias grad).

        The sharded grads dict carries lists keyed ``"w1"``, ``"b1"``,
        ``"w2"``; assemble with :meth:`full_grads`.
        """
        c1s = [c[0] for c in caches]
        h1s = [c[1] for c in caches]
        c2s = [c[2] for c in caches]
        dact, dw2s, db2 = self.fc2.backward(dy_per_rank, c2s)
        dh1 = []
        for r in range(len(dact)):
            g = gelu_grad(h1s[r])
            g *= dact[r]
            dh1.append(g)
        dx, dw1s, db1s = self.fc1.backward(dh1, c1s)
        return dx, {"w1": dw1s, "b1": db1s, "w2": dw2s}, db2

    def full_grads(
        self, sharded: Dict[str, List[np.ndarray]], db2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(dw1, db1, dw2, db2) assembled to full shapes (exact concat)."""
        return (
            self.fc1.full_weight_grad(sharded["w1"]),
            self.fc1.full_bias_grad(sharded["b1"]),
            self.fc2.full_weight_grad(sharded["w2"]),
            db2,
        )


def _shard_qkv_columns(
    w: np.ndarray, b: np.ndarray, hidden: int, n_heads: int, tp: int
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Head-partition the fused qkv projection for ``tp`` ranks.

    The fused weight is ``(h, 3h)`` with columns ordered ``[q | k | v]``;
    a rank's shard takes its head block from each of the three, so the
    per-rank output stays a valid fused ``(b, s, 3h/tp)`` qkv for the
    rank's head subset.
    """
    heads_per = shard_extent(n_heads, tp, "attention heads")
    head_dim = hidden // n_heads
    block = heads_per * head_dim
    w_shards, b_shards = [], []
    for r in range(tp):
        cols: List[np.ndarray] = []
        bcols: List[np.ndarray] = []
        for part in range(3):  # q, k, v
            lo = part * hidden + r * block
            cols.append(w[:, lo : lo + block])
            bcols.append(b[lo : lo + block])
        w_shards.append(np.ascontiguousarray(np.concatenate(cols, axis=-1)))
        b_shards.append(np.ascontiguousarray(np.concatenate(bcols)))
    return w_shards, b_shards


def _unshard_qkv_grads(
    dws: Sequence[np.ndarray],
    dbs: Sequence[np.ndarray],
    hidden: int,
    n_heads: int,
    tp: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter per-rank fused-qkv grads back into full ``(h, 3h)`` layout."""
    heads_per = n_heads // tp
    head_dim = hidden // n_heads
    block = heads_per * head_dim
    dw = np.zeros((dws[0].shape[0], 3 * hidden), dtype=dws[0].dtype)
    db = np.zeros(3 * hidden, dtype=dbs[0].dtype)
    for r in range(tp):
        for part in range(3):
            src = slice(part * block, (part + 1) * block)
            dst = slice(part * hidden + r * block,
                        part * hidden + (r + 1) * block)
            dw[:, dst] = dws[r][:, src]
            db[dst] = dbs[r][src]
    return dw, db


class TensorParallelAttention:
    """Causal attention with heads partitioned across the TP group.

    The qkv projection is column-parallel by head block, attention runs
    shard-locally over each rank's head subset, and the output projection
    is row-parallel (one all-reduce).  With an orthogonal SP group, each
    TP rank's head subset runs sequence-parallel
    :class:`~repro.parallel.ulysses.UlyssesAttention` instead — the
    TPxSP composition: heads divide by ``tp`` first, then by ``sp``.

    Args:
        hidden: model width.
        n_heads: total heads (must divide by ``tp``; the per-TP-rank
            count must divide by ``sp``).
        qkv_w, qkv_b: full fused projection ``(h, 3h)`` / ``(3h,)``.
        proj_w, proj_b: full output projection ``(h, h)`` / ``(h,)``.
        tp_group: the tensor-parallel communicator.
        sp_group: optional sequence-parallel communicator (Ulysses).
        backend: per-shard attention core (``"dense"``/``"streaming"``).
    """

    def __init__(
        self,
        hidden: int,
        n_heads: int,
        qkv_w: np.ndarray,
        qkv_b: np.ndarray,
        proj_w: np.ndarray,
        proj_b: np.ndarray,
        tp_group: SimProcessGroup,
        sp_group: Optional[SimProcessGroup] = None,
        backend: str = "dense",
    ):
        if hidden % n_heads:
            raise ValueError(
                f"hidden ({hidden}) not divisible by n_heads ({n_heads})"
            )
        tp = tp_group.world_size
        self.heads_per_rank = shard_extent(n_heads, tp, "attention heads")
        self.hidden = hidden
        self.n_heads = n_heads
        self.tp_group = tp_group
        self.sp_group = sp_group
        self.qkv_w_shards, self.qkv_b_shards = _shard_qkv_columns(
            qkv_w, qkv_b, hidden, n_heads, tp
        )
        self.proj = RowParallelLinear(proj_w, proj_b, tp_group)
        if sp_group is not None and sp_group.world_size > 1:
            # Ulysses validates heads_per_rank % sp with its own error.
            self.attn: object = UlyssesAttention(
                self.heads_per_rank, sp_group, backend=backend
            )
        else:
            self.attn = MultiHeadAttention(
                self.heads_per_rank, backend=backend,
                telemetry=tp_group.telemetry,
            )

    def forward(
        self, x_per_rank: Sequence[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[Tuple]]:
        """Replicated ``(b, s, h)`` inputs -> replicated outputs.

        With an SP group, ``x_per_rank[r]`` is instead a *list* of
        per-SP-rank sequence shards ``(b, s/sp, h)``, and the outputs
        mirror that nesting.
        """
        tp = self.tp_group.world_size
        qkvs, qkv_caches = [], []
        for r in range(tp):
            x = x_per_rank[r]
            if self.sp_group is not None and isinstance(x, (list, tuple)):
                pair = [
                    Dense.forward(xs, self.qkv_w_shards[r],
                                  self.qkv_b_shards[r])
                    for xs in x
                ]
                qkvs.append([p[0] for p in pair])
                qkv_caches.append([p[1] for p in pair])
            else:
                qkv, cache = Dense.forward(
                    x, self.qkv_w_shards[r], self.qkv_b_shards[r]
                )
                qkvs.append(qkv)
                qkv_caches.append(cache)
        ctxs, attn_caches = [], []
        for r in range(tp):
            if isinstance(self.attn, UlyssesAttention):
                outs, caches = self.attn.forward(list(qkvs[r]))
                ctxs.append(outs)
                attn_caches.append(caches)
            else:
                ctx, cache = self.attn.forward(qkvs[r])
                ctxs.append(ctx)
                attn_caches.append(cache)
        if isinstance(self.attn, UlyssesAttention):
            # Row-parallel projection per sequence shard: for each SP
            # index, reduce the TP partials across the TP group.
            sp = self.sp_group.world_size  # type: ignore[union-attr]
            outs_nested: List[List[np.ndarray]] = [[] for _ in range(tp)]
            proj_caches: List[List[Tuple]] = [[] for _ in range(tp)]
            for s in range(sp):
                col = [ctxs[r][s] for r in range(tp)]
                y, caches = self.proj.forward(col)
                for r in range(tp):
                    outs_nested[r].append(y[r])
                    proj_caches[r].append(caches[r])
            return outs_nested, [
                (qkv_caches[r], attn_caches[r], proj_caches[r])
                for r in range(tp)
            ]
        y, proj_caches_flat = self.proj.forward(ctxs)
        return y, [
            (qkv_caches[r], attn_caches[r], proj_caches_flat[r])
            for r in range(tp)
        ]

    def backward(
        self, dy_per_rank: Sequence, caches: Sequence[Tuple]
    ) -> Tuple[List, Dict[str, List[np.ndarray]], np.ndarray]:
        """Returns (dx, sharded grads {qkv_w, qkv_b, proj_w}, proj_b grad).

        ``dx`` is replicated full-width (all-reduced), or SP-nested when
        sequence parallel.
        """
        tp = self.tp_group.world_size
        qkv_caches = [c[0] for c in caches]
        attn_caches = [c[1] for c in caches]
        proj_caches = [c[2] for c in caches]
        if isinstance(self.attn, UlyssesAttention):
            sp = self.sp_group.world_size  # type: ignore[union-attr]
            dctx_nested: List[List[np.ndarray]] = [[] for _ in range(tp)]
            dw_proj = [None] * tp
            db_proj: Optional[np.ndarray] = None
            for s in range(sp):
                col_dy = [dy_per_rank[r][s] for r in range(tp)]
                col_cache = [proj_caches[r][s] for r in range(tp)]
                dctx, dws, db = self.proj.backward(col_dy, col_cache)
                for r in range(tp):
                    dctx_nested[r].append(dctx[r])
                    dw_proj[r] = (
                        dws[r] if dw_proj[r] is None else dw_proj[r] + dws[r]
                    )
                db_proj = db if db_proj is None else db_proj + db
            dxs: List = []
            dqkv_w, dqkv_b = [], []
            for r in range(tp):
                dqkv_shards = self.attn.backward(
                    dctx_nested[r], attn_caches[r]
                )
                dx_shards, dw_acc, db_acc = [], None, None
                for s in range(sp):
                    dx_s, dw_s, db_s = Dense.backward(
                        dqkv_shards[s], qkv_caches[r][s]
                    )
                    dx_shards.append(dx_s)
                    dw_acc = dw_s if dw_acc is None else dw_acc + dw_s
                    db_acc = db_s if db_acc is None else db_acc + db_s
                dxs.append(dx_shards)
                dqkv_w.append(dw_acc)
                dqkv_b.append(db_acc)
            # all-reduce the TP-partial dx per sequence shard
            reduced: List[List[np.ndarray]] = [[] for _ in range(tp)]
            for s in range(sp):
                col = self.tp_group.all_reduce(
                    [dxs[r][s] for r in range(tp)]
                )
                for r in range(tp):
                    reduced[r].append(col[r])
            assert db_proj is not None
            return reduced, {
                "qkv_w": dqkv_w, "qkv_b": dqkv_b, "proj_w": list(dw_proj),
            }, db_proj
        dctx, dw_proj_flat, db_proj2 = self.proj.backward(
            list(dy_per_rank), proj_caches
        )
        dxs2, dqkv_w2, dqkv_b2 = [], [], []
        for r in range(tp):
            dqkv = self.attn.backward(dctx[r], attn_caches[r])
            dx, dw, db = Dense.backward(dqkv, qkv_caches[r])
            dxs2.append(dx)
            dqkv_w2.append(dw)
            dqkv_b2.append(db)
        dxs2 = self.tp_group.all_reduce(dxs2)
        return dxs2, {
            "qkv_w": dqkv_w2, "qkv_b": dqkv_b2, "proj_w": dw_proj_flat,
        }, db_proj2

    def full_grads(
        self, sharded: Dict[str, List[np.ndarray]], db_proj: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(dqkv_w, dqkv_b, dproj_w, dproj_b) at full shapes."""
        dw, db = _unshard_qkv_grads(
            sharded["qkv_w"], sharded["qkv_b"],
            self.hidden, self.n_heads, self.tp_group.world_size,
        )
        return dw, db, self.proj.full_weight_grad(sharded["proj_w"]), db_proj


class TensorParallelTransformer:
    """A full TP-sharded :class:`TinyTransformer` step.

    Embeddings, LayerNorms, and residual streams are replicated (their
    grads are computed once); every block's attention and MLP shard
    across the TP group; the LM head is column-parallel over the
    vocabulary with a gathered output feeding the (replicated)
    cross-entropy.  ``loss_and_grads`` returns gradients keyed exactly
    like ``TinyTransformer.loss_and_grads`` so optimizers, ZeRO, and the
    trainers consume them unchanged.

    Args:
        model: the unsharded reference whose parameters are sharded.
        group: the tensor-parallel communicator.
        sp_group: optional Ulysses sequence-parallel group (heads divide
            by ``tp`` then ``sp``; inputs stay full — the model
            re-shards internally around attention only).
    """

    def __init__(
        self,
        model: TinyTransformer,
        group: SimProcessGroup,
        sp_group: Optional[SimProcessGroup] = None,
        backend: str = "dense",
    ):
        spec = model.spec
        shard_extent(spec.hidden, group.world_size, "hidden width")
        shard_extent(
            spec.hidden * spec.ffn_mult, group.world_size, "ffn width"
        )
        self.model = model
        self.spec = spec
        self.group = group
        self.sp_group = sp_group
        p = model.params
        self.blocks: List[Tuple[TensorParallelAttention, TensorParallelMLP]] = []
        for i in range(spec.n_layers):
            attn = TensorParallelAttention(
                spec.hidden, spec.n_heads,
                p[f"h{i}.qkv.w"], p[f"h{i}.qkv.b"],
                p[f"h{i}.proj.w"], p[f"h{i}.proj.b"],
                group, sp_group=sp_group, backend=backend,
            )
            mlp = TensorParallelMLP(
                p[f"h{i}.fc1.w"], p[f"h{i}.fc1.b"],
                p[f"h{i}.fc2.w"], p[f"h{i}.fc2.b"],
                group,
            )
            self.blocks.append((attn, mlp))
        self.head = ColumnParallelLinear(
            p["head.w"], p["head.b"], group, gather_output=True
        )

    def _sp_split(self, x: np.ndarray) -> List[np.ndarray]:
        sp = self.sp_group.world_size  # type: ignore[union-attr]
        s = x.shape[1]
        chunk = shard_extent(s, sp, "sequence length")
        return [x[:, i * chunk : (i + 1) * chunk] for i in range(sp)]

    def loss_and_grads(
        self,
        ids: np.ndarray,
        targets: np.ndarray,
        loss_scale: float = 1.0,
    ) -> Tuple[float, Params]:
        """TP forward+backward mirroring ``TinyTransformer``'s op order."""
        p = self.model.params
        spec = self.spec
        tp = self.group.world_size
        b, s = ids.shape
        if s > spec.max_seq:
            raise ValueError(f"sequence {s} exceeds max_seq {spec.max_seq}")
        use_sp = self.sp_group is not None and self.sp_group.world_size > 1
        grads: Params = {}
        # -- forward (replicated stream; math done once, fanned out) ----
        x, tok_cache = Embedding.forward(ids, p["tok_emb"])
        x = x + p["pos_emb"][:s][None, :, :]
        block_caches = []
        for i, (attn, mlp) in enumerate(self.blocks):
            ln1, ln1_cache = LayerNorm.forward(
                x, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"]
            )
            if use_sp:
                shards = self._sp_split(ln1)
                attn_in = [list(shards) for _ in range(tp)]
            else:
                attn_in = [ln1 for _ in range(tp)]
            attn_out, attn_cache = attn.forward(attn_in)
            if use_sp:
                proj = np.concatenate(attn_out[0], axis=1)
            else:
                proj = attn_out[0]
            x = x + proj
            ln2, ln2_cache = LayerNorm.forward(
                x, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"]
            )
            mlp_out, mlp_cache = mlp.forward([ln2 for _ in range(tp)])
            x = x + mlp_out[0]
            block_caches.append((ln1_cache, attn_cache, ln2_cache, mlp_cache))
        lnf, lnf_cache = LayerNorm.forward(x, p["ln_f.g"], p["ln_f.b"])
        logits, head_caches = self.head.forward([lnf for _ in range(tp)])
        loss, dlogits = cross_entropy(logits[0], targets)
        if loss_scale != 1.0:
            dlogits *= np.float32(loss_scale)
        # -- backward ---------------------------------------------------
        dlnf_r, dw_head, db_head = self.head.backward(
            [dlogits for _ in range(tp)], head_caches
        )
        grads["head.w"] = self.head.full_weight_grad(dw_head)
        grads["head.b"] = self.head.full_bias_grad(db_head)
        dx, grads["ln_f.g"], grads["ln_f.b"] = LayerNorm.backward(
            dlnf_r[0], lnf_cache
        )
        for i in reversed(range(spec.n_layers)):
            attn, mlp = self.blocks[i]
            ln1_cache, attn_cache, ln2_cache, mlp_cache = block_caches[i]
            dmlp, mlp_sharded, db2 = mlp.backward(
                [dx for _ in range(tp)], mlp_cache
            )
            (grads[f"h{i}.fc1.w"], grads[f"h{i}.fc1.b"],
             grads[f"h{i}.fc2.w"], grads[f"h{i}.fc2.b"]) = mlp.full_grads(
                mlp_sharded, db2
            )
            dln2, grads[f"h{i}.ln2.g"], grads[f"h{i}.ln2.b"] = (
                LayerNorm.backward(dmlp[0], ln2_cache)
            )
            dx = dx + dln2
            if use_sp:
                d_shards = self._sp_split(dx)
                dy_in: Sequence = [list(d_shards) for _ in range(tp)]
            else:
                dy_in = [dx for _ in range(tp)]
            dattn, attn_sharded, db_proj = attn.backward(dy_in, attn_cache)
            (grads[f"h{i}.qkv.w"], grads[f"h{i}.qkv.b"],
             grads[f"h{i}.proj.w"], grads[f"h{i}.proj.b"]) = attn.full_grads(
                attn_sharded, db_proj
            )
            if use_sp:
                dattn_full = np.concatenate(dattn[0], axis=1)
            else:
                dattn_full = dattn[0]
            dln1, grads[f"h{i}.ln1.g"], grads[f"h{i}.ln1.b"] = (
                LayerNorm.backward(dattn_full, ln1_cache)
            )
            dx = dx + dln1
        grads["pos_emb"] = np.zeros_like(p["pos_emb"])
        grads["pos_emb"][:s] = dx.sum(axis=0)
        grads["tok_emb"] = Embedding.backward(dx, tok_cache)
        for name, g in grads.items():
            grads[name] = np.ascontiguousarray(g, dtype=np.float32)
        return loss, grads
