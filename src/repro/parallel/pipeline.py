"""1F1B pipeline parallelism over :class:`TinyTransformer`.

The model's blocks partition into contiguous layer ranges, one per
pipeline stage (:func:`partition_layers`); the global batch splits into
microbatches (:func:`split_microbatches`); and
:class:`PipelinedTransformer` drives the classic one-forward-one-backward
schedule — warmup, steady 1F/1B alternation, drain — moving activations
forward and gradients backward through the point-to-point
``send``/``recv`` ops on :class:`~repro.parallel.comm.SimProcessGroup`
(payload-accounted and traced like every collective).

Numerics contract (tested by ``tests/parallel/test_pipeline.py``):
pipelining changes *no* arithmetic.  Splitting layers across stages only
relocates where the activation/gradient stream lives, and 1F1B retires
each stage's backwards in microbatch order ``0..m-1``, so gradient
accumulation order matches the unpipelined reference
(:func:`microbatched_loss_and_grads`) exactly — the pipelined step is
**bitwise identical** to it for ``tp == 1``.  With a tensor-parallel
group attached the per-block math routes through
:mod:`repro.parallel.tensor` and inherits its documented tolerance.

Bubble accounting: the in-process schedule runs serially, so wall clock
contains no real pipeline bubble.  Instead every op's duration is
recorded and :meth:`PipelinedTransformer.measured_bubble_fraction`
replays them through the simulator's 1F1B task graph
(:func:`repro.sim.engine.build_1f1b_tasks`) as if stages ran on parallel
resources — the measured counterpart of the simulator's predicted
fraction, cross-checked by ``repro profile --compare-sim``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
)
from repro.numeric.transformer import Params, TinyTransformer
from repro.parallel.comm import SimProcessGroup
from repro.parallel.tensor import (
    ColumnParallelLinear,
    TensorParallelAttention,
    TensorParallelMLP,
)
from repro.sim.engine import (
    ScheduleSimulator,
    build_1f1b_tasks,
    ideal_1f1b_bubble,
    pipeline_bubble_fraction,
    stage_op_order,
)
from repro.tune import registry as tune_registry
from repro.tune import runtime as tune_runtime

#: Default 1F1B microbatch count (``repro tune`` can override at runtime).
MICROBATCHES_DEFAULT = tune_registry.default("pp.microbatches")

#: Default layers shifted off the final (head-owning) stage.
STAGE_BALANCE_DEFAULT = tune_registry.default("pp.stage_balance")


def partition_layers(
    n_layers: int, n_stages: int, balance: int = 0
) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` layer ranges, one per stage.

    Layers distribute as evenly as possible with the remainder on the
    *early* stages; ``balance`` then shifts that many layers off the
    final stage (which also owns ``ln_f`` and the LM head) onto earlier
    stages round-robin — the knob ``pp.stage_balance`` tunes.
    """
    if n_stages < 1:
        raise ValueError(f"need at least one stage, got {n_stages}")
    if balance < 0:
        raise ValueError(f"stage balance must be >= 0, got {balance}")
    if n_layers < n_stages:
        raise ValueError(
            f"cannot split {n_layers} layers across {n_stages} pipeline "
            "stages (every stage needs at least one layer)"
        )
    q, r = divmod(n_layers, n_stages)
    sizes = [q + (1 if s < r else 0) for s in range(n_stages)]
    if balance:
        if n_stages == 1:
            raise ValueError("stage balance needs at least two stages")
        if balance > sizes[-1]:
            raise ValueError(
                f"stage balance {balance} exceeds the final stage's "
                f"{sizes[-1]} layers"
            )
        sizes[-1] -= balance
        for k in range(balance):
            sizes[k % (n_stages - 1)] += 1
    ranges: List[Tuple[int, int]] = []
    start = 0
    for size in sizes:
        ranges.append((start, start + size))
        start += size
    return ranges


def split_microbatches(
    ids: np.ndarray, targets: np.ndarray, n_microbatches: int
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Split a global batch into ``n_microbatches`` along the batch axis."""
    if n_microbatches < 1:
        raise ValueError(
            f"need at least one microbatch, got {n_microbatches}"
        )
    b = ids.shape[0]
    if ids.shape != targets.shape:
        raise ValueError(
            f"ids shape {ids.shape} != targets shape {targets.shape}"
        )
    if b % n_microbatches:
        raise ValueError(
            f"batch size {b} not divisible by {n_microbatches} microbatches"
        )
    per = b // n_microbatches
    return (
        [ids[j * per : (j + 1) * per] for j in range(n_microbatches)],
        [targets[j * per : (j + 1) * per] for j in range(n_microbatches)],
    )


# -- microbatch accumulation (shared by pipeline and reference) --------------
#
# Both sides run *these exact ops* in microbatch order, which is what
# makes the 1F1B step bitwise-comparable to the unpipelined reference.


def _accumulate_grads(acc: Params, grads: Params) -> None:
    for name, g in grads.items():
        g32 = np.ascontiguousarray(g, dtype=np.float32)
        if name in acc:
            acc[name] += g32
        else:
            acc[name] = g32.copy()


def _finalize_grads(acc: Params, n_microbatches: int) -> Params:
    inv = np.float32(1.0 / n_microbatches)
    for name in acc:
        acc[name] *= inv
    return acc


def _mean_loss(losses: Sequence[float]) -> float:
    total = float(losses[0])
    for value in losses[1:]:
        total = total + value
    return total / len(losses)


def microbatched_loss_and_grads(
    model: TinyTransformer,
    ids: np.ndarray,
    targets: np.ndarray,
    n_microbatches: int,
    loss_scale: float = 1.0,
) -> Tuple[float, Params]:
    """The unpipelined reference: sequential microbatches, same averaging.

    Runs each microbatch through the plain model in order and accumulates
    with the identical cast/add/scale sequence the pipeline uses — the
    bitwise baseline the 1F1B tests compare against.
    """
    mb_ids, mb_targets = split_microbatches(ids, targets, n_microbatches)
    acc: Params = {}
    losses: List[float] = []
    for j in range(n_microbatches):
        loss, grads = model.loss_and_grads(
            mb_ids[j], mb_targets[j], loss_scale=loss_scale
        )
        losses.append(loss)
        _accumulate_grads(acc, grads)
    return _mean_loss(losses), _finalize_grads(acc, n_microbatches)


class PipelinedTransformer:
    """A :class:`TinyTransformer` split into 1F1B pipeline stages.

    One pipeline rank per stage (``group.world_size`` stages).  The first
    stage owns the embeddings, the last owns ``ln_f`` and the LM head;
    blocks partition by :func:`partition_layers`.  Stage-local math
    replicates the unsharded model's op sequence exactly when ``tp == 1``
    and routes through the tensor-parallel executors when a ``tp_group``
    is attached (the TPxPP composition: every stage's blocks shard
    across the TP group).

    Args:
        model: the unsharded reference; must not carry an activation
            workspace (1F1B keeps multiple microbatches in flight, which
            would alias its recycled buffers).
        group: pipeline communicator; its world size is the stage count.
        balance: layers shifted off the final stage (defaults to the
            ``pp.stage_balance`` tunable).
        tp_group: optional tensor-parallel communicator.
        backend: attention core for the TP path.
    """

    def __init__(
        self,
        model: TinyTransformer,
        group: SimProcessGroup,
        balance: Optional[int] = None,
        tp_group: Optional[SimProcessGroup] = None,
        backend: str = "dense",
    ):
        if model.workspace is not None:
            raise ValueError(
                "pipelined model must not use an activation workspace "
                "(in-flight microbatches would alias recycled buffers)"
            )
        if balance is None:
            balance = tune_runtime.value(
                "pp.stage_balance", STAGE_BALANCE_DEFAULT
            )
        self.model = model
        self.spec = model.spec
        self.group = group
        self.n_stages = group.world_size
        self.stage_ranges = partition_layers(
            model.spec.n_layers, self.n_stages, balance
        )
        self.tp_group = tp_group
        self.tp = tp_group.world_size if tp_group is not None else 1
        if self.tp > 1:
            p = model.params
            spec = model.spec
            self.tp_blocks: List[
                Tuple[TensorParallelAttention, TensorParallelMLP]
            ] = []
            for i in range(spec.n_layers):
                attn = TensorParallelAttention(
                    spec.hidden, spec.n_heads,
                    p[f"h{i}.qkv.w"], p[f"h{i}.qkv.b"],
                    p[f"h{i}.proj.w"], p[f"h{i}.proj.b"],
                    tp_group, backend=backend,
                )
                mlp = TensorParallelMLP(
                    p[f"h{i}.fc1.w"], p[f"h{i}.fc1.b"],
                    p[f"h{i}.fc2.w"], p[f"h{i}.fc2.b"],
                    tp_group,
                )
                self.tp_blocks.append((attn, mlp))
            self.tp_head = ColumnParallelLinear(
                p["head.w"], p["head.b"], tp_group, gather_output=True
            )
        # Measured-replay state from the most recent pipelined step.
        self.last_op_durations: Dict[Tuple[str, int, int], float] = {}
        self.last_comm_durations: List[float] = []
        self.last_microbatches = 0
        self._caches: Dict[Tuple[int, int], tuple] = {}

    # -- stage-local math ---------------------------------------------------

    def _block_forward(self, i: int, x: np.ndarray) -> Tuple[np.ndarray, tuple]:
        """One transformer block — the unsharded model's ops verbatim
        (``tp == 1``) or the TP executors."""
        p = self.model.params
        ln1, ln1_cache = LayerNorm.forward(
            x, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"]
        )
        if self.tp == 1:
            qkv, qkv_cache = Dense.forward(
                ln1, p[f"h{i}.qkv.w"], p[f"h{i}.qkv.b"]
            )
            attn_out, attn_cache = self.model.attn.forward(qkv)
            proj, proj_cache = Dense.forward(
                attn_out, p[f"h{i}.proj.w"], p[f"h{i}.proj.b"]
            )
        else:
            attn, _ = self.tp_blocks[i]
            outs, attn_cache = attn.forward([ln1] * self.tp)
            proj = outs[0]
            qkv_cache = proj_cache = None
        x = x + proj
        ln2, ln2_cache = LayerNorm.forward(
            x, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"]
        )
        if self.tp == 1:
            fc1, fc1_cache = Dense.forward(
                ln2, p[f"h{i}.fc1.w"], p[f"h{i}.fc1.b"]
            )
            act = gelu(fc1)
            fc2, fc2_cache = Dense.forward(
                act, p[f"h{i}.fc2.w"], p[f"h{i}.fc2.b"]
            )
            x = x + fc2
            mlp_cache = (fc1_cache, fc1, fc2_cache)
        else:
            _, mlp = self.tp_blocks[i]
            mlp_out, mlp_cache = mlp.forward([ln2] * self.tp)
            x = x + mlp_out[0]
        return x, (
            ln1_cache, qkv_cache, attn_cache, proj_cache, ln2_cache,
            mlp_cache,
        )

    def _block_backward(
        self, i: int, cache: tuple, dx: np.ndarray, grads: Params
    ) -> np.ndarray:
        (ln1_cache, qkv_cache, attn_cache, proj_cache, ln2_cache,
         mlp_cache) = cache
        if self.tp == 1:
            fc1_cache, fc1, fc2_cache = mlp_cache
            dfc2, grads[f"h{i}.fc2.w"], grads[f"h{i}.fc2.b"] = Dense.backward(
                dx, fc2_cache
            )
            dact = gelu_grad(fc1)
            dact *= dfc2
            dln2, grads[f"h{i}.fc1.w"], grads[f"h{i}.fc1.b"] = Dense.backward(
                dact, fc1_cache
            )
            dres, grads[f"h{i}.ln2.g"], grads[f"h{i}.ln2.b"] = (
                LayerNorm.backward(dln2, ln2_cache)
            )
            dx += dres
            dproj, grads[f"h{i}.proj.w"], grads[f"h{i}.proj.b"] = (
                Dense.backward(dx, proj_cache)
            )
            dqkv = self.model.attn.backward(dproj, attn_cache)
            dln1, grads[f"h{i}.qkv.w"], grads[f"h{i}.qkv.b"] = Dense.backward(
                dqkv, qkv_cache
            )
            dres1, grads[f"h{i}.ln1.g"], grads[f"h{i}.ln1.b"] = (
                LayerNorm.backward(dln1, ln1_cache)
            )
            dx += dres1
            return dx
        attn, mlp = self.tp_blocks[i]
        dmlp, mlp_sharded, db2 = mlp.backward([dx] * self.tp, mlp_cache)
        (grads[f"h{i}.fc1.w"], grads[f"h{i}.fc1.b"],
         grads[f"h{i}.fc2.w"], grads[f"h{i}.fc2.b"]) = mlp.full_grads(
            mlp_sharded, db2
        )
        dln2, grads[f"h{i}.ln2.g"], grads[f"h{i}.ln2.b"] = LayerNorm.backward(
            dmlp[0], ln2_cache
        )
        dx = dx + dln2
        dattn, attn_sharded, db_proj = attn.backward(
            [dx] * self.tp, attn_cache
        )
        (grads[f"h{i}.qkv.w"], grads[f"h{i}.qkv.b"],
         grads[f"h{i}.proj.w"], grads[f"h{i}.proj.b"]) = attn.full_grads(
            attn_sharded, db_proj
        )
        dln1, grads[f"h{i}.ln1.g"], grads[f"h{i}.ln1.b"] = LayerNorm.backward(
            dattn[0], ln1_cache
        )
        dx = dx + dln1
        return dx

    def _forward_stage(
        self,
        s: int,
        j: int,
        payload: np.ndarray,
        targets: np.ndarray,
        loss_scale: float,
    ) -> Tuple[Optional[np.ndarray], Optional[float]]:
        """Run stage ``s``'s forward for microbatch ``j``.

        Returns (activation to send downstream or ``None`` on the last
        stage, loss or ``None`` before the last stage); the backward
        cache is stored under ``(s, j)``.
        """
        p = self.model.params
        last = self.n_stages - 1
        if s == 0:
            ids = payload
            seq = ids.shape[1]
            x, tok_cache = Embedding.forward(ids, p["tok_emb"])
            x = x + p["pos_emb"][:seq][None, :, :]
        else:
            x = payload
            seq = x.shape[1]
            tok_cache = None
        block_caches: List[Tuple[int, tuple]] = []
        lo, hi = self.stage_ranges[s]
        for i in range(lo, hi):
            x, cache = self._block_forward(i, x)
            block_caches.append((i, cache))
        if s != last:
            self._caches[(s, j)] = (tok_cache, seq, block_caches, None)
            return x, None
        lnf, lnf_cache = LayerNorm.forward(x, p["ln_f.g"], p["ln_f.b"])
        if self.tp == 1:
            logits, head_cache = Dense.forward(
                lnf, p["head.w"], p["head.b"]
            )
        else:
            logits_r, head_cache = self.tp_head.forward([lnf] * self.tp)
            logits = logits_r[0]
        loss, dlogits = cross_entropy(logits, targets)
        if loss_scale != 1.0:
            dlogits *= np.float32(loss_scale)
        self._caches[(s, j)] = (
            tok_cache, seq, block_caches, (lnf_cache, head_cache, dlogits),
        )
        return None, loss

    def _backward_stage(
        self, s: int, j: int, dy: Optional[np.ndarray]
    ) -> Tuple[Optional[np.ndarray], Params]:
        """Run stage ``s``'s backward for microbatch ``j``.

        Returns (gradient to send upstream or ``None`` on stage 0, this
        stage's parameter gradients for the microbatch).
        """
        p = self.model.params
        grads: Params = {}
        tok_cache, seq, block_caches, final = self._caches.pop((s, j))
        if s == self.n_stages - 1:
            lnf_cache, head_cache, dlogits = final
            if self.tp == 1:
                dlnf, grads["head.w"], grads["head.b"] = Dense.backward(
                    dlogits, head_cache
                )
            else:
                dlnf_r, dw_head, db_head = self.tp_head.backward(
                    [dlogits] * self.tp, head_cache
                )
                grads["head.w"] = self.tp_head.full_weight_grad(dw_head)
                grads["head.b"] = self.tp_head.full_bias_grad(db_head)
                dlnf = dlnf_r[0]
            dx, grads["ln_f.g"], grads["ln_f.b"] = LayerNorm.backward(
                dlnf, lnf_cache
            )
        else:
            assert dy is not None
            dx = dy
        for i, cache in reversed(block_caches):
            dx = self._block_backward(i, cache, dx, grads)
        if s == 0:
            grads["pos_emb"] = np.zeros_like(p["pos_emb"])
            grads["pos_emb"][:seq] = dx.sum(axis=0)
            grads["tok_emb"] = Embedding.backward(dx, tok_cache)
            return None, grads
        return dx, grads

    # -- the 1F1B schedule --------------------------------------------------

    def loss_and_grads(
        self,
        ids: np.ndarray,
        targets: np.ndarray,
        n_microbatches: Optional[int] = None,
        loss_scale: float = 1.0,
    ) -> Tuple[float, Params]:
        """One pipelined step: 1F1B over ``n_microbatches`` microbatches.

        Returns (mean microbatch loss, microbatch-averaged gradients
        keyed like ``TinyTransformer.loss_and_grads``) — bitwise equal to
        :func:`microbatched_loss_and_grads` when ``tp == 1``.
        """
        if n_microbatches is None:
            n_microbatches = tune_runtime.value(
                "pp.microbatches", MICROBATCHES_DEFAULT
            )
        m = n_microbatches
        n = self.n_stages
        if ids.shape[1] > self.spec.max_seq:
            raise ValueError(
                f"sequence {ids.shape[1]} exceeds max_seq {self.spec.max_seq}"
            )
        mb_ids, mb_targets = split_microbatches(ids, targets, m)
        tracer = self.group.telemetry.tracer
        orders = [stage_op_order(n, m, s) for s in range(n)]
        pointers = [0] * n
        sent_f: set = set()
        sent_b: set = set()
        stage_grads: List[Params] = [{} for _ in range(n)]
        losses: List[Optional[float]] = [None] * m
        op_durations: Dict[Tuple[str, int, int], float] = {}
        comm_durations: List[float] = []
        self._caches.clear()
        remaining = sum(len(o) for o in orders)
        while remaining:
            progressed = False
            for s in range(n):
                if pointers[s] >= len(orders[s]):
                    continue
                kind, j = orders[s][pointers[s]]
                if kind == "F":
                    if s > 0 and (s - 1, j) not in sent_f:
                        # The stall a real pipeline would spend waiting on
                        # upstream — a marker span for phase attribution.
                        with tracer.span("pp_bubble", category="pp_stall",
                                         stage=s, microbatch=j):
                            pass
                        continue
                    if s == 0:
                        payload: np.ndarray = mb_ids[j]
                    else:
                        t0 = time.perf_counter()
                        payload = self.group.recv(s - 1, s, tag=j)
                        comm_durations.append(time.perf_counter() - t0)
                    with tracer.span("pp_fwd", category="compute",
                                     stage=s, microbatch=j):
                        t0 = time.perf_counter()
                        out, loss = self._forward_stage(
                            s, j, payload, mb_targets[j], loss_scale
                        )
                        op_durations[("F", s, j)] = time.perf_counter() - t0
                    if loss is not None:
                        losses[j] = loss
                    if out is not None:
                        t0 = time.perf_counter()
                        self.group.send(out, s, s + 1, tag=j)
                        comm_durations.append(time.perf_counter() - t0)
                        sent_f.add((s, j))
                else:
                    if s < n - 1 and (s + 1, j) not in sent_b:
                        with tracer.span("pp_bubble", category="pp_stall",
                                         stage=s, microbatch=j):
                            pass
                        continue
                    if s < n - 1:
                        t0 = time.perf_counter()
                        dy: Optional[np.ndarray] = self.group.recv(
                            s + 1, s, tag=j
                        )
                        comm_durations.append(time.perf_counter() - t0)
                    else:
                        dy = None
                    with tracer.span("pp_bwd", category="compute",
                                     stage=s, microbatch=j):
                        t0 = time.perf_counter()
                        dsend, grads = self._backward_stage(s, j, dy)
                        op_durations[("B", s, j)] = time.perf_counter() - t0
                    # 1F1B retires backwards in microbatch order per
                    # stage, so this accumulation matches the sequential
                    # reference bit-for-bit.
                    _accumulate_grads(stage_grads[s], grads)
                    if dsend is not None:
                        t0 = time.perf_counter()
                        self.group.send(dsend, s, s - 1, tag=j)
                        comm_durations.append(time.perf_counter() - t0)
                        sent_b.add((s, j))
                pointers[s] += 1
                remaining -= 1
                progressed = True
            if not progressed:
                raise RuntimeError("1F1B schedule deadlocked (executor bug)")
        if self.group.pending_messages():
            raise RuntimeError(
                f"{self.group.pending_messages()} unconsumed pipeline "
                "messages after the step"
            )
        merged: Params = {}
        for s in range(n):
            overlap = merged.keys() & stage_grads[s].keys()
            if overlap:
                raise RuntimeError(
                    f"stages produced overlapping gradients: {sorted(overlap)}"
                )
            merged.update(stage_grads[s])
        self.last_op_durations = op_durations
        self.last_comm_durations = comm_durations
        self.last_microbatches = m
        return _mean_loss([l for l in losses if l is not None]), (
            _finalize_grads(merged, m)
        )

    # -- bubble accounting --------------------------------------------------

    def measured_bubble_fraction(self) -> float:
        """Replay the last step's measured op durations through the 1F1B
        task graph and return the stage-aggregate bubble fraction.

        The serial in-process run has no real concurrency, so this is the
        honest "measured" number: actual per-op wall times, laid out on
        the schedule a parallel machine would execute.
        """
        if not self.last_op_durations:
            raise RuntimeError("no pipelined step has run yet")
        n, m = self.n_stages, self.last_microbatches
        send = (
            float(np.mean(self.last_comm_durations))
            if self.last_comm_durations else 0.0
        )
        durations = self.last_op_durations
        tasks = build_1f1b_tasks(
            n, m,
            lambda s, j: durations[("F", s, j)],
            lambda s, j: durations[("B", s, j)],
            send_time=send,
        )
        sim = ScheduleSimulator(
            [f"pp.stage{s}" for s in range(n)]
            + [f"pp.link{s}" for s in range(n - 1)]
        )
        return pipeline_bubble_fraction(sim.run(tasks), n)

    def predicted_bubble_fraction(self) -> float:
        """The analytic uniform-stage prediction ``(p-1)/(m+p-1)``."""
        if not self.last_microbatches:
            raise RuntimeError("no pipelined step has run yet")
        return ideal_1f1b_bubble(self.n_stages, self.last_microbatches)


def simulated_bubble_fraction(
    n_stages: int,
    n_microbatches: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
    send_time: float = 0.0,
) -> float:
    """Bubble fraction of a modeled 1F1B timeline (uniform stage costs).

    With ``send_time == 0`` this reproduces the analytic
    ``(p-1)/(m+p-1)`` exactly — the simulator-side prediction the
    substrate's measured replay is compared against.
    """
    tasks = build_1f1b_tasks(
        n_stages, n_microbatches, fwd_time, bwd_time, send_time=send_time
    )
    sim = ScheduleSimulator(
        [f"pp.stage{s}" for s in range(n_stages)]
        + [f"pp.link{s}" for s in range(n_stages - 1)]
    )
    return pipeline_bubble_fraction(sim.run(tasks), n_stages)
