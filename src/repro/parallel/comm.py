"""In-process simulated collectives.

A :class:`SimProcessGroup` holds per-rank buffers and implements the
collectives the training systems need.  Semantics match NCCL's (sum
reductions, rank-ordered gathers); determinism is guaranteed by fixed
reduction order.

Every collective reports to the (optional) telemetry registry: a
``collective_calls_total{op=...}`` counter and a
``collective_bytes_total{op=...}`` counter of *payload* bytes — the sum of
the application buffers handed to the call, not modeled wire traffic
(algorithm-dependent wire volumes live in :mod:`repro.sim.collectives`).
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

import numpy as np

from repro.telemetry import NULL_TELEMETRY, Telemetry


class SimProcessGroup:
    """A simulated communicator over ``world_size`` ranks.

    All methods take/return lists indexed by rank, making data placement
    explicit in the caller — the tests read like little MPI programs.

    Args:
        world_size: rank count.
        telemetry: sink for the collective counters (no-op by default).
    """

    def __init__(self, world_size: int, telemetry: Telemetry | None = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._mailboxes: dict[tuple[int, int, int], deque] = {}

    def _check(self, per_rank: Sequence[np.ndarray]) -> None:
        if len(per_rank) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(per_rank)}"
            )

    def count_payload(self, op: str, payload_bytes: int) -> None:
        """Account one collective's payload without executing it.

        Fused or overlapped dataflows (the pipelined ZeRO bucket step)
        move the same bytes a collective would but bypass the entry
        points above; they call this so the ``collective_*`` counters
        stay comparable with the serial dataflow's.
        """
        metrics = self.telemetry.metrics
        metrics.counter("collective_calls_total", op=op).inc()
        metrics.counter("collective_bytes_total", op=op).inc(payload_bytes)

    def _count(self, op: str, payload_bytes: int) -> None:
        self.count_payload(op, payload_bytes)

    def all_reduce(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Sum across ranks; every rank receives the total."""
        self._check(per_rank)
        self._count("all_reduce", sum(b.nbytes for b in per_rank))
        total = per_rank[0].copy()
        for buf in per_rank[1:]:
            total = total + buf
        return [total.copy() for _ in range(self.world_size)]

    def reduce_scatter(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Sum across ranks, then rank ``r`` keeps the r-th equal chunk.

        Buffers must be flat with length divisible by the world size.
        """
        self._check(per_rank)
        n = per_rank[0].size
        if n % self.world_size:
            raise ValueError("buffer length not divisible by world size")
        self._count("reduce_scatter", sum(b.nbytes for b in per_rank))
        total = self._sum(per_rank).reshape(-1)
        chunk = n // self.world_size
        return [
            total[r * chunk : (r + 1) * chunk].copy()
            for r in range(self.world_size)
        ]

    def _sum(self, per_rank: Sequence[np.ndarray]) -> np.ndarray:
        total = per_rank[0].copy()
        for buf in per_rank[1:]:
            total = total + buf
        return total

    def all_gather(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Concatenate rank chunks; every rank receives the full buffer."""
        self._check(per_rank)
        self._count("all_gather", sum(b.nbytes for b in per_rank))
        full = np.concatenate([np.asarray(b).reshape(-1) for b in per_rank])
        return [full.copy() for _ in range(self.world_size)]

    def all_gather_into(
        self, per_rank: Sequence[np.ndarray], out: np.ndarray
    ) -> np.ndarray:
        """All-gather rank chunks directly into a caller-owned flat buffer.

        The zero-copy twin of :meth:`all_gather` for the arena-backed
        ZeRO step: when a rank's chunk already *is* the destination slice
        (it was updated in place inside the arena), the write is skipped
        entirely — the gather is a no-op for that rank.  Payload
        accounting is identical to :meth:`all_gather`.
        """
        self._check(per_rank)
        total = sum(np.asarray(b).size for b in per_rank)
        if total != out.size:
            raise ValueError(
                f"gathering {total} elements into a buffer of {out.size}"
            )
        self._count("all_gather", sum(b.nbytes for b in per_rank))
        cursor = 0
        for chunk in per_rank:
            flat = np.asarray(chunk).reshape(-1)
            dst = out[cursor:cursor + flat.size]
            if not np.shares_memory(dst, flat):
                dst[...] = flat
            cursor += flat.size
        return out

    def broadcast(self, buf: np.ndarray) -> List[np.ndarray]:
        """Every rank receives a copy of ``buf``."""
        self._count("broadcast", buf.nbytes * self.world_size)
        return [buf.copy() for _ in range(self.world_size)]

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"{what} rank {rank} out of range for world size {self.world_size}"
            )

    def send(self, buf: np.ndarray, src: int, dst: int, tag: int = 0) -> None:
        """Point-to-point send from ``src`` to ``dst``.

        The payload is copied into an in-order mailbox keyed by
        ``(src, dst, tag)``; a matching :meth:`recv` dequeues it.  Used by
        the 1F1B pipeline schedule to move activations forward and
        gradients backward between stages; traffic is accounted like the
        collectives (``op="send"``) and traced as a ``pp_send`` span so
        the profiler can attribute pipeline communication.
        """
        self._check_rank(src, "send src")
        self._check_rank(dst, "send dst")
        if src == dst:
            raise ValueError("send src and dst must differ")
        payload = np.asarray(buf)
        with self.telemetry.tracer.span(
            "pp_send", category="pp_comm", src=src, dst=dst,
            bytes=int(payload.nbytes),
        ):
            self._count("send", payload.nbytes)
            self._mailboxes.setdefault((src, dst, tag), deque()).append(
                payload.copy()
            )

    def recv(self, src: int, dst: int, tag: int = 0) -> np.ndarray:
        """Point-to-point receive at ``dst`` of the oldest matching send.

        Raises ``RuntimeError`` if no matching send is pending — in this
        in-process simulation a premature recv is a deadlock, not a wait.
        """
        self._check_rank(src, "recv src")
        self._check_rank(dst, "recv dst")
        box = self._mailboxes.get((src, dst, tag))
        if not box:
            raise RuntimeError(
                f"recv with no matching send (src={src}, dst={dst}, tag={tag})"
            )
        with self.telemetry.tracer.span(
            "pp_recv", category="pp_comm", src=src, dst=dst,
            bytes=int(box[0].nbytes),
        ):
            payload = box.popleft()
            self._count("recv", payload.nbytes)
            return payload

    def pending_messages(self) -> int:
        """Number of sent-but-unreceived point-to-point payloads."""
        return sum(len(box) for box in self._mailboxes.values())

    def all_to_all(self, per_rank: Sequence[List[np.ndarray]]) -> List[List[np.ndarray]]:
        """Transpose the (sender, receiver) matrix of buffers.

        ``per_rank[s][r]`` is what sender ``s`` addresses to receiver ``r``;
        the result's ``[r][s]`` is what receiver ``r`` got from sender ``s``.
        """
        self._check(per_rank)
        for s, outbox in enumerate(per_rank):
            if len(outbox) != self.world_size:
                raise ValueError(f"rank {s} outbox has {len(outbox)} entries")
        self._count(
            "all_to_all",
            sum(buf.nbytes for outbox in per_rank for buf in outbox),
        )
        return [
            [per_rank[s][r].copy() for s in range(self.world_size)]
            for r in range(self.world_size)
        ]
