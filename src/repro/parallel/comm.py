"""In-process simulated collectives.

A :class:`SimProcessGroup` holds per-rank buffers and implements the
collectives the training systems need.  Semantics match NCCL's (sum
reductions, rank-ordered gathers); determinism is guaranteed by fixed
reduction order.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SimProcessGroup:
    """A simulated communicator over ``world_size`` ranks.

    All methods take/return lists indexed by rank, making data placement
    explicit in the caller — the tests read like little MPI programs.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size

    def _check(self, per_rank: Sequence[np.ndarray]) -> None:
        if len(per_rank) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(per_rank)}"
            )

    def all_reduce(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Sum across ranks; every rank receives the total."""
        self._check(per_rank)
        total = per_rank[0].copy()
        for buf in per_rank[1:]:
            total = total + buf
        return [total.copy() for _ in range(self.world_size)]

    def reduce_scatter(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Sum across ranks, then rank ``r`` keeps the r-th equal chunk.

        Buffers must be flat with length divisible by the world size.
        """
        self._check(per_rank)
        n = per_rank[0].size
        if n % self.world_size:
            raise ValueError("buffer length not divisible by world size")
        total = self.all_reduce(per_rank)[0].reshape(-1)
        chunk = n // self.world_size
        return [
            total[r * chunk : (r + 1) * chunk].copy()
            for r in range(self.world_size)
        ]

    def all_gather(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Concatenate rank chunks; every rank receives the full buffer."""
        self._check(per_rank)
        full = np.concatenate([np.asarray(b).reshape(-1) for b in per_rank])
        return [full.copy() for _ in range(self.world_size)]

    def broadcast(self, buf: np.ndarray) -> List[np.ndarray]:
        """Every rank receives a copy of ``buf``."""
        return [buf.copy() for _ in range(self.world_size)]

    def all_to_all(self, per_rank: Sequence[List[np.ndarray]]) -> List[List[np.ndarray]]:
        """Transpose the (sender, receiver) matrix of buffers.

        ``per_rank[s][r]`` is what sender ``s`` addresses to receiver ``r``;
        the result's ``[r][s]`` is what receiver ``r`` got from sender ``s``.
        """
        self._check(per_rank)
        for s, outbox in enumerate(per_rank):
            if len(outbox) != self.world_size:
                raise ValueError(f"rank {s} outbox has {len(outbox)} entries")
        return [
            [per_rank[s][r].copy() for s in range(self.world_size)]
            for r in range(self.world_size)
        ]
