"""Ulysses-style sequence parallelism (numeric substrate of §4.7).

Input activations are sharded along the *sequence* dimension.  Around each
attention block, an all-to-all re-shards to the *head* dimension so every
rank sees the full sequence for its subset of heads (attention needs global
sequence context), computes standard attention, and a second all-to-all
restores sequence sharding.  The tests assert the two-exchange pipeline is
exactly equivalent to single-rank attention.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.numeric.attention import MultiHeadAttention
from repro.parallel.comm import SimProcessGroup


def all_to_all_4d(
    shards: List[np.ndarray], group: SimProcessGroup, scatter_heads: bool
) -> List[np.ndarray]:
    """Ulysses' re-sharding collective over ``(b, heads, seq, dim)`` shards.

    Args:
        shards: per-rank arrays.  With ``scatter_heads=True`` each rank
            holds all heads for a sequence shard and receives all sequence
            for a head shard; ``False`` performs the inverse.
        group: the communicator.
        scatter_heads: direction of the exchange.

    Returns:
        Per-rank re-sharded arrays.
    """
    p = group.world_size
    group.telemetry.metrics.counter(
        "ulysses_reshards_total",
        direction="scatter_heads" if scatter_heads else "gather_seq",
    ).inc()
    outboxes: List[List[np.ndarray]] = []
    for shard in shards:
        b, heads, seq, dim = shard.shape
        if scatter_heads:
            if heads % p:
                raise ValueError(f"heads {heads} not divisible by world {p}")
            chunk = heads // p
            outboxes.append(
                [shard[:, r * chunk : (r + 1) * chunk] for r in range(p)]
            )
        else:
            if seq % p:
                raise ValueError(f"seq {seq} not divisible by world {p}")
            chunk = seq // p
            outboxes.append(
                [shard[:, :, r * chunk : (r + 1) * chunk] for r in range(p)]
            )
    inboxes = group.all_to_all(outboxes)
    out: List[np.ndarray] = []
    for inbox in inboxes:
        # Senders are ordered by rank; sender s contributed its sequence
        # (or head) chunk, so concatenation along the complementary axis
        # reassembles the full dimension.
        axis = 2 if scatter_heads else 1
        out.append(np.concatenate(inbox, axis=axis))
    return out


class UlyssesAttention:
    """Sequence-parallel causal attention over simulated ranks.

    Args:
        n_heads: total attention heads (must divide by world size).
        group: the communicator.
        backend: per-rank attention core — ``"dense"`` (bitwise
            reference) or ``"streaming"`` (blocked online-softmax).  The
            exchanges are backend-agnostic: each rank runs the chosen
            core over its full-sequence head shard.
        block_q, block_k: streaming tile sides.
        pool: kernel pool for the streaming tile fan-out.
    """

    def __init__(
        self,
        n_heads: int,
        group: SimProcessGroup,
        backend: str = "dense",
        block_q: int | None = None,
        block_k: int | None = None,
        pool=None,
    ):
        if n_heads % group.world_size:
            raise ValueError(
                f"heads {n_heads} must divide across {group.world_size} ranks"
            )
        self.attn = MultiHeadAttention(
            n_heads, backend=backend, block_q=block_q, block_k=block_k,
            pool=pool, telemetry=group.telemetry,
        )
        self.group = group

    def forward(
        self, qkv_shards: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[Tuple]]:
        """Attention over per-rank ``(b, seq/P, 3h)`` fused qkv shards.

        Returns per-rank ``(b, seq/P, h)`` outputs and backward caches.
        """
        p = self.group.world_size
        if len(qkv_shards) != p:
            raise ValueError("one qkv shard per rank required")
        h = qkv_shards[0].shape[-1] // 3
        q_shards, k_shards, v_shards = [], [], []
        for shard in qkv_shards:
            q_shards.append(self.attn.split_heads(shard[..., :h]))
            k_shards.append(self.attn.split_heads(shard[..., h : 2 * h]))
            v_shards.append(self.attn.split_heads(shard[..., 2 * h :]))
        # First all-to-all: sequence-sharded -> head-sharded (full sequence).
        q_full = all_to_all_4d(q_shards, self.group, scatter_heads=True)
        k_full = all_to_all_4d(k_shards, self.group, scatter_heads=True)
        v_full = all_to_all_4d(v_shards, self.group, scatter_heads=True)
        contexts, caches = [], []
        for r in range(p):
            ctx, cache = self.attn.attend(
                q_full[r], k_full[r], v_full[r], causal=True
            )
            contexts.append(ctx)
            caches.append(cache)
        # Second all-to-all: head-sharded -> sequence-sharded.
        ctx_shards = all_to_all_4d(contexts, self.group, scatter_heads=False)
        outputs = [self.attn.merge_heads(c) for c in ctx_shards]
        return outputs, caches

    def backward(
        self, dout_shards: List[np.ndarray], caches: List[Tuple]
    ) -> List[np.ndarray]:
        """Gradients w.r.t. the per-rank fused qkv shards.

        Mirrors the forward exchanges in reverse (all-to-all is its own
        adjoint up to the re-sharding direction).
        """
        p = self.group.world_size
        dctx_seq = [self.attn.split_heads(d) for d in dout_shards]
        dctx_heads = all_to_all_4d(dctx_seq, self.group, scatter_heads=True)
        dq_full, dk_full, dv_full = [], [], []
        for r in range(p):
            dq, dk, dv = self.attn.attend_backward(dctx_heads[r], caches[r])
            dq_full.append(dq)
            dk_full.append(dk)
            dv_full.append(dv)
        dq_seq = all_to_all_4d(dq_full, self.group, scatter_heads=False)
        dk_seq = all_to_all_4d(dk_full, self.group, scatter_heads=False)
        dv_seq = all_to_all_4d(dv_full, self.group, scatter_heads=False)
        out = []
        for r in range(p):
            out.append(
                np.concatenate(
                    [
                        self.attn.merge_heads(dq_seq[r]),
                        self.attn.merge_heads(dk_seq[r]),
                        self.attn.merge_heads(dv_seq[r]),
                    ],
                    axis=-1,
                )
            )
        return out
