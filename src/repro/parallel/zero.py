"""ZeRO-style sharded optimization (numeric substrate of §4.7).

:class:`ZeroShardedAdam` partitions the flattened parameter space across
ranks.  Each rank owns one contiguous shard of the fp32 master weights and
optimizer moments (ZeRO-1/2/3 all share this optimizer-state partitioning;
the stages differ in what *else* is sharded, which the performance
simulator models).  A step is: reduce-scatter gradients -> owned-shard Adam
update -> all-gather updated parameters.  The tests assert the result is
bitwise identical to an unsharded Adam step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import tune
from repro.exec import kernels
from repro.exec.pool import KernelPool, get_pool
from repro.optim.adam import AdamConfig
from repro.optim.implementations import GraceAdam
from repro.parallel.comm import SimProcessGroup
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.arena import FlatArena
from repro.tensors.errors import TensorValidationError
from repro.tensors.pinned import PinnedBufferPool

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class ZeroConfig:
    """ZeRO behaviour switches.

    Attributes:
        stage: 1, 2, or 3 (affects what the performance model shards; the
            numeric update path is identical).
        average_gradients: divide the reduce-scatter result by world size
            (standard DP loss averaging).
    """

    stage: int = 2
    average_gradients: bool = True

    def __post_init__(self) -> None:
        if self.stage not in (1, 2, 3):
            raise ValueError("ZeRO stage must be 1, 2, or 3")


@dataclass(frozen=True)
class ShardLayout:
    """Mapping between the flat parameter space and named tensors."""

    names: Tuple[str, ...]
    offsets: Tuple[int, ...]   # start offset per name
    shapes: Tuple[Tuple[int, ...], ...]
    total: int                 # padded flat length (divisible by world)
    unpadded: int


def partition_params(params: Params, world_size: int) -> ShardLayout:
    """Build the flat layout used for sharding, padded to the world size."""
    names = tuple(params)
    offsets = []
    shapes = []
    cursor = 0
    for name in names:
        offsets.append(cursor)
        shapes.append(params[name].shape)
        cursor += params[name].size
    padded = ((cursor + world_size - 1) // world_size) * world_size
    return ShardLayout(
        names=names,
        offsets=tuple(offsets),
        shapes=tuple(shapes),
        total=padded,
        unpadded=cursor,
    )


class ZeroShardedAdam:
    """Adam with ZeRO-partitioned optimizer states over simulated ranks.

    In the default zero-copy mode the master parameters live in a
    :class:`FlatArena` (the caller's dict is adopted — its values become
    views of one padded flat buffer) and rank ``r``'s optimizer operates
    directly on ``arena.shard(r)``.  The ZeRO dataflow then has no
    flatten or unflatten stage: reduce-scatter output is averaged in
    place, the shard Adam writes straight into the arena, and the
    all-gather is alias-detected into a no-op.

    ``zero_copy=False`` keeps the historical dict-copy dataflow
    (flatten -> reduce-scatter -> update private shards -> all-gather ->
    unflatten); it exists as the measured baseline for ``repro bench``.

    ``pipeline=True`` (zero-copy only) overlaps the step the way
    SuperOffload's engine does (§4.7): the flat space is cut into
    buckets, bucket *k*'s reduce-scatter runs on the kernel pool while
    the calling thread applies bucket *k-1*'s shard Adam, and the
    all-gather is the same alias-detected no-op.  Reduction keeps the
    serial left-fold rank order per bucket and the Adam kernel is the
    fused chunk kernel, so the pipelined step is bitwise identical to
    the serial :meth:`step_flat` (the ``tests/parallel`` suite holds
    this).  The two staging buckets are double-buffered through an
    optional :class:`PinnedBufferPool`, modelling the page-locked
    transfer buffers a real engine keeps.

    Args:
        params: shared fp32 master parameters (updated in place — in a real
            deployment every rank holds the gathered fp16 copy; here the
            single master dict stands in for it).
        world_size: number of simulated ranks.
        config: Adam hyperparameters.
        zero: ZeRO behaviour switches.
        telemetry: span/counter sink shared with the internal communicator
            (no-op by default).
        zero_copy: arena-backed dataflow (default) vs. dict-copy baseline.
        pipeline: overlap bucket reduce with shard Adam (requires
            ``zero_copy=True``).
        bucket_elements: pipelined bucket size in fp32 elements; buckets
            never cross a shard boundary, so the effective size is capped
            at the shard length.  ``None`` resolves the
            ``zero.bucket_elements`` tunable (registry default, or the
            host-measured value when a tuning profile is active).
        pool: kernel pool the overlapped reduces and chunked Adam run on
            (``None`` uses the process default).
        pinned_pool: optional pinned-memory pool the two staging buckets
            are reserved from; reservations are released by
            :meth:`release_staging`.
    """

    def __init__(
        self,
        params: Params,
        world_size: int,
        config: AdamConfig | None = None,
        zero: ZeroConfig | None = None,
        telemetry: Telemetry | None = None,
        zero_copy: bool = True,
        pipeline: bool = False,
        bucket_elements: int | None = None,
        pool: KernelPool | None = None,
        pinned_pool: PinnedBufferPool | None = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if pipeline and not zero_copy:
            raise ValueError("pipeline=True requires zero_copy=True")
        if bucket_elements is None:
            bucket_elements = tune.value("zero.bucket_elements")
        if bucket_elements < 1:
            raise ValueError("bucket_elements must be >= 1")
        self.params = params
        self.world_size = world_size
        self.zero = zero or ZeroConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.group = SimProcessGroup(world_size, telemetry=self.telemetry)
        self.layout = partition_params(params, world_size)
        shard_len = self.layout.total // world_size
        self._shard_len = shard_len
        self.zero_copy = zero_copy
        self.pipeline = pipeline
        self.bucket_elements = min(bucket_elements, shard_len)
        self._pool = pool
        self._pinned_pool = pinned_pool
        self._staging: List[np.ndarray] = []
        self._staging_allocs: list = []
        self.arena: Optional[FlatArena] = None
        self._grad_arenas: Dict[int, FlatArena] = {}
        self._rank_optimizers: List[GraceAdam] = []
        if zero_copy:
            self.arena = FlatArena.adopt(
                params, world_size, telemetry=self.telemetry
            )
            # Rank r owns arena.shard(r) as a *view*: its Adam updates land
            # directly in the master flat buffer.
            for r in range(world_size):
                self._rank_optimizers.append(
                    GraceAdam({"shard": self.arena.shard(r)},
                              config or AdamConfig())
                )
        else:
            flat = self._flatten(params)
            # Rank r owns a private copy of flat[r*shard : (r+1)*shard].
            for r in range(world_size):
                shard = flat[r * shard_len : (r + 1) * shard_len].copy()
                self._rank_optimizers.append(
                    GraceAdam({"shard": shard}, config or AdamConfig())
                )

    def _flatten(self, tensors: Params) -> np.ndarray:
        flat = np.zeros(self.layout.total, dtype=np.float32)
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            flat[offset : offset + size] = np.asarray(
                tensors[name], dtype=np.float32
            ).reshape(-1)
        return flat

    def _unflatten_into(self, flat: np.ndarray, out: Params) -> None:
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            out[name][...] = flat[offset : offset + size].reshape(shape)

    def owned_slice(self, rank: int) -> Tuple[int, int]:
        """Flat [start, stop) owned by ``rank``."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        return rank * self._shard_len, (rank + 1) * self._shard_len

    def grad_arena(self, rank: int) -> FlatArena:
        """Rank ``rank``'s persistent gradient arena (zero-copy mode only).

        Producers that can write gradients into this arena's views (or
        its flat buffer) make :meth:`step` fully copy-free; it is also
        the reusable landing zone :meth:`step` ingests plain dicts into.
        """
        if self.arena is None:
            raise RuntimeError("gradient arenas require zero_copy=True")
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        ga = self._grad_arenas.get(rank)
        if ga is None:
            ga = self.arena.like()
            self._grad_arenas[rank] = ga
        return ga

    def step(self, per_rank_grads: Sequence[Params]) -> None:
        """One sharded update from per-rank gradient dicts.

        Implements the ZeRO dataflow: reduce-scatter -> local Adam on the
        owned shard -> all-gather the updated parameters back into
        ``self.params``.  In zero-copy mode, gradient dicts that already
        alias an arena with this layout are used in place; others are
        ingested into persistent per-rank gradient arenas (one counted
        copy), and the rest of the step moves no parameter bytes.
        """
        if len(per_rank_grads) != self.world_size:
            raise ValueError("one gradient dict per rank required")
        if not self.zero_copy:
            self._step_dict_copy(per_rank_grads)
            return
        flats: List[np.ndarray] = []
        for r, grads in enumerate(per_rank_grads):
            flat = self.arena.flat_of(grads)
            if flat is None:
                ga = self.grad_arena(r)
                ga.fill_from(grads)
                flat = ga.flat
            flats.append(flat)
        self.step_flat(flats)

    def step_flat(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """One sharded update from per-rank *flat* gradient buffers.

        The fully zero-copy entry point: each buffer must be a dense fp32
        vector of the padded flat length (e.g. ``grad_arena(r).flat``).
        The reduce-scatter chunks are averaged in place, each shard Adam
        updates its arena view directly, and the all-gather skips every
        chunk that already aliases its destination.
        """
        if self.arena is None:
            raise RuntimeError("step_flat requires zero_copy=True")
        if len(per_rank_flat) != self.world_size:
            raise ValueError("one flat gradient buffer per rank required")
        total = self.layout.total
        for r, flat in enumerate(per_rank_flat):
            if (not isinstance(flat, np.ndarray) or flat.ndim != 1
                    or flat.dtype != np.float32 or flat.size != total):
                raise TensorValidationError(
                    f"rank {r} flat gradient must be a 1-D fp32 array of "
                    f"length {total}"
                )
        if self.pipeline and total >= tune.value(
            "zero.min_pipeline", 0, size=total
        ):
            # Below the tuned crossover the double-buffer staging and
            # submit round-trips cost more than the overlap saves; the
            # serial dataflow is bitwise identical, so falling back is
            # free.  Untuned, the crossover is 0: always pipeline,
            # exactly the pre-tuner behaviour.
            self._step_flat_pipelined(per_rank_flat)
            return
        tracer = self.telemetry.tracer
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size):
            with tracer.span("grad_reduce", category="comm",
                             op="reduce_scatter"):
                shards = self.group.reduce_scatter(per_rank_flat)
                if self.zero.average_gradients:
                    for s in shards:
                        s /= np.float32(self.world_size)
            for r, opt in enumerate(self._rank_optimizers):
                with tracer.span("shard_adam", category="optim", rank=r):
                    opt.step({"shard": shards[r]})
            with tracer.span("param_gather", category="comm",
                             op="all_gather"):
                self.group.all_gather_into(
                    [opt.params["shard"] for opt in self._rank_optimizers],
                    self.arena.flat,
                )
                # The unflatten stage the dict-copy dataflow needed.
                self.arena.note_alias(self.arena.flat.nbytes)

    def _ensure_staging(self) -> List[np.ndarray]:
        """The two bucket staging buffers (lazily built, reused per step).

        When a :class:`PinnedBufferPool` was provided, each buffer's
        bytes are reserved from it (tagged ``zero_bucket_staging``); a
        full pool degrades to unpinned staging, exactly the pageable
        fallback §4.5 describes.
        """
        if not self._staging:
            nbytes = self.bucket_elements * 4
            for i in range(2):
                self._staging.append(
                    np.empty(self.bucket_elements, dtype=np.float32)
                )
                if self._pinned_pool is not None:
                    alloc = self._pinned_pool.try_reserve(
                        nbytes, tag=f"zero_bucket_staging_{i}"
                    )
                    if alloc is not None:
                        self._staging_allocs.append(alloc)
        return self._staging

    def release_staging(self) -> None:
        """Drop the staging buffers and return their pinned reservations."""
        if self._pinned_pool is not None:
            for alloc in self._staging_allocs:
                self._pinned_pool.release(alloc)
        self._staging_allocs.clear()
        self._staging.clear()

    def _buckets(self) -> List[Tuple[int, int, int]]:
        """(rank, shard-local lo, shard-local hi) in serial rank order.

        Buckets never cross a shard boundary: each one belongs to exactly
        one rank's optimizer, so the per-shard Adam step count and bias
        correction match the unbucketed step.
        """
        out: List[Tuple[int, int, int]] = []
        for r in range(self.world_size):
            for lo in range(0, self._shard_len, self.bucket_elements):
                out.append((r, lo, min(self._shard_len,
                                       lo + self.bucket_elements)))
        return out

    def _step_flat_pipelined(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """The overlapped bucket dataflow (bitwise twin of the serial step).

        Bucket ``k+1``'s reduce-scatter is *submitted* to the kernel pool
        and runs on a worker thread while the calling thread applies
        bucket ``k``'s fused shard Adam — the overlap of §4.7, double-
        buffered through the two staging buckets.  Bitwise identity with
        :meth:`step_flat` holds because (a) each bucket's reduction is
        the same left fold over ranks the serial reduce-scatter performs,
        followed by the same elementwise divide, (b) the fused Adam chunk
        kernel is bitwise identical to the shard optimizer's serial walk,
        and (c) every per-shard step counter is bumped exactly once per
        global step, before that shard's first bucket.  Gradients must
        not alias the parameter arena (they never do: gradient arenas are
        separate buffers) — the overlapped reduce reads them while
        earlier buckets' parameters are being written.
        """
        tracer = self.telemetry.tracer
        divisor = (np.float32(self.world_size)
                   if self.zero.average_gradients else None)
        pool = self._pool if self._pool is not None else get_pool()
        staging = self._ensure_staging()
        buckets = self._buckets()
        shard_len = self._shard_len
        tile = tune.value("adam.cache_tile", kernels.CACHE_TILE,
                          size=self.bucket_elements)

        def submit_reduce(k: int):
            r, blo, bhi = buckets[k]
            glo = r * shard_len + blo
            if not tracer.enabled:
                # Disabled path submits the raw kernel: zero per-bucket
                # tracing overhead when telemetry is off.
                return pool.submit(
                    kernels.reduce_chunk, glo, glo + (bhi - blo),
                    staging[k % 2], glo, per_rank_flat, divisor,
                )

            def traced_reduce(lo, hi, out, base, flats, div,
                              _k=k, _r=r):
                with tracer.span("bucket_reduce", category="comm",
                                 bucket=_k, rank=_r):
                    return kernels.reduce_chunk(lo, hi, out, base,
                                                flats, div)

            return pool.submit(
                traced_reduce, glo, glo + (bhi - blo),
                staging[k % 2], glo, per_rank_flat, divisor,
            )

        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size, pipelined=True,
                         buckets=len(buckets)):
            # The collectives are fused into the bucket loop; account the
            # same payloads the serial entry points would have counted.
            self.group.count_payload(
                "reduce_scatter", sum(b.nbytes for b in per_rank_flat)
            )
            pending = submit_reduce(0)
            hyper = None
            prev_rank = -1
            for k, (r, blo, bhi) in enumerate(buckets):
                with tracer.span("bucket_wait", category="stall", bucket=k):
                    pending.result()
                if k + 1 < len(buckets):
                    pending = submit_reduce(k + 1)
                opt = self._rank_optimizers[r]
                st = opt.state["shard"]
                if r != prev_rank:
                    st.step += 1
                    hyper = kernels.AdamChunkHyper.from_config(
                        opt.config, st.step
                    )
                    prev_rank = r
                with tracer.span("bucket_adam", category="optim",
                                 rank=r, bucket=k):
                    kernels.adam_chunk(
                        0, bhi - blo,
                        opt.params["shard"][blo:bhi],
                        st.m[blo:bhi], st.v[blo:bhi],
                        staging[k % 2][: bhi - blo], hyper, tile,
                    )
            # The all-gather of the serial dataflow: every shard is an
            # arena view, so the gather is pure aliasing — count the
            # payload and the saved copy, move no bytes.
            self.group.count_payload(
                "all_gather",
                sum(opt.params["shard"].nbytes
                    for opt in self._rank_optimizers),
            )
            self.arena.note_alias(self.arena.flat.nbytes)

    def _step_dict_copy(self, per_rank_grads: Sequence[Params]) -> None:
        """The historical flatten/unflatten dataflow (bench baseline)."""
        tracer = self.telemetry.tracer
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size):
            flat_grads = [self._flatten(g) for g in per_rank_grads]
            shards = self.group.reduce_scatter(flat_grads)
            if self.zero.average_gradients:
                shards = [s / np.float32(self.world_size) for s in shards]
            updated: List[np.ndarray] = []
            for r, opt in enumerate(self._rank_optimizers):
                with tracer.span("shard_adam", category="optim", rank=r):
                    opt.step({"shard": shards[r].astype(np.float32)})
                updated.append(opt.params["shard"])
            gathered = self.group.all_gather(updated)[0][: self.layout.total]
            self._unflatten_into(gathered, self.params)

    @property
    def step_count(self) -> int:
        """Steps taken (uniform across shards)."""
        return self._rank_optimizers[0].step_count

    def optimizer_state_bytes_per_rank(self) -> int:
        """Bytes of fp32 (master, m, v) each rank holds — the 12Psi/N of
        ZeRO's memory analysis."""
        return 3 * 4 * self._shard_len
