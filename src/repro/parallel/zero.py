"""ZeRO-style sharded optimization (numeric substrate of §4.7).

:class:`ZeroShardedAdam` partitions the flattened parameter space across
ranks.  Each rank owns one contiguous shard of the fp32 master weights and
optimizer moments (ZeRO-1/2/3 all share this optimizer-state partitioning;
the stages differ in what *else* is sharded, which the performance
simulator models).  A step is: reduce-scatter gradients -> owned-shard Adam
update -> all-gather updated parameters.  The tests assert the result is
bitwise identical to an unsharded Adam step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.optim.adam import AdamConfig
from repro.optim.implementations import GraceAdam
from repro.parallel.comm import SimProcessGroup
from repro.telemetry import NULL_TELEMETRY, Telemetry

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class ZeroConfig:
    """ZeRO behaviour switches.

    Attributes:
        stage: 1, 2, or 3 (affects what the performance model shards; the
            numeric update path is identical).
        average_gradients: divide the reduce-scatter result by world size
            (standard DP loss averaging).
    """

    stage: int = 2
    average_gradients: bool = True

    def __post_init__(self) -> None:
        if self.stage not in (1, 2, 3):
            raise ValueError("ZeRO stage must be 1, 2, or 3")


@dataclass(frozen=True)
class ShardLayout:
    """Mapping between the flat parameter space and named tensors."""

    names: Tuple[str, ...]
    offsets: Tuple[int, ...]   # start offset per name
    shapes: Tuple[Tuple[int, ...], ...]
    total: int                 # padded flat length (divisible by world)
    unpadded: int


def partition_params(params: Params, world_size: int) -> ShardLayout:
    """Build the flat layout used for sharding, padded to the world size."""
    names = tuple(params)
    offsets = []
    shapes = []
    cursor = 0
    for name in names:
        offsets.append(cursor)
        shapes.append(params[name].shape)
        cursor += params[name].size
    padded = ((cursor + world_size - 1) // world_size) * world_size
    return ShardLayout(
        names=names,
        offsets=tuple(offsets),
        shapes=tuple(shapes),
        total=padded,
        unpadded=cursor,
    )


class ZeroShardedAdam:
    """Adam with ZeRO-partitioned optimizer states over simulated ranks.

    Args:
        params: shared fp32 master parameters (updated in place — in a real
            deployment every rank holds the gathered fp16 copy; here the
            single master dict stands in for it).
        world_size: number of simulated ranks.
        config: Adam hyperparameters.
        zero: ZeRO behaviour switches.
        telemetry: span/counter sink shared with the internal communicator
            (no-op by default).
    """

    def __init__(
        self,
        params: Params,
        world_size: int,
        config: AdamConfig | None = None,
        zero: ZeroConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.params = params
        self.world_size = world_size
        self.zero = zero or ZeroConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.group = SimProcessGroup(world_size, telemetry=self.telemetry)
        self.layout = partition_params(params, world_size)
        shard_len = self.layout.total // world_size
        self._shard_len = shard_len
        flat = self._flatten(params)
        # Rank r owns flat[r*shard : (r+1)*shard] via a per-rank GraceAdam.
        self._rank_optimizers: List[GraceAdam] = []
        for r in range(world_size):
            shard = flat[r * shard_len : (r + 1) * shard_len].copy()
            self._rank_optimizers.append(
                GraceAdam({"shard": shard}, config or AdamConfig())
            )

    def _flatten(self, tensors: Params) -> np.ndarray:
        flat = np.zeros(self.layout.total, dtype=np.float32)
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            flat[offset : offset + size] = np.asarray(
                tensors[name], dtype=np.float32
            ).reshape(-1)
        return flat

    def _unflatten_into(self, flat: np.ndarray, out: Params) -> None:
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            out[name][...] = flat[offset : offset + size].reshape(shape)

    def owned_slice(self, rank: int) -> Tuple[int, int]:
        """Flat [start, stop) owned by ``rank``."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        return rank * self._shard_len, (rank + 1) * self._shard_len

    def step(self, per_rank_grads: Sequence[Params]) -> None:
        """One sharded update from per-rank gradient dicts.

        Implements the ZeRO dataflow: reduce-scatter -> local Adam on the
        owned shard -> all-gather the updated parameters back into
        ``self.params``.
        """
        if len(per_rank_grads) != self.world_size:
            raise ValueError("one gradient dict per rank required")
        tracer = self.telemetry.tracer
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size):
            flat_grads = [self._flatten(g) for g in per_rank_grads]
            shards = self.group.reduce_scatter(flat_grads)
            if self.zero.average_gradients:
                shards = [s / np.float32(self.world_size) for s in shards]
            updated: List[np.ndarray] = []
            for r, opt in enumerate(self._rank_optimizers):
                with tracer.span("shard_adam", category="optim", rank=r):
                    opt.step({"shard": shards[r].astype(np.float32)})
                updated.append(opt.params["shard"])
            gathered = self.group.all_gather(updated)[0][: self.layout.total]
            self._unflatten_into(gathered, self.params)

    @property
    def step_count(self) -> int:
        """Steps taken (uniform across shards)."""
        return self._rank_optimizers[0].step_count

    def optimizer_state_bytes_per_rank(self) -> int:
        """Bytes of fp32 (master, m, v) each rank holds — the 12Psi/N of
        ZeRO's memory analysis."""
        return 3 * 4 * self._shard_len
