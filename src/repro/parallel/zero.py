"""ZeRO-style sharded optimization (numeric substrate of §4.7).

:class:`ZeroShardedAdam` partitions the flattened parameter space across
ranks.  Each rank owns one contiguous shard of the fp32 master weights and
optimizer moments (ZeRO-1/2/3 all share this optimizer-state partitioning;
the stages differ in what *else* is sharded, which the performance
simulator models).  A step is: reduce-scatter gradients -> owned-shard Adam
update -> all-gather updated parameters.  The tests assert the result is
bitwise identical to an unsharded Adam step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import tune
from repro.exec import kernels
from repro.exec.pool import KernelPool, get_pool
from repro.optim.adam import AdamConfig
from repro.optim.implementations import GraceAdam
from repro.parallel.comm import SimProcessGroup
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.arena import FlatArena
from repro.tensors.errors import TensorValidationError
from repro.tensors.pinned import PinnedBufferPool
from repro.tensors.spill import SpillArena, SpillTicket, wait_all

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class ZeroConfig:
    """ZeRO behaviour switches.

    Attributes:
        stage: 1, 2, or 3 (affects what the performance model shards; the
            numeric update path is identical).
        average_gradients: divide the reduce-scatter result by world size
            (standard DP loss averaging).
    """

    stage: int = 2
    average_gradients: bool = True

    def __post_init__(self) -> None:
        if self.stage not in (1, 2, 3):
            raise ValueError("ZeRO stage must be 1, 2, or 3")


@dataclass(frozen=True)
class ShardLayout:
    """Mapping between the flat parameter space and named tensors."""

    names: Tuple[str, ...]
    offsets: Tuple[int, ...]   # start offset per name
    shapes: Tuple[Tuple[int, ...], ...]
    total: int                 # padded flat length (divisible by world)
    unpadded: int


def partition_params(params: Params, world_size: int) -> ShardLayout:
    """Build the flat layout used for sharding, padded to the world size."""
    names = tuple(params)
    offsets = []
    shapes = []
    cursor = 0
    for name in names:
        offsets.append(cursor)
        shapes.append(params[name].shape)
        cursor += params[name].size
    padded = ((cursor + world_size - 1) // world_size) * world_size
    return ShardLayout(
        names=names,
        offsets=tuple(offsets),
        shapes=tuple(shapes),
        total=padded,
        unpadded=cursor,
    )


class ZeroShardedAdam:
    """Adam with ZeRO-partitioned optimizer states over simulated ranks.

    In the default zero-copy mode the master parameters live in a
    :class:`FlatArena` (the caller's dict is adopted — its values become
    views of one padded flat buffer) and rank ``r``'s optimizer operates
    directly on ``arena.shard(r)``.  The ZeRO dataflow then has no
    flatten or unflatten stage: reduce-scatter output is averaged in
    place, the shard Adam writes straight into the arena, and the
    all-gather is alias-detected into a no-op.

    ``zero_copy=False`` keeps the historical dict-copy dataflow
    (flatten -> reduce-scatter -> update private shards -> all-gather ->
    unflatten); it exists as the measured baseline for ``repro bench``.

    ``pipeline=True`` (zero-copy only) overlaps the step the way
    SuperOffload's engine does (§4.7): the flat space is cut into
    buckets, bucket *k*'s reduce-scatter runs on the kernel pool while
    the calling thread applies bucket *k-1*'s shard Adam, and the
    all-gather is the same alias-detected no-op.  Reduction keeps the
    serial left-fold rank order per bucket and the Adam kernel is the
    fused chunk kernel, so the pipelined step is bitwise identical to
    the serial :meth:`step_flat` (the ``tests/parallel`` suite holds
    this).  The two staging buckets are double-buffered through an
    optional :class:`PinnedBufferPool`, modelling the page-locked
    transfer buffers a real engine keeps.

    Args:
        params: shared fp32 master parameters (updated in place — in a real
            deployment every rank holds the gathered fp16 copy; here the
            single master dict stands in for it).
        world_size: number of simulated ranks.
        config: Adam hyperparameters.
        zero: ZeRO behaviour switches.
        telemetry: span/counter sink shared with the internal communicator
            (no-op by default).
        zero_copy: arena-backed dataflow (default) vs. dict-copy baseline.
        pipeline: overlap bucket reduce with shard Adam (requires
            ``zero_copy=True``).
        bucket_elements: pipelined bucket size in fp32 elements; buckets
            never cross a shard boundary, so the effective size is capped
            at the shard length.  ``None`` resolves the
            ``zero.bucket_elements`` tunable (registry default, or the
            host-measured value when a tuning profile is active).
        pool: kernel pool the overlapped reduces and chunked Adam run on
            (``None`` uses the process default).
        pinned_pool: optional pinned-memory pool the two staging buckets
            are reserved from; reservations are released by
            :meth:`release_staging`.
        offload: ``"none"`` (resident fp32 moments, default) or
            ``"disk"`` — park the (m, v) moment planes in a
            :class:`SpillArena` under ``spill_dir`` and stream each
            bucket's extents through staging slots.  With
            ``spill_prefetch`` the NVMe read of bucket ``k+1..k+depth``,
            the reduce of bucket ``k+1``, and bucket ``k``'s shard Adam
            overlap three ways; the result is bitwise identical to the
            resident step because fp32 round-trips through disk are
            byte-exact and the bucket order, reduce fold, and per-shard
            step counters are unchanged.  Requires ``zero_copy=True``.
        spill_dir: directory for the moment plane files (disk mode).
        spill_prefetch: overlap the disk reads ahead of the bucket loop;
            ``False`` is the honest non-overlapped baseline the bench
            compares against.
        spill_prefetch_depth: buckets read ahead; ``None`` resolves the
            ``spill.prefetch_depth`` tunable.
        spill_chunk_bytes: spill extent size; ``None`` resolves the
            ``spill.chunk_bytes`` tunable.
    """

    def __init__(
        self,
        params: Params,
        world_size: int,
        config: AdamConfig | None = None,
        zero: ZeroConfig | None = None,
        telemetry: Telemetry | None = None,
        zero_copy: bool = True,
        pipeline: bool = False,
        bucket_elements: int | None = None,
        pool: KernelPool | None = None,
        pinned_pool: PinnedBufferPool | None = None,
        offload: str = "none",
        spill_dir: "str | None" = None,
        spill_prefetch: bool = True,
        spill_prefetch_depth: int | None = None,
        spill_chunk_bytes: int | None = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if pipeline and not zero_copy:
            raise ValueError("pipeline=True requires zero_copy=True")
        if offload not in ("none", "disk"):
            raise ValueError("offload must be 'none' or 'disk'")
        if offload == "disk" and not zero_copy:
            raise ValueError("offload='disk' requires zero_copy=True")
        if offload == "disk" and spill_dir is None:
            raise ValueError("offload='disk' requires spill_dir")
        if bucket_elements is None:
            bucket_elements = tune.value("zero.bucket_elements")
        if bucket_elements < 1:
            raise ValueError("bucket_elements must be >= 1")
        self.params = params
        self.world_size = world_size
        self.zero = zero or ZeroConfig()
        self.config = config or AdamConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.group = SimProcessGroup(world_size, telemetry=self.telemetry)
        self.layout = partition_params(params, world_size)
        shard_len = self.layout.total // world_size
        self._shard_len = shard_len
        self.zero_copy = zero_copy
        self.pipeline = pipeline
        self.bucket_elements = min(bucket_elements, shard_len)
        self._pool = pool
        self._pinned_pool = pinned_pool
        self._staging: List[np.ndarray] = []
        self._staging_allocs: list = []
        self.arena: Optional[FlatArena] = None
        self._grad_arenas: Dict[int, FlatArena] = {}
        self._rank_optimizers: List[GraceAdam] = []
        self.offload = offload
        self.spill: Optional[SpillArena] = None
        self.spill_prefetch = spill_prefetch
        if spill_prefetch_depth is None:
            spill_prefetch_depth = tune.value("spill.prefetch_depth")
        self._prefetch_depth = max(1, spill_prefetch_depth)
        self._disk_steps: List[int] = [0] * world_size
        self._disk_slots: Dict[str, List[np.ndarray]] = {}
        self._disk_slot_allocs: list = []
        if zero_copy:
            self.arena = FlatArena.adopt(
                params, world_size, telemetry=self.telemetry
            )
            if offload == "disk":
                # The (m, v) planes never materialise in host memory:
                # they live in extent-aligned files, zero-filled exactly
                # like freshly allocated moments, and only bucket-sized
                # windows are resident at a time.
                total = self.layout.total
                self.spill = SpillArena(
                    spill_dir, {"m": total, "v": total},
                    chunk_bytes=spill_chunk_bytes,
                    pinned_pool=pinned_pool,
                    telemetry=self.telemetry,
                )
            else:
                # Rank r owns arena.shard(r) as a *view*: its Adam
                # updates land directly in the master flat buffer.
                for r in range(world_size):
                    self._rank_optimizers.append(
                        GraceAdam({"shard": self.arena.shard(r)},
                                  self.config)
                    )
        else:
            flat = self._flatten(params)
            # Rank r owns a private copy of flat[r*shard : (r+1)*shard].
            for r in range(world_size):
                shard = flat[r * shard_len : (r + 1) * shard_len].copy()
                self._rank_optimizers.append(
                    GraceAdam({"shard": shard}, config or AdamConfig())
                )

    def _flatten(self, tensors: Params) -> np.ndarray:
        flat = np.zeros(self.layout.total, dtype=np.float32)
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            flat[offset : offset + size] = np.asarray(
                tensors[name], dtype=np.float32
            ).reshape(-1)
        return flat

    def _unflatten_into(self, flat: np.ndarray, out: Params) -> None:
        for name, offset, shape in zip(
            self.layout.names, self.layout.offsets, self.layout.shapes
        ):
            size = int(np.prod(shape)) if shape else 1
            out[name][...] = flat[offset : offset + size].reshape(shape)

    def owned_slice(self, rank: int) -> Tuple[int, int]:
        """Flat [start, stop) owned by ``rank``."""
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        return rank * self._shard_len, (rank + 1) * self._shard_len

    def grad_arena(self, rank: int) -> FlatArena:
        """Rank ``rank``'s persistent gradient arena (zero-copy mode only).

        Producers that can write gradients into this arena's views (or
        its flat buffer) make :meth:`step` fully copy-free; it is also
        the reusable landing zone :meth:`step` ingests plain dicts into.
        """
        if self.arena is None:
            raise RuntimeError("gradient arenas require zero_copy=True")
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range")
        ga = self._grad_arenas.get(rank)
        if ga is None:
            ga = self.arena.like()
            self._grad_arenas[rank] = ga
        return ga

    def step(self, per_rank_grads: Sequence[Params]) -> None:
        """One sharded update from per-rank gradient dicts.

        Implements the ZeRO dataflow: reduce-scatter -> local Adam on the
        owned shard -> all-gather the updated parameters back into
        ``self.params``.  In zero-copy mode, gradient dicts that already
        alias an arena with this layout are used in place; others are
        ingested into persistent per-rank gradient arenas (one counted
        copy), and the rest of the step moves no parameter bytes.
        """
        if len(per_rank_grads) != self.world_size:
            raise ValueError("one gradient dict per rank required")
        if not self.zero_copy:
            self._step_dict_copy(per_rank_grads)
            return
        flats: List[np.ndarray] = []
        for r, grads in enumerate(per_rank_grads):
            flat = self.arena.flat_of(grads)
            if flat is None:
                ga = self.grad_arena(r)
                ga.fill_from(grads)
                flat = ga.flat
            flats.append(flat)
        self.step_flat(flats)

    def step_flat(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """One sharded update from per-rank *flat* gradient buffers.

        The fully zero-copy entry point: each buffer must be a dense fp32
        vector of the padded flat length (e.g. ``grad_arena(r).flat``).
        The reduce-scatter chunks are averaged in place, each shard Adam
        updates its arena view directly, and the all-gather skips every
        chunk that already aliases its destination.
        """
        if self.arena is None:
            raise RuntimeError("step_flat requires zero_copy=True")
        if len(per_rank_flat) != self.world_size:
            raise ValueError("one flat gradient buffer per rank required")
        total = self.layout.total
        for r, flat in enumerate(per_rank_flat):
            if (not isinstance(flat, np.ndarray) or flat.ndim != 1
                    or flat.dtype != np.float32 or flat.size != total):
                raise TensorValidationError(
                    f"rank {r} flat gradient must be a 1-D fp32 array of "
                    f"length {total}"
                )
        if self.offload == "disk":
            self._step_flat_disk(per_rank_flat)
            return
        if self.pipeline and total >= tune.value(
            "zero.min_pipeline", 0, size=total
        ):
            # Below the tuned crossover the double-buffer staging and
            # submit round-trips cost more than the overlap saves; the
            # serial dataflow is bitwise identical, so falling back is
            # free.  Untuned, the crossover is 0: always pipeline,
            # exactly the pre-tuner behaviour.
            self._step_flat_pipelined(per_rank_flat)
            return
        tracer = self.telemetry.tracer
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size):
            with tracer.span("grad_reduce", category="comm",
                             op="reduce_scatter"):
                shards = self.group.reduce_scatter(per_rank_flat)
                if self.zero.average_gradients:
                    for s in shards:
                        s /= np.float32(self.world_size)
            for r, opt in enumerate(self._rank_optimizers):
                with tracer.span("shard_adam", category="optim", rank=r):
                    opt.step({"shard": shards[r]})
            with tracer.span("param_gather", category="comm",
                             op="all_gather"):
                self.group.all_gather_into(
                    [opt.params["shard"] for opt in self._rank_optimizers],
                    self.arena.flat,
                )
                # The unflatten stage the dict-copy dataflow needed.
                self.arena.note_alias(self.arena.flat.nbytes)

    def _ensure_staging(self) -> List[np.ndarray]:
        """The two bucket staging buffers (lazily built, reused per step).

        When a :class:`PinnedBufferPool` was provided, each buffer's
        bytes are reserved from it (tagged ``zero_bucket_staging``); a
        full pool degrades to unpinned staging, exactly the pageable
        fallback §4.5 describes.
        """
        if not self._staging:
            nbytes = self.bucket_elements * 4
            for i in range(2):
                self._staging.append(
                    np.empty(self.bucket_elements, dtype=np.float32)
                )
                if self._pinned_pool is not None:
                    alloc = self._pinned_pool.try_reserve(
                        nbytes, tag=f"zero_bucket_staging_{i}"
                    )
                    if alloc is not None:
                        self._staging_allocs.append(alloc)
        return self._staging

    def release_staging(self) -> None:
        """Drop the staging buffers and return their pinned reservations."""
        if self._pinned_pool is not None:
            for alloc in self._staging_allocs:
                self._pinned_pool.release(alloc)
            for alloc in self._disk_slot_allocs:
                self._pinned_pool.release(alloc)
        self._staging_allocs.clear()
        self._staging.clear()
        self._disk_slot_allocs.clear()
        self._disk_slots.clear()

    def close_spill(self) -> None:
        """Drain and close the spill arena (disk mode; idempotent)."""
        if self.spill is not None:
            self.spill.close()

    def _ensure_disk_slots(self, n_slots: int) -> Dict[str, List[np.ndarray]]:
        """Per-plane staging slot rings for the disk-offloaded step.

        Each of the ``n_slots`` slots per plane holds one bucket's
        extents; slot bytes are reserved from the pinned pool when one
        was provided (tagged ``spill_slot``), degrading to pageable
        buffers when it is exhausted.
        """
        if self._disk_slots and len(self._disk_slots["m"]) != n_slots:
            # Prefetch shape changed (e.g. toggled off): rebuild.
            if self._pinned_pool is not None:
                for alloc in self._disk_slot_allocs:
                    self._pinned_pool.release(alloc)
            self._disk_slot_allocs.clear()
            self._disk_slots.clear()
        if not self._disk_slots:
            nbytes = self.bucket_elements * 4
            for plane in ("m", "v"):
                slots = []
                for i in range(n_slots):
                    slots.append(
                        np.empty(self.bucket_elements, dtype=np.float32)
                    )
                    if self._pinned_pool is not None:
                        alloc = self._pinned_pool.try_reserve(
                            nbytes, tag=f"spill_slot_{plane}{i}"
                        )
                        if alloc is not None:
                            self._disk_slot_allocs.append(alloc)
                self._disk_slots[plane] = slots
        return self._disk_slots

    def _buckets(self) -> List[Tuple[int, int, int]]:
        """(rank, shard-local lo, shard-local hi) in serial rank order.

        Buckets never cross a shard boundary: each one belongs to exactly
        one rank's optimizer, so the per-shard Adam step count and bias
        correction match the unbucketed step.
        """
        out: List[Tuple[int, int, int]] = []
        for r in range(self.world_size):
            for lo in range(0, self._shard_len, self.bucket_elements):
                out.append((r, lo, min(self._shard_len,
                                       lo + self.bucket_elements)))
        return out

    def _step_flat_pipelined(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """The overlapped bucket dataflow (bitwise twin of the serial step).

        Bucket ``k+1``'s reduce-scatter is *submitted* to the kernel pool
        and runs on a worker thread while the calling thread applies
        bucket ``k``'s fused shard Adam — the overlap of §4.7, double-
        buffered through the two staging buckets.  Bitwise identity with
        :meth:`step_flat` holds because (a) each bucket's reduction is
        the same left fold over ranks the serial reduce-scatter performs,
        followed by the same elementwise divide, (b) the fused Adam chunk
        kernel is bitwise identical to the shard optimizer's serial walk,
        and (c) every per-shard step counter is bumped exactly once per
        global step, before that shard's first bucket.  Gradients must
        not alias the parameter arena (they never do: gradient arenas are
        separate buffers) — the overlapped reduce reads them while
        earlier buckets' parameters are being written.
        """
        tracer = self.telemetry.tracer
        divisor = (np.float32(self.world_size)
                   if self.zero.average_gradients else None)
        pool = self._pool if self._pool is not None else get_pool()
        staging = self._ensure_staging()
        buckets = self._buckets()
        shard_len = self._shard_len
        tile = tune.value("adam.cache_tile", kernels.CACHE_TILE,
                          size=self.bucket_elements)

        def submit_reduce(k: int):
            r, blo, bhi = buckets[k]
            glo = r * shard_len + blo
            if not tracer.enabled:
                # Disabled path submits the raw kernel: zero per-bucket
                # tracing overhead when telemetry is off.
                return pool.submit(
                    kernels.reduce_chunk, glo, glo + (bhi - blo),
                    staging[k % 2], glo, per_rank_flat, divisor,
                )

            def traced_reduce(lo, hi, out, base, flats, div,
                              _k=k, _r=r):
                with tracer.span("bucket_reduce", category="comm",
                                 bucket=_k, rank=_r):
                    return kernels.reduce_chunk(lo, hi, out, base,
                                                flats, div)

            return pool.submit(
                traced_reduce, glo, glo + (bhi - blo),
                staging[k % 2], glo, per_rank_flat, divisor,
            )

        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size, pipelined=True,
                         buckets=len(buckets)):
            # The collectives are fused into the bucket loop; account the
            # same payloads the serial entry points would have counted.
            self.group.count_payload(
                "reduce_scatter", sum(b.nbytes for b in per_rank_flat)
            )
            pending = submit_reduce(0)
            hyper = None
            prev_rank = -1
            for k, (r, blo, bhi) in enumerate(buckets):
                with tracer.span("bucket_wait", category="stall", bucket=k):
                    pending.result()
                if k + 1 < len(buckets):
                    pending = submit_reduce(k + 1)
                opt = self._rank_optimizers[r]
                st = opt.state["shard"]
                if r != prev_rank:
                    st.step += 1
                    hyper = kernels.AdamChunkHyper.from_config(
                        opt.config, st.step
                    )
                    prev_rank = r
                with tracer.span("bucket_adam", category="optim",
                                 rank=r, bucket=k):
                    kernels.adam_chunk(
                        0, bhi - blo,
                        opt.params["shard"][blo:bhi],
                        st.m[blo:bhi], st.v[blo:bhi],
                        staging[k % 2][: bhi - blo], hyper, tile,
                    )
            # The all-gather of the serial dataflow: every shard is an
            # arena view, so the gather is pure aliasing — count the
            # payload and the saved copy, move no bytes.
            self.group.count_payload(
                "all_gather",
                sum(opt.params["shard"].nbytes
                    for opt in self._rank_optimizers),
            )
            self.arena.note_alias(self.arena.flat.nbytes)

    def _bump_disk_step(self, rank: int) -> "kernels.AdamChunkHyper":
        """Advance rank ``rank``'s step counter (once per global step,
        before its first bucket) and build the chunk hyperparameters."""
        self._disk_steps[rank] += 1
        return kernels.AdamChunkHyper.from_config(
            self.config, self._disk_steps[rank]
        )

    def _step_flat_disk(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """Disk-offloaded bucket dataflow with three-way overlap.

        While the calling thread applies bucket ``k``'s fused Adam,
        bucket ``k+1``'s reduce-scatter runs on the kernel pool *and* the
        spill arena streams buckets ``k+1..k+depth``'s (m, v) extents in
        from disk — the NVMe read, the collective, and the optimizer math
        overlap the way §2.2's offload tier requires.  Moment writes for
        bucket ``k`` drain on the arena's independent write stream, so
        prefetches never queue behind the write backlog; a staging slot
        is re-read only after its write-back ticket settles, and the step
        only blocks (a ``spill_wait`` span) when the disk falls behind
        compute.  Bitwise identity with the resident step holds
        because fp32 disk round-trips are byte-exact and the bucket
        order, reduce fold, Adam kernel, and step-counter discipline are
        those of :meth:`_step_flat_pipelined`.
        """
        if not self.spill_prefetch:
            self._step_flat_disk_sync(per_rank_flat)
            return
        tracer = self.telemetry.tracer
        divisor = (np.float32(self.world_size)
                   if self.zero.average_gradients else None)
        pool = self._pool if self._pool is not None else get_pool()
        staging = self._ensure_staging()
        depth = self._prefetch_depth
        n_slots = depth + 2
        slots = self._ensure_disk_slots(n_slots)
        buckets = self._buckets()
        shard_len = self._shard_len
        tile = tune.value("adam.cache_tile", kernels.CACHE_TILE,
                          size=self.bucket_elements)
        sp = self.spill
        read_tickets: List[Optional[Tuple[SpillTicket, SpillTicket]]] = (
            [None] * len(buckets)
        )
        write_tickets: List[SpillTicket] = []
        # Reads and writes run on independent spill streams, so a slot's
        # write-back must be explicitly settled before a prefetch reuses
        # the slot buffer; a wait here is the disk genuinely falling
        # behind compute and is accounted as spill_wait.
        slot_writes: List[List[SpillTicket]] = [[] for _ in range(n_slots)]

        def issue_read(j: int) -> None:
            if j >= len(buckets):
                return
            r, blo, bhi = buckets[j]
            glo = r * shard_len + blo
            s = j % n_slots
            wait_all(slot_writes[s])
            read_tickets[j] = (
                sp.read_async("m", glo, glo + (bhi - blo), slots["m"][s]),
                sp.read_async("v", glo, glo + (bhi - blo), slots["v"][s]),
            )

        def submit_reduce(k: int):
            r, blo, bhi = buckets[k]
            glo = r * shard_len + blo
            if not tracer.enabled:
                return pool.submit(
                    kernels.reduce_chunk, glo, glo + (bhi - blo),
                    staging[k % 2], glo, per_rank_flat, divisor,
                )

            def traced_reduce(lo, hi, out, base, flats, div, _k=k, _r=r):
                with tracer.span("bucket_reduce", category="comm",
                                 bucket=_k, rank=_r):
                    return kernels.reduce_chunk(lo, hi, out, base,
                                                flats, div)

            return pool.submit(
                traced_reduce, glo, glo + (bhi - blo),
                staging[k % 2], glo, per_rank_flat, divisor,
            )

        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size, pipelined=True,
                         offload="disk", buckets=len(buckets)):
            self.group.count_payload(
                "reduce_scatter", sum(b.nbytes for b in per_rank_flat)
            )
            for j in range(min(depth, len(buckets))):
                issue_read(j)
            pending = submit_reduce(0)
            hyper = None
            prev_rank = -1
            for k, (r, blo, bhi) in enumerate(buckets):
                n = bhi - blo
                glo = r * shard_len + blo
                s = k % n_slots
                with tracer.span("bucket_wait", category="stall", bucket=k):
                    pending.result()
                if k + 1 < len(buckets):
                    pending = submit_reduce(k + 1)
                tickets = read_tickets[k]
                read_tickets[k] = None
                for t in tickets:
                    t.wait()
                if r != prev_rank:
                    hyper = self._bump_disk_step(r)
                    prev_rank = r
                m_slot = slots["m"][s]
                v_slot = slots["v"][s]
                with tracer.span("bucket_adam", category="optim",
                                 rank=r, bucket=k):
                    kernels.adam_chunk(
                        0, n,
                        self.arena.shard(r)[blo:bhi],
                        m_slot[:n], v_slot[:n],
                        staging[k % 2][:n], hyper, tile,
                    )
                tm = sp.write_async("m", glo, glo + n, m_slot)
                tv = sp.write_async("v", glo, glo + n, v_slot)
                write_tickets.extend((tm, tv))
                slot_writes[s].extend((tm, tv))
                issue_read(k + depth)
            wait_all(write_tickets)
            self.group.count_payload(
                "all_gather", self.arena.flat.nbytes
            )
            self.arena.note_alias(self.arena.flat.nbytes)

    def _step_flat_disk_sync(self, per_rank_flat: Sequence[np.ndarray]) -> None:
        """Non-overlapped disk baseline: read, reduce, Adam, write, in
        strict sequence per bucket.  Bitwise identical to the overlapped
        path (same buckets, same kernels); every disk byte is an exposed
        stall, which is exactly what the spill bench measures the
        overlapped step against.
        """
        tracer = self.telemetry.tracer
        divisor = (np.float32(self.world_size)
                   if self.zero.average_gradients else None)
        staging = self._ensure_staging()
        slots = self._ensure_disk_slots(1)
        buckets = self._buckets()
        shard_len = self._shard_len
        tile = tune.value("adam.cache_tile", kernels.CACHE_TILE,
                          size=self.bucket_elements)
        sp = self.spill
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size, offload="disk",
                         buckets=len(buckets)):
            self.group.count_payload(
                "reduce_scatter", sum(b.nbytes for b in per_rank_flat)
            )
            hyper = None
            prev_rank = -1
            for k, (r, blo, bhi) in enumerate(buckets):
                n = bhi - blo
                glo = r * shard_len + blo
                m_slot = slots["m"][0]
                v_slot = slots["v"][0]
                sp.read("m", glo, glo + n, m_slot)
                sp.read("v", glo, glo + n, v_slot)
                with tracer.span("bucket_reduce", category="comm",
                                 bucket=k, rank=r):
                    kernels.reduce_chunk(
                        glo, glo + n, staging[0], glo,
                        per_rank_flat, divisor,
                    )
                if r != prev_rank:
                    hyper = self._bump_disk_step(r)
                    prev_rank = r
                with tracer.span("bucket_adam", category="optim",
                                 rank=r, bucket=k):
                    kernels.adam_chunk(
                        0, n,
                        self.arena.shard(r)[blo:bhi],
                        m_slot[:n], v_slot[:n],
                        staging[0][:n], hyper, tile,
                    )
                sp.write("m", glo, glo + n, m_slot)
                sp.write("v", glo, glo + n, v_slot)
            self.group.count_payload(
                "all_gather", self.arena.flat.nbytes
            )
            self.arena.note_alias(self.arena.flat.nbytes)

    def moment_planes(self) -> Dict[str, np.ndarray]:
        """Fresh fp32 copies of the full (m, v) moment planes.

        Uniform across resident and disk offload modes — the checkpoint
        path uses this to snapshot optimizer state without caring where
        the moments live.
        """
        total = self.layout.total
        m = np.empty(total, dtype=np.float32)
        v = np.empty(total, dtype=np.float32)
        if self.offload == "disk":
            self.spill.read("m", 0, total, m)
            self.spill.read("v", 0, total, v)
        else:
            for r, opt in enumerate(self._rank_optimizers):
                lo, hi = self.owned_slice(r)
                st = opt.state["shard"]
                m[lo:hi] = st.m
                v[lo:hi] = st.v
        return {"m": m, "v": v}

    def load_moments(
        self, m: np.ndarray, v: np.ndarray, steps: Sequence[int]
    ) -> None:
        """Restore the (m, v) planes and per-shard step counters
        (checkpoint resume; the inverse of :meth:`moment_planes` +
        :meth:`shard_steps`)."""
        total = self.layout.total
        if m.shape != (total,) or v.shape != (total,):
            raise TensorValidationError(
                f"moment planes must be 1-D of length {total}"
            )
        if len(steps) != self.world_size:
            raise ValueError("one step counter per rank required")
        if self.offload == "disk":
            self.spill.write("m", 0, total, np.ascontiguousarray(m))
            self.spill.write("v", 0, total, np.ascontiguousarray(v))
            self._disk_steps = [int(s) for s in steps]
        else:
            for r, opt in enumerate(self._rank_optimizers):
                lo, hi = self.owned_slice(r)
                st = opt.state["shard"]
                st.m[...] = m[lo:hi]
                st.v[...] = v[lo:hi]
                st.step = int(steps[r])

    def shard_steps(self) -> List[int]:
        """Per-rank Adam step counters (uniform after full steps)."""
        if self.offload == "disk":
            return list(self._disk_steps)
        return [opt.state["shard"].step for opt in self._rank_optimizers]

    def _step_dict_copy(self, per_rank_grads: Sequence[Params]) -> None:
        """The historical flatten/unflatten dataflow (bench baseline)."""
        tracer = self.telemetry.tracer
        with tracer.span("zero_step", category="optim",
                         world_size=self.world_size):
            flat_grads = [self._flatten(g) for g in per_rank_grads]
            shards = self.group.reduce_scatter(flat_grads)
            if self.zero.average_gradients:
                shards = [s / np.float32(self.world_size) for s in shards]
            updated: List[np.ndarray] = []
            for r, opt in enumerate(self._rank_optimizers):
                with tracer.span("shard_adam", category="optim", rank=r):
                    opt.step({"shard": shards[r].astype(np.float32)})
                updated.append(opt.params["shard"])
            gathered = self.group.all_gather(updated)[0][: self.layout.total]
            self._unflatten_into(gathered, self.params)

    @property
    def step_count(self) -> int:
        """Steps taken (uniform across shards)."""
        if self.offload == "disk":
            return self._disk_steps[0]
        return self._rank_optimizers[0].step_count

    def optimizer_state_bytes_per_rank(self) -> int:
        """Bytes of fp32 (master, m, v) each rank holds — the 12Psi/N of
        ZeRO's memory analysis."""
        return 3 * 4 * self._shard_len
