"""Rollback strategies for speculation-then-validation (§4.4).

Two interchangeable implementations of "undo the speculative optimizer
update":

* :class:`SnapshotRollback` — copy the touched (p, m, v) before updating;
  restore is a memcpy and bit-exact.  Costs one bucket of scratch memory.
* :class:`AlgebraicRollback` — the paper's *in-place rollback*: reconstruct
  the previous state from the retained gradients via the Adam inverse.  No
  scratch memory; exact to a few fp32 ulps (and exactly convergent once the
  corrected update is re-applied — see the STV tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro import tune
from repro.exec.ops import parallel_copy
from repro.exec.pool import KernelPool
from repro.optim.implementations import AdamOptimizer
from repro.tune.registry import default as _registry_default

Params = Dict[str, np.ndarray]

#: Bucket sizes (elements) below which the arena range-memcpy path is
#: skipped.  Below ~4 MiB spans the per-tensor copies are cheap (the
#: allocator recycles the small blocks), so the range path's span
#: bookkeeping only ever costs — the 65k-element row of
#: ``BENCH_substrate.json`` sat at 0.97x before this cutoff.  At and
#: above the cutoff the per-tensor path's multi-MiB allocations churn
#: mmap while the range path reuses one persistent scratch block, which
#: is where its ~3x win lives.  A host tuning profile's
#: ``rollback.snapshot_cutoff`` entry overrides this at capture time.
SMALL_SNAPSHOT_CUTOFF = _registry_default("rollback.snapshot_cutoff")


@dataclass
class _ArenaSnapshot:
    """One contiguous (p, m, v) range copied out of the optimizer's arenas."""

    lo: int
    hi: int
    p: np.ndarray
    m: np.ndarray
    v: np.ndarray
    steps: Dict[str, int]


class RollbackStrategy(enum.Enum):
    """Which undo mechanism the STV engine uses."""

    SNAPSHOT = "snapshot"
    ALGEBRAIC = "algebraic"


class SnapshotRollback:
    """Bit-exact rollback via pre-update snapshots.

    When the optimizer is arena-backed and the captured parameters form a
    contiguous flat range (STV buckets do, by construction), capture and
    restore are three range memcpys over the (p, m, v) planes — executed
    as parallel chunk kernels into a *persistent* scratch buffer, so a
    steady-state capture allocates nothing.  Buckets smaller than
    :data:`SMALL_SNAPSHOT_CUTOFF` skip the range-memcpy path entirely
    (per-tensor copies win there), and plain-dict optimizers always use
    the per-tensor path.

    A capture may additionally *target the spill writer*: when a
    :class:`~repro.tensors.spill.SpillArena` holding the
    :func:`rollback_spill_planes` schema is provided, every arena-range
    capture also streams its (p, m, v) ranges to disk asynchronously —
    the snapshot becomes durable while the speculative step runs, at no
    synchronous cost beyond the in-memory memcpy that was already there.
    The write tickets are settled on :meth:`rollback` / :meth:`discard`,
    both of which precede the next capture, so the scratch the writes
    read from is stable for their whole lifetime.

    Args:
        optimizer: the optimizer whose state is protected.
        pool: kernel pool for the chunked memcpys (``None`` uses the
            process default).
        spill: optional spill arena to stream captures to (must hold the
            :func:`rollback_spill_planes` schema).
    """

    strategy = RollbackStrategy.SNAPSHOT

    def __init__(self, optimizer: AdamOptimizer,
                 pool: KernelPool | None = None,
                 spill=None):
        self._optimizer = optimizer
        self._snapshot: dict | _ArenaSnapshot | None = None
        self._pool = pool
        self._scratch: np.ndarray | None = None
        self._spill = spill
        self._spill_tickets: list = []

    def _scratch_for(self, n: int) -> np.ndarray:
        """A persistent (3, n)-float32 scratch block for (p, m, v)."""
        if self._scratch is None or self._scratch.shape[1] < n:
            self._scratch = np.empty((3, n), dtype=np.float32)
        return self._scratch

    def capture(self, grads: Params) -> None:
        """Record the current (p, m, v, step) for every gradient's parameter.

        Must be called immediately *before* the speculative step.
        """
        opt = self._optimizer
        arena = getattr(opt, "arena", None)
        arena_m = getattr(opt, "arena_m", None)
        # Size-gate *before* the span bookkeeping: below the cutoff even
        # ``range_of``'s sort is measurable next to the tiny copies.
        total = sum(g.size for g in grads.values())
        cutoff = tune.value(
            "rollback.snapshot_cutoff", SMALL_SNAPSHOT_CUTOFF, size=total
        )
        if arena is not None and arena_m is not None and total >= cutoff:
            span = arena.range_of(grads)
            if span is not None:
                lo, hi = span
                scratch = self._scratch_for(hi - lo)
                p, m, v = (scratch[i, : hi - lo] for i in range(3))
                parallel_copy(p, arena.flat[lo:hi], pool=self._pool)
                parallel_copy(m, arena_m.flat[lo:hi], pool=self._pool)
                parallel_copy(v, opt.arena_v.flat[lo:hi], pool=self._pool)
                for a in (arena, arena_m, opt.arena_v):
                    a.note_copy((hi - lo) * 4)
                if self._spill is not None:
                    # Stream the snapshot to disk behind the speculative
                    # step; tickets settle at rollback/discard, before
                    # the scratch is ever reused.
                    for plane, buf in (("p", p), ("m", m), ("v", v)):
                        self._spill_tickets.append(
                            self._spill.write_async(
                                f"rollback.{plane}", lo, hi, buf
                            )
                        )
                self._snapshot = _ArenaSnapshot(
                    lo, hi, p, m, v,
                    {name: opt.state[name].step for name in grads},
                )
                return
        self._snapshot = {
            name: (
                opt.params[name].copy(),
                opt.state[name].m.copy(),
                opt.state[name].v.copy(),
                opt.state[name].step,
            )
            for name in grads
        }

    def rollback(self, grads: Params) -> None:
        """Restore the captured state."""
        if self._snapshot is None:
            raise RuntimeError("rollback requested before capture")
        self._settle_spill()
        opt = self._optimizer
        if isinstance(self._snapshot, _ArenaSnapshot):
            snap = self._snapshot
            lo, hi = snap.lo, snap.hi
            parallel_copy(opt.arena.flat[lo:hi], snap.p, pool=self._pool)
            parallel_copy(opt.arena_m.flat[lo:hi], snap.m, pool=self._pool)
            parallel_copy(opt.arena_v.flat[lo:hi], snap.v, pool=self._pool)
            for a in (opt.arena, opt.arena_m, opt.arena_v):
                a.note_copy((hi - lo) * 4)
            for name, step in snap.steps.items():
                opt.state[name].step = step
        else:
            for name in grads:
                p, m, v, step = self._snapshot[name]
                opt.params[name][...] = p
                st = opt.state[name]
                st.m[...] = m
                st.v[...] = v
                st.step = step
        self._snapshot = None

    def discard(self) -> None:
        """Drop the snapshot once validation passes."""
        self._settle_spill()
        self._snapshot = None

    def _settle_spill(self) -> None:
        for t in self._spill_tickets:
            t.wait()
        self._spill_tickets.clear()

    def spilled_range(self) -> "tuple[int, int] | None":
        """The flat [lo, hi) the last capture streamed to disk, if any."""
        if self._spill is None or not isinstance(
            self._snapshot, _ArenaSnapshot
        ):
            return None
        return self._snapshot.lo, self._snapshot.hi

    def scratch_bytes(self, grads: Params) -> int:
        """Scratch memory a capture of ``grads`` would hold."""
        return sum(3 * g.nbytes for g in grads.values())


class AlgebraicRollback:
    """In-place rollback via the Adam inverse (no snapshots).

    The gradients of the speculative step are retained by the STV engine
    anyway (the validator needs them for the global norm), so reversing is
    pure recomputation.

    Args:
        optimizer: the optimizer whose update may be reversed.
    """

    strategy = RollbackStrategy.ALGEBRAIC

    def __init__(self, optimizer: AdamOptimizer):
        self._optimizer = optimizer
        self._armed = False

    def capture(self, grads: Params) -> None:
        """No-op bookkeeping (kept for interface symmetry with snapshots)."""
        self._armed = True

    def rollback(self, grads: Params) -> None:
        """Reverse the most recent step using the retained gradients."""
        if not self._armed:
            raise RuntimeError("rollback requested before capture")
        self._optimizer.invert_step(grads)
        self._armed = False

    def discard(self) -> None:
        """Validation passed; nothing to release."""
        self._armed = False

    def scratch_bytes(self, grads: Params) -> int:
        """Algebraic rollback holds no scratch state."""
        return 0


def rollback_spill_planes(optimizer: AdamOptimizer) -> Dict[str, int]:
    """The spill-plane schema a durable snapshot target must hold.

    Pass the result to :class:`~repro.tensors.spill.SpillArena` and hand
    that arena to :class:`SnapshotRollback` — captures then stream their
    (p, m, v) ranges to the ``rollback.p`` / ``rollback.m`` /
    ``rollback.v`` planes.
    """
    arena = getattr(optimizer, "arena", None)
    if arena is None:
        raise ValueError("durable snapshots require an arena-backed optimizer")
    total = arena.layout.total
    return {"rollback.p": total, "rollback.m": total, "rollback.v": total}


def make_rollback(
    strategy: RollbackStrategy, optimizer: AdamOptimizer
) -> SnapshotRollback | AlgebraicRollback:
    """Factory over :class:`RollbackStrategy`."""
    if strategy is RollbackStrategy.SNAPSHOT:
        return SnapshotRollback(optimizer)
    if strategy is RollbackStrategy.ALGEBRAIC:
        return AlgebraicRollback(optimizer)
    raise ValueError(f"unknown rollback strategy {strategy!r}")
