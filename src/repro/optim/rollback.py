"""Rollback strategies for speculation-then-validation (§4.4).

Two interchangeable implementations of "undo the speculative optimizer
update":

* :class:`SnapshotRollback` — copy the touched (p, m, v) before updating;
  restore is a memcpy and bit-exact.  Costs one bucket of scratch memory.
* :class:`AlgebraicRollback` — the paper's *in-place rollback*: reconstruct
  the previous state from the retained gradients via the Adam inverse.  No
  scratch memory; exact to a few fp32 ulps (and exactly convergent once the
  corrected update is re-applied — see the STV tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.optim.implementations import AdamOptimizer

Params = Dict[str, np.ndarray]


@dataclass
class _ArenaSnapshot:
    """One contiguous (p, m, v) range copied out of the optimizer's arenas."""

    lo: int
    hi: int
    p: np.ndarray
    m: np.ndarray
    v: np.ndarray
    steps: Dict[str, int]


class RollbackStrategy(enum.Enum):
    """Which undo mechanism the STV engine uses."""

    SNAPSHOT = "snapshot"
    ALGEBRAIC = "algebraic"


class SnapshotRollback:
    """Bit-exact rollback via pre-update snapshots.

    When the optimizer is arena-backed and the captured parameters form a
    contiguous flat range (STV buckets do, by construction), capture and
    restore are three range memcpys over the (p, m, v) planes instead of
    per-tensor copies.  Plain-dict optimizers keep the per-tensor path.

    Args:
        optimizer: the optimizer whose state is protected.
    """

    strategy = RollbackStrategy.SNAPSHOT

    def __init__(self, optimizer: AdamOptimizer):
        self._optimizer = optimizer
        self._snapshot: dict | _ArenaSnapshot | None = None

    def capture(self, grads: Params) -> None:
        """Record the current (p, m, v, step) for every gradient's parameter.

        Must be called immediately *before* the speculative step.
        """
        opt = self._optimizer
        arena = getattr(opt, "arena", None)
        arena_m = getattr(opt, "arena_m", None)
        if arena is not None and arena_m is not None:
            span = arena.range_of(grads)
            if span is not None:
                lo, hi = span
                self._snapshot = _ArenaSnapshot(
                    lo, hi,
                    arena.snapshot(lo, hi),
                    arena_m.snapshot(lo, hi),
                    opt.arena_v.snapshot(lo, hi),
                    {name: opt.state[name].step for name in grads},
                )
                return
        self._snapshot = {
            name: (
                opt.params[name].copy(),
                opt.state[name].m.copy(),
                opt.state[name].v.copy(),
                opt.state[name].step,
            )
            for name in grads
        }

    def rollback(self, grads: Params) -> None:
        """Restore the captured state."""
        if self._snapshot is None:
            raise RuntimeError("rollback requested before capture")
        opt = self._optimizer
        if isinstance(self._snapshot, _ArenaSnapshot):
            snap = self._snapshot
            opt.arena.restore(snap.p, snap.lo)
            opt.arena_m.restore(snap.m, snap.lo)
            opt.arena_v.restore(snap.v, snap.lo)
            for name, step in snap.steps.items():
                opt.state[name].step = step
        else:
            for name in grads:
                p, m, v, step = self._snapshot[name]
                opt.params[name][...] = p
                st = opt.state[name]
                st.m[...] = m
                st.v[...] = v
                st.step = step
        self._snapshot = None

    def discard(self) -> None:
        """Drop the snapshot once validation passes."""
        self._snapshot = None

    def scratch_bytes(self, grads: Params) -> int:
        """Scratch memory a capture of ``grads`` would hold."""
        return sum(3 * g.nbytes for g in grads.values())


class AlgebraicRollback:
    """In-place rollback via the Adam inverse (no snapshots).

    The gradients of the speculative step are retained by the STV engine
    anyway (the validator needs them for the global norm), so reversing is
    pure recomputation.

    Args:
        optimizer: the optimizer whose update may be reversed.
    """

    strategy = RollbackStrategy.ALGEBRAIC

    def __init__(self, optimizer: AdamOptimizer):
        self._optimizer = optimizer
        self._armed = False

    def capture(self, grads: Params) -> None:
        """No-op bookkeeping (kept for interface symmetry with snapshots)."""
        self._armed = True

    def rollback(self, grads: Params) -> None:
        """Reverse the most recent step using the retained gradients."""
        if not self._armed:
            raise RuntimeError("rollback requested before capture")
        self._optimizer.invert_step(grads)
        self._armed = False

    def discard(self) -> None:
        """Validation passed; nothing to release."""
        self._armed = False

    def scratch_bytes(self, grads: Params) -> int:
        """Algebraic rollback holds no scratch state."""
        return 0


def make_rollback(
    strategy: RollbackStrategy, optimizer: AdamOptimizer
) -> SnapshotRollback | AlgebraicRollback:
    """Factory over :class:`RollbackStrategy`."""
    if strategy is RollbackStrategy.SNAPSHOT:
        return SnapshotRollback(optimizer)
    if strategy is RollbackStrategy.ALGEBRAIC:
        return AlgebraicRollback(optimizer)
    raise ValueError(f"unknown rollback strategy {strategy!r}")
