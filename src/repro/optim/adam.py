"""Functional Adam/AdamW kernels and their algebraic inverse.

The inverse is what makes the paper's *in-place rollback* (§4.4) possible
without snapshots: given the gradient that produced an update, the previous
(p, m, v) can be reconstructed exactly in real arithmetic (and to ~1 ulp in
floating point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AdamConfig:
    """Hyperparameters of AdamW (decoupled weight decay).

    Attributes:
        lr: learning rate.
        beta1: first-moment decay.
        beta2: second-moment decay.
        eps: denominator fuzz.
        weight_decay: decoupled L2 coefficient.
        bias_correction: apply the 1/(1-beta^t) warmup correction.
    """

    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    bias_correction: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.beta1 < 1 or not 0 < self.beta2 < 1:
            # Strictly positive betas keep the update invertible (§4.4).
            raise ValueError("betas must be in (0, 1)")
        if self.lr < 0 or self.eps <= 0 or self.weight_decay < 0:
            raise ValueError("lr/weight_decay must be >= 0 and eps > 0")
        if self.lr * self.weight_decay >= 1:
            raise ValueError("lr * weight_decay must be < 1 (invertibility)")


@dataclass
class AdamParamState:
    """Per-parameter optimizer state (the 12-bytes/param of §2.2)."""

    m: np.ndarray
    v: np.ndarray
    step: int = 0

    @classmethod
    def zeros_like(cls, param: np.ndarray) -> "AdamParamState":
        """Fresh state for ``param``."""
        return cls(
            m=np.zeros_like(param, dtype=np.float32),
            v=np.zeros_like(param, dtype=np.float32),
        )


def _bias_corrections(config: AdamConfig, step: int) -> tuple[float, float]:
    if not config.bias_correction:
        return 1.0, 1.0
    return 1.0 - config.beta1**step, 1.0 - config.beta2**step


def adam_apply(
    param: np.ndarray,
    grad: np.ndarray,
    state: AdamParamState,
    config: AdamConfig,
) -> None:
    """One in-place AdamW update; increments ``state.step``.

    All buffers must be fp32 — mixed precision keeps the master copy and
    moments in full precision (§2.2), and the rollback inverse relies on it.
    """
    if param.dtype != np.float32 or grad.dtype != np.float32:
        raise TypeError("adam_apply operates on fp32 master weights/gradients")
    state.step += 1
    t = state.step
    c = config
    state.m *= c.beta1
    state.m += (1 - c.beta1) * grad
    state.v *= c.beta2
    state.v += (1 - c.beta2) * np.square(grad)
    bc1, bc2 = _bias_corrections(c, t)
    denom = np.sqrt(state.v / bc2) + c.eps
    update = (state.m / bc1) / denom
    if c.weight_decay:
        param *= 1.0 - c.lr * c.weight_decay
    param -= c.lr * update


def adam_invert(
    param: np.ndarray,
    grad: np.ndarray,
    state: AdamParamState,
    config: AdamConfig,
) -> None:
    """Invert the most recent :func:`adam_apply` in place.

    Requires the same ``grad`` that produced the update.  Exact in real
    arithmetic; in fp32 the reconstruction differs by at most a few ulps
    (the STV validation path re-applies with clipped gradients afterwards,
    so the residual does not accumulate — see tests).
    """
    if state.step < 1:
        raise ValueError("no update to invert")
    t = state.step
    c = config
    bc1, bc2 = _bias_corrections(c, t)
    denom = np.sqrt(state.v / bc2) + c.eps
    update = (state.m / bc1) / denom
    param += c.lr * update
    if c.weight_decay:
        param /= 1.0 - c.lr * c.weight_decay
    state.m -= (1 - c.beta1) * grad
    state.m /= c.beta1
    state.v -= (1 - c.beta2) * np.square(grad)
    state.v /= c.beta2
    state.step -= 1
