"""Optimizers: the Adam family the paper benchmarks (Table 3), the
mixed-precision machinery offloading interacts with (§4.5), and the exact
rollback primitives behind speculation-then-validation (§4.4).

All three Adam implementations — :class:`ReferenceAdam` (PyTorch-native
"PT-CPU" analogue), :class:`CPUAdam` (DeepSpeed's fused flat-buffer x86
design), and :class:`GraceAdam` (the paper's SVE-style tiled ARM design) —
compute *identical* updates; they differ in execution strategy and in their
calibrated latency models.
"""

from repro.optim.adam import AdamConfig, AdamParamState, adam_apply, adam_invert
from repro.optim.implementations import (
    AdamOptimizer,
    CPUAdam,
    GraceAdam,
    ReferenceAdam,
    make_optimizer,
)
from repro.optim.kernels import adam_latency_seconds, adam_latency_table
from repro.optim.mixed_precision import (
    GradientHealth,
    LossScaler,
    MixedPrecisionState,
    check_gradients,
    clip_coefficient,
    global_grad_norm,
)
from repro.optim.rollback import (
    AlgebraicRollback,
    RollbackStrategy,
    SnapshotRollback,
    make_rollback,
    rollback_spill_planes,
)

__all__ = [
    "AdamConfig",
    "AdamParamState",
    "adam_apply",
    "adam_invert",
    "AdamOptimizer",
    "ReferenceAdam",
    "CPUAdam",
    "GraceAdam",
    "make_optimizer",
    "adam_latency_seconds",
    "adam_latency_table",
    "LossScaler",
    "MixedPrecisionState",
    "GradientHealth",
    "check_gradients",
    "global_grad_norm",
    "clip_coefficient",
    "RollbackStrategy",
    "SnapshotRollback",
    "AlgebraicRollback",
    "make_rollback",
    "rollback_spill_planes",
]
