"""The three Adam implementations of Table 3.

All produce bit-identical fp32 updates (the unit tests assert this); they
differ in *how* they traverse memory, mirroring the real designs:

* :class:`ReferenceAdam` — PyTorch-native style ("PT-CPU"): a per-parameter
  loop of unfused numpy expressions that allocates temporaries on every op.
* :class:`CPUAdam` — DeepSpeed's x86 design: parameters flattened into one
  contiguous buffer, updated with fused in-place vector operations.
* :class:`GraceAdam` — the paper's ARM design (§4.6): the flat buffer walked
  in cache-sized tiles with a runtime-chosen vector length (the numpy stand-
  in for SVE's ``svcntw()`` length-agnostic loops), fused in-place math per
  tile, and OpenMP-style tile partitioning across worker threads — executed
  for real on arena-backed steps via the chunked kernel executor
  (:mod:`repro.exec`), whose worker-aligned chunks and fused scratch
  kernels stay bitwise identical to the serial walk.

Latency on actual Grace hardware is priced by
:func:`repro.optim.kernels.adam_latency_seconds`, calibrated to Table 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro import tune
from repro.exec.ops import parallel_adam_flat
from repro.exec.pool import KernelPool
from repro.optim.adam import AdamConfig, AdamParamState, adam_invert
from repro.tensors.arena import FlatArena
from repro.tensors.errors import TensorValidationError, ensure_dense_fp32

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


class AdamOptimizer:
    """Base class: owns per-parameter state and the shared config.

    If ``params`` already form a :class:`FlatArena` (their values are
    packed views of one buffer), the optimizer binds to it at
    construction and mirrors its moment state into same-layout arenas,
    enabling the flat fast paths in the subclasses and the one-memcpy
    rollback in :class:`repro.optim.rollback.SnapshotRollback`.  Plain
    dicts keep the historical per-tensor behaviour.

    Args:
        params: name -> fp32 master weight array (updated in place).
        config: AdamW hyperparameters.
    """

    kernel_name = "abstract"
    #: Whether ``step`` mutates ``state[name].m/.v`` in place.  Arena-
    #: backed moment storage is only coherent for in-place updaters;
    #: :class:`ReferenceAdam` rebinds state arrays every step and opts out.
    arena_state_inplace = True

    def __init__(self, params: Params, config: AdamConfig | None = None):
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        for name, p in params.items():
            ensure_dense_fp32(name, p)
        self.params = params
        self.config = config or AdamConfig()
        self.state: Dict[str, AdamParamState] = {
            name: AdamParamState.zeros_like(p) for name, p in params.items()
        }
        self.arena: Optional[FlatArena] = None
        self.arena_m: Optional[FlatArena] = None
        self.arena_v: Optional[FlatArena] = None
        wrapped = FlatArena.wrap(params)
        if wrapped is not None:
            self.bind_arena(wrapped)

    def bind_arena(self, arena: FlatArena) -> None:
        """Bind to a parameter arena (and arena-back the moments).

        ``arena.views`` must alias ``self.params`` value-for-value.  For
        in-place implementations the Adam moments are moved into fresh
        same-layout arenas so ``(p, m, v)`` are three parallel flat
        planes — the layout GraceAdam's tiled walk and the snapshot
        rollback both exploit.
        """
        if set(arena.views) != set(self.params):
            raise TensorValidationError(
                "arena tensor set does not match optimizer parameters"
            )
        self.arena = arena
        if not self.arena_state_inplace:
            return
        self.arena_m = arena.like()
        self.arena_v = arena.like()
        for name, st in self.state.items():
            m_view = self.arena_m.views[name]
            m_view[...] = st.m
            st.m = m_view
            v_view = self.arena_v.views[name]
            v_view[...] = st.v
            st.v = v_view

    @property
    def step_count(self) -> int:
        """Steps applied so far (uniform across parameters)."""
        return next(iter(self.state.values())).step

    def step(self, grads: Grads) -> None:
        """Apply one update from fp32 gradients (in place).

        ``grads`` may cover a *subset* of parameters — the bucket-wise
        speculative stepping of §4.4 relies on this (CPUAdam is the
        exception: its fused flat buffer requires the full set).
        """
        raise NotImplementedError

    def invert_step(self, grads: Grads) -> None:
        """Undo the most recent update given the gradients that produced it
        (the in-place rollback primitive of §4.4)."""
        for name, grad in grads.items():
            adam_invert(self.params[name], grad, self.state[name], self.config)

    def _check_grads(self, grads: Grads) -> None:
        unknown = set(grads) - set(self.params)
        if unknown:
            raise KeyError(f"gradients for unknown parameters {sorted(unknown)}")
        if not grads:
            raise ValueError("step called with no gradients")
        for name, g in grads.items():
            if np.shape(g) != self.params[name].shape:
                raise TensorValidationError(
                    f"gradient {name!r} has shape {np.shape(g)}, "
                    f"expected {self.params[name].shape}"
                )

    def _uniform_step(self) -> Optional[int]:
        """The shared step count, or ``None`` if parameters diverge."""
        steps = {st.step for st in self.state.values()}
        return steps.pop() if len(steps) == 1 else None


class ReferenceAdam(AdamOptimizer):
    """Unfused per-tensor Adam — the "PT-CPU" row of Table 3.

    Deliberately written with out-of-place temporaries, the memory-traffic
    pattern that makes the native implementation >3x slower on Grace.
    """

    kernel_name = "pt_cpu"
    # The out-of-place style rebinds st.m/st.v to fresh temporaries every
    # step, so arena-backed moment views would silently go stale.
    arena_state_inplace = False

    def step(self, grads: Grads) -> None:
        self._check_grads(grads)
        c = self.config
        for name in grads:
            param = self.params[name]
            grad = np.asarray(grads[name], dtype=np.float32)
            st = self.state[name]
            st.step += 1
            # Out-of-place expressions: every line allocates a temporary.
            st.m = c.beta1 * st.m + (1 - c.beta1) * grad
            st.v = c.beta2 * st.v + (1 - c.beta2) * grad * grad
            if c.bias_correction:
                bc1 = 1 - c.beta1**st.step
                bc2 = 1 - c.beta2**st.step
            else:
                bc1 = bc2 = 1.0
            m_hat = st.m / bc1
            v_hat = st.v / bc2
            update = m_hat / (np.sqrt(v_hat) + c.eps)
            if c.weight_decay:
                param *= 1.0 - c.lr * c.weight_decay
            param -= c.lr * update


class CPUAdam(AdamOptimizer):
    """DeepSpeed-style fused flat-buffer Adam (the "CPU-Adam" row).

    Parameters live in a :class:`FlatArena` (adopted at construction if
    the caller's dict is not already arena-backed); each step is a
    handful of fused in-place passes over the flat buffer.  Because the
    per-tensor params and state are *views* of the same memory, there is
    no scatter-back copy after the update and no re-sync after an
    inversion — coherence is structural.

    Args:
        params: name -> fp32 master weights.
        config: hyperparameters.
        pool: kernel pool for the chunked step (``None`` uses the
            process default).
        chunked: route the flat step through the chunked executor.
            ``False`` keeps the whole-plane serial ancestor — the
            measured baseline for ``repro bench``'s ``parallel_step``
            section.  Both paths are bitwise identical.
    """

    kernel_name = "cpu_adam"

    def __init__(
        self,
        params: Params,
        config: AdamConfig | None = None,
        pool: KernelPool | None = None,
        chunked: bool = True,
    ):
        super().__init__(params, config)
        if self.arena is None:
            self.bind_arena(FlatArena.adopt(params))
        unpadded = self.arena.layout.unpadded
        self._flat_p = self.arena.flat[:unpadded]
        self._flat_m = self.arena_m.flat[:unpadded]
        self._flat_v = self.arena_v.flat[:unpadded]
        self._flat_step = 0
        self._pool = pool
        self.chunked = chunked

    def _flatten_grads(self, grads: Grads) -> np.ndarray:
        self._check_grads(grads)
        missing = set(self.params) - set(grads)
        if missing:
            raise KeyError(
                "CPUAdam's fused flat buffer needs the full gradient set; "
                f"missing {sorted(missing)}"
            )
        unpadded = self.arena.layout.unpadded
        flat = self.arena.flat_of(grads)
        if flat is not None:
            return flat[:unpadded]
        self.arena.note_copy(unpadded * 4)
        return np.concatenate(
            [np.asarray(grads[name], dtype=np.float32).ravel()
             for name in self.arena.layout.names]
        )

    def step(self, grads: Grads) -> None:
        g = self._flatten_grads(grads)
        self._flat_step += 1
        if self.chunked:
            parallel_adam_flat(
                self._flat_p, self._flat_m, self._flat_v, g,
                self.config, self._flat_step, pool=self._pool,
            )
        else:
            self._step_flat_serial(g)
        for st in self.state.values():
            st.step = self._flat_step
        # The scatter-back the dict design needed: p, m, v written once each.
        self.arena.note_alias(3 * self._flat_p.nbytes)

    def _step_flat_serial(self, g: np.ndarray) -> None:
        """The serial ancestor: whole-plane fused passes with out-of-place
        temporaries (one full-size temporary per expression) — kept
        verbatim as the executor's ``parallel_step`` bench baseline; the
        temporaries are what the chunked scratch kernels eliminate."""
        c = self.config
        self._flat_m *= c.beta1
        self._flat_m += (1 - c.beta1) * g
        self._flat_v *= c.beta2
        self._flat_v += (1 - c.beta2) * np.square(g)
        bc1 = 1 - c.beta1**self._flat_step if c.bias_correction else 1.0
        bc2 = 1 - c.beta2**self._flat_step if c.bias_correction else 1.0
        denom = np.sqrt(self._flat_v / bc2)
        denom += c.eps
        if c.weight_decay:
            self._flat_p *= 1.0 - c.lr * c.weight_decay
        self._flat_p -= c.lr * ((self._flat_m / bc1) / denom)

    def invert_step(self, grads: Grads) -> None:
        super().invert_step(grads)
        # Params/state are arena views, so the flat mirrors are already
        # coherent; only the shared step counter needs unwinding.
        self._flat_step -= 1


class GraceAdam(AdamOptimizer):
    """Tiled, length-agnostic Adam for Grace (§4.6).

    The update walks each parameter in ``tile_size``-element chunks sized to
    the Grace L2 slice, applying the fused vector kernel per tile — the
    numpy analogue of the SVE ``svld1/svmla/svsqrt`` pipeline with
    ``svprfm`` prefetch.  ``vector_length`` is discovered at runtime
    (``svcntw()``) and tiles are rounded to whole vectors.

    Args:
        params: name -> fp32 master weights.
        config: hyperparameters.
        tile_size: elements per cache tile (the paper's TILE constant).
            ``None`` resolves the ``grace.tile_size`` tunable — the
            registry default, or the host-measured value when a tuning
            profile is active.
        vector_length: SVE vector width in fp32 lanes; tiles are rounded
            down to a multiple of this to mirror whole-vector main loops,
            and executor chunk boundaries are aligned to it.
        n_threads: modelled OpenMP thread count for the Table 3 latency
            story (what Grace hardware would use; independent of the
            executor's real worker threads below).
        pool: kernel pool the fused flat step executes on (``None`` uses
            the process-default pool).
        chunked: route the flat step through the chunked executor
            (:func:`repro.exec.ops.parallel_adam_flat`).  ``False`` keeps
            the serial ancestor walk — the measured baseline for
            ``repro bench``'s ``parallel_step`` section.  Both paths are
            bitwise identical (hypothesis-tested).
    """

    kernel_name = "grace_adam"

    def __init__(
        self,
        params: Params,
        config: AdamConfig | None = None,
        tile_size: int | None = None,
        vector_length: int = 16,
        n_threads: int = 72,
        pool: KernelPool | None = None,
        chunked: bool = True,
    ):
        super().__init__(params, config)
        if tile_size is None:
            tile_size = tune.value("grace.tile_size")
        if tile_size < 1 or vector_length < 1 or n_threads < 1:
            raise ValueError("tile_size, vector_length, n_threads must be >= 1")
        self.vector_length = vector_length
        self.tile_size = max(vector_length, tile_size - tile_size % vector_length)
        self.n_threads = n_threads
        self.chunked = chunked
        self._pool = pool

    def _tiles(self, n: int) -> Iterable[Tuple[int, int]]:
        for lo in range(0, n, self.tile_size):
            yield lo, min(n, lo + self.tile_size)

    def _step_flat(self, flat_g: np.ndarray, step: int) -> None:
        """One fused pass over the whole arena (p, m, v planes).

        Bitwise-identical to the per-tensor loop: the update is purely
        elementwise, so tile boundaries (per-tensor or arena-wide) cannot
        change any result bit.  ``chunked`` picks between the executor
        (worker-parallel, scratch-fused) and the serial ancestor walk.
        """
        if self.chunked:
            n = self.arena.layout.unpadded
            parallel_adam_flat(
                self.arena.flat[:n], self.arena_m.flat[:n],
                self.arena_v.flat[:n], flat_g,
                self.config, step, pool=self._pool,
                align=self.vector_length,
            )
            for st in self.state.values():
                st.step = step
            return
        self._step_flat_serial(flat_g, step)

    def _step_flat_serial(self, flat_g: np.ndarray, step: int) -> None:
        """The serial ancestor: per-cache-tile walk with out-of-place
        temporaries — kept verbatim as the executor's bitwise reference
        and the ``parallel_step`` bench baseline."""
        c = self.config
        bc1 = 1 - c.beta1**step if c.bias_correction else 1.0
        bc2 = 1 - c.beta2**step if c.bias_correction else 1.0
        n = self.arena.layout.unpadded
        flat_p = self.arena.flat[:n]
        flat_m = self.arena_m.flat[:n]
        flat_v = self.arena_v.flat[:n]
        for lo, hi in self._tiles(n):
            g = flat_g[lo:hi]
            m = flat_m[lo:hi]
            v = flat_v[lo:hi]
            p = flat_p[lo:hi]
            m *= c.beta1
            m += (1 - c.beta1) * g
            v *= c.beta2
            v += (1 - c.beta2) * np.square(g)
            denom = np.sqrt(v / bc2)
            denom += c.eps
            if c.weight_decay:
                p *= 1.0 - c.lr * c.weight_decay
            p -= c.lr * ((m / bc1) / denom)
        for st in self.state.values():
            st.step = step

    def step(self, grads: Grads) -> None:
        self._check_grads(grads)
        c = self.config
        if (self.arena is not None and self.arena_m is not None
                and len(grads) == len(self.params)):
            # Full-set step on an arena: if the gradients are themselves
            # arena-backed with the same layout, update all three planes
            # in one flat tiled walk with zero copies.
            flat_g = self.arena.flat_of(grads)
            step = self._uniform_step()
            if flat_g is not None and step is not None:
                self._step_flat(flat_g[:self.arena.layout.unpadded],
                                step + 1)
                return
        for name in grads:
            param = self.params[name]
            st = self.state[name]
            st.step += 1
            bc1 = 1 - c.beta1**st.step if c.bias_correction else 1.0
            bc2 = 1 - c.beta2**st.step if c.bias_correction else 1.0
            flat_p = param.reshape(-1)
            flat_g = np.asarray(grads[name], dtype=np.float32).reshape(-1)
            flat_m = st.m.reshape(-1)
            flat_v = st.v.reshape(-1)
            for lo, hi in self._tiles(flat_p.size):
                g = flat_g[lo:hi]
                m = flat_m[lo:hi]
                v = flat_v[lo:hi]
                p = flat_p[lo:hi]
                m *= c.beta1
                m += (1 - c.beta1) * g          # svmla_f32_m
                v *= c.beta2
                v += (1 - c.beta2) * np.square(g)
                denom = np.sqrt(v / bc2)        # svsqrt_f32_m
                denom += c.eps
                if c.weight_decay:
                    p *= 1.0 - c.lr * c.weight_decay
                p -= c.lr * ((m / bc1) / denom)


_IMPLEMENTATIONS = {
    "pt_cpu": ReferenceAdam,
    "cpu_adam": CPUAdam,
    "grace_adam": GraceAdam,
}


def make_optimizer(
    kernel: str, params: Params, config: AdamConfig | None = None
) -> AdamOptimizer:
    """Construct an Adam implementation by its Table 3 kernel name."""
    try:
        cls = _IMPLEMENTATIONS[kernel]
    except KeyError:
        raise KeyError(
            f"unknown Adam kernel {kernel!r}; known: {sorted(_IMPLEMENTATIONS)}"
        ) from None
    return cls(params, config)
