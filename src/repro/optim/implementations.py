"""The three Adam implementations of Table 3.

All produce bit-identical fp32 updates (the unit tests assert this); they
differ in *how* they traverse memory, mirroring the real designs:

* :class:`ReferenceAdam` — PyTorch-native style ("PT-CPU"): a per-parameter
  loop of unfused numpy expressions that allocates temporaries on every op.
* :class:`CPUAdam` — DeepSpeed's x86 design: parameters flattened into one
  contiguous buffer, updated with fused in-place vector operations.
* :class:`GraceAdam` — the paper's ARM design (§4.6): the flat buffer walked
  in cache-sized tiles with a runtime-chosen vector length (the numpy stand-
  in for SVE's ``svcntw()`` length-agnostic loops), fused in-place math per
  tile, and OpenMP-style tile partitioning across worker threads (modelled,
  not spawned — numpy releases work at C speed already).

Latency on actual Grace hardware is priced by
:func:`repro.optim.kernels.adam_latency_seconds`, calibrated to Table 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.optim.adam import AdamConfig, AdamParamState, adam_invert

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


class AdamOptimizer:
    """Base class: owns per-parameter state and the shared config.

    Args:
        params: name -> fp32 master weight array (updated in place).
        config: AdamW hyperparameters.
    """

    kernel_name = "abstract"

    def __init__(self, params: Params, config: AdamConfig | None = None):
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        for name, p in params.items():
            if p.dtype != np.float32:
                raise TypeError(f"master weight {name!r} must be fp32")
        self.params = params
        self.config = config or AdamConfig()
        self.state: Dict[str, AdamParamState] = {
            name: AdamParamState.zeros_like(p) for name, p in params.items()
        }

    @property
    def step_count(self) -> int:
        """Steps applied so far (uniform across parameters)."""
        return next(iter(self.state.values())).step

    def step(self, grads: Grads) -> None:
        """Apply one update from fp32 gradients (in place).

        ``grads`` may cover a *subset* of parameters — the bucket-wise
        speculative stepping of §4.4 relies on this (CPUAdam is the
        exception: its fused flat buffer requires the full set).
        """
        raise NotImplementedError

    def invert_step(self, grads: Grads) -> None:
        """Undo the most recent update given the gradients that produced it
        (the in-place rollback primitive of §4.4)."""
        for name, grad in grads.items():
            adam_invert(self.params[name], grad, self.state[name], self.config)

    def _check_grads(self, grads: Grads) -> None:
        unknown = set(grads) - set(self.params)
        if unknown:
            raise KeyError(f"gradients for unknown parameters {sorted(unknown)}")
        if not grads:
            raise ValueError("step called with no gradients")


class ReferenceAdam(AdamOptimizer):
    """Unfused per-tensor Adam — the "PT-CPU" row of Table 3.

    Deliberately written with out-of-place temporaries, the memory-traffic
    pattern that makes the native implementation >3x slower on Grace.
    """

    kernel_name = "pt_cpu"

    def step(self, grads: Grads) -> None:
        self._check_grads(grads)
        c = self.config
        for name in grads:
            param = self.params[name]
            grad = np.asarray(grads[name], dtype=np.float32)
            st = self.state[name]
            st.step += 1
            # Out-of-place expressions: every line allocates a temporary.
            st.m = c.beta1 * st.m + (1 - c.beta1) * grad
            st.v = c.beta2 * st.v + (1 - c.beta2) * grad * grad
            if c.bias_correction:
                bc1 = 1 - c.beta1**st.step
                bc2 = 1 - c.beta2**st.step
            else:
                bc1 = bc2 = 1.0
            m_hat = st.m / bc1
            v_hat = st.v / bc2
            update = m_hat / (np.sqrt(v_hat) + c.eps)
            if c.weight_decay:
                param *= 1.0 - c.lr * c.weight_decay
            param -= c.lr * update


class CPUAdam(AdamOptimizer):
    """DeepSpeed-style fused flat-buffer Adam (the "CPU-Adam" row).

    Flattens all parameters into one contiguous fp32 buffer once at
    construction; each step is a handful of fused in-place passes over it.
    """

    kernel_name = "cpu_adam"

    def __init__(self, params: Params, config: AdamConfig | None = None):
        super().__init__(params, config)
        self._layout: List[Tuple[str, int, int, Tuple[int, ...]]] = []
        offset = 0
        for name, p in params.items():
            self._layout.append((name, offset, offset + p.size, p.shape))
            offset += p.size
        self._flat_p = np.concatenate([p.ravel() for p in params.values()])
        self._flat_m = np.zeros(offset, dtype=np.float32)
        self._flat_v = np.zeros(offset, dtype=np.float32)
        self._flat_step = 0

    def _flatten_grads(self, grads: Grads) -> np.ndarray:
        self._check_grads(grads)
        missing = set(self.params) - set(grads)
        if missing:
            raise KeyError(
                "CPUAdam's fused flat buffer needs the full gradient set; "
                f"missing {sorted(missing)}"
            )
        return np.concatenate(
            [np.asarray(grads[name], dtype=np.float32).ravel()
             for name, *_ in self._layout]
        )

    def _scatter_back(self) -> None:
        for name, lo, hi, shape in self._layout:
            self.params[name][...] = self._flat_p[lo:hi].reshape(shape)
            self.state[name].m[...] = self._flat_m[lo:hi].reshape(shape)
            self.state[name].v[...] = self._flat_v[lo:hi].reshape(shape)
            self.state[name].step = self._flat_step

    def step(self, grads: Grads) -> None:
        g = self._flatten_grads(grads)
        c = self.config
        self._flat_step += 1
        self._flat_m *= c.beta1
        self._flat_m += (1 - c.beta1) * g
        self._flat_v *= c.beta2
        self._flat_v += (1 - c.beta2) * np.square(g)
        bc1 = 1 - c.beta1**self._flat_step if c.bias_correction else 1.0
        bc2 = 1 - c.beta2**self._flat_step if c.bias_correction else 1.0
        denom = np.sqrt(self._flat_v / bc2)
        denom += c.eps
        if c.weight_decay:
            self._flat_p *= 1.0 - c.lr * c.weight_decay
        self._flat_p -= c.lr * ((self._flat_m / bc1) / denom)
        self._scatter_back()

    def invert_step(self, grads: Grads) -> None:
        super().invert_step(grads)
        # Keep the flat mirrors coherent with the per-tensor views.
        for name, lo, hi, shape in self._layout:
            self._flat_p[lo:hi] = self.params[name].ravel()
            self._flat_m[lo:hi] = self.state[name].m.ravel()
            self._flat_v[lo:hi] = self.state[name].v.ravel()
        self._flat_step -= 1


class GraceAdam(AdamOptimizer):
    """Tiled, length-agnostic Adam for Grace (§4.6).

    The update walks each parameter in ``tile_size``-element chunks sized to
    the Grace L2 slice, applying the fused vector kernel per tile — the
    numpy analogue of the SVE ``svld1/svmla/svsqrt`` pipeline with
    ``svprfm`` prefetch.  ``vector_length`` is discovered at runtime
    (``svcntw()``) and tiles are rounded to whole vectors.

    Args:
        params: name -> fp32 master weights.
        config: hyperparameters.
        tile_size: elements per cache tile (the paper's TILE constant).
        vector_length: SVE vector width in fp32 lanes; tiles are rounded
            down to a multiple of this to mirror whole-vector main loops.
        n_threads: modelled OpenMP thread count (tiles are processed in
            round-robin thread order; results are order-independent).
    """

    kernel_name = "grace_adam"

    def __init__(
        self,
        params: Params,
        config: AdamConfig | None = None,
        tile_size: int = 16384,
        vector_length: int = 16,
        n_threads: int = 72,
    ):
        super().__init__(params, config)
        if tile_size < 1 or vector_length < 1 or n_threads < 1:
            raise ValueError("tile_size, vector_length, n_threads must be >= 1")
        self.vector_length = vector_length
        self.tile_size = max(vector_length, tile_size - tile_size % vector_length)
        self.n_threads = n_threads

    def _tiles(self, n: int) -> Iterable[Tuple[int, int]]:
        for lo in range(0, n, self.tile_size):
            yield lo, min(n, lo + self.tile_size)

    def step(self, grads: Grads) -> None:
        self._check_grads(grads)
        c = self.config
        for name in grads:
            param = self.params[name]
            st = self.state[name]
            st.step += 1
            bc1 = 1 - c.beta1**st.step if c.bias_correction else 1.0
            bc2 = 1 - c.beta2**st.step if c.bias_correction else 1.0
            flat_p = param.reshape(-1)
            flat_g = np.asarray(grads[name], dtype=np.float32).reshape(-1)
            flat_m = st.m.reshape(-1)
            flat_v = st.v.reshape(-1)
            for lo, hi in self._tiles(flat_p.size):
                g = flat_g[lo:hi]
                m = flat_m[lo:hi]
                v = flat_v[lo:hi]
                p = flat_p[lo:hi]
                m *= c.beta1
                m += (1 - c.beta1) * g          # svmla_f32_m
                v *= c.beta2
                v += (1 - c.beta2) * np.square(g)
                denom = np.sqrt(v / bc2)        # svsqrt_f32_m
                denom += c.eps
                if c.weight_decay:
                    p *= 1.0 - c.lr * c.weight_decay
                p -= c.lr * ((m / bc1) / denom)


_IMPLEMENTATIONS = {
    "pt_cpu": ReferenceAdam,
    "cpu_adam": CPUAdam,
    "grace_adam": GraceAdam,
}


def make_optimizer(
    kernel: str, params: Params, config: AdamConfig | None = None
) -> AdamOptimizer:
    """Construct an Adam implementation by its Table 3 kernel name."""
    try:
        cls = _IMPLEMENTATIONS[kernel]
    except KeyError:
        raise KeyError(
            f"unknown Adam kernel {kernel!r}; known: {sorted(_IMPLEMENTATIONS)}"
        ) from None
    return cls(params, config)
