"""Mixed-precision training machinery (§2.2, §4.4, §4.5).

Holds the fp32 master copy plus the fp16 model copy, the dynamic loss
scaler, and the two *global* gradient checks whose synchronization the
paper's speculation-then-validation removes from the critical path:
NaN/Inf detection and gradient-norm clipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exec.ops import parallel_cast
from repro.numeric.lowprec import to_bf16, to_fp16
from repro.tensors.arena import FlatArena

Params = Dict[str, np.ndarray]

SUPPORTED_LOW_PRECISION = ("fp16", "bf16")


def lower_precision(x: np.ndarray, dtype: str) -> np.ndarray:
    """Cast fp32 to the training's low-precision format.

    bf16 is emulated with fp32 storage (numpy has no native bfloat16), so
    callers must not rely on ``dtype`` of the result to distinguish formats.
    """
    if dtype == "fp16":
        return to_fp16(x)
    if dtype == "bf16":
        return to_bf16(x)
    raise ValueError(
        f"unsupported low precision {dtype!r}; choose from "
        f"{SUPPORTED_LOW_PRECISION}"
    )


@dataclass(frozen=True)
class GradientHealth:
    """Outcome of the global gradient validation.

    Attributes:
        has_nan_or_inf: any gradient element is non-finite (iteration must
            be skipped and the update rolled back, §4.4 scenario 1).
        global_norm: L2 norm across all gradients (pre-clipping).
        clip_triggered: the norm exceeded the clipping threshold (update
            must be re-executed with clipped gradients, §4.4 scenario 2).
    """

    has_nan_or_inf: bool
    global_norm: float
    clip_triggered: bool

    @property
    def speculation_valid(self) -> bool:
        """True when the speculative update can be kept as-is."""
        return not (self.has_nan_or_inf or self.clip_triggered)


def global_grad_norm(grads: Params) -> float:
    """L2 norm over the concatenation of all gradients."""
    total = 0.0
    for g in grads.values():
        g64 = np.asarray(g, dtype=np.float64)
        total += float(np.dot(g64.ravel(), g64.ravel()))
    return float(np.sqrt(total))


def check_gradients(grads: Params, clip_norm: float | None) -> GradientHealth:
    """The global validation step (runs in the STV background process)."""
    has_bad = any(not np.all(np.isfinite(g)) for g in grads.values())
    norm = 0.0 if has_bad else global_grad_norm(grads)
    clipped = clip_norm is not None and not has_bad and norm > clip_norm
    return GradientHealth(
        has_nan_or_inf=has_bad, global_norm=norm, clip_triggered=clipped
    )


def clip_coefficient(global_norm: float, clip_norm: float) -> float:
    """Multiplier that rescales gradients to the clip threshold."""
    if clip_norm <= 0:
        raise ValueError("clip_norm must be positive")
    if global_norm <= clip_norm:
        return 1.0
    return clip_norm / (global_norm + 1e-6)


class LossScaler:
    """Dynamic loss scaling (Micikevicius et al.).

    Scale doubles every ``growth_interval`` healthy steps and halves on any
    overflow; the STV rollback path consults it when an iteration is skipped.

    Args:
        init_scale: starting scale.
        growth_interval: healthy steps between doublings.
        growth_factor: multiplier on growth.
        backoff_factor: multiplier on overflow.
        min_scale: lower bound after repeated overflows.
    """

    def __init__(
        self,
        init_scale: float = 2.0**16,
        growth_interval: int = 2000,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        min_scale: float = 1.0,
    ):
        if init_scale <= 0 or min_scale <= 0:
            raise ValueError("scales must be positive")
        if growth_factor <= 1 or not 0 < backoff_factor < 1:
            raise ValueError("growth_factor > 1 and backoff_factor in (0,1)")
        self.scale = init_scale
        self.growth_interval = growth_interval
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.min_scale = min_scale
        self._healthy_steps = 0

    def scale_loss(self, loss: float) -> float:
        """Scale the loss before backward."""
        return loss * self.scale

    def unscale(self, grads: Params) -> None:
        """Divide gradients by the current scale, in place."""
        inv = np.float32(1.0 / self.scale)
        for g in grads.values():
            g *= inv

    def update(self, found_overflow: bool) -> None:
        """Advance scaler state after an iteration's validation verdict."""
        if found_overflow:
            self.scale = max(self.min_scale, self.scale * self.backoff_factor)
            self._healthy_steps = 0
            return
        self._healthy_steps += 1
        if self._healthy_steps >= self.growth_interval:
            self.scale *= self.growth_factor
            self._healthy_steps = 0


@dataclass
class MixedPrecisionState:
    """Master fp32 weights plus their low-precision model copy.

    The forward/backward pass consumes :attr:`model_fp16` (fp16 by
    default, bf16 when ``low_dtype="bf16"``); the optimizer updates
    :attr:`master_fp32`; :meth:`sync_model_copy` is the cast the
    superchip-aware casting decision prices (§4.5).
    """

    master_fp32: Params
    model_fp16: Params = field(default_factory=dict)
    low_dtype: str = "fp16"
    #: Set when the master weights form a :class:`FlatArena`: the
    #: low-precision copy then lives in a same-layout arena and a full
    #: sync is one flat cast over the buffer instead of per-tensor
    #: allocations.  ``model_fp16``'s values become *stable* views.
    master_arena: Optional[FlatArena] = field(default=None, repr=False)
    low_arena: Optional[FlatArena] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.low_dtype not in SUPPORTED_LOW_PRECISION:
            raise ValueError(f"unsupported low precision {self.low_dtype!r}")
        for name, p in self.master_fp32.items():
            if p.dtype != np.float32:
                raise TypeError(f"master weight {name!r} must be fp32")
        if not self.model_fp16:
            self.master_arena = FlatArena.wrap(self.master_fp32)
            if self.master_arena is not None:
                # bf16 is emulated with fp32 storage (see lower_precision).
                low_dt = np.float16 if self.low_dtype == "fp16" else np.float32
                self.low_arena = self.master_arena.like(low_dt)
                self.model_fp16 = dict(self.low_arena.views)
            self.sync_model_copy()

    def sync_model_copy(self, names: list[str] | None = None) -> None:
        """Refresh the low-precision copy from the master (all or subset)."""
        if self.low_arena is not None:
            if names is None:
                # One flat chunked cast over the whole buffer — bitwise
                # identical to the per-tensor casts (casting is elementwise).
                if self.low_dtype == "fp16":
                    parallel_cast(self.low_arena.flat, self.master_arena.flat,
                                  ignore_overflow=True)
                else:
                    parallel_cast(self.low_arena.flat, self.master_arena.flat,
                                  bf16=True)
                self.low_arena.note_alias(self.low_arena.flat.nbytes)
            else:
                for name in names:
                    self.model_fp16[name][...] = lower_precision(
                        self.master_fp32[name], self.low_dtype
                    )
            return
        for name in names if names is not None else self.master_fp32:
            self.model_fp16[name] = lower_precision(
                self.master_fp32[name], self.low_dtype
            )

    def drift(self) -> float:
        """Max |master - low-precision copy| — zero right after a sync,
        bounded by the format's rounding; tests use it to catch missed
        syncs."""
        worst = 0.0
        for name, master in self.master_fp32.items():
            fp32_view = self.model_fp16[name].astype(np.float32)
            worst = max(worst, float(np.max(np.abs(master - fp32_view))))
        return worst
