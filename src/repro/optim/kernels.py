"""Optimizer latency models calibrated to the paper's Table 3.

The step is memory-bandwidth bound on Grace; see
:data:`repro.sim.calibration.ADAM_KERNEL_EFFICIENCY` for the calibration
story.  These helpers express the model in optimizer terms for the
Table 3 benchmark harness and the schedule builders.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.hardware.specs import DeviceSpec
from repro.hardware.registry import GRACE_CPU
from repro.sim.compute import ComputeModel


@lru_cache(maxsize=None)
def compute_model_for(cpu: DeviceSpec) -> ComputeModel:
    """The shared :class:`ComputeModel` for ``cpu``.

    ``DeviceSpec`` is a frozen (hashable) dataclass, so identical specs
    share one model instead of building a fresh one per latency query —
    ``adam_latency_table`` used to construct one per cell.
    """
    return ComputeModel(cpu)


def adam_latency_seconds(
    n_params: int, kernel: str, cpu: DeviceSpec = GRACE_CPU
) -> float:
    """Modelled wall time of one Adam step over ``n_params`` on ``cpu``."""
    return compute_model_for(cpu).adam_step_time(n_params, kernel)


def adam_latency_table(
    param_counts_billions: List[float] | None = None,
    cpu: DeviceSpec = GRACE_CPU,
) -> List[Dict[str, float]]:
    """Regenerate Table 3: latency per implementation per model size.

    Args:
        param_counts_billions: rows to produce; defaults to the paper's
            1/2/4/8 billion.
        cpu: the CPU model (Grace by default).
    """
    sizes = param_counts_billions or [1, 2, 4, 8]
    rows = []
    for billions in sizes:
        n = int(billions * 1e9)
        row: Dict[str, float] = {"params_billion": billions}
        for kernel in ("pt_cpu", "cpu_adam", "grace_adam"):
            row[kernel] = adam_latency_seconds(n, kernel, cpu)
        row["speedup_vs_pt"] = row["pt_cpu"] / row["grace_adam"]
        row["speedup_vs_cpu_adam"] = row["cpu_adam"] / row["grace_adam"]
        rows.append(row)
    return rows


def paper_table3_reference() -> List[Dict[str, float]]:
    """The paper's measured Table 3 numbers, for comparison harnesses."""
    return [
        {"params_billion": 1, "pt_cpu": 0.289, "cpu_adam": 0.098, "grace_adam": 0.082},
        {"params_billion": 2, "pt_cpu": 0.531, "cpu_adam": 0.198, "grace_adam": 0.160},
        {"params_billion": 4, "pt_cpu": 0.958, "cpu_adam": 0.393, "grace_adam": 0.316},
        {"params_billion": 8, "pt_cpu": 1.834, "cpu_adam": 0.769, "grace_adam": 0.608},
    ]
