"""Adaptive weight-stationary / weight-flow offloading (§4.2).

The efficiency model (eqs. 1-3) asks whether streaming FP16 weights over
the C2C link can hide behind forward compute; the adaptive policy then
chooses per-scenario:

* *weight-stationary* (ZeRO-Offload's choice) when the FP16 weights and the
  activations of the desired micro-batch fit in HBM — no weight traffic.
* *weight-flow* (ZeRO-Infinity's direction, done at saturating bucket
  sizes) when activations crowd out the weights — e.g. long-context
  post-training, where a 7B model's 112 GB of states meets 2 TB of
  activations at 1M tokens — or when the model alone exceeds HBM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.specs import DeviceSpec
from repro.models.config import ModelConfig
from repro.models.estimators import activation_bytes, param_count
from repro.sim import calibration


def weight_flow_efficiency(
    params: int,
    batch_size: int,
    seq: int,
    bandwidth: float,
    peak_tp: float,
) -> float:
    """Eqs. 1-3: efficiency of overlapping weight streaming with forward.

    Args:
        params: parameter count Psi.
        batch_size: micro-batch size.
        seq: sequence length.
        bandwidth: uni-directional CPU->GPU bandwidth, bytes/s.
        peak_tp: achievable peak FLOP/s of the GPU.

    Returns:
        comp_time / (comp_time + comm_time) in (0, 1); the paper requires
        > 0.5 for full overlap and prefers > 0.6 with latency headroom.
    """
    if min(params, batch_size, seq) <= 0 or bandwidth <= 0 or peak_tp <= 0:
        raise ValueError("all arguments must be positive")
    comp_time = 2.0 * batch_size * seq * params / peak_tp
    comm_time = 2.0 * params / bandwidth  # FP16 weights cross at least once
    return comp_time / (comp_time + comm_time)


# The paper's viability threshold: >0.5 overlaps in theory, >0.6 leaves
# headroom for latency and scheduling jitter.
EFFICIENCY_THRESHOLD = 0.60


class WeightPolicy(enum.Enum):
    """Where the FP16 model weights live during training."""

    STATIONARY = "weight-stationary"
    FLOW = "weight-flow"


@dataclass(frozen=True)
class OffloadDecision:
    """Outcome of the adaptive policy.

    Attributes:
        policy: chosen weight placement.
        efficiency: eq. 3 value for the weight-flow alternative.
        gpu_resident_bytes: modelled steady-state GPU footprint (weights
            if stationary, plus activations and working buffers).
        reason: human-readable justification (surfaced in engine logs).
    """

    policy: WeightPolicy
    efficiency: float
    gpu_resident_bytes: float
    reason: str


@dataclass(frozen=True)
class AdaptiveOffloadPolicy:
    """Chooses weight-stationary vs weight-flow for a training scenario.

    Args:
        gpu: the GPU device (capacity + achievable FLOP/s).
        c2c_bandwidth: uni-directional C2C bandwidth, bytes/s.
        reserved_bytes: GPU bytes not available to model state.
    """

    gpu: DeviceSpec
    c2c_bandwidth: float
    reserved_bytes: int = calibration.GPU_RESERVED_BYTES

    def decide(
        self,
        config: ModelConfig,
        micro_batch: int,
        seq: int | None = None,
        checkpointing: bool = False,
        working_bytes: int = 4 * calibration.BUCKET_BYTES,
    ) -> OffloadDecision:
        """Pick the weight policy for one run configuration.

        Args:
            config: the model.
            micro_batch: per-GPU micro-batch size.
            seq: sequence length (model default when omitted).
            checkpointing: whether activations are checkpointed.
            working_bytes: bucket/staging buffers the engine keeps resident.
        """
        s = seq if seq is not None else config.seq
        psi = param_count(config)
        weights_fp16 = 2 * psi
        acts = activation_bytes(
            config, micro_batch, s, checkpointing=checkpointing,
            flash_attention=s > 8192,
        )
        budget = self.gpu.mem_capacity - self.reserved_bytes
        budget *= 1.0 - calibration.GPU_HEADROOM_FRACTION
        efficiency = weight_flow_efficiency(
            psi, micro_batch, s, self.c2c_bandwidth, self.gpu.achievable_flops
        )
        stationary_bytes = weights_fp16 + acts + working_bytes
        if stationary_bytes <= budget:
            return OffloadDecision(
                policy=WeightPolicy.STATIONARY,
                efficiency=efficiency,
                gpu_resident_bytes=stationary_bytes,
                reason=(
                    "fp16 weights + activations fit in HBM; stationary "
                    "weights avoid all weight traffic"
                ),
            )
        # Weight-flow keeps only a working set: double-buffered layer
        # weights plus the engine's bucket buffers.
        layer_bytes = 2 * psi / config.n_layers
        flow_bytes = 2 * layer_bytes + acts + working_bytes
        return OffloadDecision(
            policy=WeightPolicy.FLOW,
            efficiency=efficiency,
            gpu_resident_bytes=flow_bytes,
            reason=(
                "activations crowd out stationary weights; streaming "
                f"weights at eq.3 efficiency {efficiency:.2f} "
                + (
                    "(>= threshold, fully overlapped)"
                    if efficiency >= EFFICIENCY_THRESHOLD
                    else "(below threshold, weight traffic partially exposed)"
                )
            ),
        )

    def flow_exposed_fraction(self, efficiency: float) -> float:
        """Fraction of weight-streaming time left exposed on the critical
        path when eq. 3 lands below the overlap threshold."""
        if efficiency >= EFFICIENCY_THRESHOLD:
            return 0.0
        return 1.0 - efficiency / EFFICIENCY_THRESHOLD
