"""The SuperOffload engine and its Fig. 1 style entry point.

``init(model, optimizer_config)`` wraps a numeric model into a
:class:`SuperOffloadEngine` with a few lines, mirroring the paper's
DeepSpeed integration: the engine owns mixed precision, bucketization,
speculation-then-validation, and the adaptive offload policy, and exposes
``train_step`` as the whole training loop surface.

The same :class:`SuperOffloadConfig` feature flags drive the performance
model (:mod:`repro.systems.superoffload`), so the Table 2 ablation toggles
one switch per row in both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.stv import StepReport, STVEngine, SynchronousEngine
from repro.numeric.transformer import TinyTransformer
from repro.optim.adam import AdamConfig
from repro.optim.implementations import AdamOptimizer, GraceAdam, ReferenceAdam
from repro.optim.mixed_precision import LossScaler
from repro.optim.rollback import RollbackStrategy
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class SuperOffloadConfig:
    """Engine feature flags and knobs (Table 2's ablation axes).

    Attributes:
        grace_adam: use the SVE-style tiled optimizer (§4.6); off falls back
            to the unfused reference implementation.
        superchip_aware_casting: price casting per §4.5 (performance-model
            effect; numerics are unchanged by where a cast runs).
        stv: speculation-then-validation (§4.4); off uses the synchronous
            STE ordering.
        bucket_repartitioning: keep tail-bucket optimizer states on the GPU
            (§4.3; performance-model effect).
        n_buckets: bucket count for speculative stepping.
        clip_norm: global gradient clipping threshold (None disables).
        rollback: STV rollback mechanism.
        adam: optimizer hyperparameters.
        precision: low-precision training format, ``"fp16"`` (default,
            dynamic loss scaling) or ``"bf16"`` (no scaling; the GH200's
            native training dtype).
    """

    grace_adam: bool = True
    superchip_aware_casting: bool = True
    stv: bool = True
    bucket_repartitioning: bool = True
    n_buckets: int = 4
    clip_norm: float | None = 1.0
    rollback: RollbackStrategy = RollbackStrategy.SNAPSHOT
    adam: AdamConfig = field(default_factory=AdamConfig)
    precision: str = "fp16"

    def __post_init__(self) -> None:
        if self.n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        if self.precision not in ("fp16", "bf16"):
            raise ValueError("precision must be 'fp16' or 'bf16'")


class SuperOffloadEngine:
    """User-facing training engine over the numeric substrate.

    Args:
        model: the numpy transformer to train (its parameters become the
            fp32 master copy).
        config: feature flags and hyperparameters.
        loss_scaler: optional externally-configured scaler.
        telemetry: span/metric sink threaded through the inner engines;
            defaults to the no-op :data:`~repro.telemetry.NULL_TELEMETRY`
            so instrumentation costs nothing unless requested.
    """

    def __init__(
        self,
        model: TinyTransformer,
        config: SuperOffloadConfig | None = None,
        loss_scaler: LossScaler | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or SuperOffloadConfig()
        self.model = model
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        optimizer_cls = GraceAdam if self.config.grace_adam else ReferenceAdam
        self.optimizer: AdamOptimizer = optimizer_cls(
            model.params, self.config.adam
        )
        if self.config.stv:
            self._inner: STVEngine | SynchronousEngine = STVEngine(
                model,
                self.optimizer,
                clip_norm=self.config.clip_norm,
                loss_scaler=loss_scaler,
                n_buckets=self.config.n_buckets,
                rollback=self.config.rollback,
                precision=self.config.precision,
                telemetry=self.telemetry,
            )
        else:
            self._inner = SynchronousEngine(
                model,
                self.optimizer,
                clip_norm=self.config.clip_norm,
                loss_scaler=loss_scaler,
                precision=self.config.precision,
                telemetry=self.telemetry,
            )
        self.history: List[StepReport] = []

    def train_step(
        self, ids: np.ndarray, targets: np.ndarray, grad_accum: int = 1
    ) -> StepReport:
        """Run one full training iteration (forward, backward, optimize).

        Args:
            ids: token ids for the whole step batch.
            targets: next-token targets.
            grad_accum: split the batch into this many micro-batches and
                accumulate gradients before the optimizer step (§5.2's
                OOM-avoidance strategy 1).
        """
        with self.telemetry.tracer.span(
            "train_step", category="step", iteration=self._inner.iteration
        ):
            report = self._inner.train_step(ids, targets, grad_accum)
        metrics = self.telemetry.metrics
        metrics.gauge("loss_scale").set(self._inner.scaler.scale)
        metrics.histogram("step_loss").observe(report.loss)
        if not report.overflow:
            metrics.histogram("grad_norm").observe(report.grad_norm)
        self.history.append(report)
        return report

    @property
    def iteration(self) -> int:
        """Iterations completed."""
        return self._inner.iteration

    @property
    def rollback_count(self) -> int:
        """Total STV rollbacks so far (0 for the synchronous engine)."""
        return getattr(self._inner, "rollback_count", 0)

    @property
    def loss_scale(self) -> float:
        """The current dynamic loss scale."""
        return self._inner.scaler.scale

    def rollback_iterations(self) -> List[int]:
        """Iteration indices where a rollback occurred (Fig. 14's red dots)."""
        return [r.iteration for r in self.history if r.rolled_back]

    def losses(self) -> List[float]:
        """Loss curve over the recorded history."""
        return [r.loss for r in self.history]

    # ---- checkpointing --------------------------------------------------

    def state_dict(self) -> Dict:
        """Serializable training state for checkpoint/resume.

        Captures the fp32 master weights, the optimizer moments and step
        counts, the dynamic loss-scaler state, and the iteration counter —
        everything needed for a bitwise-identical resume (the test suite
        asserts resume == uninterrupted training).
        """
        inner = self._inner
        return {
            "master": {k: v.copy() for k, v in self.model.params.items()},
            "optim_m": {k: s.m.copy() for k, s in self.optimizer.state.items()},
            "optim_v": {k: s.v.copy() for k, s in self.optimizer.state.items()},
            "optim_step": {k: s.step for k, s in self.optimizer.state.items()},
            "scale": inner.scaler.scale,
            "scaler_healthy_steps": inner.scaler._healthy_steps,
            "iteration": inner.iteration,
            "rollback_count": getattr(inner, "rollback_count", 0),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        required = {"master", "optim_m", "optim_v", "optim_step", "scale",
                    "scaler_healthy_steps", "iteration"}
        missing = required - set(state)
        if missing:
            raise KeyError(f"checkpoint missing keys: {sorted(missing)}")
        for k, v in state["master"].items():
            self.model.params[k][...] = v
        for k, st in self.optimizer.state.items():
            st.m[...] = state["optim_m"][k]
            st.v[...] = state["optim_v"][k]
            st.step = state["optim_step"][k]
        inner = self._inner
        inner.scaler.scale = state["scale"]
        inner.scaler._healthy_steps = state["scaler_healthy_steps"]
        inner.iteration = state["iteration"]
        if hasattr(inner, "rollback_count"):
            inner.rollback_count = state.get("rollback_count", 0)
        inner.mp.sync_model_copy()


def init(
    model: TinyTransformer,
    config: SuperOffloadConfig | None = None,
    telemetry: Telemetry | None = None,
) -> SuperOffloadEngine:
    """Enable SuperOffload on a model with one call (the Fig. 1 API).

    Example::

        model = TinyTransformer(spec)
        engine = superoffload.init(model)
        for ids, targets in batches:
            report = engine.train_step(ids, targets)
    """
    return SuperOffloadEngine(model, config, telemetry=telemetry)
