"""Background gradient validation (§4.4's validation process).

The paper implements validation as a separate process fed through a
multiprocessing queue: while the GPU runs the next forward pass, the
validator computes the global gradient norm and scans for NaN/Inf, and the
engine consults the verdict afterwards.  This module provides that
mechanism with a worker *thread* (numpy releases the GIL inside the norm
reductions, so a thread gives the same concurrency without the fork
overhead — and stays robust in sandboxed environments).

:class:`BackgroundValidator` is deliberately engine-agnostic: callers
submit ``(grads, clip_norm)`` jobs and either block on the ticket or poll
it, mirroring the paper's queue protocol.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.optim.mixed_precision import GradientHealth, check_gradients

Params = Dict[str, np.ndarray]


@dataclass
class ValidationTicket:
    """Handle for one in-flight validation job."""

    job_id: int
    _event: threading.Event = field(default_factory=threading.Event)
    _result: Optional[GradientHealth] = None
    _error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether the verdict is available."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> GradientHealth:
        """Block until the verdict arrives and return it.

        Raises:
            TimeoutError: the validator did not answer within ``timeout``.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(f"validation job {self.job_id} timed out")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class BackgroundValidator:
    """A worker thread that validates gradients off the critical path.

    Args:
        daemon: mark the worker thread as a daemon (default True so an
            abandoned validator never blocks interpreter exit).
    """

    def __init__(self, daemon: bool = True):
        self._queue: "queue.Queue" = queue.Queue()
        self._next_id = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="stv-validator", daemon=daemon
        )
        self._thread.start()

    def submit(self, grads: Params, clip_norm: float | None) -> ValidationTicket:
        """Queue one validation job; returns immediately.

        The gradients are *not* copied: the STV engine retains them until
        the verdict anyway (it needs them for potential rollback), matching
        the paper's zero-copy queue handoff.
        """
        if self._closed:
            raise RuntimeError("validator has been closed")
        ticket = ValidationTicket(self._next_id)
        self._next_id += 1
        self._queue.put((ticket, grads, clip_norm))
        return ticket

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            ticket, grads, clip_norm = item
            try:
                ticket._result = check_gradients(grads, clip_norm)
            except BaseException as exc:  # surfaced at result()
                ticket._error = exc
            finally:
                ticket._event.set()

    def close(self) -> None:
        """Drain and stop the worker (idempotent)."""
        if not self._closed:
            self._closed = True
            self._queue.put(None)
            self._thread.join(timeout=5)

    def __enter__(self) -> "BackgroundValidator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
