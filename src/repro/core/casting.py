"""Superchip-aware casting decision (§4.5).

Wraps the hardware casting cost model into the per-bucket decision the
engine makes: with SAC enabled, pick the cheaper of cast-on-GPU/move-FP32
versus move-FP16/cast-on-CPU (on GH200 the FP32 path wins across the range
the paper measures); with SAC disabled, always take the classic minimum-
communication-volume FP16 path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.casting import CastingModel, CastPathCost


@dataclass(frozen=True)
class CastDecision:
    """The per-bucket casting strategy.

    Attributes:
        path: the chosen :class:`CastPathCost`.
        alternative: the rejected path (for reporting/ablations).
        superchip_aware: whether the decision considered casting cost.
    """

    path: CastPathCost
    alternative: CastPathCost
    superchip_aware: bool

    @property
    def pinned_transfer(self) -> bool:
        """FP32 DMA moves through pinned memory; the FP16 path bounces
        through the unpinned temporary the paper observes (§4.5)."""
        return self.path.path == "cast_gpu_move_fp32"

    @property
    def savings_seconds(self) -> float:
        """Time saved versus the rejected path (>= 0 when aware)."""
        return self.alternative.total - self.path.total


def choose_cast_path(
    fp32_bytes: int,
    model: CastingModel,
    superchip_aware: bool = True,
) -> CastDecision:
    """Pick the casting strategy for one bucket payload.

    Args:
        fp32_bytes: the bucket's FP32 payload size.
        model: the superchip's casting cost model.
        superchip_aware: False reproduces the PCIe-era greedy edge cut
            (always move FP16), the Table 2 "Cast Optim. off" ablation.
    """
    if fp32_bytes <= 0:
        raise ValueError("fp32_bytes must be positive")
    gpu_path = model.cast_gpu_move_fp32(fp32_bytes)
    cpu_path = model.cast_cpu_move_fp16(fp32_bytes)
    if not superchip_aware:
        return CastDecision(
            path=cpu_path, alternative=gpu_path, superchip_aware=False
        )
    if gpu_path.total <= cpu_path.total:
        return CastDecision(
            path=gpu_path, alternative=cpu_path, superchip_aware=True
        )
    return CastDecision(path=cpu_path, alternative=gpu_path, superchip_aware=True)
