"""Fine-grained bucketization and repartitioning (§4.3).

Gradients and parameters are grouped into 64 MB buckets — the Fig. 7
saturation size — so each transfer runs at full C2C bandwidth while staying
fine-grained enough to overlap with backward compute.  The *repartitioning*
insight: the last buckets produced by backward feed the *first* layers of
the next forward, so their CPU round-trip (swap-out, Grace Adam, swap-in)
cannot hide behind anything; SuperOffload instead keeps the optimizer
states of the last ``n`` buckets on the GPU, with ``n`` bounded by eq. 4-5
and picked by grid search over the simulated schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.models.config import ModelConfig
from repro.models.estimators import param_count
from repro.sim import calibration


@dataclass(frozen=True)
class Bucket:
    """One gradient/parameter bucket.

    Attributes:
        index: position in backward-production order (0 = produced first,
            i.e. the *deepest* layers' gradients).
        n_params: parameters covered.
        on_gpu: whether this bucket's optimizer states stay in HBM.
    """

    index: int
    n_params: int
    on_gpu: bool = False

    @property
    def grad_bytes_fp16(self) -> int:
        return 2 * self.n_params

    @property
    def grad_bytes_fp32(self) -> int:
        return 4 * self.n_params

    @property
    def optimizer_state_bytes(self) -> int:
        return 12 * self.n_params


@dataclass(frozen=True)
class BucketPlan:
    """A model's bucket decomposition.

    Attributes:
        buckets: in backward-production order.
        bucket_bytes: the fp16 payload target per bucket.
    """

    buckets: Tuple[Bucket, ...]
    bucket_bytes: int

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    @property
    def gpu_buckets(self) -> Tuple[Bucket, ...]:
        """Buckets whose optimizer runs on the GPU (the repartitioned tail)."""
        return tuple(b for b in self.buckets if b.on_gpu)

    @property
    def cpu_buckets(self) -> Tuple[Bucket, ...]:
        return tuple(b for b in self.buckets if not b.on_gpu)

    @property
    def gpu_params(self) -> int:
        return sum(b.n_params for b in self.gpu_buckets)

    @property
    def cpu_params(self) -> int:
        return sum(b.n_params for b in self.cpu_buckets)

    def gpu_optimizer_state_bytes(self) -> int:
        """Extra HBM consumed by the repartitioned tail."""
        return sum(b.optimizer_state_bytes for b in self.gpu_buckets)


def build_bucket_plan(
    config: ModelConfig,
    bucket_bytes: int = calibration.BUCKET_BYTES,
    n_gpu_buckets: int = 0,
) -> BucketPlan:
    """Partition a model's parameters into fp16 buckets of ``bucket_bytes``.

    Args:
        config: the model.
        bucket_bytes: fp16 payload per bucket (64 MB default, Fig. 7).
        n_gpu_buckets: how many of the *last-produced* buckets keep their
            optimizer state on the GPU (§4.3 repartitioning).
    """
    if bucket_bytes < 2:
        raise ValueError("bucket_bytes must hold at least one fp16 element")
    psi = param_count(config)
    per_bucket = bucket_bytes // 2  # fp16 elements
    n_buckets = max(1, (psi + per_bucket - 1) // per_bucket)
    if not 0 <= n_gpu_buckets <= n_buckets:
        raise ValueError(
            f"n_gpu_buckets {n_gpu_buckets} outside [0, {n_buckets}]"
        )
    buckets: List[Bucket] = []
    remaining = psi
    for i in range(n_buckets):
        size = min(per_bucket, remaining)
        # The last n_gpu_buckets produced (highest indices) stay on GPU.
        on_gpu = i >= n_buckets - n_gpu_buckets
        buckets.append(Bucket(index=i, n_params=size, on_gpu=on_gpu))
        remaining -= size
    return BucketPlan(buckets=tuple(buckets), bucket_bytes=bucket_bytes)


def repartition_headroom(
    move_grad_s: float,
    step_cpu_s: float,
    move_param_s: float,
    bwd_per_bucket_s: float,
    step_gpu_per_bucket_s: float,
    n_gpu_buckets: int,
) -> float:
    """Eq. 4-5 slack: GPU-side work for ``n`` tail buckets minus the final
    CPU bucket's exposed round-trip.

    Positive slack means the last CPU bucket's (swap-out + Grace step +
    swap-in) hides entirely behind the backward + GPU-step work of the ``n``
    repartitioned buckets.
    """
    if n_gpu_buckets < 0:
        raise ValueError("n_gpu_buckets must be non-negative")
    lhs = move_grad_s + step_cpu_s + move_param_s
    rhs = n_gpu_buckets * (bwd_per_bucket_s + step_gpu_per_bucket_s)
    return rhs - lhs


def grid_search_gpu_buckets(
    n_buckets: int,
    objective: Callable[[int], float],
    max_gpu_buckets: int | None = None,
) -> Tuple[int, float]:
    """Grid search over the repartitioned tail size (§4.3).

    Args:
        n_buckets: total bucket count.
        objective: ``n -> simulated iteration seconds`` (lower is better);
            typically a closure over the schedule simulator.
        max_gpu_buckets: cap from the HBM budget (each GPU bucket costs
            12 bytes/param of optimizer state).

    Returns:
        (best_n, best_objective).
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    hi = n_buckets if max_gpu_buckets is None else min(n_buckets, max_gpu_buckets)
    best_n, best_val = 0, objective(0)
    for n in range(1, hi + 1):
        val = objective(n)
        if val < best_val:
            best_n, best_val = n, val
    return best_n, best_val


def bucket_transfer_sizes(plan: BucketPlan, fp32: bool) -> Sequence[int]:
    """Per-bucket link payloads for the CPU-bound buckets.

    Args:
        plan: the bucket plan.
        fp32: True under superchip-aware casting (§4.5 moves FP32),
            False under the classic FP16 edge cut.
    """
    width = 4 if fp32 else 2
    return [width * b.n_params for b in plan.cpu_buckets]
