"""Operational weight-flow manager (§4.2's weight-flow policy, running).

The performance simulator prices weight streaming; this module *executes*
it against the memory-pool substrate: layer weights live host-side, a
bounded HBM working set holds the layers currently in flight, and a
prefetch window pulls the next layers' weights through pinned staging
buffers ahead of use.  The tests drive forward/backward layer orders
through it and assert the §4.2 invariants — the HBM footprint never
exceeds the configured working set, every layer's weights are resident
when used, and eviction follows use order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.tensors.errors import DeviceOutOfMemoryError
from repro.tensors.memory import Allocation, MemoryPool
from repro.tensors.pinned import PinnedBufferPool


@dataclass(frozen=True)
class FetchRecord:
    """One host->device weight fetch performed by the manager."""

    layer: int
    nbytes: int
    pinned: bool
    prefetched: bool


class WeightFlowManager:
    """Streams per-layer weights through a bounded HBM working set.

    Args:
        layer_bytes: fp16 weight bytes per layer, in layer order.
        gpu_pool: the HBM pool fetched weights are allocated from.
        pinned_pool: page-locked staging buffers; fetches that cannot get
            one fall back to pageable transfers (recorded per fetch — the
            §4.5 penalty the schedule models price).
        window: maximum layers resident at once (>= 2 for double
            buffering).
    """

    def __init__(
        self,
        layer_bytes: Sequence[int],
        gpu_pool: MemoryPool,
        pinned_pool: PinnedBufferPool | None = None,
        window: int = 2,
    ):
        if not layer_bytes:
            raise ValueError("at least one layer required")
        if any(b <= 0 for b in layer_bytes):
            raise ValueError("layer sizes must be positive")
        if window < 2:
            raise ValueError("window must be >= 2 (double buffering)")
        self.layer_bytes = list(layer_bytes)
        self.gpu_pool = gpu_pool
        self.pinned_pool = pinned_pool
        self.window = window
        self._resident: "OrderedDict[int, Allocation]" = OrderedDict()
        self.fetches: List[FetchRecord] = []
        self.evictions: List[int] = []
        self.use_count = 0
        self.hit_count = 0
        self._last_used: Optional[int] = None

    @property
    def resident_layers(self) -> List[int]:
        """Layers currently in HBM, oldest first."""
        return list(self._resident)

    def resident_bytes(self) -> int:
        """HBM bytes the manager currently holds."""
        return sum(a.nbytes for a in self._resident.values())

    def _evict_oldest(self) -> None:
        layer, alloc = self._resident.popitem(last=False)
        alloc.free()
        self.evictions.append(layer)

    def _fetch(self, layer: int, prefetched: bool) -> None:
        if layer in self._resident:
            self._resident.move_to_end(layer)
            return
        while len(self._resident) >= self.window:
            self._evict_oldest()
        nbytes = self.layer_bytes[layer]
        staging = (
            self.pinned_pool.try_reserve(nbytes, f"stage.l{layer}")
            if self.pinned_pool is not None
            else None
        )
        try:
            alloc = self.gpu_pool.allocate(nbytes, f"weights.l{layer}")
        except DeviceOutOfMemoryError:
            # shrink the working set and retry once — mirrors an engine
            # dropping its prefetch depth under memory pressure
            if not self._resident:
                if staging is not None:
                    self.pinned_pool.release(staging)
                raise
            self._evict_oldest()
            alloc = self.gpu_pool.allocate(nbytes, f"weights.l{layer}")
        self._resident[layer] = alloc
        self.fetches.append(
            FetchRecord(layer, nbytes, pinned=staging is not None,
                        prefetched=prefetched)
        )
        if staging is not None:
            # staging buffer is transient: released once the DMA lands
            self.pinned_pool.release(staging)

    def use(self, layer: int) -> None:
        """Make ``layer`` resident (fetching if needed) and mark it used."""
        if not 0 <= layer < len(self.layer_bytes):
            raise IndexError(f"layer {layer} out of range")
        self.use_count += 1
        if layer in self._resident:
            self.hit_count += 1
        self._fetch(layer, prefetched=False)
        self._last_used = layer

    def prefetch(self, layer: int) -> None:
        """Pull ``layer`` ahead of use, evicting already-consumed layers.

        The most-recently-used layer is pinned (its compute may still be in
        flight); anything older is dead weight the prefetcher may evict.
        If nothing can be evicted the prefetch is skipped.
        """
        if not 0 <= layer < len(self.layer_bytes):
            return
        if layer in self._resident:
            return
        while len(self._resident) >= self.window:
            oldest = next(iter(self._resident))
            if oldest == self._last_used:
                return  # nothing evictable; skip the prefetch
            self._evict_oldest()
        self._fetch(layer, prefetched=True)

    def run_pass(self, order: Iterator[int] | Sequence[int]) -> None:
        """Drive one forward or backward pass over ``order``.

        For each used layer the next layer in the order is prefetched —
        the double-buffered pipeline of §4.2's weight-flow policy.
        """
        sequence = list(order)
        for i, layer in enumerate(sequence):
            self.use(layer)
            if i + 1 < len(sequence):
                self.prefetch(sequence[i + 1])

    def release_all(self) -> None:
        """Drop every resident layer (end of training / policy switch)."""
        while self._resident:
            self._evict_oldest()

    def hit_rate(self) -> float:
        """Fraction of uses that found their layer already resident (the
        prefetcher's effectiveness)."""
        if self.use_count == 0:
            return 0.0
        return self.hit_count / self.use_count
