"""Speculation-then-validation (STV), running for real (§4.4).

:class:`SynchronousEngine` is the classic synchronize-then-execute (STE)
baseline: wait for all gradients, run the global NaN/Inf and clipping
checks, then step.  :class:`STVEngine` steps *speculatively* per bucket as
gradients are produced and validates afterwards, rolling back when the
speculation was wrong — numerically equivalent to STE by construction,
which the tests assert over whole training runs including unstable
iterations.

In the real system the validation runs in a background process alongside
the next forward pass; the numeric engine executes it inline (determinism),
while the performance simulator (:mod:`repro.systems.superoffload`) models
the concurrency and its effect on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.exec.ops import (
    parallel_add_scaled,
    parallel_cast,
    parallel_scale,
    parallel_scale_into,
)
from repro.optim.mixed_precision import lower_precision
from repro.numeric.transformer import TinyTransformer
from repro.optim.implementations import AdamOptimizer, CPUAdam
from repro.optim.mixed_precision import (
    GradientHealth,
    LossScaler,
    MixedPrecisionState,
    check_gradients,
    clip_coefficient,
)
from repro.optim.rollback import RollbackStrategy, make_rollback
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.arena import FlatArena

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class StepReport:
    """Per-iteration outcome record (the Fig. 14 event stream).

    Attributes:
        iteration: 0-based iteration index.
        loss: unscaled training loss of the forward pass.
        grad_norm: post-unscale global gradient norm (0.0 on overflow).
        overflow: NaN/Inf detected — iteration skipped (rollback scenario 1).
        clipped: clip threshold exceeded — update re-executed with clipped
            gradients (rollback scenario 2).
        rolled_back: a speculative update was reverted this iteration.
        loss_scale: scale in effect during the forward pass.
    """

    iteration: int
    loss: float
    grad_norm: float
    overflow: bool
    clipped: bool
    rolled_back: bool
    loss_scale: float


def _bucketize_names(params: Params, n_buckets: int) -> List[List[str]]:
    """Group parameter names into backward-production-order buckets.

    Backward produces gradients from the last layer backwards, so the
    *reversed* parameter list approximates production order; buckets are
    balanced by element count.
    """
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    names = list(reversed(list(params)))
    total = sum(params[n].size for n in names)
    target = total / n_buckets
    buckets: List[List[str]] = [[]]
    acc = 0
    for name in names:
        if acc >= target * len(buckets) and len(buckets) < n_buckets:
            buckets.append([])
        buckets[-1].append(name)
        acc += params[name].size
    return buckets


class _EngineBase:
    """Shared fp16-forward / fp32-master machinery of both engines."""

    def __init__(
        self,
        model: TinyTransformer,
        optimizer: AdamOptimizer,
        clip_norm: float | None = 1.0,
        loss_scaler: LossScaler | None = None,
        precision: str = "fp16",
        telemetry: Telemetry | None = None,
    ):
        if optimizer.params is not model.params:
            raise ValueError(
                "optimizer must be constructed over the model's parameters"
            )
        self.model = model
        self.optimizer = optimizer
        self.clip_norm = clip_norm
        self.precision = precision
        if loss_scaler is not None:
            self.scaler = loss_scaler
        elif precision == "bf16":
            # bf16 keeps fp32's exponent range: no scaling needed.
            self.scaler = LossScaler(init_scale=1.0, growth_interval=10**9)
        else:
            self.scaler = LossScaler()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tracer = self.telemetry.tracer
        self._metrics = self.telemetry.metrics
        # Move the master weights into a flat arena (a zero-copy wrap if a
        # lower layer already did) and give the optimizer arena-backed
        # moments; gradients accumulate into a same-layout arena and the
        # widened fp32 working copy gets one too, so the per-step casts and
        # the gradient unscale are single flat passes.
        self.arena = FlatArena.wrap(model.params, telemetry=self.telemetry)
        if self.arena is None:
            self.arena = FlatArena.adopt(model.params,
                                         telemetry=self.telemetry)
        if self.optimizer.arena is None:
            self.optimizer.bind_arena(self.arena)
        self._grad_arena = self.arena.like()
        self._wide_arena = self.arena.like()
        self.mp = MixedPrecisionState(
            master_fp32=model.params, low_dtype=precision
        )
        if self.mp.master_arena is not None:
            self.mp.master_arena.set_telemetry(self.telemetry)
            self.mp.low_arena.set_telemetry(self.telemetry)
        self.iteration = 0
        self.rollback_count = 0
        # Experiment hook: multiplies raw gradients before the fp16 round
        # trip, letting tests and the Fig. 14 trainer inject warm-up-style
        # gradient spikes (clipping) and overflows deterministically.
        self.grad_injection = 1.0

    def _forward_backward(
        self, ids: np.ndarray, targets: np.ndarray, grad_accum: int = 1
    ) -> tuple[float, Params, bool]:
        """FP16 forward/backward with loss scaling and optional gradient
        accumulation.

        With ``grad_accum > 1`` the batch dimension is split into that many
        micro-batches (the paper's OOM-avoidance strategy 1, §5.2) and the
        unscaled fp32 gradients are averaged across them — the boundary
        where offloading engines transfer gradients.

        Returns (unscaled loss, unscaled fp32 gradients, overflow flag).
        Gradients round-trip through fp16 — exactly where a real mixed-
        precision backward produces them — so overflow genuinely occurs
        when the scale is too high or the batch is pathological.
        """
        if grad_accum < 1:
            raise ValueError("grad_accum must be >= 1")
        if ids.shape[0] % grad_accum:
            raise ValueError(
                f"batch {ids.shape[0]} not divisible by grad_accum {grad_accum}"
            )
        with self._tracer.span("cast", category="cast", direction="widen"):
            if self.mp.low_arena is not None:
                # One flat widening cast into the reusable fp32 arena,
                # executed as parallel chunk kernels (bitwise identical
                # to per-tensor astype).
                parallel_cast(self._wide_arena.flat, self.mp.low_arena.flat)
                self._wide_arena.note_alias(self._wide_arena.flat.nbytes)
                widened = dict(self._wide_arena.views)
            else:
                widened = {
                    k: v.astype(np.float32)
                    for k, v in self.mp.model_fp16.items()
                }
        inv = np.float32(1.0 / self.scaler.scale)
        boost = np.float32(self.grad_injection)
        overflow = False
        total_loss = 0.0
        accumulated: Params = {}
        grad_views = self._grad_arena.views
        all_in_arena = True
        with self._tracer.span("fwd_bwd", category="compute",
                               micro_batches=grad_accum):
            for micro_ids, micro_targets in zip(
                np.split(ids, grad_accum), np.split(targets, grad_accum)
            ):
                loss, grads = self.model.loss_and_grads(
                    micro_ids, micro_targets, params=widened,
                    loss_scale=self.scaler.scale,
                )
                total_loss += loss
                for name, g in grads.items():
                    if boost != 1.0:
                        g = g * boost
                    g16 = lower_precision(g, self.precision)
                    if not np.all(np.isfinite(g16)):
                        overflow = True
                    if name in accumulated:
                        # Chunked accumulate (dst += g16 * inv); the kernel
                        # silences the inf - inf style propagation expected
                        # when a micro batch overflowed — the health check
                        # flags it and the iteration is skipped.
                        parallel_add_scaled(
                            accumulated[name].reshape(-1),
                            g16.reshape(-1), inv,
                        )
                        continue
                    out = grad_views.get(name)
                    if out is not None and out.shape == g16.shape:
                        # First micro-batch lands straight in the gradient
                        # arena (same bits as astype-then-multiply).
                        parallel_scale_into(
                            out.reshape(-1), g16.reshape(-1), inv
                        )
                        accumulated[name] = out
                    else:
                        accumulated[name] = g16.astype(np.float32) * inv
                        all_in_arena = False
        if all_in_arena and set(accumulated) == set(grad_views):
            # Re-emit in layout order so downstream flat fast paths can
            # recognise the dict as the arena (no array copies involved).
            accumulated = {
                name: accumulated[name]
                for name in self._grad_arena.layout.names
            }
            if grad_accum > 1:
                parallel_scale(self._grad_arena.flat,
                               np.float32(1.0 / grad_accum))
        elif grad_accum > 1:
            scale = np.float32(1.0 / grad_accum)
            for name in accumulated:
                accumulated[name] *= scale
        return total_loss / grad_accum, accumulated, overflow

    def _apply_clip(self, grads: Params, coef: float) -> Params:
        if coef == 1.0:
            return grads
        flat = self._grad_arena.flat_of(grads)
        if flat is not None:
            # Gradients live in the arena: clip is one in-place flat
            # multiply (same bits as the per-tensor out-of-place version).
            parallel_scale(flat, np.float32(coef))
            return grads
        return {k: (g * np.float32(coef)).astype(np.float32) for k, g in grads.items()}


class SynchronousEngine(_EngineBase):
    """Synchronize-then-execute (STE): the ZeRO-Offload ordering.

    The optimizer step waits for the *global* gradient checks — the very
    synchronization Fig. 3 shows exposing CPU work on the critical path.
    """

    def train_step(
        self, ids: np.ndarray, targets: np.ndarray, grad_accum: int = 1
    ) -> StepReport:
        """One STE training iteration (optionally micro-batched)."""
        loss, grads, overflow = self._forward_backward(ids, targets, grad_accum)
        scale = self.scaler.scale
        with self._tracer.span("validate", category="validate"):
            health = check_gradients(grads, self.clip_norm) if not overflow \
                else GradientHealth(True, 0.0, False)
        if health.has_nan_or_inf:
            self._metrics.counter("overflows_total").inc()
            self.scaler.update(found_overflow=True)
            report = StepReport(
                self.iteration, loss, 0.0, True, False, False, scale
            )
            self.iteration += 1
            return report
        coef = (
            clip_coefficient(health.global_norm, self.clip_norm)
            if self.clip_norm is not None
            else 1.0
        )
        with self._tracer.span("optimizer_step", category="optim"):
            self.optimizer.step(self._apply_clip(grads, coef))
        with self._tracer.span("cast", category="cast", direction="narrow"):
            self.mp.sync_model_copy()
        self.scaler.update(found_overflow=False)
        report = StepReport(
            self.iteration,
            loss,
            health.global_norm,
            False,
            health.clip_triggered,
            False,
            scale,
        )
        self.iteration += 1
        return report


class STVEngine(_EngineBase):
    """Speculation-then-validation (§4.4).

    Steps each gradient bucket the moment it is produced, validates the
    global conditions afterwards, and rolls back (in place) on the rare
    mis-speculation — preserving STE semantics exactly.

    Args:
        model: the numeric transformer.
        optimizer: Adam over the model's fp32 master weights.  Bucket-wise
            stepping requires per-tensor state, so :class:`CPUAdam`'s flat
            buffer is rejected.
        clip_norm: global-norm clipping threshold (None disables clipping).
        loss_scaler: dynamic loss scaler (fresh default if omitted).
        n_buckets: speculative stepping granularity (§4.3's buckets).
        rollback: rollback mechanism (snapshot is bit-exact; algebraic is
            the paper's in-place reconstruction).
        background_validation: run the global checks on the §4.4 background
            validator (a worker thread standing in for the paper's
            multiprocessing queue); semantics are identical, the verdict is
            simply produced off the calling thread.
    """

    def __init__(
        self,
        model: TinyTransformer,
        optimizer: AdamOptimizer,
        clip_norm: float | None = 1.0,
        loss_scaler: LossScaler | None = None,
        n_buckets: int = 4,
        rollback: RollbackStrategy = RollbackStrategy.SNAPSHOT,
        background_validation: bool = False,
        precision: str = "fp16",
        telemetry: Telemetry | None = None,
    ):
        if isinstance(optimizer, CPUAdam):
            raise TypeError(
                "STV steps buckets independently; CPUAdam's fused flat "
                "buffer cannot do that — use GraceAdam or ReferenceAdam"
            )
        super().__init__(model, optimizer, clip_norm, loss_scaler, precision,
                         telemetry)
        self.buckets = _bucketize_names(model.params, n_buckets)
        self.rollback_strategy = rollback
        self._rollbacks = [
            make_rollback(rollback, optimizer) for _ in self.buckets
        ]
        self._validator = None
        if background_validation:
            from repro.core.validator import BackgroundValidator

            self._validator = BackgroundValidator()

    def _bucket_grads(self, grads: Params, bucket: Sequence[str]) -> Params:
        return {name: grads[name] for name in bucket}

    def train_step(
        self, ids: np.ndarray, targets: np.ndarray, grad_accum: int = 1
    ) -> StepReport:
        """One STV training iteration (speculate, validate, maybe roll back).

        Args:
            ids: input token ids for the full per-step batch.
            targets: next-token targets.
            grad_accum: micro-batch count; gradients offload (and the
                speculative steps fire) only at the accumulation boundary.
        """
        loss, grads, overflow = self._forward_backward(ids, targets, grad_accum)
        scale = self.scaler.scale

        # --- speculation: step each bucket as its gradients "arrive" -------
        # A bucket-local finiteness check guards the speculative step: it
        # needs no cross-bucket synchronization (unlike the *global* norm),
        # and it keeps non-finite values out of the optimizer state so the
        # in-place algebraic rollback stays exact.
        stepped: List[bool] = []
        with self._tracer.span("speculative_step", category="optim",
                               buckets=len(self.buckets)):
            for bucket, rollback in zip(self.buckets, self._rollbacks):
                bucket_grads = self._bucket_grads(grads, bucket)
                finite = all(
                    np.all(np.isfinite(g)) for g in bucket_grads.values()
                )
                if finite:
                    rollback.capture(bucket_grads)
                    self.optimizer.step(bucket_grads)
                stepped.append(finite)

        # --- validation (background process in the real system) ------------
        with self._tracer.span("validate", category="validate"):
            if overflow:
                health = GradientHealth(True, 0.0, False)
            elif self._validator is not None:
                # submitted to the worker while (in the real system) the GPU
                # would be running the next forward pass; the verdict is
                # joined before any parameter is consumed again.
                health = self._validator.submit(grads, self.clip_norm).result()
            else:
                health = check_gradients(grads, self.clip_norm)

        rolled_back = False
        clipped = False
        if health.has_nan_or_inf:
            # Scenario 1: skip the iteration entirely (revert what stepped).
            with self._tracer.span("rollback", category="rollback",
                                   reason="overflow"):
                for bucket, rollback, did in zip(
                    self.buckets, self._rollbacks, stepped
                ):
                    if did:
                        rollback.rollback(self._bucket_grads(grads, bucket))
            rolled_back = True
            self.rollback_count += 1
            self._metrics.counter("rollbacks_total", reason="overflow").inc()
            self._metrics.counter("overflows_total").inc()
            self.scaler.update(found_overflow=True)
            report = StepReport(self.iteration, loss, 0.0, True, False, True, scale)
            self.iteration += 1
            return report
        if health.clip_triggered:
            # Scenario 2: revert, clip, re-execute.
            assert self.clip_norm is not None
            with self._tracer.span("rollback", category="rollback",
                                   reason="clip"):
                for bucket, rollback in zip(self.buckets, self._rollbacks):
                    rollback.rollback(self._bucket_grads(grads, bucket))
            coef = clip_coefficient(health.global_norm, self.clip_norm)
            clipped_grads = self._apply_clip(grads, coef)
            with self._tracer.span("optimizer_step", category="optim",
                                   clipped=True):
                for bucket in self.buckets:
                    self.optimizer.step(
                        self._bucket_grads(clipped_grads, bucket)
                    )
            rolled_back = True
            clipped = True
            self.rollback_count += 1
            self._metrics.counter("rollbacks_total", reason="clip").inc()
        else:
            for rollback in self._rollbacks:
                rollback.discard()

        with self._tracer.span("cast", category="cast", direction="narrow"):
            self.mp.sync_model_copy()
        self.scaler.update(found_overflow=False)
        report = StepReport(
            self.iteration, loss, health.global_norm, False, clipped,
            rolled_back, scale,
        )
        self.iteration += 1
        return report
