"""SuperOffload core: the paper's primary contribution.

* :mod:`repro.core.policy` — adaptive weight-stationary / weight-flow
  offloading and the efficiency model of §4.2 (eqs. 1-3).
* :mod:`repro.core.bucketization` — 64 MB bucketization and the
  repartitioning that keeps the last buckets' optimizer on the GPU (§4.3,
  eqs. 4-5, grid search).
* :mod:`repro.core.stv` — speculation-then-validation with exact rollback
  (§4.4), running for real on the numeric substrate.
* :mod:`repro.core.casting` — superchip-aware casting decisions (§4.5).
* :mod:`repro.core.engine` — the user-facing engine and the Fig. 1 style
  ``init(model, optimizer)`` entry point, with the Table 2 feature flags.
"""

from repro.core.policy import (
    AdaptiveOffloadPolicy,
    OffloadDecision,
    WeightPolicy,
    weight_flow_efficiency,
)
from repro.core.bucketization import (
    Bucket,
    BucketPlan,
    build_bucket_plan,
    bucket_transfer_sizes,
    grid_search_gpu_buckets,
    repartition_headroom,
)
from repro.core.casting import CastDecision, choose_cast_path
from repro.core.stv import StepReport, STVEngine, SynchronousEngine
from repro.core.engine import SuperOffloadConfig, SuperOffloadEngine, init
from repro.core.validator import BackgroundValidator, ValidationTicket
from repro.core.weight_manager import FetchRecord, WeightFlowManager

__all__ = [
    "WeightPolicy",
    "OffloadDecision",
    "AdaptiveOffloadPolicy",
    "weight_flow_efficiency",
    "Bucket",
    "BucketPlan",
    "build_bucket_plan",
    "bucket_transfer_sizes",
    "grid_search_gpu_buckets",
    "repartition_headroom",
    "CastDecision",
    "choose_cast_path",
    "STVEngine",
    "SynchronousEngine",
    "StepReport",
    "SuperOffloadConfig",
    "SuperOffloadEngine",
    "init",
    "BackgroundValidator",
    "ValidationTicket",
    "WeightFlowManager",
    "FetchRecord",
]
