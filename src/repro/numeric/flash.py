"""Flash-style streaming blocked attention: never materialize ``S x S``.

The dense reference (:mod:`repro.numeric.attention`) computes the full
score and probability matrices — ``O(B*H*S^2)`` activation bytes, the
exact memory wall that caps sequence length on the Hopper side of the
superchip and that the Ulysses path (§4.7) exists to push past.  This
module streams the same attention in ``(block_q, block_k)`` tiles:

* **Forward** — online softmax.  Each query tile keeps a running row
  maximum ``m`` and denominator ``l``; every key tile rescales the
  accumulated context by ``exp(m_old - m_new)`` and adds its own
  ``exp(s - m_new) @ v`` contribution.  Only ``out`` (``B*H*S*d``) and
  the log-sum-exp vector ``lse = m + log(l)`` (``B*H*S``) survive the
  op — the per-tile scores live in per-thread scratch.
* **Backward** — tile recomputation from the ``(q, k, v, out, lse)``
  cache.  Probabilities are rebuilt per tile as ``exp(s - lse)`` (exact,
  because ``lse`` *is* the forward's softmax normalizer), so no
  probability matrix is ever stored.  Two conflict-free passes: one over
  query tiles for ``dq``, one over key tiles for ``dk``/``dv``.

Both directions fan the ``(batch, head, tile)`` grid out through a
:class:`~repro.exec.pool.KernelPool` — the same executor that runs the
optimizer's chunk kernels — with all temporaries in per-thread scratch.
Every output element is written by exactly one task and every in-task
reduction runs in a fixed order, so results are **bitwise identical
across worker counts**.  Against the dense reference the contract is
tolerance, not bits: the online softmax reorders the reduction, so
forward agrees to ~1e-6 in fp32 (tested at 1e-5) and gradients to
gradcheck-level tolerance.

Peak activation bytes for the op are ``O(B*H*S*d)`` for out/lse/cache
plus ``O(workers * block_q * (block_k + d))`` scratch —
:func:`tile_scratch_bytes` gives the per-thread bound the tests assert
against the telemetry/workspace counters.
"""

from __future__ import annotations

import math
import threading
from functools import lru_cache
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro import tune
from repro.exec.pool import KernelPool, get_pool
from repro.tune.registry import default as _registry_default

#: Default tile sides.  128x128 fp32 score tiles are 64 KiB — small
#: enough that scores, probabilities, and the two accumulator rows stay
#: cache-resident through the exp/rescale passes, large enough that the
#: per-tile BLAS calls amortize their dispatch.  The authored values live
#: in the tunable registry (``flash.block_q`` / ``flash.block_k``);
#: :func:`resolve_blocks` applies a host profile's measured sides.
DEFAULT_BLOCK_Q = _registry_default("flash.block_q")
DEFAULT_BLOCK_K = _registry_default("flash.block_k")


def resolve_blocks(
    block_q: Optional[int] = None, block_k: Optional[int] = None
) -> Tuple[int, int]:
    """Effective tile sides: explicit arguments win, then the active
    tuning profile, then the defaults above.

    Unlike the elementwise tunables, block sides change the online-
    softmax reduction *order*, so two different resolutions agree only to
    fp32 tolerance (still bitwise deterministic across worker counts for
    a fixed resolution) — which is why callers resolve once at
    construction and pin the result for the model's lifetime.
    """
    if block_q is None:
        block_q = tune.value("flash.block_q", DEFAULT_BLOCK_Q)
    if block_k is None:
        block_k = tune.value("flash.block_k", DEFAULT_BLOCK_K)
    return block_q, block_k

# -- per-thread tile scratch -------------------------------------------

_tls = threading.local()
_scratch_lock = threading.Lock()
_scratch_bytes_total = 0


def _scratch(tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A persistent per-thread buffer for one named tile temporary.

    Keyed by ``(tag, shape, dtype)`` so tail tiles (a sequence length the
    block size does not divide) get their own handful of buffers; after
    the first pass over a given shape the hot loop allocates nothing.
    """
    global _scratch_bytes_total
    bufs = getattr(_tls, "bufs", None)
    if bufs is None:
        bufs = _tls.bufs = {}
    key = (tag, shape, np.dtype(dtype).str)
    buf = bufs.get(key)
    if buf is None:
        buf = bufs[key] = np.empty(shape, dtype=dtype)
        with _scratch_lock:
            _scratch_bytes_total += buf.nbytes
    return buf


def scratch_bytes_total() -> int:
    """Bytes of per-thread tile scratch ever allocated, process-wide.

    Monotonic (scratch is retained per thread); tests assert deltas stay
    zero across steady-state steps and bounded by
    :func:`tile_scratch_bytes` per worker overall.
    """
    return _scratch_bytes_total


def tile_scratch_bytes(
    block_q: int, block_k: int, dim: int, itemsize: int = 4
) -> int:
    """Upper bound on one thread's tile scratch for given block sizes.

    Two ``(block_q, block_k)`` tiles (scores and dprobs), two
    ``(block_q, dim)`` rows (accumulator and tile product), two
    ``(block_k, dim)`` rows (the dk/dv partials), and a handful of
    ``block_q`` vectors — the ``O(S * block)`` term of the acceptance
    bound.  Tail tiles can add at most one more copy of each.
    """
    full = (
        2 * block_q * block_k
        + 2 * block_q * dim
        + 2 * block_k * dim
        + 6 * block_q
    ) * itemsize
    return 2 * full  # full tiles + one set of tail-tile shapes


@lru_cache(maxsize=256)
def _tile_mask(bq: int, bk: int, diff: int) -> np.ndarray:
    """Read-only causal mask for a tile: ``True`` where key > query.

    ``diff = q0 - k0``; entry ``(i, j)`` is masked when the global key
    index ``k0 + j`` exceeds the global query index ``q0 + i``.
    """
    mask = np.arange(bk)[None, :] > (np.arange(bq)[:, None] + diff)
    mask.setflags(write=False)
    return mask


def _neg_fill(dtype) -> np.ndarray:
    """A finite, dtype-aware 'minus infinity' for masked scores.

    Half the dtype's most negative finite value: guaranteed to underflow
    to exactly zero probability after the softmax shift, with headroom so
    ``masked - row_max`` cannot overflow even in fp16.
    """
    return np.asarray(np.finfo(np.dtype(dtype)).min / 2, dtype=dtype)


class FlashCache(NamedTuple):
    """Backward inputs saved by the streaming forward (no probabilities)."""

    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    out: np.ndarray
    lse: np.ndarray
    causal: bool
    block_q: int
    block_k: int


# -- forward ------------------------------------------------------------


def _forward_tile(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    out: np.ndarray,
    lse: np.ndarray,
    b: int,
    h: int,
    q0: int,
    q1: int,
    causal: bool,
    block_k: int,
) -> None:
    """Online-softmax attention for queries ``[q0, q1)`` of one head."""
    dim = q.shape[-1]
    seq_k = k.shape[2]
    dtype = q.dtype
    scale = np.asarray(1.0 / math.sqrt(dim), dtype=dtype)
    neg = _neg_fill(dtype)
    bq = q1 - q0
    qs = q[b, h, q0:q1]
    m = _scratch("m", (bq,), dtype)
    m.fill(-np.inf)
    l = _scratch("l", (bq,), dtype)
    l.fill(0.0)
    acc = _scratch("acc", (bq, dim), dtype)
    acc.fill(0.0)
    m_new = _scratch("m_new", (bq,), dtype)
    alpha = _scratch("alpha", (bq,), dtype)
    rowsum = _scratch("rowsum", (bq,), dtype)
    # Causal rows q0..q1-1 see keys up to q1-1; later key tiles are
    # entirely masked and never visited.
    kmax = min(seq_k, q1) if causal else seq_k
    for k0 in range(0, kmax, block_k):
        k1 = min(k0 + block_k, kmax)
        bk = k1 - k0
        s = _scratch("s", (bq, bk), dtype)
        np.matmul(qs, k[b, h, k0:k1].T, out=s)
        s *= scale
        if causal and k1 > q0 + 1:  # tile crosses the diagonal
            np.copyto(s, neg, where=_tile_mask(bq, bk, q0 - k0))
        np.max(s, axis=1, out=m_new)
        np.maximum(m, m_new, out=m_new)
        # p = exp(s - m_new), in place
        s -= m_new[:, None]
        np.exp(s, out=s)
        # rescale previous running sums by exp(m - m_new)
        np.subtract(m, m_new, out=alpha)
        np.exp(alpha, out=alpha)
        l *= alpha
        np.sum(s, axis=1, out=rowsum)
        l += rowsum
        acc *= alpha[:, None]
        pv = _scratch("pv", (bq, dim), dtype)
        np.matmul(s, v[b, h, k0:k1], out=pv)
        acc += pv
        m[...] = m_new
    np.divide(acc, l[:, None], out=out[b, h, q0:q1])
    np.log(l, out=l)
    np.add(l, m, out=lse[b, h, q0:q1])


def streaming_attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    block_q: Optional[int] = None,
    block_k: Optional[int] = None,
    pool: Optional[KernelPool] = None,
    out: Optional[np.ndarray] = None,
    lse: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, FlashCache]:
    """Blocked attention over ``(batch, heads, seq, dim)`` inputs.

    Args:
        q, k, v: contiguous per-head projections (same shape; ``k``/``v``
            may carry a different ``seq`` for cross-attention shapes).
        causal: mask keys beyond each query's position.
        block_q, block_k: tile sides (need not divide the sequence);
            ``None`` resolves through :func:`resolve_blocks`.
        pool: kernel pool for the ``(batch, head, q_tile)`` fan-out;
            ``None`` uses the process default.
        out, lse: optional pre-allocated outputs (the workspace path).

    Returns:
        ``(out, cache)`` where cache feeds
        :func:`streaming_attention_backward`.
    """
    if q.ndim != 4:
        raise ValueError(f"expected (b, h, s, d) inputs, got {q.shape}")
    block_q, block_k = resolve_blocks(block_q, block_k)
    if block_q < 1 or block_k < 1:
        raise ValueError("block sizes must be positive")
    if causal and q.shape[2] > k.shape[2]:
        raise ValueError(
            "causal attention requires seq_q <= seq_k "
            f"(got {q.shape[2]} > {k.shape[2]})"
        )
    q = np.ascontiguousarray(q)
    k = np.ascontiguousarray(k)
    v = np.ascontiguousarray(v)
    bsz, heads, seq_q, _ = q.shape
    if out is None:
        out = np.empty_like(q)
    if lse is None:
        lse = np.empty(q.shape[:3], dtype=q.dtype)
    pool = pool if pool is not None else get_pool()
    tasks = [
        (b, h, q0, min(q0 + block_q, seq_q))
        for b in range(bsz)
        for h in range(heads)
        for q0 in range(0, seq_q, block_q)
    ]
    if pool.workers <= 1 or len(tasks) == 1:
        for b, h, q0, q1 in tasks:
            _forward_tile(q, k, v, out, lse, b, h, q0, q1, causal, block_k)
    else:
        pool.wait_all([
            pool.submit(_forward_tile, q, k, v, out, lse, b, h, q0, q1,
                        causal, block_k)
            for b, h, q0, q1 in tasks
        ])
    return out, FlashCache(q, k, v, out, lse, causal, block_q, block_k)


# -- backward -----------------------------------------------------------


def _recompute_probs(
    s: np.ndarray,
    qs: np.ndarray,
    k: np.ndarray,
    lses: np.ndarray,
    b: int,
    h: int,
    k0: int,
    k1: int,
    q0: int,
    scale: np.ndarray,
    neg: np.ndarray,
    causal: bool,
) -> None:
    """Rebuild one probability tile in ``s`` from the (q, k, lse) cache."""
    np.matmul(qs, k[b, h, k0:k1].T, out=s)
    s *= scale
    if causal and k1 > q0 + 1:
        np.copyto(s, neg, where=_tile_mask(s.shape[0], k1 - k0, q0 - k0))
    s -= lses[:, None]
    np.exp(s, out=s)


def _backward_dq_tile(
    dout: np.ndarray,
    cache: FlashCache,
    dq: np.ndarray,
    b: int,
    h: int,
    q0: int,
    q1: int,
) -> None:
    """``dq`` rows ``[q0, q1)`` of one head, accumulated over key tiles."""
    q, k, v, out, lse, causal, _, block_k = cache
    dim = q.shape[-1]
    seq_k = k.shape[2]
    dtype = q.dtype
    scale = np.asarray(1.0 / math.sqrt(dim), dtype=dtype)
    neg = _neg_fill(dtype)
    bq = q1 - q0
    qs = q[b, h, q0:q1]
    douts = dout[b, h, q0:q1]
    lses = lse[b, h, q0:q1]
    # D_i = dout_i . out_i  (= sum_j dP_ij P_ij, the softmax-backward
    # row term, recovered without the probability matrix)
    drow = _scratch("drow", (bq, dim), dtype)
    np.multiply(douts, out[b, h, q0:q1], out=drow)
    dvec = _scratch("dvec", (bq,), dtype)
    np.sum(drow, axis=1, out=dvec)
    dqs = _scratch("dqs", (bq, dim), dtype)
    dqs.fill(0.0)
    kmax = min(seq_k, q1) if causal else seq_k
    for k0 in range(0, kmax, block_k):
        k1 = min(k0 + block_k, kmax)
        bk = k1 - k0
        s = _scratch("s", (bq, bk), dtype)
        _recompute_probs(s, qs, k, lses, b, h, k0, k1, q0, scale, neg,
                         causal)
        dp = _scratch("dp", (bq, bk), dtype)
        np.matmul(douts, v[b, h, k0:k1].T, out=dp)
        dp -= dvec[:, None]
        s *= dp  # ds = P * (dP - D)
        np.matmul(s, k[b, h, k0:k1], out=drow)
        dqs += drow
    dqs *= scale
    dq[b, h, q0:q1] = dqs


def _backward_dkv_tile(
    dout: np.ndarray,
    cache: FlashCache,
    dk: np.ndarray,
    dv: np.ndarray,
    b: int,
    h: int,
    k0: int,
    k1: int,
) -> None:
    """``dk``/``dv`` rows ``[k0, k1)`` of one head, over query tiles."""
    q, k, v, out, lse, causal, block_q, _ = cache
    dim = q.shape[-1]
    seq_q = q.shape[2]
    dtype = q.dtype
    scale = np.asarray(1.0 / math.sqrt(dim), dtype=dtype)
    neg = _neg_fill(dtype)
    bk = k1 - k0
    dks = _scratch("dks", (bk, dim), dtype)
    dks.fill(0.0)
    dvs = _scratch("dvs", (bk, dim), dtype)
    dvs.fill(0.0)
    part = _scratch("part", (bk, dim), dtype)
    # Causal: queries before k0 never see these keys.
    qstart = (k0 // block_q) * block_q if causal else 0
    for q0 in range(qstart, seq_q, block_q):
        q1 = min(q0 + block_q, seq_q)
        bq = q1 - q0
        qs = q[b, h, q0:q1]
        douts = dout[b, h, q0:q1]
        s = _scratch("s", (bq, bk), dtype)
        _recompute_probs(s, qs, k, lse[b, h, q0:q1], b, h, k0, k1, q0,
                         scale, neg, causal)
        np.matmul(s.T, douts, out=part)
        dvs += part
        drow = _scratch("drow", (bq, dim), dtype)
        np.multiply(douts, out[b, h, q0:q1], out=drow)
        dvec = _scratch("dvec", (bq,), dtype)
        np.sum(drow, axis=1, out=dvec)
        dp = _scratch("dp", (bq, bk), dtype)
        np.matmul(douts, v[b, h, k0:k1].T, out=dp)
        dp -= dvec[:, None]
        s *= dp
        np.matmul(s.T, qs, out=part)
        dks += part
    dks *= scale
    dk[b, h, k0:k1] = dks
    dv[b, h, k0:k1] = dvs


def streaming_attention_backward(
    dout: np.ndarray,
    cache: FlashCache,
    pool: Optional[KernelPool] = None,
    dq: Optional[np.ndarray] = None,
    dk: Optional[np.ndarray] = None,
    dv: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients w.r.t. ``q``, ``k``, ``v`` by tile recomputation.

    Two pool passes — query tiles for ``dq``, key tiles for ``dk``/``dv``
    — so every output row has exactly one writer and no pass ever holds
    more than per-thread tile scratch.
    """
    q, k, _v, _out, _lse, _causal, block_q, block_k = cache
    dout = np.ascontiguousarray(dout)
    bsz, heads, seq_q, _ = q.shape
    seq_k = k.shape[2]
    if dq is None:
        dq = np.empty_like(q)
    if dk is None:
        dk = np.empty_like(k)
    if dv is None:
        dv = np.empty_like(_v)
    pool = pool if pool is not None else get_pool()
    q_tasks = [
        (b, h, q0, min(q0 + block_q, seq_q))
        for b in range(bsz)
        for h in range(heads)
        for q0 in range(0, seq_q, block_q)
    ]
    k_tasks = [
        (b, h, k0, min(k0 + block_k, seq_k))
        for b in range(bsz)
        for h in range(heads)
        for k0 in range(0, seq_k, block_k)
    ]
    if pool.workers <= 1:
        for b, h, q0, q1 in q_tasks:
            _backward_dq_tile(dout, cache, dq, b, h, q0, q1)
        for b, h, k0, k1 in k_tasks:
            _backward_dkv_tile(dout, cache, dk, dv, b, h, k0, k1)
    else:
        futures = [
            pool.submit(_backward_dq_tile, dout, cache, dq, b, h, q0, q1)
            for b, h, q0, q1 in q_tasks
        ]
        futures += [
            pool.submit(_backward_dkv_tile, dout, cache, dk, dv,
                        b, h, k0, k1)
            for b, h, k0, k1 in k_tasks
        ]
        pool.wait_all(futures)
    return dq, dk, dv
