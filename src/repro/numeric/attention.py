"""Causal multi-head self-attention with explicit backward.

Exposes head-level entry points (:meth:`MultiHeadAttention.core_forward` /
``core_backward``) so the Ulysses sequence-parallel implementation can run
the identical attention math on all-to-all-exchanged shards and be tested
for equivalence against the single-rank path (§4.7).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.numeric.layers import softmax


class MultiHeadAttention:
    """Functional causal attention for ``(batch, seq, hidden)`` inputs.

    Args:
        n_heads: number of attention heads; must divide the hidden size.
    """

    def __init__(self, n_heads: int):
        if n_heads < 1:
            raise ValueError("n_heads must be positive")
        self.n_heads = n_heads

    # -- head-level core (shared with Ulysses) ------------------------------

    @staticmethod
    def core_forward(
        q: np.ndarray, k: np.ndarray, v: np.ndarray, causal: bool = True
    ) -> Tuple[np.ndarray, Tuple]:
        """Scaled dot-product attention over ``(batch, heads, seq, dim)``.

        Returns the per-head context and the cache for ``core_backward``.
        """
        dim = q.shape[-1]
        scores = q @ k.transpose(0, 1, 3, 2) / math.sqrt(dim)
        if causal:
            seq_q, seq_k = scores.shape[-2], scores.shape[-1]
            mask = np.triu(np.ones((seq_q, seq_k), dtype=bool), k=1)
            scores = np.where(mask, np.float32(-1e9), scores)
        probs = softmax(scores, axis=-1)
        context = probs @ v
        return context, (q, k, v, probs, causal)

    @staticmethod
    def core_backward(
        dcontext: np.ndarray, cache: Tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gradients w.r.t. q, k, v."""
        q, k, v, probs, causal = cache
        dim = q.shape[-1]
        dv = probs.transpose(0, 1, 3, 2) @ dcontext
        dprobs = dcontext @ v.transpose(0, 1, 3, 2)
        # softmax backward: dS = P * (dP - sum(dP * P))
        dscores = probs * (dprobs - np.sum(dprobs * probs, axis=-1, keepdims=True))
        dscores = dscores / math.sqrt(dim)
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        return dq, dk, dv

    # -- hidden-level wrappers ----------------------------------------------

    def split_heads(self, x: np.ndarray) -> np.ndarray:
        """``(b, s, h) -> (b, heads, s, h/heads)``."""
        b, s, h = x.shape
        if h % self.n_heads:
            raise ValueError(f"hidden {h} not divisible by {self.n_heads} heads")
        return x.reshape(b, s, self.n_heads, h // self.n_heads).transpose(0, 2, 1, 3)

    def merge_heads(self, x: np.ndarray) -> np.ndarray:
        """``(b, heads, s, d) -> (b, s, heads*d)``."""
        b, n, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, n * d)

    def forward(
        self, qkv: np.ndarray, causal: bool = True
    ) -> Tuple[np.ndarray, Tuple]:
        """Attention over a fused ``(b, s, 3h)`` qkv projection output."""
        h = qkv.shape[-1] // 3
        q = self.split_heads(qkv[..., :h])
        k = self.split_heads(qkv[..., h : 2 * h])
        v = self.split_heads(qkv[..., 2 * h :])
        context, cache = self.core_forward(q, k, v, causal)
        return self.merge_heads(context), cache

    def backward(self, dout: np.ndarray, cache: Tuple) -> np.ndarray:
        """Gradient w.r.t. the fused qkv input."""
        dcontext = self.split_heads(dout)
        dq, dk, dv = self.core_backward(dcontext, cache)
        return np.concatenate(
            [self.merge_heads(dq), self.merge_heads(dk), self.merge_heads(dv)],
            axis=-1,
        )
