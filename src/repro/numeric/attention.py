"""Causal multi-head self-attention with explicit backward.

Exposes head-level entry points (:meth:`MultiHeadAttention.attend` /
``attend_backward``, plus the static dense reference ``core_forward`` /
``core_backward``) so the Ulysses sequence-parallel implementation can
run the identical attention math on all-to-all-exchanged shards and be
tested for equivalence against the single-rank path (§4.7).

Two backends:

* ``"dense"`` — the bitwise-stable reference: materializes the full
  score matrix, with the causal mask memoized per shape and the backward
  recomputing probabilities from ``(q, k)`` instead of retaining the
  ``S x S`` probability matrix across forward -> backward (identical
  bits, half the held activation bytes).
* ``"streaming"`` — :mod:`repro.numeric.flash`: blocked online-softmax
  forward and tile-recompute backward that never materialize ``S x S``,
  fanned out over the kernel pool.  Tolerance-equal to dense (the online
  softmax reorders reductions), bitwise-stable across worker counts.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.numeric import flash
from repro.numeric.layers import softmax
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Backends :class:`MultiHeadAttention` can route the core through.
BACKENDS = ("dense", "streaming")


@lru_cache(maxsize=64)
def causal_mask(seq_q: int, seq_k: int) -> np.ndarray:
    """The memoized upper-triangular causal mask (read-only).

    The dense path previously rebuilt this ``S x S`` bool array on every
    call; attention shapes repeat every layer and every step, so one
    cached copy per ``(seq_q, seq_k)`` serves the whole run.
    """
    mask = np.triu(np.ones((seq_q, seq_k), dtype=bool), k=1)
    mask.setflags(write=False)
    return mask


def masked_fill_value(dtype) -> np.ndarray:
    """Finite, dtype-aware score fill for masked positions.

    Half the most negative finite value of ``dtype``: underflows to
    exactly zero probability after the softmax shift (same bits as the
    historical ``-1e9`` fill in fp32) without overflowing narrower
    dtypes — fp16's finite range ends at 65504, where ``-1e9`` is
    already infinite.
    """
    return np.asarray(np.finfo(np.dtype(dtype)).min / 2, dtype=dtype)


def _dense_probs(
    q: np.ndarray, k: np.ndarray, causal: bool
) -> np.ndarray:
    """The full probability matrix — shared by forward and the backward
    recomputation, so both produce identical bits."""
    dim = q.shape[-1]
    scores = q @ k.transpose(0, 1, 3, 2) / math.sqrt(dim)
    if causal:
        seq_q, seq_k = scores.shape[-2], scores.shape[-1]
        scores = np.where(
            causal_mask(seq_q, seq_k),
            masked_fill_value(scores.dtype),
            scores,
        )
    return softmax(scores, axis=-1)


class MultiHeadAttention:
    """Functional causal attention for ``(batch, seq, hidden)`` inputs.

    Args:
        n_heads: number of attention heads; must divide the hidden size.
        backend: ``"dense"`` (reference) or ``"streaming"`` (blocked
            online-softmax, see :mod:`repro.numeric.flash`).
        block_q, block_k: streaming tile sides (ignored for dense);
            ``None`` resolves the host-tuned values via
            :func:`repro.numeric.flash.resolve_blocks` at construction,
            pinning them for the module's lifetime.
        pool: kernel pool for the streaming tile fan-out (``None`` uses
            the process default).
        workspace: optional
            :class:`~repro.tensors.workspace.ActivationWorkspace` backing
            the streaming outputs, head merges, and qkv gradients.
        telemetry: sink for the cache-byte counters (no-op by default).
    """

    def __init__(
        self,
        n_heads: int,
        backend: str = "dense",
        block_q: int | None = None,
        block_k: int | None = None,
        pool=None,
        workspace=None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        if n_heads < 1:
            raise ValueError("n_heads must be positive")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown attention backend {backend!r}; one of {BACKENDS}"
            )
        self.n_heads = n_heads
        self.backend = backend
        self.block_q, self.block_k = flash.resolve_blocks(block_q, block_k)
        self.pool = pool
        self.workspace = workspace
        self.telemetry = telemetry

    # -- head-level core (shared with Ulysses) ------------------------------

    @staticmethod
    def core_forward(
        q: np.ndarray, k: np.ndarray, v: np.ndarray, causal: bool = True
    ) -> Tuple[np.ndarray, Tuple]:
        """Dense scaled dot-product attention over ``(b, heads, s, d)``.

        The bitwise-stable reference path.  The cache holds only
        ``(q, k, v, causal)`` — the probability matrix is *recomputed*
        in :meth:`core_backward` with the identical operations, so the
        ``S x S`` array is transient in each direction instead of
        retained from forward to backward.
        """
        probs = _dense_probs(q, k, causal)
        context = probs @ v
        return context, (q, k, v, causal)

    @staticmethod
    def core_backward(
        dcontext: np.ndarray, cache: Tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense gradients w.r.t. q, k, v (probabilities recomputed)."""
        q, k, v, causal = cache
        dim = q.shape[-1]
        probs = _dense_probs(q, k, causal)
        dv = probs.transpose(0, 1, 3, 2) @ dcontext
        dprobs = dcontext @ v.transpose(0, 1, 3, 2)
        # softmax backward: dS = P * (dP - sum(dP * P))
        dscores = probs * (dprobs - np.sum(dprobs * probs, axis=-1, keepdims=True))
        dscores = dscores / math.sqrt(dim)
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        return dq, dk, dv

    # -- backend dispatch ---------------------------------------------------

    def attend(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray,
        causal: bool = True,
    ) -> Tuple[np.ndarray, Tuple]:
        """Backend-routed head-level attention; returns (context, cache)."""
        if self.backend == "streaming":
            ws = self.workspace
            out = lse = None
            if ws is not None:
                # q/k/v arrive as non-contiguous split_heads views; the
                # streaming kernels need contiguous rows, so land the
                # copies (part of the O(B*H*S*d) cache) in the workspace.
                q = self._contiguous(q)
                k = self._contiguous(k)
                v = self._contiguous(v)
                out = ws.take(q.shape, q.dtype)
                lse = ws.take(q.shape[:3], q.dtype)
            context, cache = flash.streaming_attention_forward(
                q, k, v, causal=causal,
                block_q=self.block_q, block_k=self.block_k,
                pool=self.pool, out=out, lse=lse,
            )
            self._meter_cache(cache)
            return context, cache
        context, cache = self.core_forward(q, k, v, causal)
        self._meter_cache(cache)
        return context, cache

    def attend_backward(
        self, dcontext: np.ndarray, cache: Tuple
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backend-routed head-level backward; gradients w.r.t. q, k, v."""
        if isinstance(cache, flash.FlashCache):
            ws = self.workspace
            dq = dk = dv = None
            if ws is not None:
                dq = ws.take(cache.q.shape, cache.q.dtype)
                dk = ws.take(cache.k.shape, cache.k.dtype)
                dv = ws.take(cache.v.shape, cache.v.dtype)
            return flash.streaming_attention_backward(
                dcontext, cache, pool=self.pool, dq=dq, dk=dk, dv=dv
            )
        return self.core_backward(dcontext, cache)

    def _contiguous(self, x: np.ndarray) -> np.ndarray:
        """A contiguous copy in the workspace (or ``x`` if already so)."""
        if x.flags.c_contiguous:
            return x
        buf = self.workspace.take(x.shape, x.dtype)
        np.copyto(buf, x)
        return buf

    def _meter_cache(self, cache) -> None:
        """Record backward-cache bytes so ``workspace_peak_bytes`` plus
        this counter covers the step's retained activation footprint."""
        metrics = self.telemetry.metrics
        if isinstance(cache, flash.FlashCache):
            nbytes = sum(
                a.nbytes for a in (cache.q, cache.k, cache.v, cache.out,
                                   cache.lse)
            )
            metrics.counter(
                "attention_cache_bytes", backend="streaming").inc(nbytes)
        else:
            q, k, v, _causal = cache
            metrics.counter(
                "attention_cache_bytes", backend="dense"
            ).inc(q.nbytes + k.nbytes + v.nbytes)

    # -- hidden-level wrappers ----------------------------------------------

    def split_heads(self, x: np.ndarray) -> np.ndarray:
        """``(b, s, h) -> (b, heads, s, h/heads)``."""
        b, s, h = x.shape
        if h % self.n_heads:
            raise ValueError(f"hidden {h} not divisible by {self.n_heads} heads")
        return x.reshape(b, s, self.n_heads, h // self.n_heads).transpose(0, 2, 1, 3)

    def merge_heads(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``(b, heads, s, d) -> (b, s, heads*d)``."""
        b, n, s, d = x.shape
        if out is None:
            return x.transpose(0, 2, 1, 3).reshape(b, s, n * d)
        np.copyto(out.reshape(b, s, n, d), x.transpose(0, 2, 1, 3))
        return out

    def forward(
        self, qkv: np.ndarray, causal: bool = True
    ) -> Tuple[np.ndarray, Tuple]:
        """Attention over a fused ``(b, s, 3h)`` qkv projection output."""
        h = qkv.shape[-1] // 3
        q = self.split_heads(qkv[..., :h])
        k = self.split_heads(qkv[..., h : 2 * h])
        v = self.split_heads(qkv[..., 2 * h :])
        context, cache = self.attend(q, k, v, causal)
        ws = self.workspace
        if ws is None:
            return self.merge_heads(context), cache
        b, n, s, d = context.shape
        merged = self.merge_heads(context, out=ws.take((b, s, n * d),
                                                       context.dtype))
        return merged, cache

    def backward(self, dout: np.ndarray, cache: Tuple) -> np.ndarray:
        """Gradient w.r.t. the fused qkv input."""
        dcontext = self.split_heads(dout)
        dq, dk, dv = self.attend_backward(dcontext, cache)
        ws = self.workspace
        if ws is None:
            return np.concatenate(
                [self.merge_heads(dq), self.merge_heads(dk),
                 self.merge_heads(dv)],
                axis=-1,
            )
        b, n, s, d = dq.shape
        h = n * d
        dqkv = ws.take((b, s, 3 * h), dq.dtype)
        self.merge_heads(dq, out=dqkv[..., :h])
        self.merge_heads(dk, out=dqkv[..., h : 2 * h])
        self.merge_heads(dv, out=dqkv[..., 2 * h :])
        for grad in (dq, dk, dv):
            ws.give(grad)
        return dqkv
