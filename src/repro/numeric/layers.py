"""Primitive layers with explicit forward/backward on numpy.

Each forward returns ``(output, cache)``; each backward consumes the cache
and the upstream gradient and returns input/parameter gradients.  The
gradients are verified against central finite differences in the tests.

Every kernel takes an optional ``ws``
(:class:`~repro.tensors.workspace.ActivationWorkspace`).  Without one the
seed behavior is preserved verbatim — fresh allocations per call.  With
one, outputs, caches, and large temporaries land in reused workspace
buffers via ``out=`` variants whose operation order matches the plain
expressions bit for bit (additions/multiplications reordered only across
commutations and exact power-of-two scalings), so routing a model through
a workspace changes *where* the bytes live, not what they hold.
Parameter gradients (``dw``/``db``/``dg``/``dtable``) are always freshly
allocated: they outlive the step (accumulated across micro-batches and
ranks), which workspace buffers must not.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.tensors.workspace import ActivationWorkspace

Cache = Tuple
Workspace = Optional[ActivationWorkspace]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: np.ndarray, ws: Workspace = None) -> np.ndarray:
    """GELU, tanh approximation (the GPT-2 variant)."""
    if ws is None:
        return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))
    t = ws.take(x.shape, x.dtype)
    np.power(x, 3, out=t)
    t *= 0.044715
    t += x
    t *= _GELU_C
    np.tanh(t, out=t)
    t += 1.0
    out = ws.take(x.shape, x.dtype)
    np.multiply(t, x, out=out)
    out *= 0.5
    ws.give(t)
    return out


def gelu_grad(x: np.ndarray, ws: Workspace = None) -> np.ndarray:
    """d gelu / dx for the tanh approximation."""
    if ws is None:
        inner = _GELU_C * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
        return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
    tanh_inner = ws.take(x.shape, x.dtype)
    np.power(x, 3, out=tanh_inner)
    tanh_inner *= 0.044715
    tanh_inner += x
    tanh_inner *= _GELU_C
    np.tanh(tanh_inner, out=tanh_inner)
    sech2 = ws.take(x.shape, x.dtype)
    np.multiply(tanh_inner, tanh_inner, out=sech2)
    np.subtract(1.0, sech2, out=sech2)
    d_inner = ws.take(x.shape, x.dtype)
    np.multiply(x, x, out=d_inner)
    d_inner *= 3 * 0.044715
    d_inner += 1.0
    d_inner *= _GELU_C
    # second term: ((0.5 * x) * sech2) * d_inner, associated so the 0.5
    # scaling (exact) commutes with the two rounded multiplies
    sech2 *= x
    sech2 *= d_inner
    sech2 *= 0.5
    # first term: 0.5 * (1 + tanh)
    tanh_inner += 1.0
    tanh_inner *= 0.5
    tanh_inner += sech2
    ws.give(sech2)
    ws.give(d_inner)
    return tanh_inner


class Dense:
    """Affine map ``y = x @ w + b`` over the trailing axis."""

    @staticmethod
    def forward(
        x: np.ndarray, w: np.ndarray, b: np.ndarray, ws: Workspace = None
    ) -> Tuple[np.ndarray, Cache]:
        if ws is None:
            y = x @ w + b
        else:
            y = ws.take(x.shape[:-1] + (w.shape[-1],),
                        np.result_type(x, w))
            np.matmul(x, w, out=y)
            y += b
        return y, (x, w)

    @staticmethod
    def backward(
        dy: np.ndarray, cache: Cache, ws: Workspace = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x, w = cache
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dy = dy.reshape(-1, dy.shape[-1])
        dw = flat_x.T @ flat_dy
        db = flat_dy.sum(axis=0)
        if ws is None:
            dx = dy @ w.T
        else:
            dx = ws.take(dy.shape[:-1] + (w.shape[0],),
                         np.result_type(dy, w))
            np.matmul(dy, w.T, out=dx)
        return dx, dw, db


class LayerNorm:
    """Layer normalization with learned gain/bias over the trailing axis."""

    EPS = 1e-5

    @staticmethod
    def forward(
        x: np.ndarray, g: np.ndarray, b: np.ndarray, ws: Workspace = None
    ) -> Tuple[np.ndarray, Cache]:
        if ws is None:
            mu = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            inv = 1.0 / np.sqrt(var + LayerNorm.EPS)
            xhat = (x - mu) * inv
            return xhat * g + b, (xhat, inv, g)
        stat_shape = x.shape[:-1] + (1,)
        mu = ws.take(stat_shape, x.dtype)
        np.mean(x, axis=-1, keepdims=True, out=mu)
        inv = ws.take(stat_shape, x.dtype)
        np.var(x, axis=-1, keepdims=True, out=inv)
        inv += LayerNorm.EPS
        np.sqrt(inv, out=inv)
        np.divide(1.0, inv, out=inv)
        xhat = ws.take(x.shape, x.dtype)
        np.subtract(x, mu, out=xhat)
        xhat *= inv
        ws.give(mu)
        out = ws.take(x.shape, x.dtype)
        np.multiply(xhat, g, out=out)
        out += b
        return out, (xhat, inv, g)

    @staticmethod
    def backward(
        dy: np.ndarray, cache: Cache, ws: Workspace = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        xhat, inv, g = cache
        n = xhat.shape[-1]
        dg = (dy * xhat).reshape(-1, n).sum(axis=0)
        db = dy.reshape(-1, n).sum(axis=0)
        if ws is None:
            dxhat = dy * g
            dx = inv * (
                dxhat
                - dxhat.mean(axis=-1, keepdims=True)
                - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
            )
            return dx, dg, db
        stat_shape = xhat.shape[:-1] + (1,)
        dxhat = ws.take(xhat.shape, xhat.dtype)
        np.multiply(dy, g, out=dxhat)
        scratch = ws.take(xhat.shape, xhat.dtype)
        np.multiply(dxhat, xhat, out=scratch)
        m2 = ws.take(stat_shape, xhat.dtype)
        np.mean(scratch, axis=-1, keepdims=True, out=m2)
        m1 = ws.take(stat_shape, xhat.dtype)
        np.mean(dxhat, axis=-1, keepdims=True, out=m1)
        # dx = inv * ((dxhat - m1) - xhat * m2), same association as the
        # plain expression
        np.multiply(xhat, m2, out=scratch)
        dxhat -= m1
        dxhat -= scratch
        dxhat *= inv
        ws.give(scratch)
        ws.give(m1)
        ws.give(m2)
        return dxhat, dg, db


class Embedding:
    """Token embedding lookup."""

    @staticmethod
    def forward(
        ids: np.ndarray, table: np.ndarray, ws: Workspace = None
    ) -> Tuple[np.ndarray, Cache]:
        if ids.min() < 0 or ids.max() >= table.shape[0]:
            raise IndexError("token id out of vocabulary range")
        if ws is None:
            return table[ids], (ids, table.shape)
        out = ws.take(ids.shape + (table.shape[-1],), table.dtype)
        np.take(table, ids, axis=0, out=out)
        return out, (ids, table.shape)

    @staticmethod
    def backward(dy: np.ndarray, cache: Cache) -> np.ndarray:
        ids, shape = cache
        dtable = np.zeros(shape, dtype=dy.dtype)
        np.add.at(dtable, ids.reshape(-1), dy.reshape(-1, dy.shape[-1]))
        return dtable


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, ws: Workspace = None
) -> Tuple[float, np.ndarray]:
    """Mean token-level cross-entropy and its gradient w.r.t. logits.

    Args:
        logits: ``(..., vocab)`` unnormalized scores.
        targets: integer class ids, shape ``logits.shape[:-1]``.
        ws: optional workspace for the fp64 staging buffers (the widened
            flat logits are the single largest activation of the step).

    Returns:
        (loss, dlogits) where dlogits already includes the 1/N mean factor.
    """
    vocab = logits.shape[-1]
    ids = targets.reshape(-1)
    flat_src = logits.reshape(-1, vocab)
    if ids.shape[0] != flat_src.shape[0]:
        raise ValueError("targets shape does not match logits")
    if ws is None:
        flat = flat_src.astype(np.float64)
    else:
        flat = ws.take(flat_src.shape, np.float64)
        flat[...] = flat_src
    shifted = flat - flat.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    n = flat.shape[0]
    loss = -float(logprobs[np.arange(n), ids].mean())
    dflat = np.exp(logprobs)
    dflat[np.arange(n), ids] -= 1.0
    dflat /= n
    if ws is None:
        return loss, dflat.reshape(logits.shape).astype(logits.dtype)
    ws.give(flat)
    dlogits = ws.take(logits.shape, logits.dtype)
    dlogits[...] = dflat.reshape(logits.shape)
    return loss, dlogits
