"""Primitive layers with explicit forward/backward on numpy.

Each forward returns ``(output, cache)``; each backward consumes the cache
and the upstream gradient and returns input/parameter gradients.  The
gradients are verified against central finite differences in the tests.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

Cache = Tuple


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU, tanh approximation (the GPT-2 variant)."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d gelu / dx for the tanh approximation."""
    inner = _GELU_C * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner**2
    d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner


class Dense:
    """Affine map ``y = x @ w + b`` over the trailing axis."""

    @staticmethod
    def forward(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, Cache]:
        y = x @ w + b
        return y, (x, w)

    @staticmethod
    def backward(dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x, w = cache
        dx = dy @ w.T
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dy = dy.reshape(-1, dy.shape[-1])
        dw = flat_x.T @ flat_dy
        db = flat_dy.sum(axis=0)
        return dx, dw, db


class LayerNorm:
    """Layer normalization with learned gain/bias over the trailing axis."""

    EPS = 1e-5

    @staticmethod
    def forward(x: np.ndarray, g: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, Cache]:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + LayerNorm.EPS)
        xhat = (x - mu) * inv
        return xhat * g + b, (xhat, inv, g)

    @staticmethod
    def backward(dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        xhat, inv, g = cache
        n = xhat.shape[-1]
        dg = (dy * xhat).reshape(-1, n).sum(axis=0)
        db = dy.reshape(-1, n).sum(axis=0)
        dxhat = dy * g
        dx = inv * (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        )
        return dx, dg, db


class Embedding:
    """Token embedding lookup."""

    @staticmethod
    def forward(ids: np.ndarray, table: np.ndarray) -> Tuple[np.ndarray, Cache]:
        if ids.min() < 0 or ids.max() >= table.shape[0]:
            raise IndexError("token id out of vocabulary range")
        return table[ids], (ids, table.shape)

    @staticmethod
    def backward(dy: np.ndarray, cache: Cache) -> np.ndarray:
        ids, shape = cache
        dtable = np.zeros(shape, dtype=dy.dtype)
        np.add.at(dtable, ids.reshape(-1), dy.reshape(-1, dy.shape[-1]))
        return dtable


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean token-level cross-entropy and its gradient w.r.t. logits.

    Args:
        logits: ``(..., vocab)`` unnormalized scores.
        targets: integer class ids, shape ``logits.shape[:-1]``.

    Returns:
        (loss, dlogits) where dlogits already includes the 1/N mean factor.
    """
    vocab = logits.shape[-1]
    flat = logits.reshape(-1, vocab).astype(np.float64)
    ids = targets.reshape(-1)
    if ids.shape[0] != flat.shape[0]:
        raise ValueError("targets shape does not match logits")
    shifted = flat - flat.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    n = flat.shape[0]
    loss = -float(logprobs[np.arange(n), ids].mean())
    dflat = np.exp(logprobs)
    dflat[np.arange(n), ids] -= 1.0
    dflat /= n
    return loss, dflat.reshape(logits.shape).astype(logits.dtype)
