"""Real-computation substrate: a small numpy transformer with explicit
backward passes, plus low-precision emulation helpers.

Everything algorithmic in the paper — mixed-precision casting, Adam math,
speculation-then-validation rollback, ZeRO sharding, Ulysses attention
exchange — is exercised for real against this substrate at reduced scale.
"""

from repro.numeric.lowprec import to_fp16, from_fp16, to_bf16, cast_roundtrip_error
from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
    softmax,
)
from repro.numeric.attention import (
    BACKENDS,
    MultiHeadAttention,
    causal_mask,
    masked_fill_value,
)
from repro.numeric.flash import (
    FlashCache,
    streaming_attention_backward,
    streaming_attention_forward,
)
from repro.numeric.transformer import TinyTransformer, TransformerParams

__all__ = [
    "BACKENDS",
    "causal_mask",
    "masked_fill_value",
    "FlashCache",
    "streaming_attention_forward",
    "streaming_attention_backward",
    "to_fp16",
    "from_fp16",
    "to_bf16",
    "cast_roundtrip_error",
    "Dense",
    "Embedding",
    "LayerNorm",
    "softmax",
    "gelu",
    "gelu_grad",
    "cross_entropy",
    "MultiHeadAttention",
    "TinyTransformer",
    "TransformerParams",
]
