"""Real-computation substrate: a small numpy transformer with explicit
backward passes, plus low-precision emulation helpers.

Everything algorithmic in the paper — mixed-precision casting, Adam math,
speculation-then-validation rollback, ZeRO sharding, Ulysses attention
exchange — is exercised for real against this substrate at reduced scale.
"""

from repro.numeric.lowprec import to_fp16, from_fp16, to_bf16, cast_roundtrip_error
from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
    softmax,
)
from repro.numeric.attention import MultiHeadAttention
from repro.numeric.transformer import TinyTransformer, TransformerParams

__all__ = [
    "to_fp16",
    "from_fp16",
    "to_bf16",
    "cast_roundtrip_error",
    "Dense",
    "Embedding",
    "LayerNorm",
    "softmax",
    "gelu",
    "gelu_grad",
    "cross_entropy",
    "MultiHeadAttention",
    "TinyTransformer",
    "TransformerParams",
]
