"""A small-but-real GPT-style transformer on numpy.

Pre-LayerNorm decoder blocks with causal attention, GELU MLPs, learned
positional embeddings, and an untied LM head.  Forward and backward are
explicit (no autograd); parameters and gradients are flat ``dict[str,
ndarray]`` so the Adam implementations, ZeRO sharding, and the STV engine
operate on them directly.

The model step can run allocation-free: pass an
:class:`~repro.tensors.workspace.ActivationWorkspace` and every
activation, backward temporary, and attention cache is served from
reused shape-keyed buffers (zero workspace allocations after the first
step), and ``attn_backend="streaming"`` routes attention through the
blocked online-softmax kernel (:mod:`repro.numeric.flash`) that never
materializes the ``S x S`` score matrix.  Parameter *gradients* are
always freshly allocated — they outlive the step.

Workspace lifetime contract: each ``forward`` recycles the previous
step's buffers, so a workspace-backed model must pair every ``forward``
with its ``backward`` (as :meth:`loss_and_grads` does) before the next
forward begins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.numeric.attention import MultiHeadAttention
from repro.numeric.layers import (
    Dense,
    Embedding,
    LayerNorm,
    cross_entropy,
    gelu,
    gelu_grad,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.workspace import ActivationWorkspace

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class TransformerParams:
    """Structural hyperparameters of the tiny transformer.

    Attributes:
        vocab: vocabulary size.
        max_seq: positional table length.
        hidden: model width.
        n_layers: block count.
        n_heads: attention heads.
        ffn_mult: MLP expansion factor.
    """

    vocab: int = 128
    max_seq: int = 64
    hidden: int = 32
    n_layers: int = 2
    n_heads: int = 4
    ffn_mult: int = 4

    def __post_init__(self) -> None:
        if self.hidden % self.n_heads:
            raise ValueError("hidden must be divisible by n_heads")


class TinyTransformer:
    """The numeric-substrate model.

    Args:
        spec: structural hyperparameters.
        seed: parameter-initialization seed (fully deterministic).
        workspace: optional activation workspace; when given, the whole
            model step reuses its buffers across layers and steps.
        attn_backend: ``"dense"`` (bitwise reference) or ``"streaming"``
            (blocked, never materializes ``S x S``).
        block_q, block_k: streaming attention tile sides.
        pool: kernel pool for the streaming tile fan-out.
        telemetry: metric sink for the attention cache-byte counters.
    """

    def __init__(
        self,
        spec: TransformerParams,
        seed: int = 0,
        workspace: Optional[ActivationWorkspace] = None,
        attn_backend: str = "dense",
        block_q: Optional[int] = None,
        block_k: Optional[int] = None,
        pool=None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.spec = spec
        self.workspace = workspace
        self.telemetry = telemetry
        self.attn = MultiHeadAttention(
            spec.n_heads,
            backend=attn_backend,
            block_q=block_q,
            block_k=block_k,
            pool=pool,
            workspace=workspace,
            telemetry=telemetry,
        )
        rng = np.random.default_rng(seed)
        h, f = spec.hidden, spec.hidden * spec.ffn_mult
        scale = 0.02

        def init(*shape: int) -> np.ndarray:
            return (scale * rng.standard_normal(shape)).astype(np.float32)

        params: Params = {
            "tok_emb": init(spec.vocab, h),
            "pos_emb": init(spec.max_seq, h),
            "ln_f.g": np.ones(h, dtype=np.float32),
            "ln_f.b": np.zeros(h, dtype=np.float32),
            "head.w": init(h, spec.vocab),
            "head.b": np.zeros(spec.vocab, dtype=np.float32),
        }
        for i in range(spec.n_layers):
            params[f"h{i}.ln1.g"] = np.ones(h, dtype=np.float32)
            params[f"h{i}.ln1.b"] = np.zeros(h, dtype=np.float32)
            params[f"h{i}.qkv.w"] = init(h, 3 * h)
            params[f"h{i}.qkv.b"] = np.zeros(3 * h, dtype=np.float32)
            params[f"h{i}.proj.w"] = init(h, h)
            params[f"h{i}.proj.b"] = np.zeros(h, dtype=np.float32)
            params[f"h{i}.ln2.g"] = np.ones(h, dtype=np.float32)
            params[f"h{i}.ln2.b"] = np.zeros(h, dtype=np.float32)
            params[f"h{i}.fc1.w"] = init(h, f)
            params[f"h{i}.fc1.b"] = np.zeros(f, dtype=np.float32)
            params[f"h{i}.fc2.w"] = init(f, h)
            params[f"h{i}.fc2.b"] = np.zeros(h, dtype=np.float32)
        self.params = params

    # -- forward --------------------------------------------------------------

    def forward(
        self, ids: np.ndarray, params: Params | None = None
    ) -> Tuple[np.ndarray, List]:
        """Compute logits for ``(batch, seq)`` token ids.

        Args:
            ids: integer token ids.
            params: parameter set to use; defaults to the model's own (the
                mixed-precision engine passes the fp16 copy widened to fp32).

        Returns:
            (logits, caches) — caches feed :meth:`backward`.  With a
            workspace, logits and caches are workspace buffers that stay
            valid until the *next* ``forward`` call.
        """
        p = params if params is not None else self.params
        b, s = ids.shape
        if s > self.spec.max_seq:
            raise ValueError(f"sequence {s} exceeds max_seq {self.spec.max_seq}")
        ws = self.workspace
        if ws is not None:
            ws.new_step()
        caches: List = []
        x, tok_cache = Embedding.forward(ids, p["tok_emb"], ws)
        x += p["pos_emb"][:s][None, :, :]
        caches.append(("embed", tok_cache, s))
        streaming_ws = ws is not None and self.attn.backend == "streaming"
        for i in range(self.spec.n_layers):
            ln1, ln1_cache = LayerNorm.forward(
                x, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"], ws
            )
            qkv, qkv_cache = Dense.forward(
                ln1, p[f"h{i}.qkv.w"], p[f"h{i}.qkv.b"], ws
            )
            attn_out, attn_cache = self.attn.forward(qkv)
            if streaming_ws:
                # The streaming cache holds contiguous per-head copies,
                # not views into qkv, so the fused projection buffer can
                # be recycled immediately (the dense cache aliases it).
                ws.give(qkv)
            proj, proj_cache = Dense.forward(
                attn_out, p[f"h{i}.proj.w"], p[f"h{i}.proj.b"], ws
            )
            if ws is None:
                x = x + proj
            else:
                res = ws.take(x.shape, x.dtype)
                np.add(x, proj, out=res)
                ws.give(x)
                ws.give(proj)
                x = res
            ln2, ln2_cache = LayerNorm.forward(
                x, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"], ws
            )
            fc1, fc1_cache = Dense.forward(
                ln2, p[f"h{i}.fc1.w"], p[f"h{i}.fc1.b"], ws
            )
            act = gelu(fc1, ws)
            fc2, fc2_cache = Dense.forward(
                act, p[f"h{i}.fc2.w"], p[f"h{i}.fc2.b"], ws
            )
            if ws is None:
                x = x + fc2
            else:
                res = ws.take(x.shape, x.dtype)
                np.add(x, fc2, out=res)
                ws.give(x)
                ws.give(fc2)
                x = res
            caches.append(
                (
                    "block",
                    i,
                    ln1_cache,
                    qkv_cache,
                    attn_cache,
                    proj_cache,
                    ln2_cache,
                    fc1_cache,
                    fc1,
                    fc2_cache,
                )
            )
        lnf, lnf_cache = LayerNorm.forward(x, p["ln_f.g"], p["ln_f.b"], ws)
        if ws is not None:
            ws.give(x)
        logits, head_cache = Dense.forward(lnf, p["head.w"], p["head.b"], ws)
        caches.append(("final", lnf_cache, head_cache))
        return logits, caches

    # -- incremental decode ---------------------------------------------------

    def decode_step(
        self,
        ids: np.ndarray,
        kv,
        session: int,
        params: Params | None = None,
        linear=None,
        embed=None,
    ) -> np.ndarray:
        """Incremental forward of new tokens for one session.

        The per-session reference decode path: K/V for the new tokens
        is appended to a :class:`~repro.tensors.kvcache.PagedKVCache`
        and attention runs against the paged history via online softmax,
        so a prompt prefill (``len(ids) > 1``) and a single-token decode
        are the same code path.  A full-sequence :meth:`forward` over
        the concatenated history produces the same last-token logits up
        to fp32 summation order (the serving tests hold this line).

        Args:
            ids: 1-D new token ids (whole prompt for prefill, one token
                per decode step).
            kv: the paged cache holding this session's history.
            session: session id within ``kv``.
            params: parameter set (defaults to the model's own).
            linear: optional override ``linear(name, x) -> x @ w + b``
                for the five weight planes (``h{i}.qkv`` / ``h{i}.proj``
                / ``h{i}.fc1`` / ``h{i}.fc2`` / ``head``) — the hook the
                quantized serving engine injects ``qmatmul`` through.
            embed: optional override ``embed(ids) -> (t, hidden)`` token
                embedding gather (quantized-embedding hook).

        Returns:
            fp32 ``(vocab,)`` logits of the **last** new token.
        """
        from repro.tensors.kvcache import paged_attention

        p = params if params is not None else self.params
        if linear is None:
            def linear(name: str, x: np.ndarray) -> np.ndarray:
                return x @ p[f"{name}.w"] + p[f"{name}.b"]
        if embed is None:
            def embed(ids: np.ndarray) -> np.ndarray:
                return p["tok_emb"][ids]
        ids = np.asarray(ids).reshape(-1)
        t = ids.shape[0]
        past = kv.tokens(session)
        if past + t > self.spec.max_seq:
            raise ValueError(
                f"session {session} at {past}+{t} tokens exceeds "
                f"max_seq {self.spec.max_seq}"
            )
        heads = self.spec.n_heads
        h = self.spec.hidden
        d = h // heads
        x = embed(ids) + p["pos_emb"][past:past + t]
        for i in range(self.spec.n_layers):
            ln1, _ = LayerNorm.forward(
                x, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"], None
            )
            qkv = linear(f"h{i}.qkv", ln1)
            q, k, v = (
                a.reshape(t, heads, d).transpose(1, 0, 2)
                for a in np.split(qkv, 3, axis=-1)
            )
            kv.append(session, i, np.ascontiguousarray(k),
                      np.ascontiguousarray(v))
            attn = paged_attention(
                np.ascontiguousarray(q), kv.iter_pages(session, i), past
            )
            merged = attn.transpose(1, 0, 2).reshape(t, h)
            x = x + linear(f"h{i}.proj", merged)
            ln2, _ = LayerNorm.forward(
                x, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"], None
            )
            fc1 = linear(f"h{i}.fc1", ln2)
            x = x + linear(f"h{i}.fc2", gelu(fc1, None))
        lnf, _ = LayerNorm.forward(
            x[-1:], p["ln_f.g"], p["ln_f.b"], None
        )
        return linear("head", lnf)[0]

    # -- loss + backward --------------------------------------------------------

    def loss_and_grads(
        self,
        ids: np.ndarray,
        targets: np.ndarray,
        params: Params | None = None,
        loss_scale: float = 1.0,
    ) -> Tuple[float, Params]:
        """Full forward + backward.

        Args:
            ids: input token ids ``(batch, seq)``.
            targets: next-token targets, same shape.
            params: parameter set (defaults to the master copy).
            loss_scale: multiplier applied to the loss before backward —
                the mixed-precision loss-scaling hook.

        Returns:
            (unscaled loss, gradients keyed like the parameters; gradients
            are of the *scaled* loss).
        """
        tracer = self.telemetry.tracer
        with tracer.span("forward", category="compute"):
            logits, caches = self.forward(ids, params)
            loss, dlogits = cross_entropy(logits, targets, self.workspace)
        if loss_scale != 1.0:
            dlogits *= np.float32(loss_scale)
        with tracer.span("backward", category="compute"):
            grads = self.backward(dlogits, caches)
        return loss, grads

    def backward(self, dlogits: np.ndarray, caches: List) -> Params:
        """Backpropagate from logits gradient to parameter gradients.

        Parameter gradients are freshly allocated (they outlive the
        step); the activation-gradient chain runs through the workspace
        when one is attached, ping-ponging a handful of buffers across
        layers.
        """
        ws = self.workspace
        grads: Params = {}
        kind, lnf_cache, head_cache = caches[-1]
        if kind != "final":
            raise RuntimeError("corrupt cache stack")
        dlnf, grads["head.w"], grads["head.b"] = Dense.backward(
            dlogits, head_cache, ws
        )
        dx, grads["ln_f.g"], grads["ln_f.b"] = LayerNorm.backward(
            dlnf, lnf_cache, ws
        )
        if ws is not None:
            ws.give(dlogits)
            ws.give(dlnf)
        for cache in reversed(caches[1:-1]):
            (
                _kind,
                i,
                ln1_cache,
                qkv_cache,
                attn_cache,
                proj_cache,
                ln2_cache,
                fc1_cache,
                fc1,
                fc2_cache,
            ) = cache
            dfc2, grads[f"h{i}.fc2.w"], grads[f"h{i}.fc2.b"] = Dense.backward(
                dx, fc2_cache, ws
            )
            dact = gelu_grad(fc1, ws)
            dact *= dfc2
            dln2, grads[f"h{i}.fc1.w"], grads[f"h{i}.fc1.b"] = Dense.backward(
                dact, fc1_cache, ws
            )
            dres, grads[f"h{i}.ln2.g"], grads[f"h{i}.ln2.b"] = LayerNorm.backward(
                dln2, ln2_cache, ws
            )
            dx += dres
            dproj, grads[f"h{i}.proj.w"], grads[f"h{i}.proj.b"] = Dense.backward(
                dx, proj_cache, ws
            )
            dqkv = self.attn.backward(dproj, attn_cache)
            dln1, grads[f"h{i}.qkv.w"], grads[f"h{i}.qkv.b"] = Dense.backward(
                dqkv, qkv_cache, ws
            )
            dres1, grads[f"h{i}.ln1.g"], grads[f"h{i}.ln1.b"] = LayerNorm.backward(
                dln1, ln1_cache, ws
            )
            dx += dres1
            if ws is not None:
                for buf in (dfc2, dact, dln2, dres, dproj, dqkv, dln1,
                            dres1):
                    ws.give(buf)
        _kind, tok_cache, s = caches[0]
        grads["pos_emb"] = np.zeros_like(self.params["pos_emb"])
        grads["pos_emb"][:s] = dx.sum(axis=0)
        grads["tok_emb"] = Embedding.backward(dx, tok_cache)
        if ws is not None:
            ws.give(dx)
        for name, g in grads.items():
            grads[name] = np.ascontiguousarray(g, dtype=np.float32)
        return grads

    def loss(self, ids: np.ndarray, targets: np.ndarray, params: Params | None = None) -> float:
        """Forward-only loss (used by finite-difference tests)."""
        logits, _ = self.forward(ids, params)
        value, _ = cross_entropy(logits, targets, self.workspace)
        return value

    def param_count(self) -> int:
        """Total scalar parameters."""
        return sum(p.size for p in self.params.values())
