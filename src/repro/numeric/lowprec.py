"""Low-precision emulation on numpy.

FP16 is native in numpy; bfloat16 is emulated by truncating the fp32
mantissa (round-to-nearest-even on the upper 16 bits), the same convention
hardware uses.  These helpers are the numeric twin of the casting cost
models in :mod:`repro.hardware.casting`.

The int8 half of the module is the inference weight format: symmetric
per-group block quantization (AWQ-style).  A 2-D fp32 plane ``(in, out)``
is cut into groups of ``group_size`` rows; each (group, column) cell gets
one fp32 scale ``amax / 127`` and the weights become ``round(w / scale)``
clipped to ``[-127, 127]``.  Reconstruction error is bounded per element
by ``scale / 2`` (half a quantization step), which
:func:`quantization_error_bound` exposes and the property tests assert.
Degenerate groups — all zeros, or containing any non-finite value —
quantize to exact zeros with scale 1.0, so the format never divides by
zero and NaN/inf never leak into the int8 plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np


def to_fp16(x: np.ndarray) -> np.ndarray:
    """Cast to IEEE fp16 (values beyond ~65504 overflow to inf, as on GPU)."""
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float32).astype(np.float16)


def from_fp16(x: np.ndarray) -> np.ndarray:
    """Widen fp16 back to fp32 (exact)."""
    return np.asarray(x, dtype=np.float16).astype(np.float32)


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Round fp32 to bfloat16 precision, returned as fp32 storage.

    Uses round-to-nearest-even on the top 16 bits of the fp32 encoding.
    """
    as_f32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + lsb of the surviving mantissa bit
    lsb = (bits >> 16) & 1
    rounded = (bits + 0x7FFF + lsb) & 0xFFFF0000
    return rounded.view(np.float32).reshape(as_f32.shape).copy()


def cast_roundtrip_error(x: np.ndarray, dtype: str = "fp16") -> float:
    """Max absolute error of one fp32 -> low precision -> fp32 round trip.

    Non-finite inputs are excluded from the maximum: NaN round trips to
    NaN and ±inf to ±inf, and ``nan - nan`` / ``inf - inf`` would
    otherwise poison the whole reduction with NaN.  An input with no
    finite elements round trips exactly, so its error is 0.0.
    """
    if dtype == "fp16":
        back = from_fp16(to_fp16(x))
    elif dtype == "bf16":
        back = to_bf16(x)
    else:
        raise ValueError(f"unsupported low precision dtype {dtype!r}")
    as_f32 = np.asarray(x, dtype=np.float32)
    finite = np.isfinite(as_f32)
    if not finite.any():
        return 0.0
    with np.errstate(invalid="ignore", over="ignore"):
        err = np.abs(as_f32 - back)
    return float(np.max(err[finite]))


# -- int8 block quantization ------------------------------------------------

#: Quantized magnitudes span [-127, 127]; -128 is never produced, so the
#: format is symmetric and negation of a tensor negates its codes.
QMAX = 127


def group_count(rows: int, group_size: int) -> int:
    """Number of row groups covering ``rows`` (last group may be short)."""
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    return (rows + group_size - 1) // group_size


def quantize_int8_blocked(
    w: np.ndarray, group_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-group int8 quantization of a 2-D fp32 plane.

    Rows (the matmul contraction axis) are cut into groups of
    ``group_size``; each (group, column) cell is scaled independently by
    ``amax / 127``.  Groups that are all zero or contain a non-finite
    value get scale 1.0 and all-zero codes — no division by zero, and
    NaN/inf never reach the int8 plane.

    Args:
        w: ``(rows, cols)`` fp32 weight plane (the last group may be
            shorter than ``group_size``; non-dividing sizes are fine).
        group_size: rows per quantization group.

    Returns:
        (qweight int8 ``(rows, cols)``, scales fp32 ``(n_groups, cols)``).
    """
    w = np.ascontiguousarray(w, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D plane, got shape {w.shape}")
    rows, cols = w.shape
    n_groups = group_count(rows, group_size)
    qweight = np.empty((rows, cols), dtype=np.int8)
    scales = np.empty((n_groups, cols), dtype=np.float32)
    for g in range(n_groups):
        lo, hi = g * group_size, min((g + 1) * group_size, rows)
        block = w[lo:hi]
        finite = np.isfinite(block).all(axis=0)
        with np.errstate(invalid="ignore"):
            amax = np.max(np.abs(block), axis=0)
        ok = finite & (amax > 0.0)
        scale = np.where(ok, amax / np.float32(QMAX), np.float32(1.0))
        scales[g] = scale
        with np.errstate(invalid="ignore", over="ignore"):
            q = np.rint(block / scale[None, :])
        q = np.where(ok[None, :], q, 0.0)
        np.clip(q, -QMAX, QMAX, out=q)
        qweight[lo:hi] = q.astype(np.int8)
    return qweight, scales


def dequantize_int8_blocked(
    qweight: np.ndarray,
    scales: np.ndarray,
    group_size: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Reconstruct the fp32 plane (the dense-dequant reference path)."""
    rows, cols = qweight.shape
    if out is None:
        out = np.empty((rows, cols), dtype=np.float32)
    for g in range(group_count(rows, group_size)):
        lo, hi = g * group_size, min((g + 1) * group_size, rows)
        np.multiply(
            qweight[lo:hi], scales[g][None, :], out=out[lo:hi],
            casting="unsafe",
        )
    return out


def quantization_error_bound(
    scales: np.ndarray, group_size: int, rows: int
) -> np.ndarray:
    """Per-element reconstruction error bound, shaped ``(rows, cols)``.

    Rounding to the nearest code moves a value by at most half a step:
    ``|w - scale * round(w / scale)| <= scale / 2`` (clipping never
    engages because ``|w / scale| <= 127`` by construction).  Degenerate
    groups reconstruct exactly (their stored codes are 0 and the true
    finite values were 0), so ``scale / 2`` is a valid bound there too.
    """
    idx = np.arange(rows) // group_size
    return scales[idx] * np.float32(0.5)


@dataclass(frozen=True)
class QuantizedTensor:
    """One int8-quantized weight plane plus its per-group scales.

    ``qweight`` and ``scales`` are typically *views* into a
    :class:`QuantizedStore`'s contiguous buffers; the dataclass only
    carries the geometry needed by the fused matmul kernel.
    """

    qweight: np.ndarray  # (rows, cols) int8
    scales: np.ndarray   # (n_groups, cols) fp32
    group_size: int

    @property
    def shape(self) -> Tuple[int, int]:
        return self.qweight.shape

    @property
    def nbytes(self) -> int:
        return self.qweight.nbytes + self.scales.nbytes

    def dequantize(self, out: np.ndarray | None = None) -> np.ndarray:
        """Dense fp32 reconstruction (reference path; O(rows*cols))."""
        return dequantize_int8_blocked(
            self.qweight, self.scales, self.group_size, out
        )

    def dequantize_rows(self, rows: np.ndarray) -> np.ndarray:
        """Reconstruct a row subset (the quantized-embedding gather)."""
        rows = np.asarray(rows)
        return (
            self.qweight[rows].astype(np.float32)
            * self.scales[rows // self.group_size]
        )

    def error_bound(self) -> np.ndarray:
        """Per-element ``|w - dequant|`` bound (see module docstring)."""
        return quantization_error_bound(
            self.scales, self.group_size, self.qweight.shape[0]
        )


class QuantizedStore:
    """Packed storage for a set of quantized planes.

    FlatArena-style: all int8 codes live in one contiguous byte buffer
    and all scales in one contiguous fp32 buffer, so a quantized model is
    two allocations regardless of layer count and the memory footprint
    is exact (``nbytes``).  Planes are registered up front via
    :meth:`pack` and read back as zero-copy views via :meth:`get`.
    """

    def __init__(self, group_size: int):
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size
        self._geometry: Dict[str, Tuple[int, int, int, int]] = {}
        self._codes = np.empty(0, dtype=np.int8)
        self._scales = np.empty(0, dtype=np.float32)
        self.source_bytes = 0  # fp32 footprint of everything quantized

    @classmethod
    def pack(
        cls, planes: Iterable[Tuple[str, np.ndarray]], group_size: int
    ) -> "QuantizedStore":
        """Quantize and pack named fp32 planes into one store."""
        store = cls(group_size)
        planes = list(planes)
        quantized = []
        code_total = scale_total = 0
        for name, w in planes:
            if name in store._geometry:
                raise ValueError(f"duplicate plane {name!r}")
            q, s = quantize_int8_blocked(w, group_size)
            store._geometry[name] = (
                code_total, scale_total, q.shape[0], q.shape[1]
            )
            quantized.append((q, s))
            code_total += q.size
            scale_total += s.size
            store.source_bytes += w.size * 4
        store._codes = np.empty(code_total, dtype=np.int8)
        store._scales = np.empty(scale_total, dtype=np.float32)
        for (name, _), (q, s) in zip(planes, quantized):
            c0, s0, rows, cols = store._geometry[name]
            store._codes[c0:c0 + q.size] = q.ravel()
            store._scales[s0:s0 + s.size] = s.ravel()
        return store

    def get(self, name: str) -> QuantizedTensor:
        """Zero-copy view of one packed plane."""
        c0, s0, rows, cols = self._geometry[name]
        n_groups = group_count(rows, self.group_size)
        return QuantizedTensor(
            self._codes[c0:c0 + rows * cols].reshape(rows, cols),
            self._scales[s0:s0 + n_groups * cols].reshape(n_groups, cols),
            self.group_size,
        )

    def __contains__(self, name: str) -> bool:
        return name in self._geometry

    def names(self) -> Tuple[str, ...]:
        return tuple(self._geometry)

    @property
    def nbytes(self) -> int:
        return self._codes.nbytes + self._scales.nbytes

    @property
    def compression_ratio(self) -> float:
        """fp32 bytes of the quantized planes / packed bytes."""
        return self.source_bytes / self.nbytes if self.nbytes else 1.0
