"""Low-precision emulation on numpy.

FP16 is native in numpy; bfloat16 is emulated by truncating the fp32
mantissa (round-to-nearest-even on the upper 16 bits), the same convention
hardware uses.  These helpers are the numeric twin of the casting cost
models in :mod:`repro.hardware.casting`.
"""

from __future__ import annotations

import numpy as np


def to_fp16(x: np.ndarray) -> np.ndarray:
    """Cast to IEEE fp16 (values beyond ~65504 overflow to inf, as on GPU)."""
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float32).astype(np.float16)


def from_fp16(x: np.ndarray) -> np.ndarray:
    """Widen fp16 back to fp32 (exact)."""
    return np.asarray(x, dtype=np.float16).astype(np.float32)


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Round fp32 to bfloat16 precision, returned as fp32 storage.

    Uses round-to-nearest-even on the top 16 bits of the fp32 encoding.
    """
    as_f32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + lsb of the surviving mantissa bit
    lsb = (bits >> 16) & 1
    rounded = (bits + 0x7FFF + lsb) & 0xFFFF0000
    return rounded.view(np.float32).reshape(as_f32.shape).copy()


def cast_roundtrip_error(x: np.ndarray, dtype: str = "fp16") -> float:
    """Max absolute error of one fp32 -> low precision -> fp32 round trip."""
    if dtype == "fp16":
        back = from_fp16(to_fp16(x))
    elif dtype == "bf16":
        back = to_bf16(x)
    else:
        raise ValueError(f"unsupported low precision dtype {dtype!r}")
    return float(np.max(np.abs(np.asarray(x, dtype=np.float32) - back)))
