"""Multi-threaded chunked kernel executor for the flat arena substrate.

The paper's headline mechanism is *overlap*: GraceAdam tiles the
optimizer step across CPU threads (Table 3) and SuperOffload hides
optimizer and transfer work behind GPU compute (Figs. 10-12).  This
package is the substrate's execution layer for that idea:

* :class:`ChunkPlan` — splits a flat plane into cache-friendly,
  vector-aligned, worker-balanced ranges;
* :class:`KernelPool` — persistent worker threads with submit/wait
  futures and per-worker telemetry (``exec_chunks_total``,
  ``exec_busy_ms``);
* :mod:`repro.exec.kernels` — fused, allocation-free chunk kernels
  (AdamW, scale, cast, memcpy, fixed-order reduce) that are bitwise
  identical to their serial ancestors for any chunking;
* :mod:`repro.exec.ops` — the call-site surface routing the hot paths
  (CPUAdam/GraceAdam flat step, snapshot rollback, STV
  accumulate/clip, mixed-precision casts, the pipelined ZeRO bucket
  reduce) through the pool.

numpy releases the GIL on large array operations, so chunks execute in
true parallel on multi-core hosts; on one core the executor still wins by
replacing the ancestors' out-of-place temporaries with fused per-tile
scratch (``repro bench`` records both effects as ``parallel_step`` /
``zero_pipeline`` speedups).
"""

from repro.exec.kernels import CACHE_TILE, AdamChunkHyper
from repro.exec.ops import (
    MIN_PARALLEL_FUSED,
    MIN_PARALLEL_SIMPLE,
    parallel_add_scaled,
    parallel_adam_flat,
    parallel_cast,
    parallel_copy,
    parallel_reduce,
    parallel_scale,
    parallel_scale_into,
)
from repro.exec.plan import DEFAULT_ALIGN, ChunkPlan
from repro.exec.pool import (
    ChunkFuture,
    KernelPool,
    configure_default_pool,
    default_workers,
    get_pool,
)

__all__ = [
    "AdamChunkHyper",
    "CACHE_TILE",
    "ChunkFuture",
    "ChunkPlan",
    "DEFAULT_ALIGN",
    "KernelPool",
    "MIN_PARALLEL_FUSED",
    "MIN_PARALLEL_SIMPLE",
    "configure_default_pool",
    "default_workers",
    "get_pool",
    "parallel_adam_flat",
    "parallel_add_scaled",
    "parallel_cast",
    "parallel_copy",
    "parallel_reduce",
    "parallel_scale",
    "parallel_scale_into",
]
