"""Fused, allocation-free chunk kernels for the flat arena planes.

Each kernel processes one ``[lo, hi)`` range of a flat fp32 plane in
cache-sized sub-tiles, using per-thread scratch buffers instead of the
out-of-place temporaries the serial ancestors allocated — the numpy
analogue of the paper's fused SVE pipeline (§4.6): same arithmetic, same
operation order, zero heap traffic in the hot loop.

Bitwise fidelity is the contract.  Every kernel reproduces its serial
ancestor's exact operation sequence (scalars pre-demoted to ``float32``
exactly as NEP-50 weak promotion demotes python floats; multiplications
that the ancestor wrote scalar-first commute bitwise), so chunked
execution over *any* plan equals the ancestor bit for bit.  The
hypothesis suite in ``tests/exec`` holds this line.

Signature convention: every kernel takes ``(lo, hi, ...)`` first so a
:class:`~repro.exec.pool.KernelPool` can drive it directly from a
:class:`~repro.exec.plan.ChunkPlan`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.numeric.lowprec import to_bf16
from repro.tune.registry import default as _registry_default

#: Elements per cache sub-tile inside a chunk.  Six fp32 streams (p, m,
#: v, g + two scratch) at 32k elements is a ~768 KiB working set — sized
#: to sit in L2/L3 so the fused passes re-hit cache instead of streaming
#: DRAM (the whole-array fused variant measures *slower* than the tiled
#: serial ancestor; this tiling is where the kernel's win comes from).
#: The authored value lives in the tunable registry (``adam.cache_tile``);
#: dispatchers resolve the host-tuned value and pass it to ``adam_chunk``.
CACHE_TILE = _registry_default("adam.cache_tile")

_scratch = threading.local()


def _scratch_pair(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Two per-thread fp32 scratch buffers of at least ``n`` elements."""
    buf = getattr(_scratch, "bufs", None)
    if buf is None or buf[0].size < n:
        size = max(n, CACHE_TILE)
        buf = (np.empty(size, dtype=np.float32),
               np.empty(size, dtype=np.float32))
        _scratch.bufs = buf
    return buf


@dataclass(frozen=True)
class AdamChunkHyper:
    """Per-step scalar operands of the fused Adam kernel, pre-demoted to
    ``float32`` (the dtype NEP-50 weak promotion gives the ancestor's
    python-float scalars against fp32 arrays)."""

    lr: np.float32
    beta1: np.float32
    beta2: np.float32
    one_minus_beta1: np.float32
    one_minus_beta2: np.float32
    eps: np.float32
    bc1: np.float32
    bc2: np.float32
    decay_keep: np.float32  # 1 - lr * weight_decay; 1.0 disables decay

    @classmethod
    def from_config(cls, config, step: int) -> "AdamChunkHyper":
        """Demote an :class:`~repro.optim.adam.AdamConfig` for ``step``."""
        bc1 = 1 - config.beta1 ** step if config.bias_correction else 1.0
        bc2 = 1 - config.beta2 ** step if config.bias_correction else 1.0
        keep = 1.0 - config.lr * config.weight_decay \
            if config.weight_decay else 1.0
        return cls(
            lr=np.float32(config.lr),
            beta1=np.float32(config.beta1),
            beta2=np.float32(config.beta2),
            one_minus_beta1=np.float32(1 - config.beta1),
            one_minus_beta2=np.float32(1 - config.beta2),
            eps=np.float32(config.eps),
            bc1=np.float32(bc1),
            bc2=np.float32(bc2),
            decay_keep=np.float32(keep),
        )


def adam_chunk(
    lo: int,
    hi: int,
    p: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    g: np.ndarray,
    hyper: AdamChunkHyper,
    tile: int | None = None,
) -> None:
    """Fused AdamW over ``[lo, hi)`` of the (p, m, v, g) planes.

    Operation order matches the per-tile body of
    :meth:`GraceAdam._step_flat_serial` /:meth:`CPUAdam.step` exactly::

        m  = beta1*m + (1-beta1)*g
        v  = beta2*v + (1-beta2)*g^2
        d  = sqrt(v/bc2) + eps
        p *= 1 - lr*wd                  (when decaying)
        p -= lr * ((m/bc1) / d)

    but with every temporary landed in per-thread scratch.  ``tile``
    overrides :data:`CACHE_TILE` (the ``adam.cache_tile`` tunable —
    dispatchers resolve it once and pass it down); the arithmetic is
    purely elementwise, so any tiling is bitwise identical.
    """
    h = hyper
    if tile is None:
        tile = CACHE_TILE
    decaying = h.decay_keep != np.float32(1.0)
    s1, s2 = _scratch_pair(min(tile, hi - lo))
    for tlo in range(lo, hi, tile):
        thi = min(hi, tlo + tile)
        gg = g[tlo:thi]
        mm = m[tlo:thi]
        vv = v[tlo:thi]
        pp = p[tlo:thi]
        c1 = s1[: thi - tlo]
        c2 = s2[: thi - tlo]
        mm *= h.beta1
        np.multiply(gg, h.one_minus_beta1, out=c1)
        mm += c1
        vv *= h.beta2
        np.square(gg, out=c1)
        c1 *= h.one_minus_beta2
        vv += c1
        np.divide(vv, h.bc2, out=c1)
        np.sqrt(c1, out=c1)
        c1 += h.eps
        np.divide(mm, h.bc1, out=c2)
        c2 /= c1
        c2 *= h.lr
        if decaying:
            pp *= h.decay_keep
        pp -= c2


def scale_chunk(lo: int, hi: int, buf: np.ndarray, coef: np.float32) -> None:
    """In-place ``buf[lo:hi] *= coef`` (gradient clip / accumulation mean)."""
    buf[lo:hi] *= coef


def copy_chunk(lo: int, hi: int, dst: np.ndarray, src: np.ndarray) -> None:
    """``dst[lo:hi] = src[lo:hi]`` — the parallel memcpy."""
    np.copyto(dst[lo:hi], src[lo:hi])


def cast_chunk(
    lo: int,
    hi: int,
    dst: np.ndarray,
    src: np.ndarray,
    ignore_overflow: bool = False,
) -> None:
    """Dtype-converting ``dst[lo:hi] = src[lo:hi]``.

    ``ignore_overflow`` silences the fp32→fp16 saturation warning the
    narrow cast legitimately produces (values beyond ~65504 become inf,
    as on the GPU).  ``np.errstate`` is thread-local, so the guard is
    applied here, inside the worker, not at the submitting call site.
    """
    if ignore_overflow:
        with np.errstate(over="ignore"):
            dst[lo:hi] = src[lo:hi]
    else:
        dst[lo:hi] = src[lo:hi]


def cast_bf16_chunk(lo: int, hi: int, dst: np.ndarray, src: np.ndarray) -> None:
    """``dst[lo:hi] = to_bf16(src[lo:hi])`` — elementwise round-to-
    nearest-even truncation, so chunking cannot change any bit."""
    dst[lo:hi] = to_bf16(src[lo:hi])


def scale_into_chunk(
    lo: int, hi: int, dst: np.ndarray, src: np.ndarray, scale: np.float32
) -> None:
    """``dst[lo:hi] = src[lo:hi] * scale`` (first micro-batch landing).

    ``src`` may be low-precision; numpy upcasts it to fp32 before the
    multiply — the same bits as the ancestor's ``astype`` + multiply.
    """
    np.multiply(src[lo:hi], scale, out=dst[lo:hi])


def add_scaled_chunk(
    lo: int, hi: int, dst: np.ndarray, src: np.ndarray, scale: np.float32
) -> None:
    """``dst[lo:hi] += src[lo:hi] * scale`` (micro-batch accumulation).

    Runs under the same invalid/overflow silencing the serial
    accumulation loop used: inf - inf propagation is *expected* when a
    micro-batch overflowed — the health check flags it downstream.
    """
    s1, _ = _scratch_pair(hi - lo)
    c1 = s1[: hi - lo]
    with np.errstate(invalid="ignore", over="ignore"):
        np.multiply(src[lo:hi], scale, out=c1)
        dst[lo:hi] += c1


def reduce_chunk(
    lo: int,
    hi: int,
    dst: np.ndarray,
    dst_base: int,
    sources,
    divisor: np.float32 | None = None,
) -> None:
    """Fixed-order reduction of rank buffers into a staging range.

    ``dst[lo-dst_base : hi-dst_base] = (((src0 + src1) + src2) + ...)``
    over ``src[lo:hi]``, optionally followed by an elementwise divide —
    the same left-fold order as
    :meth:`~repro.parallel.comm.SimProcessGroup.reduce_scatter`'s serial
    sum, for every chunk, so chunked reduction is bitwise identical to
    the serial ancestor and deterministic across worker counts (the
    combine order is fixed by rank, never by scheduling).
    """
    out = dst[lo - dst_base: hi - dst_base]
    if len(sources) == 1:
        np.copyto(out, sources[0][lo:hi])
    else:
        np.add(sources[0][lo:hi], sources[1][lo:hi], out=out)
        for src in sources[2:]:
            out += src[lo:hi]
    if divisor is not None:
        np.divide(out, divisor, out=out)


# -- fused int8 dequant-matmul ---------------------------------------------

#: Authored default of the qmatmul output-column tile width; the live
#: value is resolved through ``tune.value("quant.dequant_tile", ...)`` by
#: the dispatcher in :mod:`repro.exec.ops`.
DEQUANT_TILE = _registry_default("quant.dequant_tile")

_qscratch = threading.local()


def _qmatmul_scratch(tag: str, shape: tuple[int, int]) -> np.ndarray:
    """Per-thread exact-shape fp32 scratch (same idiom as flash tiles)."""
    store = getattr(_qscratch, "bufs", None)
    if store is None:
        store = {}
        _qscratch.bufs = store
    key = (tag, shape)
    buf = store.get(key)
    if buf is None:
        buf = np.empty(shape, dtype=np.float32)
        store[key] = buf
    return buf


def qmatmul_xgroups(x: np.ndarray, group_size: int) -> np.ndarray | None:
    """Contiguous ``(n_full_groups, m, group_size)`` regrouping of ``x``.

    Precomputed once per qmatmul call (the activations are tiny next to
    the weight plane) and shared by every column chunk, so the batched
    per-group matmul inside :func:`qmatmul_chunk` reads contiguous
    operands.  Returns ``None`` when no full group fits (``k <
    group_size``); the chunk kernel then runs the ragged tail path only.
    """
    m, k = x.shape
    n_full = k // group_size
    if n_full == 0:
        return None
    xg = x[:, :n_full * group_size].reshape(m, n_full, group_size)
    return np.ascontiguousarray(xg.transpose(1, 0, 2))


def qmatmul_chunk(
    lo: int,
    hi: int,
    out: np.ndarray,
    x: np.ndarray,
    qweight: np.ndarray,
    scales: np.ndarray,
    group_size: int,
    bias: np.ndarray | None = None,
    xg: np.ndarray | None = None,
) -> None:
    """``out[:, lo:hi] = x @ dequant(qweight)[:, lo:hi] (+ bias)``, fused.

    The per-group scale is constant down a column within its group, so
    it commutes out of the contraction::

        x @ (q * s)  ==  sum_g (x_g @ float32(q_g)) * s_g

    That turns the dequant from a per-element broadcast *multiply* over
    the whole weight plane (the dense reference's dominant cost) into a
    pure int8->fp32 *cast* into an L2-sized ``(k, hi - lo)`` scratch
    tile, one batched matmul over the groups, and a scale application on
    the tiny ``(groups, m, hi - lo)`` partial stack.  The full fp32
    weight is never materialized, and the int8 plane is read once —
    ~1 byte/element of weight traffic instead of the ~9 (read int8,
    write fp32, re-read fp32) the dense-dequant reference pays.

    Determinism contract: the group partial-sum order is fixed by the
    quantization geometry and the column span ``[lo, hi)`` fully owns
    its output slice, so results are bitwise identical no matter how
    tiles are assigned to workers (the dispatcher keeps tile *shapes*
    independent of worker count).
    """
    m, k = x.shape
    width = hi - lo
    out_view = out[:, lo:hi]
    if xg is None:
        xg = qmatmul_xgroups(x, group_size)
    n_full = k // group_size
    kf = n_full * group_size
    if n_full:
        wtile = _qmatmul_scratch("w", (kf, width))
        np.copyto(wtile, qweight[:kf, lo:hi], casting="unsafe")
        part = _qmatmul_scratch("part", (n_full, m, width))
        np.matmul(xg, wtile.reshape(n_full, group_size, width), out=part)
        np.multiply(part, scales[:n_full, None, lo:hi], out=part)
        np.sum(part, axis=0, out=out_view)
    else:
        out_view[:] = 0.0
    if kf < k:  # ragged tail group (group_size does not divide k)
        wtail = _qmatmul_scratch("wt", (k - kf, width))
        np.copyto(wtail, qweight[kf:, lo:hi], casting="unsafe")
        ptail = _qmatmul_scratch("pt", (m, width))
        np.matmul(x[:, kf:], wtail, out=ptail)
        np.multiply(ptail, scales[n_full, lo:hi][None, :], out=ptail)
        out_view += ptail
    if bias is not None:
        out_view += bias[lo:hi]
