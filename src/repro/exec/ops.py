"""Parallel flat-plane operations: the executor's call-site surface.

Each op covers one of the substrate's hot flat passes (fused Adam step,
clip/accumulate scale, mixed-precision cast, snapshot memcpy), planning
the plane into worker-aligned chunks and driving the corresponding
:mod:`repro.exec.kernels` kernel through a
:class:`~repro.exec.pool.KernelPool`.  ``pool=None`` uses the shared
process-default pool (`repro.exec.pool.get_pool`), so call sites need no
plumbing to pick up ``repro bench --workers`` /
``REPRO_EXEC_WORKERS`` configuration.

Small planes run inline: below ``min_parallel`` elements the dispatch
round-trip (~tens of µs) exceeds the kernel itself, so the op executes
as one serial fused chunk on the calling thread.  The cutoffs only move
work between threads — results are bitwise identical either way.

Each op's crossover is resolved through :mod:`repro.tune` at call time:
an active host profile (``repro tune``) supplies the measured value, and
the module constants below are the untuned fallback.  The constants stay
module globals read per call, so monkeypatching them (as the determinism
tests do to force parallel dispatch) keeps working with or without a
profile.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro import tune
from repro.exec import kernels
from repro.exec.plan import DEFAULT_ALIGN, ChunkPlan
from repro.exec.pool import KernelPool, get_pool
from repro.tune.registry import default as _registry_default

#: Below this many elements a fused multi-pass kernel (Adam) runs inline.
MIN_PARALLEL_FUSED = _registry_default("adam.min_parallel")
#: Below this many elements a single-pass kernel (scale/cast/copy) runs
#: inline — one pass amortizes dispatch later than ten passes do.
MIN_PARALLEL_SIMPLE = _registry_default("scale.min_parallel")


def _run(
    pool: Optional[KernelPool],
    n: int,
    tunable: str,
    min_parallel: int,
    align: int,
    fn,
    *args,
) -> None:
    if n <= 0:
        return
    pool = pool if pool is not None else get_pool()
    if pool.workers <= 1 or n < tune.value(tunable, min_parallel, size=n):
        fn(0, n, *args)
        return
    pool.run(fn, ChunkPlan.split(n, pool.workers, align), *args)


def parallel_adam_flat(
    p: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    g: np.ndarray,
    config,
    step: int,
    pool: Optional[KernelPool] = None,
    align: int = DEFAULT_ALIGN,
) -> None:
    """Fused AdamW over four parallel flat planes (see ``adam_chunk``)."""
    hyper = kernels.AdamChunkHyper.from_config(config, step)
    tile = tune.value("adam.cache_tile", kernels.CACHE_TILE, size=p.size)
    _run(pool, p.size, "adam.min_parallel", MIN_PARALLEL_FUSED, align,
         kernels.adam_chunk, p, m, v, g, hyper, tile)


def parallel_scale(
    buf: np.ndarray,
    coef: np.float32,
    pool: Optional[KernelPool] = None,
) -> None:
    """In-place flat multiply (gradient clip, accumulation averaging)."""
    _run(pool, buf.size, "scale.min_parallel", MIN_PARALLEL_SIMPLE,
         DEFAULT_ALIGN, kernels.scale_chunk, buf, coef)


def parallel_copy(
    dst: np.ndarray,
    src: np.ndarray,
    pool: Optional[KernelPool] = None,
) -> None:
    """Chunked flat memcpy (snapshot capture/restore)."""
    _run(pool, dst.size, "copy.min_parallel", MIN_PARALLEL_SIMPLE,
         DEFAULT_ALIGN, kernels.copy_chunk, dst, src)


def parallel_cast(
    dst: np.ndarray,
    src: np.ndarray,
    ignore_overflow: bool = False,
    bf16: bool = False,
    pool: Optional[KernelPool] = None,
) -> None:
    """Chunked dtype-converting copy (the mixed-precision casts)."""
    if bf16:
        _run(pool, dst.size, "cast.min_parallel", MIN_PARALLEL_SIMPLE,
             DEFAULT_ALIGN, kernels.cast_bf16_chunk, dst, src)
    else:
        _run(pool, dst.size, "cast.min_parallel", MIN_PARALLEL_SIMPLE,
             DEFAULT_ALIGN, kernels.cast_chunk, dst, src, ignore_overflow)


def parallel_scale_into(
    dst: np.ndarray,
    src: np.ndarray,
    scale: np.float32,
    pool: Optional[KernelPool] = None,
) -> None:
    """``dst = src * scale`` (first micro-batch gradient landing)."""
    _run(pool, dst.size, "scale_into.min_parallel", MIN_PARALLEL_SIMPLE,
         DEFAULT_ALIGN, kernels.scale_into_chunk, dst, src, scale)


def parallel_add_scaled(
    dst: np.ndarray,
    src: np.ndarray,
    scale: np.float32,
    pool: Optional[KernelPool] = None,
) -> None:
    """``dst += src * scale`` (micro-batch gradient accumulation)."""
    _run(pool, dst.size, "add_scaled.min_parallel", MIN_PARALLEL_SIMPLE,
         DEFAULT_ALIGN, kernels.add_scaled_chunk, dst, src, scale)


#: Below this many *weight* elements (k * n) the fused qmatmul runs as
#: one inline chunk.  The guard is on the weight plane, not the output:
#: a decode step has a tiny (m, n) output but still streams the whole
#: int8 plane, and that traffic is what the column fan-out divides.
QMATMUL_MIN_PARALLEL = 1 << 16


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def parallel_qmatmul(
    x: np.ndarray,
    qt,
    bias: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
    pool: Optional[KernelPool] = None,
    tile: Optional[int] = None,
) -> np.ndarray:
    """Fused quantized matmul ``x @ dequant(qt) (+ bias)``.

    ``qt`` is a :class:`~repro.numeric.lowprec.QuantizedTensor`; the
    int8 plane is dequantized group-by-group inside
    :func:`~repro.exec.kernels.qmatmul_chunk`, never materializing the
    fp32 weight.  Fan-out is over fixed-width output-column tiles
    (``quant.dequant_tile``), so the tile decomposition — and therefore
    every partial-sum order — is independent of the pool's worker count:
    results are bitwise identical for any number of workers.

    Args:
        x: ``(..., k)`` activations (flattened to 2-D internally).
        qt: quantized ``(k, n)`` weight plane.
        bias: optional ``(n,)`` fp32 bias, added after the last group.
        out: optional preallocated ``(..., n)`` fp32 output (e.g. an
            ActivationWorkspace buffer).
        pool: kernel pool; defaults to the shared process pool.
        tile: column tile width override (tests); defaults to the tuned
            ``quant.dequant_tile``.

    Returns:
        fp32 ``(..., n)`` output (``out`` when given).
    """
    k, n = qt.shape
    if x.shape[-1] != k:
        raise ValueError(f"x has {x.shape[-1]} features, weight expects {k}")
    lead = x.shape[:-1]
    x2 = np.ascontiguousarray(x, dtype=np.float32).reshape(-1, k)
    m = x2.shape[0]
    if out is None:
        out = np.empty(lead + (n,), dtype=np.float32)
    out2 = out.reshape(m, n)
    tile = tile if tile is not None else tune.value(
        "quant.dequant_tile", kernels.DEQUANT_TILE, size=k * n
    )
    spans = [(c0, min(c0 + tile, n)) for c0 in range(0, n, tile)]
    xg = kernels.qmatmul_xgroups(x2, qt.group_size)
    pool = pool if pool is not None else get_pool()
    # Fan-out capped at the CPUs we can actually occupy: on a box with
    # fewer cores than pool workers the extra threads only add dispatch
    # and contention (results are bitwise identical either way).
    fan_out = min(pool.workers, _usable_cpus())
    if fan_out <= 1 or len(spans) == 1 or k * n < QMATMUL_MIN_PARALLEL:
        for lo, hi in spans:
            kernels.qmatmul_chunk(
                lo, hi, out2, x2, qt.qweight, qt.scales, qt.group_size,
                bias, xg,
            )
    else:
        pool.wait_all([
            pool.submit(
                kernels.qmatmul_chunk, lo, hi, out2, x2,
                qt.qweight, qt.scales, qt.group_size, bias, xg,
            )
            for lo, hi in spans
        ])
    return out


def qmatmul_reference(
    x: np.ndarray,
    qt,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense-dequant reference: reconstruct the full fp32 weight, then
    one plain matmul.  Same quantized operand, unfused data path — the
    tolerance twin the property tests (and the bench A/B) compare
    :func:`parallel_qmatmul` against.
    """
    w = qt.dequantize()
    y = np.matmul(np.asarray(x, dtype=np.float32), w)
    if bias is not None:
        y = y + bias
    return np.asarray(y, dtype=np.float32)


def parallel_reduce(
    dst: np.ndarray,
    dst_base: int,
    sources: Sequence[np.ndarray],
    lo: int,
    hi: int,
    divisor: Optional[np.float32] = None,
    pool: Optional[KernelPool] = None,
) -> None:
    """Fixed-order reduce of ``sources[lo:hi]`` into staging ``dst``.

    Used by the pipelined ZeRO step; combine order is fixed by rank (a
    left fold), so any chunking is bitwise identical to the serial
    reduce-scatter.  Unlike the other ops this one is usually *submitted*
    (see ``KernelPool.submit``) rather than run to completion, so the
    reduce of bucket ``k`` can overlap the shard Adam of bucket ``k-1``;
    this entry point is the synchronous form.
    """
    n = hi - lo
    if n <= 0:
        return
    pool = pool if pool is not None else get_pool()
    if pool.workers <= 1 or n < tune.value(
        "reduce.min_parallel", MIN_PARALLEL_SIMPLE, size=n
    ):
        kernels.reduce_chunk(lo, hi, dst, dst_base, sources, divisor)
        return
    plan = ChunkPlan.split(n, pool.workers, DEFAULT_ALIGN)
    pool.wait_all([
        pool.submit(kernels.reduce_chunk, lo + clo, lo + chi, dst,
                    dst_base, sources, divisor)
        for clo, chi in plan.chunks
    ])
