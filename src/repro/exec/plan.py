"""Chunk planning: how a flat arena plane is split across workers.

A :class:`ChunkPlan` carves ``[0, n)`` into contiguous, cache-friendly
ranges, one (or a few) per worker.  Two alignment rules make the split
safe for the substrate's kernels:

* **Vector alignment.**  Every interior boundary is a multiple of
  ``align`` (the SVE vector length in fp32 lanes), so a chunk never
  splits a vector-length tile — the numpy analogue of handing each
  OpenMP thread whole-vector main loops (§4.6).  Only the final
  boundary, ``n`` itself, may be unaligned (the tail predicate).
* **Balance.**  Chunks differ by at most one ``align`` quantum, so no
  worker is handed more than one extra vector tile of work.

Because every routed kernel is elementwise (Adam update, scale, cast,
copy, fixed-order reduce), chunk boundaries cannot change any result
bit: the chunked execution is bitwise identical to the serial ancestor
for *any* plan, which the hypothesis suite in ``tests/exec`` asserts
across adversarial sizes and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Default vector length (fp32 lanes) chunk boundaries are aligned to —
#: matches :class:`repro.optim.implementations.GraceAdam`'s default
#: ``vector_length`` (the ``svcntw()`` of a 512-bit SVE implementation).
DEFAULT_ALIGN = 16


@dataclass(frozen=True)
class ChunkPlan:
    """An ordered partition of ``[0, n)`` into worker-aligned ranges.

    Attributes:
        n: total element count covered.
        chunks: ``(lo, hi)`` pairs, in ascending order, tiling ``[0, n)``
            exactly.
        align: the vector quantum interior boundaries are multiples of.
    """

    n: int
    chunks: Tuple[Tuple[int, int], ...]
    align: int

    @classmethod
    def split(
        cls, n: int, n_chunks: int, align: int = DEFAULT_ALIGN
    ) -> "ChunkPlan":
        """Partition ``[0, n)`` into at most ``n_chunks`` aligned ranges.

        Fewer chunks are produced when ``n`` is too small to give every
        chunk at least one ``align`` quantum (a chunk smaller than one
        vector tile would defeat the whole-vector main loop).
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        if align < 1:
            raise ValueError(f"align must be >= 1, got {align}")
        if n == 0:
            return cls(0, (), align)
        # Quanta of `align` elements; the tail partial quantum (if any)
        # rides with the last chunk.
        quanta = n // align
        usable = min(n_chunks, max(1, quanta))
        base, extra = divmod(quanta, usable)
        chunks = []
        cursor = 0
        for i in range(usable):
            take = (base + (1 if i < extra else 0)) * align
            hi = cursor + take
            if i == usable - 1:
                hi = n
            chunks.append((cursor, hi))
            cursor = hi
        return cls(n, tuple(chunks), align)

    def __post_init__(self) -> None:
        cursor = 0
        for lo, hi in self.chunks:
            if lo != cursor or hi <= lo:
                raise ValueError(
                    f"chunks must tile [0, {self.n}) in order; "
                    f"got boundary ({lo}, {hi}) at cursor {cursor}"
                )
            if hi != self.n and hi % self.align:
                raise ValueError(
                    f"interior boundary {hi} splits a {self.align}-element "
                    f"vector tile"
                )
            cursor = hi
        if cursor != self.n:
            raise ValueError(f"chunks cover [0, {cursor}), expected [0, {self.n})")

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)

    def largest_chunk(self) -> int:
        """Elements in the biggest chunk (0 for an empty plan)."""
        return max((hi - lo for lo, hi in self.chunks), default=0)
