"""A persistent pool of kernel worker threads with submit/wait futures.

The paper's GraceAdam tiles the optimizer step across CPU threads
(Table 3); the substrate's analogue is a :class:`KernelPool` that keeps
``workers`` threads alive across steps (spawning threads per step would
dwarf the kernels they run) and executes chunk kernels on them.  numpy
releases the GIL on large array operations, so on a multi-core host the
chunks genuinely run in parallel; on a single core the pool degrades to
the fused serial walk with ~tens of microseconds of dispatch overhead.

Per-worker telemetry (``exec_chunks_total{worker=i}`` counters and
``exec_busy_ms{worker=i}`` histograms) records how evenly the plan
balanced the work — the observability hook the ROADMAP's perf story
needs to diagnose straggler chunks.

The pool never reorders results: :meth:`run` dispatches one task per
chunk and joins them all before returning, and every routed kernel is
elementwise over disjoint ranges, so execution order cannot change any
result bit.

Every submission is timestamped, so with telemetry attached the pool
also records ``exec_queue_wait_ms{worker=i}`` — how long each chunk sat
in the queue before a worker picked it up.  Together with the busy
histograms this is the raw material for the profiler's per-worker
utilization and straggler report.

Shutdown is idempotent and safe at interpreter exit: pools with live
threads register themselves for an :func:`atexit` drain, a second
``shutdown`` is a no-op, and any submission racing a shutdown has its
future failed with ``RuntimeError`` instead of hanging a waiter.
"""

from __future__ import annotations

import atexit
import os
import queue
import threading
import time
import weakref
from typing import Any, Callable, List, Optional, Sequence

from repro.exec.plan import ChunkPlan
from repro.telemetry import NULL_TELEMETRY, Telemetry


class ChunkFuture:
    """A minimal wait-able handle for one submitted chunk kernel."""

    __slots__ = ("_done", "_result", "_exception")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    def _set_result(self, value: Any) -> None:
        self._result = value
        self._done.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the kernel finishes; re-raise its exception."""
        if not self._done.wait(timeout):
            raise TimeoutError("chunk kernel did not finish in time")
        if self._exception is not None:
            raise self._exception
        return self._result

    def done(self) -> bool:
        return self._done.is_set()


class KernelPool:
    """Persistent worker threads executing chunk kernels.

    Args:
        workers: thread count; ``workers <= 1`` keeps a pool object but
            executes everything inline on the calling thread (no threads
            are spawned), so call sites need no special-casing.
        telemetry: sink for the per-worker counters/histograms.
        name: thread-name prefix (visible in trace exports).
    """

    def __init__(
        self,
        workers: int,
        telemetry: Telemetry = NULL_TELEMETRY,
        name: str = "kernel",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = name
        self._telemetry = telemetry
        self._queue: "queue.SimpleQueue[Optional[tuple]]" = queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    def _ensure_threads(self) -> None:
        if self._threads or self.workers <= 1:
            return
        with self._lock:
            if self._threads:
                return
            if self._closed:
                raise RuntimeError("pool is shut down")
            for i in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop, args=(i,),
                    name=f"{self.name}-{i}", daemon=True,
                )
                t.start()
                self._threads.append(t)
            _register_live_pool(self)

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent).

        Safe to call twice, concurrently with submissions, and from the
        :mod:`atexit` drain: queued work submitted before the shutdown
        still runs to completion (workers exit only on their sentinel),
        and anything that slips into the queue afterwards has its future
        failed rather than left forever pending.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for t in threads:
            t.join(timeout=5.0)
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Fail any submissions that raced past the shutdown sentinels."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            _, _, future, _ = item
            future._set_exception(RuntimeError("pool is shut down"))

    def _worker_loop(self, index: int) -> None:
        metrics = self._telemetry.metrics
        chunks = metrics.counter("exec_chunks_total", worker=index)
        busy = metrics.histogram("exec_busy_ms", worker=index)
        queue_wait = metrics.histogram("exec_queue_wait_ms", worker=index)
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args, future, submitted = item
            start = time.perf_counter()
            try:
                future._set_result(fn(*args))
            except BaseException as exc:  # propagate to the waiter
                future._set_exception(exc)
            chunks.inc()
            queue_wait.observe((start - submitted) * 1e3)
            busy.observe((time.perf_counter() - start) * 1e3)

    # -- execution ------------------------------------------------------

    def submit(self, fn: Callable, *args: Any) -> ChunkFuture:
        """Queue one kernel invocation; returns a wait-able future.

        With ``workers <= 1`` the call runs inline before returning (the
        future is already resolved), preserving submit/wait call sites.
        """
        future = ChunkFuture()
        if self.workers <= 1:
            try:
                future._set_result(fn(*args))
            except BaseException as exc:
                future._set_exception(exc)
            return future
        try:
            self._ensure_threads()
        except RuntimeError as exc:
            # Submitted after shutdown: fail the future instead of
            # raising, so submit/wait call sites see one error path.
            future._set_exception(exc)
            return future
        self._queue.put((fn, args, future, time.perf_counter()))
        if self._closed:
            # A shutdown raced this submission: the sentinels may already
            # be past our item, so fail it instead of risking a hang.
            self._drain_pending()
        return future

    def run(self, fn: Callable, plan: ChunkPlan, *args: Any) -> None:
        """Execute ``fn(lo, hi, *args)`` for every chunk; wait for all.

        Single-chunk plans (and 1-worker pools) run inline — the serial
        fused walk — so the parallel entry point costs nothing when there
        is nothing to parallelize.  The first chunk exception (in chunk
        order) is re-raised after all chunks settle.
        """
        if not plan.chunks:
            return
        if self.workers <= 1 or len(plan.chunks) == 1:
            for lo, hi in plan.chunks:
                fn(lo, hi, *args)
            return
        futures = [
            self.submit(fn, lo, hi, *args) for lo, hi in plan.chunks
        ]
        first_exc: Optional[BaseException] = None
        for f in futures:
            try:
                f.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc

    def wait_all(self, futures: Sequence[ChunkFuture]) -> None:
        """Join a batch of futures, re-raising the first failure."""
        first_exc: Optional[BaseException] = None
        for f in futures:
            try:
                f.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc


# -- interpreter-exit drain --------------------------------------------

#: Pools that have spawned threads; weak so a dropped pool can be
#: collected (its daemon threads die with the process anyway).
_live_pools: "weakref.WeakSet[KernelPool]" = weakref.WeakSet()
_live_lock = threading.Lock()
_atexit_registered = False


def _register_live_pool(pool: KernelPool) -> None:
    global _atexit_registered
    with _live_lock:
        _live_pools.add(pool)
        if not _atexit_registered:
            atexit.register(_drain_live_pools)
            _atexit_registered = True


def _drain_live_pools() -> None:
    """atexit hook: shut every live pool down cleanly.

    Worker threads are daemons, so the interpreter would exit without
    this — but an abrupt exit strands queued futures and can interleave
    kernel execution with module teardown.  The drain joins the workers
    (finishing queued work first) and fails anything left over.
    """
    with _live_lock:
        pools = list(_live_pools)
    for pool in pools:
        pool.shutdown()


# -- the process-default pool ------------------------------------------

_default_pool: Optional[KernelPool] = None
_default_lock = threading.Lock()


def default_workers() -> int:
    """Worker count the default pool is built with.

    ``REPRO_EXEC_WORKERS`` overrides everything; next a host tuning
    profile's ``pool.workers`` entry (``repro tune`` measures the count
    past which the memory-bound kernels stop scaling); otherwise the
    available CPU count, capped at 4 (the elementwise kernels are
    memory-bound — more threads than memory channels just contend).
    """
    env = os.environ.get("REPRO_EXEC_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    from repro import tune  # late: only the lookup, never the tuner

    tuned = tune.value("pool.workers", 0)
    if tuned > 0:
        return tuned
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(4, cpus))


def get_pool(
    workers: Optional[int] = None, telemetry: Telemetry = NULL_TELEMETRY
) -> KernelPool:
    """The shared default pool, or a dedicated pool for ``workers``.

    ``workers=None`` returns the lazily-created process-wide pool (all
    call sites share its threads); an explicit count builds a fresh pool
    the caller owns (benchmarks sweep worker counts this way).
    """
    if workers is not None:
        return KernelPool(workers, telemetry)
    global _default_pool
    if _default_pool is None:
        with _default_lock:
            if _default_pool is None:
                _default_pool = KernelPool(default_workers())
    return _default_pool


def configure_default_pool(
    workers: int, telemetry: Telemetry = NULL_TELEMETRY
) -> KernelPool:
    """Replace the process-default pool (e.g. from ``repro bench --workers``)."""
    global _default_pool
    with _default_lock:
        old, _default_pool = _default_pool, KernelPool(workers, telemetry)
    if old is not None:
        old.shutdown()
    return _default_pool
