"""SuperOffload reproduction: superchip-centric offloading for large-scale
LLM training (ASPLOS 2026).

Two interlocking halves:

* the **numeric substrate** — real numpy computation for everything
  algorithmic (mixed precision, the Adam family, speculation-then-
  validation, ZeRO sharding, Ulysses sequence parallelism); and
* the **performance simulator** — calibrated GH200 hardware models plus a
  deterministic task-graph simulator that regenerates every table and
  figure of the paper's evaluation for SuperOffload and all baselines.

Start with :func:`repro.core.init` (the paper's Fig. 1 API) for training,
:mod:`repro.training` for the experiment drivers, or ``python -m repro``
to regenerate any artifact from the shell.
"""

__version__ = "0.1.0"

__all__ = [
    "core",
    "data",
    "hardware",
    "models",
    "numeric",
    "optim",
    "parallel",
    "reporting",
    "sim",
    "systems",
    "telemetry",
    "tensors",
    "training",
]
