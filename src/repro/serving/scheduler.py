"""The continuous-batching loop: admit, step, retire.

Classic iteration-level scheduling (Orca-style): every engine step mixes
freshly admitted prompts (prefill) with live sessions (decode) in one
batch, so short requests never wait behind long generations and the
batch refills the moment a session retires.  Admission is gated on the
KV-cache budget — a session is only admitted if its *whole* footprint
(prompt + generation budget) fits alongside the full footprints already
reserved by live sessions, so a cache without a spill tier can never
overflow mid-generation no matter how far every admitted decode grows.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.serving.engine import InferenceEngine
from repro.serving.session import ACTIVE, DONE, Session, SessionRegistry

#: One emission: (session, token id, session finished?).
Emission = Tuple[Session, int, bool]


class ContinuousBatchingScheduler:
    """Per-step admission and retirement over an :class:`InferenceEngine`.

    Args:
        engine: the batched forward.
        registry: where requests queue (the server submits into it).
        max_batch: cap on concurrently active sessions per step.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        registry: SessionRegistry,
        max_batch: int = 8,
    ):
        self.engine = engine
        self.registry = registry
        self.max_batch = max_batch
        self.active: List[Session] = []

    @property
    def busy(self) -> bool:
        return bool(self.active) or self.registry.waiting > 0

    def _footprint(self, session: Session) -> int:
        """Pages the session will hold at its full generation budget."""
        cache = self.engine.cache
        budget = min(session.total_tokens, self.engine.spec.max_seq)
        return cache.pages_for(budget) * cache.n_layers

    def _admit(self) -> List[Session]:
        admitted: List[Session] = []
        cache = self.engine.cache
        # Reserve every live session's *full* footprint, not its current
        # holdings: decodes grow pages every step, so gating on held
        # pages alone would over-admit and hit KVCacheFull mid-stream.
        reserved = (
            sum(self._footprint(s) for s in self.active)
            if cache.bounded else 0
        )
        while len(self.active) + len(admitted) < self.max_batch:
            picked = self.registry.take_waiting(1)
            if not picked:
                break
            s = picked[0]
            if cache.bounded and \
                    reserved + self._footprint(s) > cache.max_pages:
                # Does not fit yet: put it back and stop admitting (FIFO
                # order — later, smaller requests must not starve it).
                self.registry.requeue(s)
                break
            reserved += self._footprint(s)
            s.state = ACTIVE
            admitted.append(s)
        return admitted

    def step(self) -> List[Emission]:
        """Admit waiting sessions, run one engine step, retire finished.

        Returns one emission per stepped session; an empty list means
        there was nothing to do.
        """
        admitted = self._admit()
        items = [(s.sid, s.prompt) for s in admitted]
        items += [
            (s.sid, np.array([s.generated[-1]])) for s in self.active
        ]
        stepping = admitted + self.active
        if not items:
            return []
        results = dict(self.engine.step(items))
        out: List[Emission] = []
        survivors: List[Session] = []
        for s in stepping:
            tok = results[s.sid]
            s.record_token(tok)
            room = self.engine.cache.tokens(s.sid) < \
                self.engine.spec.max_seq
            finished = (
                len(s.generated) >= s.max_new_tokens
                or (s.eos_id is not None and tok == s.eos_id)
                or not room
            )
            if finished:
                s.state = DONE
                s.finished_at = time.perf_counter()
                self.engine.release(s.sid)
            else:
                survivors.append(s)
            out.append((s, tok, finished))
        self.active = survivors
        return out

    def run_until_done(self, max_steps: Optional[int] = None) -> int:
        """Drain the queue synchronously; returns steps executed."""
        steps = 0
        while self.busy and (max_steps is None or steps < max_steps):
            self.step()
            steps += 1
        return steps
