"""Continuous-batching inference serving on the quantized substrate.

The stack the ROADMAP's "quantized weights + streaming inference
server" workload asks for, in three pieces that mirror a production
serving system scaled to the numeric substrate:

* :mod:`repro.serving.session` — sessions and their registry: one
  :class:`Session` per request, carrying the prompt, the generated
  tokens, and per-token latency timestamps.
* :mod:`repro.serving.engine` — the :class:`InferenceEngine`: int8
  block-quantized weights (:mod:`repro.numeric.lowprec`) driven through
  the fused ``qmatmul``, a paged KV-cache
  (:mod:`repro.tensors.kvcache`), and a mixed prefill+decode batched
  step over the transformer.
* :mod:`repro.serving.scheduler` / :mod:`repro.serving.server` — the
  continuous-batching loop (admit, step, retire) and the thread-based
  streaming front end behind ``repro serve``.
"""

from repro.serving.engine import InferenceEngine
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.server import StreamingServer
from repro.serving.session import Session, SessionRegistry, aggregate_metrics

__all__ = [
    "ContinuousBatchingScheduler",
    "InferenceEngine",
    "Session",
    "SessionRegistry",
    "StreamingServer",
    "aggregate_metrics",
]
