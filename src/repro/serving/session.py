"""Sessions: one streaming generation request, and their registry.

A :class:`Session` is the unit the continuous-batching scheduler admits,
steps, and retires.  It records everything the serving metrics need —
submit/first-token/finish timestamps and one timestamp per emitted token
— so tokens/sec and p95 per-token latency fall out of the registry
without any extra bookkeeping in the hot loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Session lifecycle states.
WAITING, ACTIVE, DONE = "waiting", "active", "done"


@dataclass
class Session:
    """One generation request.

    Attributes:
        sid: registry-assigned id (also the KV-cache session key).
        prompt: 1-D int token ids.
        max_new_tokens: generation budget.
        eos_id: optional stop token.
        state: ``waiting`` -> ``active`` -> ``done``.
        generated: tokens emitted so far.
        submitted_at / first_token_at / finished_at: perf-counter
            timestamps.
        token_times: one perf-counter stamp per generated token.
    """

    sid: int
    prompt: np.ndarray
    max_new_tokens: int
    eos_id: Optional[int] = None
    state: str = WAITING
    generated: List[int] = field(default_factory=list)
    submitted_at: float = field(default_factory=time.perf_counter)
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    token_times: List[float] = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        """Prompt plus budget: the KV footprint admission must reserve."""
        return len(self.prompt) + self.max_new_tokens

    @property
    def done(self) -> bool:
        return self.state == DONE

    def record_token(self, token: int) -> None:
        now = time.perf_counter()
        if self.first_token_at is None:
            self.first_token_at = now
        self.generated.append(int(token))
        self.token_times.append(now)

    def token_latencies(self) -> List[float]:
        """Seconds between consecutive emissions (first is vs submit)."""
        if not self.token_times:
            return []
        stamps = [self.submitted_at] + self.token_times
        return [b - a for a, b in zip(stamps, stamps[1:])]


class SessionRegistry:
    """Thread-safe id assignment and lifecycle index for sessions."""

    def __init__(self):
        self._lock = threading.Lock()
        self._next = 0
        self._all: Dict[int, Session] = {}
        self._waiting: List[int] = []

    def create(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        eos_id: Optional[int] = None,
    ) -> Session:
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        with self._lock:
            sid = self._next
            self._next += 1
            s = Session(sid, prompt, max_new_tokens, eos_id)
            self._all[sid] = s
            self._waiting.append(sid)
        return s

    def get(self, sid: int) -> Session:
        return self._all[sid]

    def take_waiting(self, limit: int) -> List[Session]:
        """Pop up to ``limit`` waiting sessions, FIFO."""
        with self._lock:
            picked, self._waiting = (
                self._waiting[:limit], self._waiting[limit:]
            )
            return [self._all[sid] for sid in picked]

    def requeue(self, session: Session) -> None:
        """Return an un-admittable session to the head of the queue."""
        with self._lock:
            self._waiting.insert(0, session.sid)

    @property
    def waiting(self) -> int:
        with self._lock:
            return len(self._waiting)

    def sessions(self) -> Tuple[Session, ...]:
        with self._lock:
            return tuple(self._all.values())


def aggregate_metrics(sessions) -> Dict[str, float]:
    """Fleet metrics over finished (or partially finished) sessions.

    Returns tokens generated, wall seconds (first submit to last
    emission), aggregate tokens/sec, and the p50/p95 per-token latency
    in milliseconds across every inter-token gap of every session.
    """
    sessions = [s for s in sessions if s.token_times]
    if not sessions:
        return {
            "sessions": 0, "tokens": 0, "wall_s": 0.0,
            "tokens_per_sec": 0.0, "p50_token_ms": 0.0,
            "p95_token_ms": 0.0, "ttft_ms": 0.0,
        }
    tokens = sum(len(s.generated) for s in sessions)
    start = min(s.submitted_at for s in sessions)
    end = max(s.token_times[-1] for s in sessions)
    wall = max(end - start, 1e-9)
    lat = np.array(
        [g for s in sessions for g in s.token_latencies()], dtype=np.float64
    )
    ttft = np.array(
        [s.first_token_at - s.submitted_at for s in sessions
         if s.first_token_at is not None],
        dtype=np.float64,
    )
    return {
        "sessions": len(sessions),
        "tokens": tokens,
        "wall_s": wall,
        "tokens_per_sec": tokens / wall,
        "p50_token_ms": float(np.percentile(lat, 50) * 1e3),
        "p95_token_ms": float(np.percentile(lat, 95) * 1e3),
        "ttft_ms": float(np.mean(ttft) * 1e3) if ttft.size else 0.0,
    }
