"""Thread-based streaming front end over the continuous-batching loop.

One background thread owns the engine and runs scheduler steps; client
threads :meth:`~StreamingServer.submit` prompts and consume
:meth:`~StreamingServer.stream` generators that block on a per-session
queue — tokens flow out as each engine step lands, many sessions
concurrently.  ``repro serve`` is a thin CLI shell around this class.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Iterator, Optional

import numpy as np

from repro.serving.engine import InferenceEngine
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.session import SessionRegistry, aggregate_metrics

#: Queue sentinel closing a stream.
_EOS = object()


class StreamingServer:
    """Serve streaming generations from many concurrent clients.

    Args:
        engine: the batched inference engine (server takes ownership:
            :meth:`close` closes it).
        max_batch: concurrent sessions per engine step.

    Usage::

        server = StreamingServer(InferenceEngine(model))
        server.start()
        sid = server.submit(prompt, max_new_tokens=32)
        for token in server.stream(sid):
            ...
        server.close()
    """

    def __init__(self, engine: InferenceEngine, max_batch: int = 8):
        self.engine = engine
        self.registry = SessionRegistry()
        self.scheduler = ContinuousBatchingScheduler(
            engine, self.registry, max_batch=max_batch
        )
        self._queues: Dict[int, "queue.SimpleQueue"] = {}
        self._wake = threading.Condition()
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "StreamingServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        try:
            while True:
                with self._wake:
                    while not self._stop and not self.scheduler.busy:
                        self._wake.wait(timeout=0.1)
                    if self._stop and not self.scheduler.busy:
                        return
                for session, token, done in self.scheduler.step():
                    q = self._queues.get(session.sid)
                    if q is not None:
                        q.put(token)
                        if done:
                            q.put(_EOS)
        except BaseException as exc:  # propagate to blocked clients
            self._error = exc
            for q in self._queues.values():
                q.put(_EOS)

    def close(self, drain: bool = True) -> None:
        """Stop the loop (after draining in-flight work) and close."""
        with self._wake:
            if not drain:
                # Abandon queued/live sessions: clients see EOS.
                self.registry.take_waiting(self.registry.waiting)
                self.scheduler.active = []
            self._stop = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if not drain:
            for q in self._queues.values():
                q.put(_EOS)
        self.engine.close()

    def __enter__(self) -> "StreamingServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- client API ------------------------------------------------------

    def submit(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        eos_id: Optional[int] = None,
    ) -> int:
        """Queue a generation request; returns the session id."""
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        limit = self.engine.spec.max_seq
        if len(prompt) >= limit:
            raise ValueError(
                f"prompt of {len(prompt)} tokens leaves no room to "
                f"generate (max_seq {limit})"
            )
        max_new_tokens = min(max_new_tokens, limit - len(prompt))
        session = self.registry.create(prompt, max_new_tokens, eos_id)
        self._queues[session.sid] = queue.SimpleQueue()
        with self._wake:
            self._wake.notify_all()
        return session.sid

    def stream(self, sid: int) -> Iterator[int]:
        """Yield generated tokens for a session; ends at completion."""
        q = self._queues[sid]
        while True:
            item = q.get()
            if item is _EOS:
                if self._error is not None:
                    raise RuntimeError(
                        "serving loop failed"
                    ) from self._error
                return
            yield item

    def result(self, sid: int) -> list:
        """Convenience: block until done, return all tokens."""
        return list(self.stream(sid))

    def metrics(self) -> Dict[str, float]:
        """Aggregate fleet metrics (see :func:`aggregate_metrics`)."""
        return aggregate_metrics(self.registry.sessions())
