"""The batched inference engine: quantized weights + paged KV-cache.

One :meth:`InferenceEngine.step` advances a *mixed* batch — prompts
being prefilled (many tokens) and live sessions decoding (one token
each) in the same forward.  All sessions' new tokens are stacked into a
single ``(T, hidden)`` matrix so every linear runs once per layer over
the whole batch (through the fused int8 ``qmatmul`` when quantized);
only attention is per-session, against that session's paged K/V history.

Weights are packed once at construction into a
:class:`~repro.numeric.lowprec.QuantizedStore` — token embedding, QKV,
projection, both MLP planes, and the LM head all go int8; LayerNorm
gains/biases, the positional table, and linear biases stay fp32 (they
are a rounding error of the footprint).  ``memory_ratio`` reports the
resulting whole-model compression against fp32.

Tracing: each step opens a ``serve_step`` window (the serving twin of
``train_step``); per-session attention work is wrapped in ``prefill`` /
``decode`` spans, quantized linears in ``dequant`` spans, and the cache
emits ``kv_evict`` / ``kv_restore`` — so a profiled serving run
partitions into exactly the phase taxonomy ``repro profile`` prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import tune
from repro.exec.ops import parallel_qmatmul
from repro.exec.pool import KernelPool, get_pool
from repro.numeric.layers import LayerNorm, gelu
from repro.numeric.lowprec import QuantizedStore
from repro.numeric.transformer import TinyTransformer
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.kvcache import PagedKVCache, paged_attention
from repro.tune.registry import default as _registry_default

#: Authored default quantization group size; live value resolved through
#: ``tune.value("quant.group_size", ...)`` when the engine packs weights.
GROUP_SIZE = _registry_default("quant.group_size")

#: A step's work list: ``(session id, new token ids)`` — the whole
#: prompt for a prefill, a single token for a decode.
WorkItem = Tuple[int, np.ndarray]


class InferenceEngine:
    """Continuous-batching forward over a (optionally) quantized model.

    Args:
        model: the source :class:`TinyTransformer` (its fp32 parameters
            are read once; the engine does not mutate the model).
        quantized: pack weight planes to int8 and run linears through
            the fused ``qmatmul`` (False = fp32 reference engine, same
            batching and cache, used as the bench A/B twin).
        group_size: int8 quantization group; defaults to the tuned
            ``quant.group_size``.
        max_pages / page_tokens / spill / spill_pages: paged KV-cache
            geometry (see :class:`PagedKVCache`).
        pool: kernel pool for the qmatmul column fan-out.
        telemetry: tracing/metrics sink shared with the cache.
    """

    def __init__(
        self,
        model: TinyTransformer,
        quantized: bool = True,
        group_size: Optional[int] = None,
        max_pages: Optional[int] = None,
        page_tokens: Optional[int] = None,
        spill: Optional[str] = None,
        spill_pages: Optional[int] = None,
        pool: Optional[KernelPool] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.model = model
        self.spec = model.spec
        self.params = model.params
        self.pool = pool
        self.telemetry = telemetry
        self.quantized = quantized
        self.group_size = (
            group_size if group_size is not None
            else tune.value("quant.group_size", GROUP_SIZE)
        )
        spec = self.spec
        self.store: Optional[QuantizedStore] = None
        if quantized:
            names = ["tok_emb", "head.w"]
            for i in range(spec.n_layers):
                names += [
                    f"h{i}.qkv.w", f"h{i}.proj.w",
                    f"h{i}.fc1.w", f"h{i}.fc2.w",
                ]
            self.store = QuantizedStore.pack(
                [(n, self.params[n]) for n in names], self.group_size
            )
        self.cache = PagedKVCache(
            spec.n_layers,
            spec.n_heads,
            spec.hidden // spec.n_heads,
            page_tokens=page_tokens,
            max_pages=max_pages,
            spill=spill,
            spill_pages=spill_pages,
            telemetry=telemetry,
        )
        self._steps = 0

    # -- memory accounting ----------------------------------------------

    @property
    def fp32_bytes(self) -> int:
        """fp32 footprint of the full parameter set."""
        return sum(p.nbytes for p in self.params.values())

    @property
    def model_bytes(self) -> int:
        """Actual parameter bytes the engine holds resident."""
        if self.store is None:
            return self.fp32_bytes
        packed = {*self.store.names()}
        leftover = sum(
            p.nbytes for n, p in self.params.items() if n not in packed
        )
        return self.store.nbytes + leftover

    @property
    def memory_ratio(self) -> float:
        """Whole-model compression vs fp32 (>= 1.0; ~3.7x at group 64)."""
        return self.fp32_bytes / self.model_bytes

    # -- quantized primitives -------------------------------------------

    def _linear(self, name: str, x: np.ndarray) -> np.ndarray:
        bias = self.params[f"{name}.b"]
        if self.store is not None:
            with self.telemetry.tracer.span("dequant", category="quant"):
                return parallel_qmatmul(
                    x, self.store.get(f"{name}.w"), bias, pool=self.pool
                )
        return x @ self.params[f"{name}.w"] + bias

    def _embed(self, ids: np.ndarray) -> np.ndarray:
        if self.store is not None:
            return self.store.get("tok_emb").dequantize_rows(ids)
        return self.params["tok_emb"][ids]

    # -- the batched step ------------------------------------------------

    def step(self, items: Sequence[WorkItem]) -> List[Tuple[int, int]]:
        """One mixed prefill+decode forward over ``items``.

        Every item's new tokens are embedded into one stacked ``(T,
        hidden)`` matrix; linears run batched, attention runs
        per-session against the paged cache (appending the new K/V
        first, so prefill and decode are one code path).  The LM head
        runs only on each session's final row.

        Returns:
            ``(session, next_token)`` per item, greedy argmax.  Token
            choice is bitwise-deterministic for a fixed work list and
            worker count — and across worker counts, because every
            matmul's tile decomposition is worker-independent.
        """
        if not items:
            return []
        tracer = self.telemetry.tracer
        self._steps += 1
        with tracer.span("serve_step", category="step",
                         iteration=self._steps):
            return self._step_inner(items)

    def _step_inner(
        self, items: Sequence[WorkItem]
    ) -> List[Tuple[int, int]]:
        tracer = self.telemetry.tracer
        spec = self.spec
        heads = spec.n_heads
        h = spec.hidden
        d = h // heads
        p = self.params
        sizes = [len(ids) for _, ids in items]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])
        pasts = []
        x = np.empty((total, h), dtype=np.float32)
        for (sid, ids), off, t in zip(items, offsets, sizes):
            ids = np.asarray(ids).reshape(-1)
            past = self.cache.tokens(sid)
            if past + t > spec.max_seq:
                raise ValueError(
                    f"session {sid} at {past}+{t} tokens exceeds "
                    f"max_seq {spec.max_seq}"
                )
            pasts.append(past)
            x[off:off + t] = self._embed(ids) + p["pos_emb"][past:past + t]
        for i in range(spec.n_layers):
            ln1, _ = LayerNorm.forward(
                x, p[f"h{i}.ln1.g"], p[f"h{i}.ln1.b"], None
            )
            qkv = self._linear(f"h{i}.qkv", ln1)
            attn_out = np.empty((total, h), dtype=np.float32)
            for (sid, _), off, t, past in zip(
                items, offsets, sizes, pasts
            ):
                phase = "prefill" if t > 1 else "decode"
                with tracer.span(phase, category="serve"):
                    sl = slice(int(off), int(off) + t)
                    q, k, v = (
                        np.ascontiguousarray(
                            a.reshape(t, heads, d).transpose(1, 0, 2)
                        )
                        for a in np.split(qkv[sl], 3, axis=-1)
                    )
                    self.cache.append(sid, i, k, v)
                    o = paged_attention(
                        q, self.cache.iter_pages(sid, i), past
                    )
                    attn_out[sl] = o.transpose(1, 0, 2).reshape(t, h)
            x += self._linear(f"h{i}.proj", attn_out)
            ln2, _ = LayerNorm.forward(
                x, p[f"h{i}.ln2.g"], p[f"h{i}.ln2.b"], None
            )
            fc1 = self._linear(f"h{i}.fc1", ln2)
            x += self._linear(f"h{i}.fc2", gelu(fc1, None))
        last_rows = (offsets[1:] - 1).astype(np.int64)
        lnf, _ = LayerNorm.forward(
            x[last_rows], p["ln_f.g"], p["ln_f.b"], None
        )
        logits = self._linear("head", lnf)
        tokens = np.argmax(logits, axis=-1)
        return [
            (sid, int(tok)) for (sid, _), tok in zip(items, tokens)
        ]

    def release(self, session: int) -> None:
        """Retire a session's KV pages (scheduler calls on completion)."""
        self.cache.release(session)

    def close(self) -> None:
        self.cache.close()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def generate(
    engine: InferenceEngine,
    prompt: np.ndarray,
    max_new_tokens: int,
    session: int = 0,
    eos_id: Optional[int] = None,
) -> List[int]:
    """Single-session greedy generation (the serving-free reference).

    Drives the same engine step with a one-item work list: one prefill,
    then one decode per token.  Used by the tests to check that
    continuous batching does not change what a lone session generates.
    """
    out: List[int] = []
    (_, tok), = engine.step([(session, np.asarray(prompt))])
    out.append(tok)
    while len(out) < max_new_tokens and tok != eos_id:
        (_, tok), = engine.step([(session, np.array([tok]))])
        out.append(tok)
    engine.release(session)
    return out
