"""ASCII timeline rendering of simulator traces.

The paper communicates its scheduling arguments with timeline diagrams
(Fig. 3's ZeRO-Offload gaps, Fig. 8's STV overlap); this renders the same
view from a simulated trace so examples and debugging sessions can *see*
the overlap structure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.trace import Trace

_CATEGORY_GLYPHS = {
    "compute": "#",
    "transfer": "~",
    "optimizer": "U",
    "collective": "=",
    "cast": "c",
}
_IDLE = "."


def category_glyph(category: str) -> str:
    """Single-character glyph for a task category."""
    return _CATEGORY_GLYPHS.get(category, "?")


def render_timeline(
    trace: Trace,
    resources: Sequence[str] | None = None,
    width: int = 100,
    window: Tuple[float, float] | None = None,
) -> str:
    """Render one text row per resource over the given time window.

    Each column is a time slice of ``(t1-t0)/width`` seconds showing the
    category occupying the slice's midpoint (idle slices print ``.``).

    Args:
        trace: the simulated trace.
        resources: rows to draw (all traced resources by default).
        width: characters per row.
        window: (t0, t1) view range; full makespan by default.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    t0, t1 = window if window is not None else (0.0, trace.makespan)
    if t1 <= t0:
        raise ValueError("window must have positive length")
    rows = resources if resources is not None else trace.resources()
    dt = (t1 - t0) / width
    lines: List[str] = [
        f"timeline {t0 * 1e3:.1f} ms .. {t1 * 1e3:.1f} ms "
        f"({dt * 1e3:.2f} ms/char)   "
        + "  ".join(f"{glyph}={cat}" for cat, glyph in _CATEGORY_GLYPHS.items())
    ]
    label_width = max((len(r) for r in rows), default=0)
    for resource in rows:
        intervals = trace.intervals_on(resource)
        cells = []
        for i in range(width):
            mid = t0 + (i + 0.5) * dt
            glyph = _IDLE
            for iv in intervals:
                if iv.start <= mid < iv.finish:
                    glyph = category_glyph(iv.category)
                    break
            cells.append(glyph)
        lines.append(f"{resource.rjust(label_width)} |{''.join(cells)}|")
    return "\n".join(lines)


def utilization_summary(
    trace: Trace, window: Tuple[float, float] | None = None
) -> Dict[str, float]:
    """Per-resource busy fraction over the window (sorted by name)."""
    return {
        resource: trace.utilization(resource, window)
        for resource in trace.resources()
    }
