"""Deterministic discrete-event simulator for superchip training schedules.

Schedules are DAGs of :class:`Task` objects bound to named serial
:class:`Resource` streams (the GPU compute stream, the two C2C copy engine
directions, the Grace CPU worker pool, the network).  The engine performs
FIFO list scheduling — exactly how CUDA streams and a single-threaded
optimizer process behave — and records a :class:`Trace` from which
utilization, idle time (Figs. 4/15) and iteration latency fall out.
"""

from repro.sim.engine import ScheduleSimulator, Resource, Task
from repro.sim.trace import Interval, Trace
from repro.sim.compute import ComputeModel, gemm_efficiency
from repro.sim.collectives import CollectiveModel
from repro.sim import calibration
from repro.sim.gantt import render_timeline, utilization_summary

__all__ = [
    "Task",
    "Resource",
    "ScheduleSimulator",
    "Trace",
    "Interval",
    "ComputeModel",
    "gemm_efficiency",
    "CollectiveModel",
    "calibration",
    "render_timeline",
    "utilization_summary",
]
