"""Task-graph simulation engine.

The engine executes a topologically ordered list of tasks.  Each task owns a
duration, a resource, and dependencies; a task starts at the later of (a) the
finish time of its last dependency and (b) the time its resource becomes
free.  Within a resource, tasks run in submission order — the FIFO semantics
of a CUDA stream, a copy engine, or a dedicated optimizer thread.

This deliberately simple model is sufficient (and exact) for the static
per-iteration schedules the offloading systems produce, and it is fully
deterministic, which the tests rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import Interval, Trace

_task_counter = itertools.count()


@dataclass(eq=False)
class Task:
    """A unit of simulated work.

    Attributes:
        name: label recorded in the trace (e.g. ``"bwd.layer3"``).
        resource: name of the serial resource the task occupies.
        duration: seconds of occupancy.
        deps: tasks that must finish before this one may start.
        category: coarse label for aggregation (``"compute"``,
            ``"transfer"``, ``"optimizer"``, ``"collective"``, ...).
        earliest_start: optional wall-clock lower bound (used to model
            externally-timed arrivals).
    """

    name: str
    resource: str
    duration: float
    deps: Sequence["Task"] = field(default_factory=tuple)
    category: str = "compute"
    earliest_start: float = 0.0
    start: Optional[float] = field(default=None, init=False)
    finish: Optional[float] = field(default=None, init=False)
    _uid: int = field(default_factory=lambda: next(_task_counter), init=False)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")

    def done(self) -> bool:
        """Whether the engine has scheduled this task."""
        return self.finish is not None


class Resource:
    """A serial execution stream (FIFO)."""

    def __init__(self, name: str):
        self.name = name
        self.available_at = 0.0

    def reset(self) -> None:
        """Clear occupancy (used between independent simulations)."""
        self.available_at = 0.0


class ScheduleSimulator:
    """Runs task graphs over a fixed set of resources.

    Args:
        resource_names: the streams available to schedules.  Tasks naming an
            unregistered resource raise ``KeyError`` at run time — schedule
            builders declare their streams explicitly.
    """

    def __init__(self, resource_names: Iterable[str]):
        self.resources: Dict[str, Resource] = {
            name: Resource(name) for name in resource_names
        }
        if not self.resources:
            raise ValueError("simulator needs at least one resource")

    def add_resource(self, name: str) -> None:
        """Register an additional stream."""
        self.resources.setdefault(name, Resource(name))

    def run(self, tasks: Sequence[Task]) -> Trace:
        """Execute ``tasks`` and return the resulting trace.

        ``tasks`` must be topologically ordered (every dependency appears
        before its dependents); this is validated and violations raise
        ``ValueError``.  Task ``start``/``finish`` fields are filled in.
        """
        seen: set[int] = set()
        trace = Trace()
        for task in tasks:
            for dep in task.deps:
                if dep._uid not in seen:
                    raise ValueError(
                        f"task {task.name!r} depends on {dep.name!r}, which has "
                        "not been scheduled yet (tasks must be topologically "
                        "ordered)"
                    )
            if task._uid in seen:
                raise ValueError(f"task {task.name!r} appears twice")
            seen.add(task._uid)
            try:
                resource = self.resources[task.resource]
            except KeyError:
                raise KeyError(
                    f"task {task.name!r} uses unregistered resource "
                    f"{task.resource!r}; registered: {sorted(self.resources)}"
                ) from None
            ready = max(
                (dep.finish for dep in task.deps),
                default=0.0,
            )
            start = max(ready, resource.available_at, task.earliest_start)
            task.start = start
            task.finish = start + task.duration
            resource.available_at = task.finish
            trace.record(
                Interval(
                    resource=task.resource,
                    name=task.name,
                    category=task.category,
                    start=start,
                    finish=task.finish,
                )
            )
        # FIFO streams can never overlap themselves; validating here turns
        # any future scheduling bug into a loud error instead of silently
        # double-counted busy time in the Fig. 4/15 idle fractions.
        trace.validate()
        return trace

    def reset(self) -> None:
        """Free all resources for a fresh simulation."""
        for resource in self.resources.values():
            resource.reset()


def chain(tasks: Sequence[Task]) -> List[Task]:
    """Serialize ``tasks`` by adding each as a dependency of the next.

    A convenience for schedule builders expressing strictly ordered phases.
    Returns the same list for fluent use.
    """
    for prev, nxt in zip(tasks, tasks[1:]):
        nxt.deps = tuple(nxt.deps) + (prev,)
    return list(tasks)
