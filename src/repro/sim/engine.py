"""Task-graph simulation engine.

The engine executes a topologically ordered list of tasks.  Each task owns a
duration, a resource, and dependencies; a task starts at the later of (a) the
finish time of its last dependency and (b) the time its resource becomes
free.  Within a resource, tasks run in submission order — the FIFO semantics
of a CUDA stream, a copy engine, or a dedicated optimizer thread.

This deliberately simple model is sufficient (and exact) for the static
per-iteration schedules the offloading systems produce, and it is fully
deterministic, which the tests rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.trace import Interval, Trace

_task_counter = itertools.count()


@dataclass(eq=False)
class Task:
    """A unit of simulated work.

    Attributes:
        name: label recorded in the trace (e.g. ``"bwd.layer3"``).
        resource: name of the serial resource the task occupies.
        duration: seconds of occupancy.
        deps: tasks that must finish before this one may start.
        category: coarse label for aggregation (``"compute"``,
            ``"transfer"``, ``"optimizer"``, ``"collective"``, ...).
        earliest_start: optional wall-clock lower bound (used to model
            externally-timed arrivals).
    """

    name: str
    resource: str
    duration: float
    deps: Sequence["Task"] = field(default_factory=tuple)
    category: str = "compute"
    earliest_start: float = 0.0
    start: Optional[float] = field(default=None, init=False)
    finish: Optional[float] = field(default=None, init=False)
    _uid: int = field(default_factory=lambda: next(_task_counter), init=False)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")

    def done(self) -> bool:
        """Whether the engine has scheduled this task."""
        return self.finish is not None


class Resource:
    """A serial execution stream (FIFO)."""

    def __init__(self, name: str):
        self.name = name
        self.available_at = 0.0

    def reset(self) -> None:
        """Clear occupancy (used between independent simulations)."""
        self.available_at = 0.0


class ScheduleSimulator:
    """Runs task graphs over a fixed set of resources.

    Args:
        resource_names: the streams available to schedules.  Tasks naming an
            unregistered resource raise ``KeyError`` at run time — schedule
            builders declare their streams explicitly.
    """

    def __init__(self, resource_names: Iterable[str]):
        self.resources: Dict[str, Resource] = {
            name: Resource(name) for name in resource_names
        }
        if not self.resources:
            raise ValueError("simulator needs at least one resource")

    def add_resource(self, name: str) -> None:
        """Register an additional stream."""
        self.resources.setdefault(name, Resource(name))

    def run(self, tasks: Sequence[Task]) -> Trace:
        """Execute ``tasks`` and return the resulting trace.

        ``tasks`` must be topologically ordered (every dependency appears
        before its dependents); this is validated and violations raise
        ``ValueError``.  Task ``start``/``finish`` fields are filled in.
        """
        seen: set[int] = set()
        trace = Trace()
        for task in tasks:
            for dep in task.deps:
                if dep._uid not in seen:
                    raise ValueError(
                        f"task {task.name!r} depends on {dep.name!r}, which has "
                        "not been scheduled yet (tasks must be topologically "
                        "ordered)"
                    )
            if task._uid in seen:
                raise ValueError(f"task {task.name!r} appears twice")
            seen.add(task._uid)
            try:
                resource = self.resources[task.resource]
            except KeyError:
                raise KeyError(
                    f"task {task.name!r} uses unregistered resource "
                    f"{task.resource!r}; registered: {sorted(self.resources)}"
                ) from None
            ready = max(
                (dep.finish for dep in task.deps),
                default=0.0,
            )
            start = max(ready, resource.available_at, task.earliest_start)
            task.start = start
            task.finish = start + task.duration
            resource.available_at = task.finish
            trace.record(
                Interval(
                    resource=task.resource,
                    name=task.name,
                    category=task.category,
                    start=start,
                    finish=task.finish,
                )
            )
        # FIFO streams can never overlap themselves; validating here turns
        # any future scheduling bug into a loud error instead of silently
        # double-counted busy time in the Fig. 4/15 idle fractions.
        trace.validate()
        return trace

    def reset(self) -> None:
        """Free all resources for a fresh simulation."""
        for resource in self.resources.values():
            resource.reset()


# -- 1F1B pipeline timelines -------------------------------------------------
#
# The plan-aware timeline: the same task-graph builder serves the
# simulator's *predicted* pipeline schedule (modeled stage durations from
# the systems' cost models) and the substrate's *measured* replay (wall
# durations recorded by repro.parallel.pipeline's serial 1F1B executor,
# re-laid-out as if the stages ran on parallel resources).  Comparing the
# two bubble fractions is the pipeline counterpart of the phase-share
# sim cross-check.


def ideal_1f1b_bubble(n_stages: int, n_microbatches: int) -> float:
    """The analytic 1F1B bubble fraction ``(p-1)/(m+p-1)``.

    Exact for uniform stage durations; the simulated and measured
    fractions converge to it as stages balance.
    """
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    return (n_stages - 1) / (n_microbatches + n_stages - 1)


def stage_op_order(
    n_stages: int, n_microbatches: int, stage: int
) -> List[tuple]:
    """The 1F1B op sequence ``[("F", j) | ("B", j), ...]`` for one stage.

    Warmup runs ``min(m, p-1-stage)`` forwards, the steady phase
    alternates one-forward-one-backward, and the drain retires the
    remaining backwards — the classic schedule whose per-stage backward
    order is ``0, 1, ..., m-1`` (the property the bitwise gradient
    equivalence gate relies on).
    """
    p, m = n_stages, n_microbatches
    if not 0 <= stage < p:
        raise ValueError(f"stage {stage} out of range for {p} stages")
    warmup = min(m, p - 1 - stage)
    ops: List[tuple] = [("F", j) for j in range(warmup)]
    nf, nb = warmup, 0
    while nf < m:
        ops.append(("F", nf))
        nf += 1
        ops.append(("B", nb))
        nb += 1
    while nb < m:
        ops.append(("B", nb))
        nb += 1
    return ops


def build_1f1b_tasks(
    n_stages: int,
    n_microbatches: int,
    fwd_time,
    bwd_time,
    send_time: float = 0.0,
    iteration: int = 0,
    prefix: str = "pp",
    deps_head: Sequence[Task] = (),
) -> List[Task]:
    """Topologically ordered tasks of one 1F1B pipeline iteration.

    Resources: one ``{prefix}.stage{s}`` stream per stage plus one
    ``{prefix}.link{s}`` stream per adjacent boundary (activations
    forward and gradients backward share it).  Within a stage the 1F1B
    op order is enforced by FIFO submission order.

    Args:
        fwd_time, bwd_time: seconds per op — a float, or a callable
            ``(stage, microbatch) -> seconds`` (the measured replay).
        send_time: per-hop point-to-point seconds.
        deps_head: dependencies of each stage's first op (chains
            iterations).
    """
    p, m = n_stages, n_microbatches
    ft = fwd_time if callable(fwd_time) else (lambda s, j: fwd_time)
    bt = bwd_time if callable(bwd_time) else (lambda s, j: bwd_time)
    orders = [stage_op_order(p, m, s) for s in range(p)]
    pointers = [0] * p
    sent_f: Dict[tuple, Task] = {}
    sent_b: Dict[tuple, Task] = {}
    fwd_tasks: Dict[tuple, Task] = {}
    tasks: List[Task] = []
    remaining = sum(len(o) for o in orders)
    while remaining:
        progressed = False
        for s in range(p):
            if pointers[s] >= len(orders[s]):
                continue
            kind, j = orders[s][pointers[s]]
            deps: List[Task] = list(deps_head) if pointers[s] == 0 else []
            if kind == "F":
                if s > 0:
                    upstream = sent_f.get((s - 1, j))
                    if upstream is None:
                        continue
                    deps.append(upstream)
                task = Task(
                    f"it{iteration}.{prefix}.fwd.s{s}.m{j}",
                    f"{prefix}.stage{s}", ft(s, j),
                    deps=tuple(deps), category="compute",
                )
                tasks.append(task)
                fwd_tasks[(s, j)] = task
                if s < p - 1:
                    send = Task(
                        f"it{iteration}.{prefix}.send_f.s{s}.m{j}",
                        f"{prefix}.link{s}", send_time,
                        deps=(task,), category="pp_comm",
                    )
                    tasks.append(send)
                    sent_f[(s, j)] = send
            else:
                if s < p - 1:
                    downstream = sent_b.get((s + 1, j))
                    if downstream is None:
                        continue
                    deps.append(downstream)
                deps.append(fwd_tasks[(s, j)])
                task = Task(
                    f"it{iteration}.{prefix}.bwd.s{s}.m{j}",
                    f"{prefix}.stage{s}", bt(s, j),
                    deps=tuple(deps), category="compute",
                )
                tasks.append(task)
                if s > 0:
                    send = Task(
                        f"it{iteration}.{prefix}.send_b.s{s}.m{j}",
                        f"{prefix}.link{s - 1}", send_time,
                        deps=(task,), category="pp_comm",
                    )
                    tasks.append(send)
                    sent_b[(s, j)] = send
            pointers[s] += 1
            remaining -= 1
            progressed = True
        if not progressed:
            raise RuntimeError("1F1B emission deadlocked (builder bug)")
    return tasks


def pipeline_bubble_fraction(
    trace: Trace, n_stages: int, prefix: str = "pp"
) -> float:
    """Aggregate stage idle share of a 1F1B trace.

    ``1 - Σ_s busy_s / (p * span)`` over the window from the first stage
    task's start to the last one's finish — the standard pipeline-bubble
    definition, comparable across the predicted and measured timelines.
    """
    resources = [f"{prefix}.stage{s}" for s in range(n_stages)]
    intervals = [iv for r in resources for iv in trace.intervals_on(r)]
    if not intervals:
        return 0.0
    t0 = min(iv.start for iv in intervals)
    t1 = max(iv.finish for iv in intervals)
    span = t1 - t0
    if span <= 0:
        return 0.0
    busy = sum(trace.busy_time(r, (t0, t1)) for r in resources)
    return max(0.0, 1.0 - busy / (n_stages * span))


def chain(tasks: Sequence[Task]) -> List[Task]:
    """Serialize ``tasks`` by adding each as a dependency of the next.

    A convenience for schedule builders expressing strictly ordered phases.
    Returns the same list for fluent use.
    """
    for prev, nxt in zip(tasks, tasks[1:]):
        nxt.deps = tuple(nxt.deps) + (prev,)
    return list(tasks)
