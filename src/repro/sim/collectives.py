"""Collective communication cost models.

Standard bandwidth-optimal ring/pairwise algorithms over the cluster's
bottleneck link: the multi-superchip experiments (§5.2, §5.3) are governed
by all-reduce (DDP), reduce-scatter + all-gather (ZeRO), and all-to-all
(Ulysses sequence parallelism) volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import ClusterTopology
from repro.sim import calibration


@dataclass(frozen=True)
class CollectiveModel:
    """Prices collectives over a cluster topology.

    Args:
        topology: the participating cluster.
    """

    topology: ClusterTopology
    hierarchical: bool = True

    def _bottleneck(self, participants: int | None = None) -> float:
        """Effective per-rank bandwidth for a collective.

        A collective confined to one node (``participants`` <= GPUs per
        node) rides the intra-node fabric; anything wider is bottlenecked
        by the inter-node network.
        """
        per_node = self.topology.node.n_superchips
        if participants is not None and participants <= per_node:
            link = self.topology.node.gpu_link.link.peak_bandwidth
        else:
            link = self.topology.slowest_link_bandwidth()
        return link * calibration.COLLECTIVE_EFFICIENCY

    def _reduction_time(self, nbytes: int, p: int, phases: int) -> float:
        """Hierarchical (NCCL-style two-level) reduction cost.

        With ``hierarchical`` enabled and a multi-node collective, the
        intra-node phase reduces/gathers over NVLink and only the
        inter-node phase (one rank per node, 1/K of the data each) crosses
        the network — the standard NCCL tree/hierarchical-ring behaviour.
        ``phases`` is 1 for reduce-scatter/all-gather and 2 for all-reduce.
        """
        per_node = self.topology.node.n_superchips
        n_nodes = max(1, p // per_node) if p > per_node else 1
        if not self.hierarchical or p <= per_node or n_nodes <= 1:
            volume = phases * (p - 1) / p * nbytes
            return calibration.COLLECTIVE_LATENCY + volume / self._bottleneck(p)
        intra_bw = (self.topology.node.gpu_link.link.peak_bandwidth
                    * calibration.COLLECTIVE_EFFICIENCY)
        inter_bw = (self.topology.network.link.peak_bandwidth
                    * calibration.COLLECTIVE_EFFICIENCY)
        # intra-node phase over the full buffer, inter-node phase over the
        # per-node shard; the two directions (scatter + gather) both occur
        # for each `phase`.
        intra = phases * (per_node - 1) / per_node * nbytes / intra_bw
        inter = (phases * (n_nodes - 1) / n_nodes * (nbytes / per_node)
                 / inter_bw)
        return 2 * calibration.COLLECTIVE_LATENCY + intra + inter

    def all_reduce(self, nbytes: int, participants: int | None = None) -> float:
        """Ring all-reduce of ``nbytes`` per rank: 2(p-1)/p x volume."""
        p = participants or self.topology.world_size
        if p <= 1:
            return 0.0
        return self._reduction_time(nbytes, p, phases=2)

    def reduce_scatter(self, nbytes: int, participants: int | None = None) -> float:
        """Ring reduce-scatter of ``nbytes`` (full tensor size) per rank."""
        p = participants or self.topology.world_size
        if p <= 1:
            return 0.0
        return self._reduction_time(nbytes, p, phases=1)

    def all_gather(self, nbytes: int, participants: int | None = None) -> float:
        """Ring all-gather producing ``nbytes`` (full tensor size) per rank."""
        p = participants or self.topology.world_size
        if p <= 1:
            return 0.0
        return self._reduction_time(nbytes, p, phases=1)

    def all_to_all(self, nbytes: int, participants: int | None = None) -> float:
        """Pairwise all-to-all where each rank holds ``nbytes`` total.

        Each rank sends (p-1)/p of its buffer; Ulysses issues this around
        every attention block (§4.7).
        """
        p = participants or self.topology.world_size
        if p <= 1:
            return 0.0
        volume = (p - 1) / p * nbytes
        return calibration.COLLECTIVE_LATENCY + volume / self._bottleneck(p)

    def broadcast(self, nbytes: int, participants: int | None = None) -> float:
        """Tree/chain broadcast of ``nbytes``."""
        p = participants or self.topology.world_size
        if p <= 1:
            return 0.0
        return calibration.COLLECTIVE_LATENCY + nbytes / self._bottleneck(p)
