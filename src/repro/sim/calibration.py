"""Central calibration constants for the performance simulator.

Every tunable that anchors the simulator to the paper's measurements lives
here, with the measurement it is calibrated against.  Keeping them in one
module makes the calibration auditable and lets the ablation/benchmark
harnesses document exactly what was fitted versus what is derived.
"""

from __future__ import annotations

# --- GEMM efficiency curve (paper §4.2 "achievable peak", Fig. 6) ----------
# Fraction of a device's achievable peak that dense transformer kernels
# sustain, as a function of tokens per micro-batch and hidden size.  The
# half-saturation constants reproduce the measured end-to-end numbers:
# SuperOffload on a 5B model (hidden 3072) at batch 8 x seq 1024 lands at
# ~239 TFLOPS (Table 2 / Fig. 10).
GEMM_TOKENS_HALF = 4096.0
GEMM_HIDDEN_HALF = 2048.0

# Flash-style attention kernels sustain this fraction of the *theoretical*
# tensor-core peak (H100 flash-attention reality).  With full activation
# checkpointing (recompute = 4/3) this yields the 55% MFU the paper reports
# for 1M-token SuperOffload-Ulysses (§5.3): 0.74 * 3/4 = 0.555.
ATTENTION_MFU = 0.74

# --- Adam kernel efficiencies (calibrated to Table 3) -----------------------
# The optimizer step is memory-bandwidth-bound on the Grace CPU: it streams
# grad (fp32), m, v, master fp32 (read+write) and writes the fp16 copy —
# ~30 bytes/param of traffic, padded to 32 for streaming inefficiency.
# Efficiency = fraction of DDR bandwidth each implementation sustains.
ADAM_BYTES_PER_PARAM = 32
ADAM_KERNEL_EFFICIENCY = {
    # ARM SVE + tiling + OpenMP (§4.6): 0.082 s/B-param on Grace => 80% DDR.
    "grace_adam": 0.80,
    # DeepSpeed CPU-Adam compiled for ARM without SVE tuning: 1.36x slower
    # than GraceAdam (Table 3).
    "cpu_adam": 0.59,
    # PyTorch native (unfused foreach ops, extra temporaries): >3x slower
    # than GraceAdam (Table 3).
    "pt_cpu": 0.26,
    # PyTorch native over per-parameter (non-flattened) tensors, as driven
    # by FSDP's CPU offload: allocator churn + tiny tensors defeat
    # vectorization and threading (§5.2: FSDP-Offload < 15 TFLOPS).
    "pt_cpu_per_tensor": 0.02,
}

# GPU-side Adam traffic runs at a fraction of HBM bandwidth.
ADAM_GPU_EFFICIENCY = 0.65

# --- Offloading framework behaviour -----------------------------------------
# ZeRO-Offload / SuperOffload bucket size: the Fig. 7 saturation point.
BUCKET_BYTES = 64 * 1024**2

# ZeRO-Infinity moves parameters/gradients at sub-module granularity; its
# effective chunk lands far left of the Fig. 7 saturation knee (§5.2 "as low
# as 50 GB/s").
ZERO_INFINITY_CHUNK_BYTES = 2 * 1024**2
# Fraction of ZeRO-Infinity transfer time hidden by its prefetch pipeline.
ZERO_INFINITY_OVERLAP = 0.35
# Per-swap bookkeeping (partition management, Python hooks), seconds.
ZERO_INFINITY_SWAP_OVERHEAD = 200e-6

# FSDP CPU offload: synchronous per-FlatParameter transfers of FP32 payloads
# through pageable memory, plus a per-module synchronization cost.
FSDP_CHUNK_BYTES = 16 * 1024**2
FSDP_MODULE_SYNC_OVERHEAD = 3e-3

# Per-micro-batch framework overhead common to all PyTorch-based systems
# (dataloader, autograd bookkeeping, launch gaps), seconds.
MICROBATCH_OVERHEAD = 4e-3

# Activation checkpointing recompute factor: recomputing the forward during
# backward adds one extra forward (paper cites ~33% throughput cost).
CHECKPOINT_RECOMPUTE_FACTOR = 4.0 / 3.0

# --- Memory model ------------------------------------------------------------
# Bytes reserved on each device for context/framework (see topology defaults).
GPU_RESERVED_BYTES = 2 * 1024**3
# Host reserve: OS, framework, page cache, and NCCL/NVLink buffers.
CPU_RESERVED_BYTES = 20 * 1024**3

# Temporary/workspace headroom fraction required on the GPU beyond steady
# state allocations (cuBLAS workspaces, fragmentation slack).
GPU_HEADROOM_FRACTION = 0.04

# --- Collectives -------------------------------------------------------------
# Achievable fraction of link bandwidth for ring/all-to-all collectives.
COLLECTIVE_EFFICIENCY = 0.80
# Per-collective launch latency, seconds.
COLLECTIVE_LATENCY = 30e-6
