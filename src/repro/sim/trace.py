"""Execution traces and utilization accounting.

The paper's idle-time figures (Fig. 4: 40–50% GPU idle under ZeRO-Offload;
Fig. 15: near-zero idle under SuperOffload) are both resource-utilization
queries over an iteration window; :class:`Trace` answers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Interval:
    """One task occupancy on one resource."""

    resource: str
    name: str
    category: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Trace:
    """An append-only record of scheduled intervals."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []

    def record(self, interval: Interval) -> None:
        """Append one interval."""
        self.intervals.append(interval)

    @property
    def makespan(self) -> float:
        """Finish time of the last interval (0.0 for an empty trace)."""
        return max((iv.finish for iv in self.intervals), default=0.0)

    def intervals_on(self, resource: str) -> List[Interval]:
        """Intervals on one resource, in start order."""
        return sorted(
            (iv for iv in self.intervals if iv.resource == resource),
            key=lambda iv: iv.start,
        )

    def validate(self) -> None:
        """Reject overlapping occupancies on any (serial) resource.

        Every resource in this model is a serial stream, so two intervals
        on the same resource may touch (``prev.finish == next.start``) but
        never overlap — :meth:`busy_time` silently double-counts overlaps,
        which would corrupt the Fig. 4/15 idle fractions.  Zero-length
        intervals are allowed anywhere.  Raises ``ValueError`` on the
        first violation.
        """
        for resource in self.resources():
            frontier: Interval | None = None
            for iv in self.intervals_on(resource):
                if iv.duration <= 0:
                    continue
                if frontier is not None and iv.start < frontier.finish:
                    raise ValueError(
                        f"overlapping intervals on serial resource "
                        f"{resource!r}: {frontier.name!r} "
                        f"[{frontier.start}, {frontier.finish}) overlaps "
                        f"{iv.name!r} [{iv.start}, {iv.finish})"
                    )
                if frontier is None or iv.finish > frontier.finish:
                    frontier = iv

    def busy_time(
        self, resource: str, window: Tuple[float, float] | None = None
    ) -> float:
        """Seconds the resource is occupied within ``window``.

        Intervals on a serial resource never overlap, so the busy time is the
        sum of clipped durations.
        """
        t0, t1 = window if window is not None else (0.0, self.makespan)
        total = 0.0
        for iv in self.intervals_on(resource):
            lo, hi = max(iv.start, t0), min(iv.finish, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(
        self, resource: str, window: Tuple[float, float] | None = None
    ) -> float:
        """Busy fraction of the resource over ``window`` (0 if empty window)."""
        t0, t1 = window if window is not None else (0.0, self.makespan)
        span = t1 - t0
        if span <= 0:
            return 0.0
        return self.busy_time(resource, (t0, t1)) / span

    def idle_fraction(
        self, resource: str, window: Tuple[float, float] | None = None
    ) -> float:
        """1 − utilization: the quantity plotted in Figs. 4 and 15."""
        return 1.0 - self.utilization(resource, window)

    def idle_gaps(self, resource: str) -> List[Tuple[float, float]]:
        """Maximal idle intervals between the first and last occupancy."""
        ivs = self.intervals_on(resource)
        gaps: List[Tuple[float, float]] = []
        for prev, nxt in zip(ivs, ivs[1:]):
            if nxt.start > prev.finish:
                gaps.append((prev.finish, nxt.start))
        return gaps

    def time_by_category(self, resource: str) -> Dict[str, float]:
        """Total busy seconds per category label on one resource."""
        out: Dict[str, float] = {}
        for iv in self.intervals_on(resource):
            out[iv.category] = out.get(iv.category, 0.0) + iv.duration
        return out

    def resources(self) -> List[str]:
        """Names of all resources that appear in the trace."""
        return sorted({iv.resource for iv in self.intervals})
