"""Compute-kernel timing models.

Converts FLOP counts into simulated seconds for a given device, including
the shape-dependent GEMM efficiency the paper's analysis leans on: small
micro-batches (tokens) and small hidden sizes underfeed the tensor cores,
which is exactly why activation-checkpointing-free large batches — enabled
by offloading model states — win (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import DeviceSpec
from repro.sim import calibration


def gemm_efficiency(
    tokens: int,
    hidden: int,
    tokens_half: float = calibration.GEMM_TOKENS_HALF,
    hidden_half: float = calibration.GEMM_HIDDEN_HALF,
) -> float:
    """Fraction of achievable peak sustained by transformer GEMMs.

    A product of two saturating terms: one in tokens per micro-batch (the
    GEMM M dimension) and one in hidden size (the N/K dimensions).

    Args:
        tokens: micro-batch size x sequence length.
        hidden: model hidden dimension.
    """
    if tokens <= 0 or hidden <= 0:
        raise ValueError("tokens and hidden must be positive")
    return (tokens / (tokens + tokens_half)) * (hidden / (hidden + hidden_half))


@dataclass(frozen=True)
class ComputeModel:
    """Prices compute kernels on one device.

    Args:
        device: the executing device.
    """

    device: DeviceSpec

    def dense_time(self, flops: float, tokens: int, hidden: int) -> float:
        """Seconds for ``flops`` of transformer GEMM work at a given shape."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        eff = gemm_efficiency(tokens, hidden)
        return flops / (self.device.achievable_flops * eff)

    def attention_time(self, flops: float) -> float:
        """Seconds for attention score/value matmuls.

        Flash-style kernels keep the O(s^2) matmuls near the theoretical
        peak (see :data:`repro.sim.calibration.ATTENTION_MFU`); this term
        dominates the long-sequence Ulysses experiments (§5.3).
        """
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / (self.device.peak_flops * calibration.ATTENTION_MFU)

    def adam_step_time(self, n_params: int, kernel: str) -> float:
        """Seconds for an Adam step over ``n_params`` parameters.

        Args:
            n_params: parameters updated by this step.
            kernel: one of the implementations in
                :data:`repro.sim.calibration.ADAM_KERNEL_EFFICIENCY`, or
                ``"gpu"`` for an on-GPU fused step.
        """
        if n_params < 0:
            raise ValueError("n_params must be non-negative")
        traffic = n_params * calibration.ADAM_BYTES_PER_PARAM
        if kernel == "gpu":
            if self.device.kind != "gpu":
                raise ValueError("gpu Adam kernel priced on a non-GPU device")
            return traffic / (
                self.device.mem_bandwidth * calibration.ADAM_GPU_EFFICIENCY
            )
        try:
            efficiency = calibration.ADAM_KERNEL_EFFICIENCY[kernel]
        except KeyError:
            raise KeyError(
                f"unknown Adam kernel {kernel!r}; known: "
                f"{sorted(calibration.ADAM_KERNEL_EFFICIENCY)} or 'gpu'"
            ) from None
        if self.device.kind != "cpu":
            raise ValueError(f"CPU Adam kernel {kernel!r} priced on a GPU")
        return traffic / (self.device.mem_bandwidth * efficiency)

    def memcpy_time(self, nbytes: int) -> float:
        """Seconds for an on-device copy of ``nbytes`` (read + write)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return 2 * nbytes / self.device.mem_bandwidth
