"""Cluster construction matching the paper's hardware (§5.1).

Single-superchip experiments use one GH200 with 480 GB LPDDR5; multi-chip
experiments use GH200-NVL2 nodes (two superchips, 240 GB each) joined by
200 Gb/s Slingshot-11.
"""

from __future__ import annotations

from repro.hardware.registry import GH200, GH200_NVL2, SLINGSHOT_11
from repro.hardware.topology import ClusterTopology, SuperchipNode


def gh200_cluster(n_superchips: int) -> ClusterTopology:
    """Build the GH200 topology used by the paper's experiments.

    Args:
        n_superchips: 1 for the single-superchip testbed; even counts are
            arranged as NVL2 pairs across Slingshot.
    """
    if n_superchips < 1:
        raise ValueError("n_superchips must be >= 1")
    if n_superchips == 1:
        node = SuperchipNode(GH200, 1)
        return ClusterTopology(node, 1, SLINGSHOT_11)
    if n_superchips % 2:
        raise ValueError("multi-superchip clusters come in NVL2 pairs")
    node = SuperchipNode(GH200_NVL2, 2)
    return ClusterTopology(node, n_superchips // 2, SLINGSHOT_11)
