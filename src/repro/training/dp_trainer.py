"""Numeric multi-rank data-parallel training (§4.7 ZeRO-3 integration).

Runs the real numpy transformer across simulated data-parallel ranks: each
rank computes gradients on its batch shard, gradients are averaged through
the simulated communicator, and the update runs through the ZeRO-sharded
optimizer (each rank owns 1/N of the fp32 master and moment state, exactly
the partition-before-offload layout of §4.7).

The tests assert the distributed run is numerically equivalent to a
single-rank run over the full batch — the invariant that makes the paper's
multi-superchip extension a pure memory/performance change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.synthetic import SyntheticPile
from repro.exec.pool import KernelPool
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.optim.adam import AdamConfig
from repro.optim.mixed_precision import (
    check_gradients,
    clip_coefficient,
)
from repro.parallel.comm import SimProcessGroup
from repro.parallel.dp import shard_batch
from repro.parallel.plan import ParallelPlan, PlanModel
from repro.parallel.zero import ZeroShardedAdam
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.arena import FlatArena
from repro.tensors.pinned import PinnedBufferPool
from repro.tensors.workspace import ActivationWorkspace


@dataclass(frozen=True)
class DPStepReport:
    """Per-iteration record of the distributed trainer."""

    iteration: int
    loss: float
    grad_norm: float
    clipped: bool


class DataParallelTrainer:
    """ZeRO-style data-parallel training over simulated ranks.

    Args:
        spec: model shape.
        world_size: simulated rank count (global batch must divide by it).
        adam: optimizer hyperparameters.
        clip_norm: global gradient clipping threshold (None disables).
        seed: model initialization seed.
        telemetry: span/metric sink shared with the communicator and the
            sharded optimizer (no-op by default).
        attn_backend: attention core for the per-rank model — ``"dense"``
            (bitwise seed-equivalent, default) or ``"streaming"``.
        use_workspace: back the per-rank forward/backward with an
            :class:`~repro.tensors.workspace.ActivationWorkspace`.  Safe
            across the rank loop because each rank's gradients are
            freshly allocated (never workspace-backed) — only the
            activations between a rank's forward and backward live in
            the reused buffers.
        pipeline: overlap the sharded optimizer's bucket reduce with the
            shard Adam (forwarded to :class:`ZeroShardedAdam`; bitwise
            identical to the serial step).
        bucket_elements: pipelined bucket size (forwarded).
        pool: kernel pool the overlapped step runs on (forwarded;
            ``None`` uses the process default).
        pinned_pool: pinned staging pool for the bucket double-buffer
            (forwarded).
        offload: ``"none"`` or ``"disk"`` — spill the optimizer's (m, v)
            moment planes to ``spill_dir`` (forwarded to
            :class:`ZeroShardedAdam`; bitwise identical to resident).
        spill_dir: spill directory for ``offload="disk"`` (forwarded).
        spill_prefetch: overlap the spill reads ahead of the bucket loop
            (forwarded; ``False`` is the measured baseline).
        plan: optional :class:`~repro.parallel.plan.ParallelPlan` routing
            each replica's forward/backward through the model-parallel
            axes (TP/PP/SP) via :class:`~repro.parallel.plan.PlanModel`.
            Its ``dp`` degree must equal ``world_size`` — this trainer's
            rank loop *is* the data-parallel axis.  ``None`` keeps the
            plain unsharded step.
        n_microbatches: 1F1B microbatch count when ``plan.pp > 1``
            (defaults to the ``pp.microbatches`` tunable).
    """

    def __init__(
        self,
        spec: TransformerParams,
        world_size: int,
        adam: AdamConfig | None = None,
        clip_norm: float | None = None,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        attn_backend: str = "dense",
        use_workspace: bool = False,
        pipeline: bool = False,
        bucket_elements: int | None = None,
        pool: "KernelPool | None" = None,
        pinned_pool: "PinnedBufferPool | None" = None,
        offload: str = "none",
        spill_dir: "str | None" = None,
        spill_prefetch: bool = True,
        plan: "ParallelPlan | None" = None,
        n_microbatches: int | None = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if plan is not None:
            if plan.dp != world_size:
                raise ValueError(
                    f"plan {plan.describe()} has dp={plan.dp}; the trainer's "
                    f"world_size ({world_size}) is the data-parallel axis"
                )
            if plan.pp > 1 and use_workspace:
                raise ValueError(
                    "use_workspace is incompatible with pipeline "
                    "parallelism (in-flight microbatches would alias "
                    "workspace buffers)"
                )
            plan.validate_model(spec)
        self.spec = spec
        self.world_size = world_size
        self.clip_norm = clip_norm
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.workspace = (
            ActivationWorkspace(telemetry=self.telemetry)
            if use_workspace
            else None
        )
        self.model = TinyTransformer(
            spec,
            seed=seed,
            workspace=self.workspace,
            attn_backend=attn_backend,
            telemetry=self.telemetry,
        )
        self.group = SimProcessGroup(world_size, telemetry=self.telemetry)
        self.plan = plan
        # Each replica's forward/backward runs through the plan's
        # model-parallel axes; the rank loop below stays the DP axis.
        self.plan_model = (
            PlanModel(self.model, plan, n_microbatches=n_microbatches,
                      backend=attn_backend)
            if plan is not None and (plan.tp > 1 or plan.pp > 1)
            else None
        )
        self._route = (
            self.plan_model if self.plan_model is not None else self.model
        )
        self.optimizer = ZeroShardedAdam(
            self.model.params, world_size, config=adam or AdamConfig(),
            telemetry=self.telemetry, pipeline=pipeline,
            bucket_elements=bucket_elements, pool=pool,
            pinned_pool=pinned_pool, offload=offload,
            spill_dir=spill_dir, spill_prefetch=spill_prefetch,
        )
        # The sharded optimizer adopted the params into a flat arena;
        # allocate same-layout planes for the fp16 model copy and the
        # widened fp32 working copy so the per-step casts are single flat
        # passes over contiguous memory.
        self.arena = self.optimizer.arena
        self._fp16_arena = self.arena.like(np.float16)
        self._wide_arena = self.arena.like(np.float32)
        with np.errstate(over="ignore"):
            self._fp16_arena.flat[...] = self.arena.flat
        # every rank holds the same gathered fp16 copy (stable views)
        self._fp16 = dict(self._fp16_arena.views)
        self.iteration = 0
        self._checkpointer = None
        self._ckpt_every = 1

    def attach_checkpointer(
        self,
        directory: str,
        every: int = 1,
        pinned_pool: "PinnedBufferPool | None" = None,
    ):
        """Checkpoint (master, m, v, counters) every ``every`` steps.

        The returned :class:`AsyncCheckpointer` streams snapshots to
        ``directory`` through the spill writer while training continues;
        only the capture memcpy runs on the step's critical path.
        """
        from repro.training.checkpoint import AsyncCheckpointer

        if every < 1:
            raise ValueError("every must be >= 1")
        total = self.arena.layout.total
        self._checkpointer = AsyncCheckpointer(
            directory,
            {"master": total, "m": total, "v": total},
            pinned_pool=pinned_pool,
            telemetry=self.telemetry,
        )
        self._ckpt_every = every
        return self._checkpointer

    @property
    def checkpointer(self):
        """The attached :class:`AsyncCheckpointer`, or ``None``."""
        return self._checkpointer

    def resume_latest(self) -> bool:
        """Restore the latest committed checkpoint, if any.

        Returns ``True`` when a checkpoint was restored: the master
        plane, the optimizer moments and step counters, and the
        iteration counter come back exactly as committed, and the fp16
        copy is refreshed from the master — the same cast the end of the
        checkpointed step performed, so the continuation is bit-identical
        to a run that was never interrupted.
        """
        if self._checkpointer is None:
            raise RuntimeError("attach_checkpointer first")
        info = self._checkpointer.latest()
        if info is None:
            return False
        total = self.arena.layout.total
        m = np.empty(total, dtype=np.float32)
        v = np.empty(total, dtype=np.float32)
        self._checkpointer.restore(
            {"master": self.arena.flat, "m": m, "v": v}
        )
        self.optimizer.load_moments(m, v, info.meta["shard_steps"])
        self.iteration = int(info.meta["iteration"])
        with np.errstate(over="ignore"):
            self._fp16_arena.flat[...] = self.arena.flat
        return True

    def _maybe_checkpoint(self) -> None:
        if self._checkpointer is None:
            return
        if self.iteration % self._ckpt_every != 0:
            return
        planes = {"master": self.arena.flat}
        planes.update(self.optimizer.moment_planes())
        self._checkpointer.save(
            self.iteration, planes,
            meta={
                "iteration": self.iteration,
                "shard_steps": self.optimizer.shard_steps(),
            },
        )

    def finish_checkpoints(self) -> None:
        """Wait for every in-flight checkpoint commit (end of run)."""
        if self._checkpointer is not None:
            self._checkpointer.wait()

    def train_step(self, ids: np.ndarray, targets: np.ndarray) -> DPStepReport:
        """One synchronous data-parallel iteration over the global batch."""
        with self.telemetry.tracer.span(
            "train_step", category="step", iteration=self.iteration
        ):
            report = self._step(ids, targets)
            # Capture inside the step window so the profiler attributes
            # the (only) synchronous checkpoint cost to its own phase.
            self._maybe_checkpoint()
        return report

    def _step(self, ids: np.ndarray, targets: np.ndarray) -> DPStepReport:
        tracer = self.telemetry.tracer
        shards = shard_batch(ids, targets, self.world_size)
        with tracer.span("cast", category="cast", direction="widen"):
            # one flat widening cast (bitwise identical to per-tensor
            # from_fp16)
            self._wide_arena.flat[...] = self._fp16_arena.flat
            self._wide_arena.note_alias(self._wide_arena.flat.nbytes)
            widened = dict(self._wide_arena.views)
        per_rank: List[Dict[str, np.ndarray]] = []
        losses = []
        with tracer.span("fwd_bwd", category="compute",
                         ranks=self.world_size):
            for rank_ids, rank_targets in shards:
                loss, grads = self._route.loss_and_grads(
                    rank_ids, rank_targets, params=widened
                )
                losses.append(loss)
                per_rank.append(grads)
        # global clipping: the same check every rank would agree on after
        # the gradient reduction
        mean_grads = {
            k: np.mean([g[k] for g in per_rank], axis=0, dtype=np.float64)
            .astype(np.float32)
            for k in per_rank[0]
        }
        health = check_gradients(mean_grads, self.clip_norm)
        clipped = health.clip_triggered
        # Ingest each rank's gradients into its persistent gradient arena
        # (the only copy of the step); clipping is then an in-place flat
        # multiply with the same bits as the per-tensor version.
        grad_arenas = [
            self.optimizer.grad_arena(r) for r in range(self.world_size)
        ]
        for ga, grads in zip(grad_arenas, per_rank):
            ga.fill_from(grads)
        if clipped:
            assert self.clip_norm is not None
            coef = np.float32(
                clip_coefficient(health.global_norm, self.clip_norm)
            )
            for ga in grad_arenas:
                ga.flat *= coef
        self.optimizer.step_flat([ga.flat for ga in grad_arenas])
        with tracer.span("cast", category="cast", direction="narrow"):
            # one flat narrowing cast back into the fp16 plane
            with np.errstate(over="ignore"):
                self._fp16_arena.flat[...] = self.arena.flat
            self._fp16_arena.note_alias(self._fp16_arena.flat.nbytes)
        report = DPStepReport(
            iteration=self.iteration,
            loss=float(np.mean(losses)),
            grad_norm=health.global_norm,
            clipped=clipped,
        )
        metrics = self.telemetry.metrics
        metrics.histogram("dp_train_loss").observe(report.loss)
        if clipped:
            metrics.counter("dp_clips_total").inc()
        self.iteration += 1
        return report

    def train(self, n_iterations: int, batch: int, seed: int = 0) -> List[DPStepReport]:
        """Convenience loop over the synthetic Pile."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        pile = SyntheticPile(self.spec.vocab, seed=seed)
        gen = pile.batches(batch, self.spec.max_seq)
        return [self.train_step(*next(gen)) for _ in range(n_iterations)]

    def train_to(
        self, total_iterations: int, batch: int, seed: int = 0
    ) -> List[DPStepReport]:
        """Train until ``total_iterations`` steps have run *in total*.

        The synthetic batch stream is deterministic in ``seed``, so a
        resumed trainer fast-forwards past the ``self.iteration`` batches
        its checkpointed past already consumed and continues on exactly
        the data an uninterrupted run would have seen.
        """
        if total_iterations < self.iteration:
            raise ValueError(
                f"already at iteration {self.iteration} > "
                f"{total_iterations}"
            )
        pile = SyntheticPile(self.spec.vocab, seed=seed)
        gen = pile.batches(batch, self.spec.max_seq)
        for _ in range(self.iteration):
            next(gen)
        return [
            self.train_step(*next(gen))
            for _ in range(total_iterations - self.iteration)
        ]
