"""Training entry points: cluster construction matching §5.1's hardware,
the simulated-time throughput runner behind Figs. 10-13 and Table 2, and
the real numeric STV trainer behind Fig. 14."""

from repro.training.bench import substrate_bench
from repro.training.checkpoint import (
    AsyncCheckpointer,
    CheckpointInfo,
    read_manifest,
    run_checkpointed,
)
from repro.training.cluster import gh200_cluster
from repro.training.metrics import mfu, tflops
from repro.training.dp_trainer import DataParallelTrainer, DPStepReport
from repro.training.stv_trainer import InstabilityInjector, STVTrainer, TrainRecord
from repro.training.throughput import (
    ablation_table,
    max_model_table,
    throughput_sweep,
)

__all__ = [
    "gh200_cluster",
    "tflops",
    "mfu",
    "throughput_sweep",
    "max_model_table",
    "ablation_table",
    "STVTrainer",
    "TrainRecord",
    "InstabilityInjector",
    "DataParallelTrainer",
    "DPStepReport",
    "substrate_bench",
    "AsyncCheckpointer",
    "CheckpointInfo",
    "read_manifest",
    "run_checkpointed",
]
