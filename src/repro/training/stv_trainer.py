"""Real numeric training with STV and controlled instability (Fig. 14).

The paper validates STV by pre-training GPT-175B for 80k iterations and
counting rollbacks: frequent in the first ~1k warm-up iterations, then
0.12% of steps.  We reproduce the *dynamics* at tractable scale: a real
transformer on the synthetic Pile with an instability injector that makes
early iterations prone to gradient spikes and occasional overflow —
exercising both rollback scenarios — and record the loss curve plus the
rollback event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.engine import SuperOffloadConfig, SuperOffloadEngine
from repro.core.stv import StepReport
from repro.data.synthetic import SyntheticPile
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.optim.mixed_precision import LossScaler
from repro.parallel.plan import ParallelPlan, PlanModel
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.tensors.workspace import ActivationWorkspace


@dataclass(frozen=True)
class InstabilityInjector:
    """Scales gradients upward during early training to provoke clipping
    and (rarely) fp16 overflow, mimicking warm-up instability.

    Attributes:
        warmup_iters: iterations over which the boost decays to zero.
        spike_probability: chance of a spike within the warm-up window.
        spike_scale: gradient multiplier during a spike.
        overflow_probability: chance a spike is violent enough to overflow
            fp16 at the current loss scale.
        seed: RNG seed for the event stream.
    """

    warmup_iters: int = 100
    spike_probability: float = 0.25
    spike_scale: float = 50.0
    overflow_probability: float = 0.03
    seed: int = 0

    def boost_for(self, iteration: int, rng: np.random.Generator) -> float:
        """Gradient multiplier for this iteration (1.0 = no injection)."""
        if iteration >= self.warmup_iters:
            # Post-warm-up: rare residual spikes (the 0.12% tail).
            if rng.random() < 0.002:
                return self.spike_scale
            return 1.0
        decay = 1.0 - iteration / self.warmup_iters
        if rng.random() < self.spike_probability * decay:
            if rng.random() < self.overflow_probability:
                return 1e6  # guaranteed fp16 overflow
            return self.spike_scale * decay + 1.0
        return 1.0


@dataclass
class TrainRecord:
    """Output of a training run: the Fig. 14 data."""

    losses: List[float] = field(default_factory=list)
    rollback_iterations: List[int] = field(default_factory=list)
    overflow_iterations: List[int] = field(default_factory=list)
    clip_iterations: List[int] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.losses)

    def rollback_rate(self, start: int = 0, stop: int | None = None) -> float:
        """Fraction of iterations in [start, stop) that rolled back."""
        stop = stop if stop is not None else self.n_iterations
        if stop <= start:
            return 0.0
        hits = sum(start <= i < stop for i in self.rollback_iterations)
        return hits / (stop - start)


class STVTrainer:
    """End-to-end numeric training loop with instability injection.

    Args:
        spec: model shape (defaults give a ~200k-parameter model).
        batch: batch size.
        config: engine configuration (STV on by default).
        injector: instability schedule (None trains cleanly).
        seed: data/model seed.
        telemetry: span/metric sink threaded down into the engine (no-op
            by default).
        attn_backend: attention core for the model — ``"dense"``
            (bitwise seed-equivalent, default) or ``"streaming"``.
        use_workspace: back the model step with an
            :class:`~repro.tensors.workspace.ActivationWorkspace` so
            steady-state steps allocate no activation memory.
        plan: optional :class:`~repro.parallel.plan.ParallelPlan` routing
            the engine's forward/backward through the model-parallel axes
            (TP/PP/SP) via :class:`~repro.parallel.plan.PlanModel`.  The
            ``dp`` degree must be 1 — this trainer runs a single replica.
        n_microbatches: 1F1B microbatch count when ``plan.pp > 1``
            (defaults to the ``pp.microbatches`` tunable).
    """

    def __init__(
        self,
        spec: TransformerParams | None = None,
        batch: int = 8,
        config: SuperOffloadConfig | None = None,
        injector: InstabilityInjector | None = None,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        attn_backend: str = "dense",
        use_workspace: bool = False,
        plan: "ParallelPlan | None" = None,
        n_microbatches: int | None = None,
    ):
        self.spec = spec or TransformerParams(
            vocab=256, max_seq=32, hidden=64, n_layers=2, n_heads=4
        )
        if plan is not None:
            if plan.dp != 1:
                raise ValueError(
                    f"plan {plan.describe()} has dp={plan.dp}; the STV "
                    "trainer runs a single data-parallel replica"
                )
            if plan.pp > 1 and use_workspace:
                raise ValueError(
                    "use_workspace is incompatible with pipeline "
                    "parallelism (in-flight microbatches would alias "
                    "workspace buffers)"
                )
            plan.validate_model(self.spec)
        self.batch = batch
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.workspace = (
            ActivationWorkspace(telemetry=self.telemetry)
            if use_workspace
            else None
        )
        self.model = TinyTransformer(
            self.spec,
            seed=seed,
            workspace=self.workspace,
            attn_backend=attn_backend,
            telemetry=self.telemetry,
        )
        if config is None:
            # The clip threshold sits well above the natural gradient norm
            # (~2-3 for this model), so — as in a healthy large-scale run —
            # clipping fires on injected spikes, not on routine steps.
            config = SuperOffloadConfig(clip_norm=8.0)
        self.plan = plan
        # The engine sees the plan-routed wrapper: its fwd/bwd calls run
        # TP/PP-sharded, while arenas, casts, STV, and rollback plumbing
        # keep operating on the wrapped model's params via delegation.
        self.plan_model = (
            PlanModel(self.model, plan, n_microbatches=n_microbatches,
                      backend=attn_backend)
            if plan is not None and (plan.tp > 1 or plan.pp > 1)
            else None
        )
        self.engine = SuperOffloadEngine(
            self.plan_model if self.plan_model is not None else self.model,
            config,
            loss_scaler=LossScaler(init_scale=2.0**12, growth_interval=64),
            telemetry=self.telemetry,
        )
        self.injector = injector
        self.pile = SyntheticPile(self.spec.vocab, seed=seed)
        self._rng = np.random.default_rng(
            injector.seed if injector is not None else seed
        )
        self._batches = self.pile.batches(batch, self.spec.max_seq)

    def _inject(self, iteration: int) -> float:
        if self.injector is None:
            return 1.0
        return self.injector.boost_for(iteration, self._rng)

    def run(self, n_iterations: int) -> TrainRecord:
        """Train for ``n_iterations`` and collect the event record."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        record = TrainRecord()
        metrics = self.telemetry.metrics
        for _ in range(n_iterations):
            ids, targets = next(self._batches)
            boost = self._inject(self.engine.iteration)
            with self.telemetry.tracer.span(
                "iteration", category="train", iteration=self.engine.iteration
            ):
                report = self._step_with_boost(ids, targets, boost)
            metrics.histogram("train_loss").observe(report.loss)
            metrics.counter("train_iterations_total").inc()
            record.losses.append(report.loss)
            if report.rolled_back:
                record.rollback_iterations.append(report.iteration)
            if report.overflow:
                record.overflow_iterations.append(report.iteration)
            if report.clipped:
                record.clip_iterations.append(report.iteration)
        return record

    def _step_with_boost(
        self, ids: np.ndarray, targets: np.ndarray, boost: float
    ) -> StepReport:
        """Run one step with the engine's gradient-injection hook set to
        ``boost`` (1.0 = clean step)."""
        inner = self.engine._inner
        inner.grad_injection = boost
        try:
            return self.engine.train_step(ids, targets)
        finally:
            inner.grad_injection = 1.0
