"""Throughput metric helpers."""

from __future__ import annotations

from repro.hardware.specs import DeviceSpec
from repro.models.config import ModelConfig
from repro.models.estimators import flops_per_token


def tflops(
    config: ModelConfig, tokens_per_gpu: float, seconds: float, seq: int | None = None
) -> float:
    """Effective TFLOPS from tokens processed per GPU in ``seconds``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops_per_token(config, seq) * tokens_per_gpu / seconds / 1e12

def mfu(tflops_value: float, gpu: DeviceSpec) -> float:
    """Model FLOPS Utilization against the theoretical peak."""
    return tflops_value * 1e12 / gpu.peak_flops
