"""The substrate micro-benchmark behind ``repro bench``.

Times the arena-backed hot paths against their dict-copy ancestors and
records the result as ``BENCH_substrate.json`` — the first point of the
perf trajectory the ROADMAP's "as fast as the hardware allows" north star
asks for.  Three sections:

* ``zero_step`` — a full ZeRO update (reduce-scatter, shard Adam,
  all-gather) with :class:`~repro.parallel.zero.ZeroShardedAdam` in its
  ``zero_copy=False`` dict-copy mode (flatten / private shards /
  unflatten) vs. the arena mode fed pre-filled gradient arenas via
  :meth:`step_flat`.
* ``rollback`` — STV bucket snapshot capture+restore with an
  arena-backed optimizer (three range memcpys) vs. a plain-dict
  optimizer (per-tensor copies).
* ``steady_state`` — telemetry deltas over repeated arena steps, proving
  ``arena_bytes_copied`` stays flat once gradients are produced into the
  arena.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.optim.adam import AdamConfig
from repro.optim.implementations import GraceAdam
from repro.optim.rollback import SnapshotRollback
from repro.parallel.zero import ZeroShardedAdam
from repro.telemetry import Telemetry
from repro.tensors.arena import FlatArena

#: Flat element counts benchmarked by default (largest ~4M fp32 = 16 MiB
#: per plane, big enough to be memory-bound like the real workload).
DEFAULT_SIZES = (1 << 16, 1 << 19, 1 << 22)
QUICK_SIZES = (1 << 14, 1 << 16)


def _make_params(
    rng: np.random.Generator, n_total: int, n_tensors: int
) -> Dict[str, np.ndarray]:
    per = n_total // n_tensors
    return {
        f"p{i:02d}": rng.standard_normal(per, dtype=np.float32)
        for i in range(n_tensors)
    }


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_zero_step(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, repeats: int,
) -> Dict[str, float]:
    params = _make_params(rng, n_total, n_tensors)
    params_arena = {k: v.copy() for k, v in params.items()}
    baseline = ZeroShardedAdam(params, world_size, zero_copy=False)
    arena_opt = ZeroShardedAdam(params_arena, world_size, zero_copy=True)
    grad_dicts = [
        {k: rng.standard_normal(v.shape, dtype=np.float32)
         for k, v in params.items()}
        for _ in range(world_size)
    ]
    grad_arenas = [arena_opt.grad_arena(r) for r in range(world_size)]
    for ga, grads in zip(grad_arenas, grad_dicts):
        ga.fill_from(grads)
    flats = [ga.flat for ga in grad_arenas]
    baseline.step(grad_dicts)           # warm up both paths
    arena_opt.step_flat(flats)
    dict_s = _time(lambda: baseline.step(grad_dicts), repeats)
    arena_s = _time(lambda: arena_opt.step_flat(flats), repeats)
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "dict_copy_ms": dict_s * 1e3,
        "arena_ms": arena_s * 1e3,
        "speedup": dict_s / arena_s,
    }


def _bench_rollback(
    rng: np.random.Generator, n_total: int, n_tensors: int, repeats: int
) -> Dict[str, float]:
    params_plain = _make_params(rng, n_total, n_tensors)
    params_arena = {k: v.copy() for k, v in params_plain.items()}
    FlatArena.adopt(params_arena)
    plain_opt = GraceAdam(params_plain, AdamConfig())
    arena_opt = GraceAdam(params_arena, AdamConfig())
    grads_plain = {
        k: rng.standard_normal(v.shape, dtype=np.float32)
        for k, v in params_plain.items()
    }
    grads_arena = {k: g.copy() for k, g in grads_plain.items()}
    plain_rb = SnapshotRollback(plain_opt)
    arena_rb = SnapshotRollback(arena_opt)

    def cycle(rb, grads):
        rb.capture(grads)
        rb.rollback(grads)

    cycle(plain_rb, grads_plain)        # warm up
    cycle(arena_rb, grads_arena)
    plain_s = _time(lambda: cycle(plain_rb, grads_plain), repeats)
    arena_s = _time(lambda: cycle(arena_rb, grads_arena), repeats)
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "per_tensor_ms": plain_s * 1e3,
        "arena_ms": arena_s * 1e3,
        "speedup": plain_s / arena_s,
    }


def _bench_steady_state(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, steps: int,
) -> Dict[str, float]:
    telemetry = Telemetry()
    params = _make_params(rng, n_total, n_tensors)
    opt = ZeroShardedAdam(params, world_size, telemetry=telemetry)
    grad_arenas = [opt.grad_arena(r) for r in range(world_size)]
    flats = [ga.flat for ga in grad_arenas]
    for ga in grad_arenas:
        # Producers write gradients straight into the arena views — the
        # zero-copy contract the trainers follow.
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
    opt.step_flat(flats)                # settle one-time costs
    copied = telemetry.metrics.counter("arena_bytes_copied")
    aliased = telemetry.metrics.counter("arena_bytes_aliased")
    copied_before, aliased_before = copied.value, aliased.value
    for _ in range(steps):
        opt.step_flat(flats)
    return {
        "elements": n_total,
        "steps": steps,
        "arena_bytes_copied_per_step": (copied.value - copied_before) / steps,
        "arena_bytes_aliased_per_step":
            (aliased.value - aliased_before) / steps,
    }


def substrate_bench(
    sizes: Optional[List[int]] = None,
    world_size: int = 4,
    n_tensors: int = 8,
    repeats: int = 5,
    seed: int = 0,
    quick: bool = False,
) -> Dict:
    """Run the full substrate benchmark; returns a JSON-ready document.

    Args:
        sizes: flat element counts to benchmark (defaults depend on
            ``quick``).
        world_size: simulated rank count for the ZeRO sections.
        n_tensors: named tensors each parameter set is split into.
        repeats: timing repetitions (best-of).
        seed: RNG seed for parameters and gradients.
        quick: smoke-run sizes/repeats (used by CI).
    """
    if sizes is None:
        sizes = list(QUICK_SIZES if quick else DEFAULT_SIZES)
    if quick:
        repeats = min(repeats, 3)
    rng = np.random.default_rng(seed)
    zero_rows = [
        _bench_zero_step(rng, n, n_tensors, world_size, repeats)
        for n in sizes
    ]
    rollback_rows = [
        _bench_rollback(rng, n, n_tensors, repeats) for n in sizes
    ]
    steady = _bench_steady_state(
        rng, sizes[-1], n_tensors, world_size, steps=max(3, repeats)
    )
    return {
        "benchmark": "substrate_arena",
        "world_size": world_size,
        "n_tensors": n_tensors,
        "repeats": repeats,
        "zero_step": zero_rows,
        "rollback": rollback_rows,
        "steady_state": steady,
    }
