"""The substrate micro-benchmark behind ``repro bench``.

Times the arena-backed hot paths against their dict-copy ancestors and
records the result as ``BENCH_substrate.json`` — the first point of the
perf trajectory the ROADMAP's "as fast as the hardware allows" north star
asks for.  Five sections:

* ``zero_step`` — a full ZeRO update (reduce-scatter, shard Adam,
  all-gather) with :class:`~repro.parallel.zero.ZeroShardedAdam` in its
  ``zero_copy=False`` dict-copy mode (flatten / private shards /
  unflatten) vs. the arena mode fed pre-filled gradient arenas via
  :meth:`step_flat`.
* ``rollback`` — STV bucket snapshot capture+restore with an
  arena-backed optimizer (three range memcpys) vs. a plain-dict
  optimizer (per-tensor copies).
* ``steady_state`` — telemetry deltas over repeated arena steps, proving
  ``arena_bytes_copied`` stays flat once gradients are produced into the
  arena.
* ``parallel_step`` — the chunked-executor GraceAdam flat step
  (:mod:`repro.exec`) vs. the serial flat-arena baseline (CPUAdam's
  whole-plane fused step, the substrate's pre-executor hot path) and
  vs. GraceAdam's serial tiled walk, with a bitwise identity check
  folded into the measurement.
* ``zero_pipeline`` — the overlapped bucket ZeRO step
  (``pipeline=True``) vs. the serial zero-copy ``step_flat``, also
  bitwise-checked.
* ``attention`` — blocked online-softmax streaming attention
  (:mod:`repro.numeric.flash`) vs. the dense ``S x S`` reference, forward
  and forward+backward, with the fp32 tolerance check and the
  peak-transient-bytes ratio folded into the measurement.
* ``model_step`` — a full transformer ``loss_and_grads`` with the
  streaming backend and an
  :class:`~repro.tensors.workspace.ActivationWorkspace` vs. the
  allocate-everything dense baseline, asserting steady-state workspace
  allocations are zero.
* ``parallelism`` — the :class:`~repro.parallel.plan.ParallelPlan` grid:
  every TPxPPxDP factorization executed for real through
  :class:`~repro.parallel.plan.PlanModel` (equivalence-checked against
  the unsharded model) plus the simulator's best-plan sweep per (model
  size, world size), recording the fastest plan and its speedup over
  pure data parallelism.

Both executor sections run on a real :class:`~repro.exec.pool.KernelPool`
(``workers`` threads); on a single-core host the recorded speedup is the
fused-kernel/allocation-elimination win, on multi-core hosts thread
parallelism adds on top.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exec.pool import default_workers, get_pool
from repro.numeric import flash
from repro.numeric.attention import MultiHeadAttention
from repro.numeric.transformer import TinyTransformer, TransformerParams
from repro.optim.adam import AdamConfig
from repro.optim.implementations import CPUAdam, GraceAdam
from repro.optim.rollback import SnapshotRollback
from repro.parallel.zero import ZeroShardedAdam
from repro.telemetry import Telemetry
from repro.tensors.arena import FlatArena
from repro.tensors.workspace import ActivationWorkspace

#: Flat element counts benchmarked by default (largest ~4M fp32 = 16 MiB
#: per plane, big enough to be memory-bound like the real workload).
DEFAULT_SIZES = (1 << 16, 1 << 19, 1 << 22)
#: Quick (CI smoke) sizes straddle the executor's parallel dispatch
#: threshold so the regression guard exercises the structural win at
#: 512k, not just dispatch overhead at toy sizes.
QUICK_SIZES = (1 << 16, 1 << 19)

#: Sections ``substrate_bench`` can run (also the CLI's ``--sections``).
ALL_SECTIONS = (
    "zero_step", "rollback", "steady_state", "parallel_step",
    "zero_pipeline", "attention", "model_step", "spill", "checkpoint",
    "parallelism", "inference",
)

#: (m, k, n) shapes the fused qmatmul A/B sweeps — small-M, weight-heavy
#: matmuls, the shape serving decodes actually run (M is the number of
#: concurrently decoding sessions).  The fused win is the memory-bound
#: decode regime: it needs M < group_size, since the scale-pull-out
#: rewrite trades the (k, n) dequant multiply for ops on (k/gs, M, n)
#: partials.  Prefill-sized M amortizes the dense path's dequant and is
#: served fine by it.
QMATMUL_SHAPES = ((8, 1024, 4096), (16, 1024, 4096), (8, 2048, 2048))
QUICK_QMATMUL_SHAPES = ((8, 512, 1024), (16, 512, 2048))

#: Concurrent streaming-session counts the serving sweep offers (the
#: request-rate axis of the tokens/sec / p95 table).
SERVING_LEVELS = (8, 16)
QUICK_SERVING_LEVELS = (8,)

#: qmatmul vs dense-dequant agreement bound (same int8 operand, fp32
#: partial sums reassociated by the group loop — tolerance, not bitwise).
QMATMUL_TOL = 1e-4

#: (model billions, superchip count) grid the ``parallelism`` section
#: sweeps plans over.  Pure DP must stay *feasible* at every point so the
#: best-plan comparison is a timing statement, not a memory one — 18
#: bytes/param caps that at ~5B on a 96 GB GH200.
PARALLELISM_GRID = ((2, 4), (3, 8), (5, 8))
QUICK_PARALLELISM_GRID = ((5, 8),)

#: Sequence lengths for the ``attention`` section.  The largest is the
#: regression-guard size: the structural win (no ``S x S`` materialized,
#: upper-triangle tiles skipped outright) must show up there.
ATTENTION_SEQS = (256, 512, 1024)
QUICK_ATTENTION_SEQS = (256, 1024)
ATTENTION_GUARD_SEQ = 1024

#: Forward / backward agreement bounds between streaming and dense
#: (the streaming online softmax reorders reductions, so agreement is
#: tolerance-level, not bitwise — see ISSUE/DESIGN §9).
ATTENTION_FWD_TOL = 1e-5
ATTENTION_BWD_TOL = 1e-4

#: Sequence lengths for the ``model_step`` section (also the model's
#: ``max_seq``).
MODEL_STEP_SEQS = (128, 256)
QUICK_MODEL_STEP_SEQS = (128,)

#: Staging bucket size (elements) the ``zero_pipeline`` section uses —
#: 256 KiB of fp32, small enough that both double buffers sit in cache.
PIPELINE_BUCKET_ELEMENTS = 1 << 16

#: Bucket size (elements) and extent size for the ``spill`` section:
#: 512 KiB ops are deep into the device's bandwidth plateau (direct I/O
#: throughput falls off sharply below ~256 KiB per op) while keeping
#: enough buckets in flight at the bench sizes for the prefetch ring to
#: matter.
SPILL_BUCKET_ELEMENTS = 1 << 17
SPILL_CHUNK_BYTES = 1 << 19


def _make_params(
    rng: np.random.Generator, n_total: int, n_tensors: int
) -> Dict[str, np.ndarray]:
    per = n_total // n_tensors
    return {
        f"p{i:02d}": rng.standard_normal(per, dtype=np.float32)
        for i in range(n_tensors)
    }


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_interleaved(fns: Sequence, repeats: int) -> List[float]:
    """Best-of-``repeats`` for several functions, timed in alternating
    rounds so clock drift and allocator warm-up hit every contestant
    equally (sequential best-of hands whichever runs later a warmer
    heap)."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _bench_zero_step(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, repeats: int,
) -> Dict[str, float]:
    params = _make_params(rng, n_total, n_tensors)
    params_arena = {k: v.copy() for k, v in params.items()}
    baseline = ZeroShardedAdam(params, world_size, zero_copy=False)
    arena_opt = ZeroShardedAdam(params_arena, world_size, zero_copy=True)
    grad_dicts = [
        {k: rng.standard_normal(v.shape, dtype=np.float32)
         for k, v in params.items()}
        for _ in range(world_size)
    ]
    grad_arenas = [arena_opt.grad_arena(r) for r in range(world_size)]
    for ga, grads in zip(grad_arenas, grad_dicts):
        ga.fill_from(grads)
    flats = [ga.flat for ga in grad_arenas]
    baseline.step(grad_dicts)           # warm up both paths
    arena_opt.step_flat(flats)
    dict_s = _time(lambda: baseline.step(grad_dicts), repeats)
    arena_s = _time(lambda: arena_opt.step_flat(flats), repeats)
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "dict_copy_ms": dict_s * 1e3,
        "arena_ms": arena_s * 1e3,
        "speedup": dict_s / arena_s,
    }


def _bench_rollback(
    rng: np.random.Generator, n_total: int, n_tensors: int, repeats: int
) -> Dict[str, float]:
    params_plain = _make_params(rng, n_total, n_tensors)
    params_arena = {k: v.copy() for k, v in params_plain.items()}
    FlatArena.adopt(params_arena)
    plain_opt = GraceAdam(params_plain, AdamConfig())
    arena_opt = GraceAdam(params_arena, AdamConfig())
    grads_plain = {
        k: rng.standard_normal(v.shape, dtype=np.float32)
        for k, v in params_plain.items()
    }
    grads_arena = {k: g.copy() for k, g in grads_plain.items()}
    plain_rb = SnapshotRollback(plain_opt)
    arena_rb = SnapshotRollback(arena_opt)

    def cycle(rb, grads):
        rb.capture(grads)
        rb.rollback(grads)

    cycle(plain_rb, grads_plain)        # warm up
    cycle(arena_rb, grads_arena)
    from repro.optim.rollback import SMALL_SNAPSHOT_CUTOFF, _ArenaSnapshot
    arena_rb.capture(grads_arena)
    arena_path_used = isinstance(arena_rb._snapshot, _ArenaSnapshot)
    arena_rb.discard()
    # Rollback cycles are cheap enough that extra rounds cost nothing,
    # and the small below-cutoff rows need them: best-of over few rounds
    # of two identical code paths can wobble several percent.
    plain_s, arena_s = _time_interleaved(
        [lambda: cycle(plain_rb, grads_plain),
         lambda: cycle(arena_rb, grads_arena)],
        max(repeats, 9),
    )
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "per_tensor_ms": plain_s * 1e3,
        "arena_ms": arena_s * 1e3,
        "speedup": plain_s / arena_s,
        # Below SMALL_SNAPSHOT_CUTOFF both optimizers take the identical
        # per-tensor path, so the honest speedup is 1.0 by construction
        # (the measured ratio wobbles around it within timing noise).
        "arena_path_used": arena_path_used,
        "cutoff_elements": SMALL_SNAPSHOT_CUTOFF,
    }


def _bench_steady_state(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, steps: int,
) -> Dict[str, float]:
    telemetry = Telemetry()
    params = _make_params(rng, n_total, n_tensors)
    opt = ZeroShardedAdam(params, world_size, telemetry=telemetry)
    grad_arenas = [opt.grad_arena(r) for r in range(world_size)]
    flats = [ga.flat for ga in grad_arenas]
    for ga in grad_arenas:
        # Producers write gradients straight into the arena views — the
        # zero-copy contract the trainers follow.
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
    opt.step_flat(flats)                # settle one-time costs
    copied = telemetry.metrics.counter("arena_bytes_copied")
    aliased = telemetry.metrics.counter("arena_bytes_aliased")
    copied_before, aliased_before = copied.value, aliased.value
    for _ in range(steps):
        opt.step_flat(flats)
    return {
        "elements": n_total,
        "steps": steps,
        "arena_bytes_copied_per_step": (copied.value - copied_before) / steps,
        "arena_bytes_aliased_per_step":
            (aliased.value - aliased_before) / steps,
    }


def _bench_parallel_step(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    workers: int, repeats: int,
) -> Dict[str, float]:
    """Chunked-executor flat Adam step vs. its two serial ancestors.

    The headline ``speedup`` is against the serial flat-arena baseline
    (:class:`CPUAdam` with ``chunked=False`` — whole-plane fused passes
    with full-size out-of-place temporaries, the substrate's pre-executor
    hot path and the paper's "CPU-Adam" Table 3 referent).
    ``speedup_vs_tiled`` is against :class:`GraceAdam`'s serial tiled
    walk, whose cache-resident temporaries make it the tighter contest.
    All three optimizers start from bitwise-identical state and step on
    bitwise-identical gradients; ``bitwise_identical`` covers every
    timed step, not just a warm-up.
    """
    config = AdamConfig(lr=1e-3, weight_decay=0.01)
    params_serial = _make_params(rng, n_total, n_tensors)
    params_tiled = {k: v.copy() for k, v in params_serial.items()}
    params_par = {k: v.copy() for k, v in params_serial.items()}
    for p in (params_serial, params_tiled, params_par):
        FlatArena.adopt(p)
    serial = CPUAdam(params_serial, config, chunked=False)
    tiled = GraceAdam(params_tiled, config, chunked=False)
    pool = get_pool(workers)
    par = GraceAdam(params_par, config, pool=pool, chunked=True)
    grads = serial.arena.like()
    for view in grads.views.values():
        view[...] = rng.standard_normal(view.shape, dtype=np.float32)
    dicts = []
    for opt in (serial, tiled, par):
        ga = opt.arena.like()
        ga.flat[...] = grads.flat
        dicts.append(dict(ga.views))
    for opt, gd in zip((serial, tiled, par), dicts):
        opt.step(gd)                    # warm up all three paths
    serial_s, tiled_s, par_s = _time_interleaved(
        [lambda: serial.step(dicts[0]),
         lambda: tiled.step(dicts[1]),
         lambda: par.step(dicts[2])],
        repeats,
    )
    identical = (
        serial.step_count == tiled.step_count == par.step_count
        and np.array_equal(serial.arena.flat, par.arena.flat)
        and np.array_equal(tiled.arena.flat, par.arena.flat)
        and np.array_equal(serial.arena_m.flat, par.arena_m.flat)
        and np.array_equal(serial.arena_v.flat, par.arena_v.flat)
    )
    pool.shutdown()
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "workers": workers,
        "serial_ms": serial_s * 1e3,
        "tiled_ms": tiled_s * 1e3,
        "parallel_ms": par_s * 1e3,
        "speedup": serial_s / par_s,
        "speedup_vs_tiled": tiled_s / par_s,
        "bitwise_identical": identical,
    }


def _bench_zero_pipeline(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, workers: int, repeats: int,
) -> Dict[str, float]:
    """Overlapped bucket ZeRO step vs. the serial zero-copy ``step_flat``."""
    params_serial = _make_params(rng, n_total, n_tensors)
    params_pipe = {k: v.copy() for k, v in params_serial.items()}
    serial = ZeroShardedAdam(params_serial, world_size)
    pool = get_pool(workers)
    pipe = ZeroShardedAdam(
        params_pipe, world_size, pipeline=True,
        bucket_elements=PIPELINE_BUCKET_ELEMENTS, pool=pool,
    )
    flats_serial = []
    flats_pipe = []
    for r in range(world_size):
        ga = serial.grad_arena(r)
        for view in ga.views.values():
            view[...] = rng.standard_normal(view.shape, dtype=np.float32)
        flats_serial.append(ga.flat)
        gp = pipe.grad_arena(r)
        gp.flat[...] = ga.flat
        flats_pipe.append(gp.flat)
    serial.step_flat(flats_serial)      # warm up both paths
    pipe.step_flat(flats_pipe)
    serial_s, pipe_s = _time_interleaved(
        [lambda: serial.step_flat(flats_serial),
         lambda: pipe.step_flat(flats_pipe)],
        repeats,
    )
    identical = (
        serial.step_count == pipe.step_count
        and np.array_equal(serial.arena.flat, pipe.arena.flat)
    )
    pipe.release_staging()
    pool.shutdown()
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "workers": workers,
        "bucket_elements": pipe.bucket_elements,
        "serial_ms": serial_s * 1e3,
        "pipeline_ms": pipe_s * 1e3,
        "speedup": serial_s / pipe_s,
        "bitwise_identical": identical,
    }


def _bench_spill(
    rng: np.random.Generator, n_total: int, n_tensors: int,
    world_size: int, workers: int, repeats: int,
) -> Dict[str, float]:
    """Disk-offloaded ZeRO step: overlapped prefetch vs. the sync spill
    baseline, with the resident step as the roofline.

    Three bitwise-identical contestants step on identical gradients: the
    resident serial ``step_flat`` (moments in memory), the disk-offloaded
    step with ``spill_prefetch=False`` (every read/write an exposed
    stall — the honest non-overlapped baseline), and the overlapped
    disk step (reads prefetched, reduce on the pool, writes behind the
    bucket loop).  The headline ``speedup`` is sync/overlap — what the
    prefetch machinery buys at the same disk tier.
    """
    params_res = _make_params(rng, n_total, n_tensors)
    params_sync = {k: v.copy() for k, v in params_res.items()}
    params_ovl = {k: v.copy() for k, v in params_res.items()}
    resident = ZeroShardedAdam(params_res, world_size)
    pool = get_pool(workers)
    dirs = [tempfile.TemporaryDirectory(prefix="repro-spill-")
            for _ in range(2)]
    sync = ZeroShardedAdam(
        params_sync, world_size, offload="disk", spill_dir=dirs[0].name,
        spill_prefetch=False, bucket_elements=SPILL_BUCKET_ELEMENTS,
        spill_chunk_bytes=SPILL_CHUNK_BYTES,
    )
    ovl = ZeroShardedAdam(
        params_ovl, world_size, offload="disk", spill_dir=dirs[1].name,
        spill_prefetch=True, bucket_elements=SPILL_BUCKET_ELEMENTS,
        spill_chunk_bytes=SPILL_CHUNK_BYTES, spill_prefetch_depth=4,
        pool=pool,
    )
    flats: Dict[int, List[np.ndarray]] = {}
    for i, opt in enumerate((resident, sync, ovl)):
        flats[i] = []
        for r in range(world_size):
            ga = opt.grad_arena(r)
            if i == 0:
                for view in ga.views.values():
                    view[...] = rng.standard_normal(
                        view.shape, dtype=np.float32
                    )
            else:
                ga.flat[...] = flats[0][r]
            flats[i].append(ga.flat)
    resident.step_flat(flats[0])        # warm up all three paths
    sync.step_flat(flats[1])
    ovl.step_flat(flats[2])
    resident_s, sync_s, ovl_s = _time_interleaved(
        [lambda: resident.step_flat(flats[0]),
         lambda: sync.step_flat(flats[1]),
         lambda: ovl.step_flat(flats[2])],
        repeats,
    )
    identical = (
        resident.step_count == sync.step_count == ovl.step_count
        and np.array_equal(resident.arena.flat, sync.arena.flat)
        and np.array_equal(resident.arena.flat, ovl.arena.flat)
    )
    spill_read = ovl.spill.bytes_read
    spill_written = ovl.spill.bytes_written
    for opt in (sync, ovl):
        opt.release_staging()
        opt.close_spill()
    pool.shutdown()
    for d in dirs:
        d.cleanup()
    return {
        "elements": n_total,
        "bytes": n_total * 4,
        "workers": workers,
        "bucket_elements": ovl.bucket_elements,
        "prefetch_depth": ovl._prefetch_depth,
        "resident_ms": resident_s * 1e3,
        "sync_ms": sync_s * 1e3,
        "overlap_ms": ovl_s * 1e3,
        "speedup": sync_s / ovl_s,
        "speedup_vs_resident": resident_s / ovl_s,
        "offload_overhead": ovl_s / resident_s,
        "spill_bytes_read": spill_read,
        "spill_bytes_written": spill_written,
        "bitwise_identical": identical,
    }


def _bench_checkpoint(
    rng: np.random.Generator, n_total: int, repeats: int,
) -> Dict[str, float]:
    """Async checkpoint stall vs. a blocking save of the same snapshot.

    Both sides snapshot identical (master, m, v) planes through the same
    :class:`~repro.training.checkpoint.AsyncCheckpointer` machinery; the
    blocking side waits each commit (data fsync + manifest rename) on
    the training thread, the async side pays only the capture memcpy and
    whatever slot backpressure the disk imposes.  The headline
    ``speedup`` is blocking/async-stall — the step time a zero-stall
    checkpoint gives back.  ``bitwise_identical`` is a restore round
    trip against the live planes.
    """
    from repro.training.checkpoint import AsyncCheckpointer

    planes = {
        "master": rng.standard_normal(n_total).astype(np.float32),
        "m": rng.standard_normal(n_total).astype(np.float32),
        "v": rng.standard_normal(n_total).astype(np.float32),
    }
    schema = {k: v.size for k, v in planes.items()}
    dirs = [tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            for _ in range(2)]
    blocking_ck = AsyncCheckpointer(dirs[0].name, schema)
    async_ck = AsyncCheckpointer(dirs[1].name, schema)
    steps = {"blocking": 0, "async": 0}

    def blocking_save():
        blocking_ck.save(steps["blocking"], planes,
                         meta={"iteration": steps["blocking"]}).wait()
        steps["blocking"] += 1

    def async_save():
        async_ck.save(steps["async"], planes,
                      meta={"iteration": steps["async"]})
        steps["async"] += 1

    blocking_save()                     # warm up (files, page cache)
    async_save()
    async_ck.wait()
    blocking_s, async_s = _time_interleaved(
        [blocking_save, async_save], max(repeats, 5)
    )
    async_ck.wait()                     # drain before the round trip
    restored = {k: np.empty_like(v) for k, v in planes.items()}
    info = async_ck.restore(restored)
    identical = all(
        np.array_equal(planes[k], restored[k]) for k in planes
    )
    commits = async_ck.saves_total + blocking_ck.saves_total
    blocking_ck.close()
    async_ck.close()
    for d in dirs:
        d.cleanup()
    return {
        "elements": n_total,
        "bytes": 3 * n_total * 4,
        "blocking_ms": blocking_s * 1e3,
        "async_stall_ms": async_s * 1e3,
        "speedup": blocking_s / async_s,
        "last_committed_step": info.step,
        "saves": commits,
        "bitwise_identical": identical,
    }


def _bench_attention(
    rng: np.random.Generator, seq: int, workers: int, repeats: int,
    heads: int = 4, head_dim: int = 32, batch: int = 2,
    block_q: int = flash.DEFAULT_BLOCK_Q,
    block_k: int = flash.DEFAULT_BLOCK_K,
) -> Dict[str, float]:
    """Streaming blocked attention vs. the dense ``S x S`` reference.

    Both contestants compute causal attention over identical inputs.
    The dense path materializes the score matrix (and softmax
    temporaries of the same size); the streaming path's transients are
    the per-worker tile scratch plus the ``(out, lse)`` it returns, so
    the recorded ``peak_transient_ratio`` is the activation-memory win
    and the ``*_speedup`` columns are the time win (upper-triangle
    tiles are never computed, and every temporary stays cache-sized).
    """
    q = rng.standard_normal((batch, heads, seq, head_dim), dtype=np.float32)
    k = rng.standard_normal((batch, heads, seq, head_dim), dtype=np.float32)
    v = rng.standard_normal((batch, heads, seq, head_dim), dtype=np.float32)
    dout = rng.standard_normal(q.shape, dtype=np.float32)
    pool = get_pool(workers)
    out = np.empty_like(q)
    lse = np.empty(q.shape[:3], dtype=q.dtype)
    dq, dk, dv = (np.empty_like(q) for _ in range(3))

    def stream_fwd():
        return flash.streaming_attention_forward(
            q, k, v, causal=True, block_q=block_q, block_k=block_k,
            pool=pool, out=out, lse=lse,
        )

    def stream_fwd_bwd():
        _, cache = stream_fwd()
        flash.streaming_attention_backward(
            dout, cache, pool=pool, dq=dq, dk=dk, dv=dv
        )

    def dense_fwd():
        return MultiHeadAttention.core_forward(q, k, v, True)

    def dense_fwd_bwd():
        _, cache = dense_fwd()
        MultiHeadAttention.core_backward(dout, cache)

    # correctness first: tolerance vs. dense, bitwise across worker counts
    ref, ref_cache = dense_fwd()
    got, got_cache = stream_fwd()
    fwd_diff = float(np.abs(got - ref).max())
    rdq, rdk, rdv = MultiHeadAttention.core_backward(dout, ref_cache)
    sdq, sdk, sdv = flash.streaming_attention_backward(
        dout, got_cache, pool=pool, dq=dq, dk=dk, dv=dv
    )
    bwd_diff = max(
        float(np.abs(a - b).max())
        for a, b in ((sdq, rdq), (sdk, rdk), (sdv, rdv))
    )
    inline_out, _ = flash.streaming_attention_forward(
        q, k, v, causal=True, block_q=block_q, block_k=block_k
    )
    bitwise_across_workers = np.array_equal(got, inline_out)
    tolerance_ok = (
        fwd_diff <= ATTENTION_FWD_TOL and bwd_diff <= ATTENTION_BWD_TOL
    )
    dense_fwd_s, stream_fwd_s = _time_interleaved(
        [dense_fwd, stream_fwd], repeats
    )
    dense_step_s, stream_step_s = _time_interleaved(
        [dense_fwd_bwd, stream_fwd_bwd], repeats
    )
    pool.shutdown()
    dense_transient = batch * heads * seq * seq * 4  # one S x S fp32 plane
    streaming_transient = (
        out.nbytes + lse.nbytes
        + workers * flash.tile_scratch_bytes(block_q, block_k, head_dim)
    )
    return {
        "seq": seq,
        "batch": batch,
        "heads": heads,
        "head_dim": head_dim,
        "block_q": block_q,
        "block_k": block_k,
        "workers": workers,
        "dense_fwd_ms": dense_fwd_s * 1e3,
        "streaming_fwd_ms": stream_fwd_s * 1e3,
        "fwd_speedup": dense_fwd_s / stream_fwd_s,
        "dense_step_ms": dense_step_s * 1e3,
        "streaming_step_ms": stream_step_s * 1e3,
        "step_speedup": dense_step_s / stream_step_s,
        # headline speedup (the geomean summary key): full fwd+bwd
        "speedup": dense_step_s / stream_step_s,
        "fwd_max_abs_diff": fwd_diff,
        "bwd_max_abs_diff": bwd_diff,
        "tolerance_ok": tolerance_ok,
        "bitwise_across_workers": bitwise_across_workers,
        "dense_transient_bytes": dense_transient,
        "streaming_transient_bytes": streaming_transient,
        "peak_transient_ratio": dense_transient / streaming_transient,
    }


def _bench_model_step(
    rng: np.random.Generator, seq: int, workers: int, repeats: int,
    batch: int = 2,
) -> Dict[str, float]:
    """Workspace-backed streaming model step vs. the dense baseline.

    The baseline is the seed configuration — dense attention, a fresh
    allocation for every activation and backward temporary.  The
    contestant routes the same ``loss_and_grads`` through an
    :class:`ActivationWorkspace` and the streaming attention backend.
    ``steady_allocs_per_step`` counts workspace allocations on a
    post-warm-up step; the allocation-free claim is that it is zero.
    """
    spec = TransformerParams(
        vocab=256, max_seq=seq, hidden=128, n_layers=2, n_heads=4
    )
    ids = rng.integers(0, spec.vocab, size=(batch, seq))
    targets = rng.integers(0, spec.vocab, size=(batch, seq))
    baseline = TinyTransformer(spec, seed=0)
    telemetry = Telemetry()
    ws = ActivationWorkspace(telemetry=telemetry)
    pool = get_pool(workers)
    contender = TinyTransformer(
        spec, seed=0, workspace=ws, attn_backend="streaming", pool=pool,
        telemetry=telemetry,
    )
    loss_base, grads_base = baseline.loss_and_grads(ids, targets)  # warm up
    loss_ws, grads_ws = contender.loss_and_grads(ids, targets)
    contender.loss_and_grads(ids, targets)  # settle the free lists
    loss_diff = abs(loss_ws - loss_base)
    grad_diff = max(
        float(np.abs(grads_base[k] - grads_ws[k]).max()) for k in grads_base
    )
    allocs_before = ws.alloc_count
    contender.loss_and_grads(ids, targets)
    steady_allocs = ws.alloc_count - allocs_before
    base_s, ws_s = _time_interleaved(
        [lambda: baseline.loss_and_grads(ids, targets),
         lambda: contender.loss_and_grads(ids, targets)],
        repeats,
    )
    pool.shutdown()
    return {
        "seq": seq,
        "batch": batch,
        "hidden": spec.hidden,
        "n_layers": spec.n_layers,
        "workers": workers,
        "baseline_ms": base_s * 1e3,
        "workspace_ms": ws_s * 1e3,
        "speedup": base_s / ws_s,
        "loss_abs_diff": loss_diff,
        "grad_max_abs_diff": grad_diff,
        "tolerance_ok": loss_diff <= 1e-5 and grad_diff <= ATTENTION_BWD_TOL,
        "steady_allocs_per_step": steady_allocs,
        "workspace_peak_bytes": ws.peak_bytes,
        "workspace_reuse_count": ws.reuse_count,
    }


def _bench_parallelism(
    rng: np.random.Generator, repeats: int, quick: bool,
) -> Dict:
    """The ParallelPlan grid sweep: substrate equivalence + best plan.

    Two halves, one plan vocabulary:

    * **Substrate** — every ``TPxPPxDP`` factorization of a 4-way world
      executes a real per-replica step through
      :class:`~repro.parallel.plan.PlanModel` and is checked against the
      unsharded :class:`TinyTransformer` on identical shards (TP paths
      are tolerance-equivalent — see ``repro.parallel.tensor`` — and the
      1F1B measured bubble is compared to the ideal ``(p-1)/(m+p-1)``).
    * **Simulator** — for each (model size, world size) grid point every
      plan is priced by :class:`~repro.systems.pipeline_tp.PipelinedTP`
      over the GH200 cluster; the best plan and its speedup over pure DP
      (``tp1.pp1``) are recorded.  The headline ``speedup`` is the
      largest grid point's best-plan-over-pure-DP ratio — the number the
      regression guard watches.
    """
    from repro.models.config import MODEL_CONFIG_TABLE
    from repro.parallel.pipeline import (
        microbatched_loss_and_grads,
        split_microbatches,
    )
    from repro.parallel.plan import ParallelPlan, PlanModel
    from repro.systems.base import InfeasibleError, RunSetting
    from repro.systems.pipeline_tp import PipelinedTP
    from repro.training.cluster import gh200_cluster

    # -- substrate: every plan of a 4-way world vs the unsharded model --
    spec = TransformerParams(
        vocab=64, max_seq=16, hidden=32, n_layers=4, n_heads=4
    )
    batch = 8
    model = TinyTransformer(spec, seed=0)
    ids = rng.integers(0, spec.vocab, size=(batch, spec.max_seq))
    targets = rng.integers(0, spec.vocab, size=(batch, spec.max_seq))
    substrate_rows: List[Dict] = []
    for plan in ParallelPlan.enumerate(4, spec):
        replica = batch // plan.dp
        m = min(replica, 4)
        routed = PlanModel(model, plan, n_microbatches=m)
        # Per-replica shards: the DP axis is pure batch splitting, so
        # per-shard equivalence is the full equivalence statement.
        shard_ids, shard_targets = split_microbatches(ids, targets, plan.dp)
        loss_diff = grad_diff = 0.0
        bubble = None
        for s_ids, s_targets in zip(shard_ids, shard_targets):
            # The per-plan reference: pipelined plans accumulate over m
            # microbatches, so they compare against the *microbatched*
            # sequential step (bitwise-identical by the 1F1B contract);
            # unpipelined plans compare against the plain step.
            if plan.pp > 1:
                ref_loss, ref_grads = microbatched_loss_and_grads(
                    model, s_ids, s_targets, m
                )
            else:
                ref_loss, ref_grads = model.loss_and_grads(s_ids, s_targets)
            loss, grads = routed.loss_and_grads(s_ids, s_targets)
            loss_diff = max(loss_diff, abs(loss - ref_loss))
            grad_diff = max(
                grad_diff,
                max(float(np.abs(ref_grads[k] - grads[k]).max())
                    for k in ref_grads),
            )
        if plan.pp > 1:
            bubble = routed.measured_bubble_fraction()
        substrate_rows.append({
            "plan": plan.describe(),
            "microbatches": m if plan.pp > 1 else 1,
            "loss_abs_diff": loss_diff,
            "grad_max_abs_diff": grad_diff,
            # TP reorders reductions (k-dim partials, shape-dependent
            # BLAS blocking); pure-PP plans are bitwise.
            "bitwise": grad_diff == 0.0 and loss_diff == 0.0,
            "tolerance_ok": loss_diff <= 1e-6 and grad_diff <= 1e-6,
            "measured_bubble": bubble,
            "ideal_bubble": (
                (plan.pp - 1) / (m + plan.pp - 1) if plan.pp > 1 else None
            ),
        })

    # -- simulator: best plan per (model size, world size) -------------
    grid = QUICK_PARALLELISM_GRID if quick else PARALLELISM_GRID
    grid_rows: List[Dict] = []
    for billions, world in grid:
        cfg = MODEL_CONFIG_TABLE[billions]
        setting = RunSetting(
            cfg, gh200_cluster(world), global_batch=4 * world, seq=1024
        )
        plan_rows: List[Dict] = []
        for plan in ParallelPlan.enumerate(world):
            if cfg.hidden % plan.tp or cfg.n_heads % plan.tp:
                continue
            if plan.pp > cfg.n_layers:
                continue
            system = PipelinedTP(tp=plan.tp, pp=plan.pp)
            try:
                est = system.best_estimate(setting)
            except InfeasibleError:
                continue
            plan_rows.append({
                "plan": plan.describe(),
                "iter_s": est.iter_time,
                "tflops_per_gpu": est.tflops_per_gpu,
                "microbatches": est.choice.grad_accum,
                "predicted_bubble": (
                    system.predicted_bubble_fraction(setting, est.choice)
                    if plan.pp > 1 else 0.0
                ),
            })
        plan_rows.sort(key=lambda r: r["iter_s"])
        best = plan_rows[0]
        pure_dp = next(
            r for r in plan_rows if r["plan"] == "tp1.pp1.dp%d.sp1" % world
        )
        composed = [
            r for r in plan_rows
            if r["plan"].split(".")[0] != "tp1"
            and r["plan"].split(".")[1] != "pp1"
        ]
        grid_rows.append({
            "model": cfg.name,
            "world": world,
            "global_batch": setting.global_batch,
            "seq": setting.seq,
            "plans": plan_rows,
            "best_plan": best["plan"],
            "best_iter_s": best["iter_s"],
            "pure_dp_iter_s": pure_dp["iter_s"],
            "speedup_vs_pure_dp": pure_dp["iter_s"] / best["iter_s"],
            # The acceptance bar: a TPxPP-composed plan outrunning pure
            # DP (its gradient all-reduce moves tp*pp times the bytes).
            "composed_beats_pure_dp": bool(
                composed and composed[0]["iter_s"] < pure_dp["iter_s"]
            ),
        })

    largest = grid_rows[-1]
    return {
        "substrate": substrate_rows,
        "grid": grid_rows,
        "all_tolerance_ok": all(r["tolerance_ok"] for r in substrate_rows),
        # headline: the largest grid point's best plan over pure DP
        "speedup": largest["speedup_vs_pure_dp"],
        "best_plan": largest["best_plan"],
    }


def _bench_qmatmul(
    rng: np.random.Generator, m: int, k: int, n: int, workers: int,
    repeats: int,
) -> Dict[str, float]:
    """Fused int8 qmatmul vs its dense-dequant reference (and fp32).

    All three contestants produce the same logical product.  The fused
    path dequantizes group-by-group inside the tile loop (~1 byte of
    weight traffic per element); the dense-dequant reference
    materializes the fp32 weight first (~9 bytes: read int8, write
    fp32, re-read fp32) — that traffic gap is the ``speedup`` column.
    ``vs_fp32`` is the honest extra column against a *resident* fp32
    weight, i.e. what quantization costs (or wins) when memory is not
    the constraint.  Correctness columns: max deviation from the
    reference, the analytic per-group error bound check against the
    exact fp32 product, and bitwise determinism across worker counts.
    """
    from repro.exec.ops import parallel_qmatmul
    from repro.exec.pool import KernelPool
    from repro.numeric.lowprec import QuantizedTensor, quantize_int8_blocked
    from repro.tune.registry import default as registry_default

    group = registry_default("quant.group_size")
    w = (0.05 * rng.standard_normal((k, n))).astype(np.float32)
    x = rng.standard_normal((m, k), dtype=np.float32)
    bias = rng.standard_normal(n, dtype=np.float32)
    qweight, scales = quantize_int8_blocked(w, group)
    qt = QuantizedTensor(qweight, scales, group)
    pool = get_pool(workers)
    out_f = np.empty((m, n), dtype=np.float32)
    out_d = np.empty((m, n), dtype=np.float32)
    out_w = np.empty((m, n), dtype=np.float32)
    wbuf = np.empty((k, n), dtype=np.float32)

    def fused():
        parallel_qmatmul(x, qt, bias, out=out_f, pool=pool)

    def dense_dequant():
        qt.dequantize(out=wbuf)
        np.matmul(x, wbuf, out=out_d)
        np.add(out_d, bias, out=out_d)

    def fp32_resident():
        np.matmul(x, w, out=out_w)
        np.add(out_w, bias, out=out_w)

    fused_s, dense_s, fp32_s = _time_interleaved(
        [fused, dense_dequant, fp32_resident], repeats
    )
    max_err = float(np.max(np.abs(out_f - out_d)))
    scale_ref = float(np.max(np.abs(out_d))) or 1.0
    # Analytic bound vs the exact fp32 product: |x| @ (scale/2).
    exact = x @ w + bias
    bound = np.abs(x) @ qt.error_bound()
    bound_ok = bool(
        np.all(np.abs(out_f - exact) <= bound * (1 + 1e-4) + 1e-5)
    )
    serial = KernelPool(1)
    out_1 = parallel_qmatmul(x, qt, bias, pool=serial)
    return {
        "shape": f"{m}x{k}x{n}",
        "elements": m * k * n,
        "group_size": group,
        "fused_ms": fused_s * 1e3,
        "dense_dequant_ms": dense_s * 1e3,
        "fp32_resident_ms": fp32_s * 1e3,
        "speedup": dense_s / fused_s,
        "vs_fp32": fp32_s / fused_s,
        "mem_ratio": w.nbytes / qt.nbytes,
        "max_rel_err": max_err / scale_ref,
        "tolerance_ok": max_err <= QMATMUL_TOL * scale_ref,
        "bound_ok": bound_ok,
        "deterministic": bool(np.array_equal(out_f, out_1)),
    }


def _bench_serving(
    sessions: int, workers: int, quick: bool
) -> Dict[str, float]:
    """Throughput/latency of the streaming server at one concurrency.

    ``sessions`` client threads each submit one prompt and consume the
    token stream; the continuous-batching loop mixes their prefills and
    decodes freely.  Tokens/sec is aggregate across the fleet; p50/p95
    are per-token latency over every inter-token gap of every stream.
    """
    import threading

    from repro.serving import InferenceEngine, StreamingServer

    spec = TransformerParams(
        vocab=128 if quick else 512,
        max_seq=64 if quick else 160,
        hidden=64 if quick else 128,
        n_layers=2 if quick else 4,
        n_heads=4 if quick else 8,
    )
    model = TinyTransformer(spec, seed=0)
    prompt_len = 8 if quick else 16
    max_new = 8 if quick else 32
    engine = InferenceEngine(model, pool=get_pool(workers))
    ratio = engine.memory_ratio
    rng = np.random.default_rng(1)
    prompts = [
        rng.integers(0, spec.vocab, size=prompt_len)
        for _ in range(sessions)
    ]
    counts: List[int] = [0] * sessions
    with StreamingServer(engine, max_batch=sessions) as server:
        def client(i: int) -> None:
            sid = server.submit(prompts[i], max_new)
            counts[i] = len(server.result(sid))

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        met = server.metrics()
    if any(c != max_new for c in counts):
        raise RuntimeError(f"short streams: {counts}")
    return {
        "sessions": sessions,
        "prompt_tokens": prompt_len,
        "max_new_tokens": max_new,
        "tokens": met["tokens"],
        "request_rate_per_s": met["sessions"] / met["wall_s"],
        "tokens_per_sec": met["tokens_per_sec"],
        "p50_token_ms": met["p50_token_ms"],
        "p95_token_ms": met["p95_token_ms"],
        "ttft_ms": met["ttft_ms"],
        "memory_ratio": ratio,
    }


def _bench_inference(
    rng: np.random.Generator, workers: int, repeats: int, quick: bool
) -> Dict:
    """The ``inference`` section: qmatmul A/B plus the serving sweep."""
    import math

    shapes = QUICK_QMATMUL_SHAPES if quick else QMATMUL_SHAPES
    levels = QUICK_SERVING_LEVELS if quick else SERVING_LEVELS
    qrows = [
        _bench_qmatmul(rng, m, k, n, workers, repeats)
        for (m, k, n) in shapes
    ]
    srows = [_bench_serving(s, workers, quick) for s in levels]
    gm = math.exp(
        sum(math.log(r["speedup"]) for r in qrows) / len(qrows)
    )
    return {
        "qmatmul": qrows,
        "serving": srows,
        "speedup": gm,
        "tokens_per_sec": max(r["tokens_per_sec"] for r in srows),
        "p95_token_ms": min(r["p95_token_ms"] for r in srows),
        "memory_ratio": srows[0]["memory_ratio"],
    }


def substrate_bench(
    sizes: Optional[List[int]] = None,
    world_size: int = 4,
    n_tensors: int = 8,
    repeats: int = 5,
    seed: int = 0,
    quick: bool = False,
    workers: Optional[int] = None,
    sections: Optional[Sequence[str]] = None,
) -> Dict:
    """Run the full substrate benchmark; returns a JSON-ready document.

    Args:
        sizes: flat element counts to benchmark (defaults depend on
            ``quick``).
        world_size: simulated rank count for the ZeRO sections.
        n_tensors: named tensors each parameter set is split into.
        repeats: timing repetitions (best-of).
        seed: RNG seed for parameters and gradients.
        quick: smoke-run sizes/repeats (used by CI).
        workers: kernel-pool thread count for the executor sections
            (default: at least 2, so the parallel machinery is really
            exercised even on small hosts).
        sections: subset of :data:`ALL_SECTIONS` to run (default: all).
    """
    if sizes is None:
        sizes = list(QUICK_SIZES if quick else DEFAULT_SIZES)
    if quick:
        repeats = min(repeats, 3)
    if workers is None:
        workers = max(2, default_workers())
    if sections is None:
        sections = ALL_SECTIONS
    unknown = set(sections) - set(ALL_SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown bench sections {sorted(unknown)}; "
            f"known: {list(ALL_SECTIONS)}"
        )
    rng = np.random.default_rng(seed)
    result: Dict = {
        "benchmark": "substrate_arena",
        "world_size": world_size,
        "n_tensors": n_tensors,
        "repeats": repeats,
        "workers": workers,
    }
    if "zero_step" in sections:
        result["zero_step"] = [
            _bench_zero_step(rng, n, n_tensors, world_size, repeats)
            for n in sizes
        ]
    if "rollback" in sections:
        result["rollback"] = [
            _bench_rollback(rng, n, n_tensors, repeats) for n in sizes
        ]
    if "steady_state" in sections:
        result["steady_state"] = _bench_steady_state(
            rng, sizes[-1], n_tensors, world_size, steps=max(3, repeats)
        )
    if "parallel_step" in sections:
        result["parallel_step"] = [
            _bench_parallel_step(rng, n, n_tensors, workers, repeats)
            for n in sizes
        ]
    if "zero_pipeline" in sections:
        result["zero_pipeline"] = [
            _bench_zero_pipeline(rng, n, n_tensors, world_size, workers,
                                 repeats)
            for n in sizes
        ]
    if "attention" in sections:
        seqs = QUICK_ATTENTION_SEQS if quick else ATTENTION_SEQS
        result["attention"] = [
            _bench_attention(rng, s, workers, repeats) for s in seqs
        ]
    if "model_step" in sections:
        seqs = QUICK_MODEL_STEP_SEQS if quick else MODEL_STEP_SEQS
        result["model_step"] = [
            _bench_model_step(rng, s, workers, repeats) for s in seqs
        ]
    if "spill" in sections:
        result["spill"] = [
            _bench_spill(rng, n, n_tensors, world_size, workers, repeats)
            for n in sizes
        ]
    if "checkpoint" in sections:
        result["checkpoint"] = [
            _bench_checkpoint(rng, n, repeats) for n in sizes
        ]
    if "parallelism" in sections:
        result["parallelism"] = _bench_parallelism(rng, repeats, quick)
    if "inference" in sections:
        result["inference"] = _bench_inference(rng, workers, repeats,
                                               quick)
    return result
