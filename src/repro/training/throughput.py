"""Simulated-time experiment drivers for the evaluation section.

These produce the rows/series the paper's figures report: per-system
throughput sweeps (Figs. 10-11), the max-model-scale table (Fig. 13), and
the ablation breakdown (Table 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.models.config import config_for_params
from repro.systems import (
    InfeasibleError,
    RunSetting,
    SuperOffloadFeatures,
    SuperOffloadSystem,
    build_all_systems,
)
from repro.training.cluster import gh200_cluster


def throughput_sweep(
    system_names: Sequence[str],
    model_billions: Iterable[float],
    n_superchips: int,
    global_batch: int,
    seq: int = 1024,
) -> List[Dict]:
    """Per-system, per-model-size effective TFLOPS (Figs. 10-11 series).

    Returns one row per (system, size); infeasible points carry
    ``tflops=None`` (the figures' OOM markers).
    """
    systems = build_all_systems()
    cluster = gh200_cluster(n_superchips)
    rows: List[Dict] = []
    for billions in model_billions:
        config = config_for_params(billions)
        setting = RunSetting(config, cluster, global_batch=global_batch, seq=seq)
        for name in system_names:
            system = systems[name]
            row: Dict = {
                "system": name,
                "model_billions": billions,
                "n_superchips": n_superchips,
                "global_batch": global_batch,
            }
            try:
                est = system.best_estimate(setting)
                row.update(
                    tflops=est.tflops_per_gpu,
                    mfu=est.mfu,
                    iter_time=est.iter_time,
                    micro_batch=est.choice.micro_batch,
                    checkpointing=est.choice.checkpointing,
                    gpu_idle_fraction=est.gpu_idle_fraction(),
                )
            except InfeasibleError:
                row.update(tflops=None, mfu=None, iter_time=None)
            rows.append(row)
    return rows


def max_model_table(
    system_names: Sequence[str], superchip_counts: Sequence[int]
) -> List[Dict]:
    """Largest trainable Appendix-A model per system per cluster (Fig. 13)."""
    systems = build_all_systems()
    rows: List[Dict] = []
    for n in superchip_counts:
        cluster = gh200_cluster(n)
        for name in system_names:
            rows.append(
                {
                    "system": name,
                    "n_superchips": n,
                    "max_model_billions": systems[name].max_model_billions(cluster),
                }
            )
    return rows


ABLATION_ROWS = (
    ("baseline", SuperOffloadFeatures(False, False, False, False)),
    ("+GraceAdam", SuperOffloadFeatures(True, False, False, False)),
    ("+SAC", SuperOffloadFeatures(True, True, False, False)),
    ("+STV", SuperOffloadFeatures(True, True, True, False)),
    ("+BucketRepart", SuperOffloadFeatures(True, True, True, True)),
)


def ablation_table(
    model_billions: float = 5,
    n_superchips: int = 1,
    global_batch: int = 8,
    seq: int = 1024,
) -> List[Dict]:
    """Table 2: cumulative feature breakdown on the 5B model."""
    cluster = gh200_cluster(n_superchips)
    config = config_for_params(model_billions)
    setting = RunSetting(config, cluster, global_batch=global_batch, seq=seq)
    rows: List[Dict] = []
    for label, features in ABLATION_ROWS:
        system = SuperOffloadSystem(features=features, name=f"so[{label}]")
        est = system.best_estimate(setting)
        rows.append(
            {
                "row": label,
                "grace_adam": features.grace_adam,
                "sac": features.superchip_aware_casting,
                "stv": features.stv,
                "bucket_repartitioning": features.bucket_repartitioning,
                "tflops": est.tflops_per_gpu,
                "iter_time": est.iter_time,
            }
        )
    return rows
